#!/usr/bin/env python
"""Render the paper's layout diagrams (Figures 3/4/5) as SVG files.

Writes three SVGs into ``diagrams/`` -- the Figure 2 example program under
PAD, GROUPPAD, and GROUPPAD+L2MAXPAD layouts -- drawn the way the paper
draws them: a box per cache, dots at reference positions, arcs solid when
the group reuse survives and dashed when it is lost.

Run:  python examples/render_diagrams.py
"""

import pathlib

from repro import DataLayout, ultrasparc_i
from repro.layout.svg import diagrams_svg
from repro.transforms import grouppad, l2maxpad, pad

from padding_diagrams import build_fig2  # reuse the example program


def main() -> None:
    hier = ultrasparc_i()
    n = 896
    prog = build_fig2(n)
    seq = DataLayout.sequential(prog)

    out = pathlib.Path("diagrams")
    out.mkdir(exist_ok=True)

    jobs = {
        "fig3_pad": (
            pad(prog, seq, hier.l1.size, hier.l1.line_size),
            hier.l1.size, hier.l1.line_size,
        ),
        "fig4_grouppad": (
            grouppad(prog, seq, hier.l1.size, hier.l1.line_size),
            hier.l1.size, hier.l1.line_size,
        ),
    }
    gp = jobs["fig4_grouppad"][0]
    jobs["fig5_l2maxpad_on_l2"] = (
        l2maxpad(prog, gp, hier), hier.l2.size, hier.l2.line_size,
    )

    for name, (layout, cache, line) in jobs.items():
        svg = diagrams_svg(prog, layout, cache, line)
        path = out / f"{name}.svg"
        path.write_text(svg)
        print(f"wrote {path} ({len(svg)} bytes)")


if __name__ == "__main__":
    main()
