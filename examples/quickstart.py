#!/usr/bin/env python
"""Quickstart: build a loop nest, simulate it, pad it, compare.

Demonstrates the core pipeline of the library in ~40 lines:

1. describe a Fortran-style program in the IR builder,
2. lay its arrays out sequentially (the "original" layout),
3. simulate the paper's UltraSparc I two-level hierarchy,
4. eliminate the severe conflict misses with PAD / MULTILVLPAD,
5. compare miss rates.

Run:  python examples/quickstart.py
"""

from repro import DataLayout, ProgramBuilder, simulate_program, ultrasparc_i
from repro.transforms import multilvl_pad, pad


def main() -> None:
    hier = ultrasparc_i()

    # The DOT kernel scenario: two vectors, each an exact multiple of both
    # cache sizes, so X(k) and Z(k) ping-pong in the same cache line.
    n = 65536  # 512 KB per vector
    b = ProgramBuilder("quickstart")
    X = b.array("X", (n,))
    Z = b.array("Z", (n,))
    (k,) = b.vars("k")
    b.nest([b.loop(k, 1, n)], [b.use(reads=[Z[k], X[k]], flops=2)])
    prog = b.build()

    original = DataLayout.sequential(prog)
    layouts = {
        "original": original,
        "PAD (L1 only)": pad(prog, original, hier.l1.size, hier.l1.line_size),
        "MULTILVLPAD (L1&L2)": multilvl_pad(prog, original, hier),
    }

    print(f"program: {prog.name}, {prog.total_refs():,} references")
    print(f"hierarchy: L1 {hier.l1.size // 1024}K/{hier.l1.line_size}B, "
          f"L2 {hier.l2.size // 1024}K/{hier.l2.line_size}B\n")
    header = f"{'layout':<22} {'pads':<12} {'L1 miss%':>9} {'L2 miss%':>9}"
    print(header)
    print("-" * len(header))
    for name, layout in layouts.items():
        result = simulate_program(prog, layout, hier)
        print(
            f"{name:<22} {str(layout.pads):<12} "
            f"{100 * result.miss_rate('L1'):>8.2f} "
            f"{100 * result.miss_rate('L2'):>8.2f}"
        )
    print(
        "\nPAD moves Z one L1 line away from X, killing the ping-pong at "
        "both levels;\nMULTILVLPAD uses the larger L2 line (64B) so the "
        "L2-level conflict goes too."
    )


if __name__ == "__main__":
    main()
