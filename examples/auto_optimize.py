#!/usr/bin/env python
"""One call, the whole paper: the optimization driver on a kernel.

``repro.optimize`` chains intra-variable padding, memory-order
permutation, profitability-checked fusion, and GROUPPAD (+ L2MAXPAD) --
the paper's complete recipe -- and logs every decision.  This example
runs it on JACOBI at a cache-resonant size and compares the three
strategies, ending with the paper's bottom line: targeting the L1 cache
alone captures nearly all the multi-level benefit.

Run:  python examples/auto_optimize.py
"""

from repro import DataLayout, optimize, simulate_program, ultrasparc_i
from repro.kernels import jacobi


def main() -> None:
    hier = ultrasparc_i()
    prog = jacobi.build(512)
    baseline = simulate_program(prog, DataLayout.sequential(prog), hier)
    print(f"program: {prog.name} | baseline "
          f"L1={100 * baseline.miss_rate('L1'):.2f}% "
          f"L2={100 * baseline.miss_rate('L2'):.2f}%\n")

    for strategy in ("PAD", "L1", "L1&L2"):
        opt_prog, layout, report = optimize(prog, hier, strategy=strategy)
        result = simulate_program(opt_prog, layout, hier)
        print(f"=== strategy {strategy} ===")
        print(report)
        print(f"  => L1={100 * result.miss_rate('L1'):.2f}% "
              f"L2={100 * result.miss_rate('L2'):.2f}%\n")

    print(
        "Note how close 'L1' and 'L1&L2' land: the paper's conclusion "
        "('existing compiler\noptimizations are usually sufficient for "
        "multi-level caches') in one run."
    )


if __name__ == "__main__":
    main()
