#!/usr/bin/env python
"""Reproduce the paper's layout diagrams (Figures 3, 4, 5) as ASCII art.

Builds the Figure 2 example program at the proportions of Figure 3 ("the
cache size is slightly more than double the common column size"), then
prints the dots-and-arcs diagram of each nest under three layouts:

* PAD       -- severe conflicts avoided, most arcs still covered (Fig 3);
* GROUPPAD  -- B's reuse preserved on the L1 cache (Fig 4);
* +L2MAXPAD -- everything preserved on the much larger L2 cache (Fig 5).

Run:  python examples/padding_diagrams.py
"""

from repro import CacheDiagram, DataLayout, ProgramBuilder, ultrasparc_i
from repro.transforms import grouppad, l2maxpad, pad


def build_fig2(n: int):
    b = ProgramBuilder("fig2")
    A = b.array("A", (n, n))
    B = b.array("B", (n, n))
    C = b.array("C", (n, n))
    i, j = b.vars("i", "j")
    b.nest(
        [b.loop(j, 2, n - 1), b.loop(i, 1, n)],
        [
            b.use(reads=[A[i, j], A[i, j + 1]], flops=1),
            b.use(reads=[B[i, j], B[i, j + 1]], flops=1),
            b.use(reads=[C[i, j], C[i, j + 1]], flops=1),
        ],
        label="loop nest 1",
    )
    b.nest(
        [b.loop(j, 2, n - 1), b.loop(i, 1, n)],
        [
            b.use(reads=[B[i, j - 1], B[i, j], B[i, j + 1]], flops=2),
            b.use(reads=[C[i, j]], flops=0),
        ],
        label="loop nest 2",
    )
    return b.build()


def show(title, prog, layout, cache_size, line_size):
    print(f"--- {title} (cache {cache_size // 1024}K) ---")
    total = exploited = 0
    for nest in prog.nests:
        d = CacheDiagram(prog, layout, nest, cache_size, line_size)
        print(f"{nest.label}:")
        print(d.render_ascii(width=64))
        total += d.arc_count
        exploited += d.exploited_count
    print(f"=> group-reuse arcs exploited: {exploited}/{total}\n")


def main() -> None:
    hier = ultrasparc_i()
    n = 896  # column = 7 KB on the 16 KB L1: Figure 3's proportions
    prog = build_fig2(n)
    seq = DataLayout.sequential(prog)

    via_pad = pad(prog, seq, hier.l1.size, hier.l1.line_size)
    via_gp = grouppad(prog, seq, hier.l1.size, hier.l1.line_size)
    via_l2 = l2maxpad(prog, via_gp, hier)

    print(f"Figure 2 program at N={n}: column = {n * 8} bytes\n")
    show("Figure 3: PAD", prog, via_pad, hier.l1.size, hier.l1.line_size)
    show("Figure 4: GROUPPAD", prog, via_gp, hier.l1.size, hier.l1.line_size)
    show(
        "Figure 5: GROUPPAD + L2MAXPAD, seen on the L2 cache",
        prog, via_l2, hier.l2.size, hier.l2.line_size,
    )
    print("pads chosen:")
    for name, layout in [("PAD", via_pad), ("GROUPPAD", via_gp),
                         ("L2MAXPAD", via_l2)]:
        print(f"  {name:<9} {dict(zip(layout.order, layout.pads))}")


if __name__ == "__main__":
    main()
