#!/usr/bin/env python
"""Figure 11 in miniature: why L2MAXPAD exists.

Sweeps EXPL over a band of problem sizes and plots (as ASCII sparklines)
the L2 miss rate with GROUPPAD alone versus GROUPPAD + L2MAXPAD.  The
paper's point: GROUPPAD's L1-focused layout occasionally lets columns of
different variables converge on the L2 cache at particular problem sizes
(clusters of elevated L2 misses); pinning positions on the L2 cache with
S1-multiple pads flattens the curve.

Run:  python examples/problem_size_sweep.py   (takes a minute or two)
"""

from repro.experiments import fig11_sweep

BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values, lo=None, hi=None):
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = (hi - lo) or 1.0
    return "".join(
        BARS[int((v - lo) / span * (len(BARS) - 1))] for v in values
    )


def main() -> None:
    sizes = list(range(250, 521, 13))  # the paper's tick spacing
    result = fig11_sweep.run(programs=("expl",), sizes=sizes)
    rows = result.series["expl"]

    l2_l1opt = [100 * r[2] for r in rows]
    l2_both = [100 * r[4] for r in rows]
    l1_curve = [100 * r[1] for r in rows]
    lo = min(l2_l1opt + l2_both)
    hi = max(l2_l1opt + l2_both)

    print(f"EXPL, N = {sizes[0]}..{sizes[-1]} (step 13)\n")
    print(f"L2 miss rate, GROUPPAD alone      [{lo:.1f}..{hi:.1f}%]:")
    print("   " + sparkline(l2_l1opt, lo, hi))
    print("L2 miss rate, GROUPPAD + L2MAXPAD:")
    print("   " + sparkline(l2_both, lo, hi))
    print("L1 miss rate (identical for both versions):")
    print("   " + sparkline(l1_curve))
    gap = result.l2_cluster_gap("expl")
    print(
        f"\nworst L2 cluster removed by L2MAXPAD: "
        f"{gap:.2f} percentage points"
    )
    print("\nfull table:\n")
    print(result.format())


if __name__ == "__main__":
    main()
