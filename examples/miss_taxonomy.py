#!/usr/bin/env python
"""Where do the misses go?  Cold / capacity / conflict, before and after PAD.

The paper's padding transformations exist to remove *conflict* misses.
This example decomposes each kernel's direct-mapped L1 misses with the
classic three-way taxonomy (reuse distances against a fully-associative
LRU cache of the same size) and shows that PAD removes exactly the
conflict slice, leaving cold and capacity misses untouched.

Run:  python examples/miss_taxonomy.py
"""

import numpy as np

from repro import DataLayout, ultrasparc_i
from repro.cache import classify_misses
from repro.kernels.registry import get_kernel
from repro.transforms import pad

PROGRAMS = {"dot": 8192, "jacobi": 96, "expl": 64, "su2cor": 64}


def main() -> None:
    hier = ultrasparc_i()
    l1 = hier.l1
    print(f"L1 = {l1.size // 1024}K direct-mapped, {l1.line_size}B lines\n")
    print(f"{'program':<8} {'layout':<7} {'cold%':>7} {'capacity%':>10} "
          f"{'conflict%':>10}")
    print("-" * 46)
    for name, n in PROGRAMS.items():
        kernel = get_kernel(name)
        prog = kernel.program(n)
        seq = DataLayout.sequential(prog)
        padded = pad(prog, seq, l1.size, l1.line_size)
        for label, layout in [("orig", seq), ("PAD", padded)]:
            trace = np.concatenate(list(kernel.trace_chunks(prog, layout)))
            t = classify_misses(trace, l1)
            print(
                f"{name:<8} {label:<7} {100 * t.rate('cold'):>7.2f} "
                f"{100 * t.rate('capacity'):>10.2f} "
                f"{100 * t.rate('conflict'):>10.2f}"
            )
        print()
    print(
        "PAD's effect is confined to the conflict column: cold misses are\n"
        "compulsory and capacity misses need loop transformations (tiling,\n"
        "fusion), not data placement."
    )


if __name__ == "__main__":
    main()
