#!/usr/bin/env python
"""The Section 4 fusion tradeoff, end to end on EXPL.

Fuses EXPL's pressure and velocity sweeps (which share ZA, ZB, ZR) at a
range of problem sizes and shows both sides of the paper's ledger:

* the compile-time accounting -- per-iteration references satisfied by
  L1 / L2 / memory before and after fusion, and the weighted profitability
  decision;
* the measured truth -- simulated L1/L2 miss-rate changes, normalized by
  the original version's reference count as in Section 6.4.

Run:  python examples/fusion_tradeoff.py
"""

from repro import DataLayout, ultrasparc_i
from repro.analysis import MissCostModel, account_nests, fusion_profitable
from repro.analysis.fusionmodel import account_nest, fusion_delta
from repro.experiments.common import simulate_kernel_layout
from repro.kernels import expl
from repro.kernels.registry import get_kernel
from repro.transforms import fuse_nests, grouppad, l2maxpad


def layout_for(prog, hier):
    gp = grouppad(prog, DataLayout.sequential(prog),
                  hier.l1.size, hier.l1.line_size)
    return l2maxpad(prog, gp, hier)


def main() -> None:
    hier = ultrasparc_i()
    model = MissCostModel.from_hierarchy(hier)
    kernel = get_kernel("expl")
    a, b = expl.FUSABLE_NESTS

    print("EXPL fusion tradeoff (per-iteration accounting + simulation)\n")
    print(f"{'N':>4} {'mem b/a':>9} {'L2 b/a':>9} {'profit?':>8} "
          f"{'ΔL1%':>7} {'ΔL2%':>7}")
    for n in (256, 352, 448, 544):
        original = expl.build(n)
        fused = fuse_nests(original, a, b, check="none")
        lay_o = layout_for(original, hier)
        lay_f = layout_for(fused, hier)

        before = account_nests(
            original, lay_o, [original.nests[a], original.nests[b]],
            hier.l1.size, hier.l1.line_size,
        )
        after = account_nest(
            fused, lay_f, fused.nests[a], hier.l1.size, hier.l1.line_size
        )
        delta = fusion_delta(
            original, lay_o, [original.nests[a], original.nests[b]],
            fused, lay_f, fused.nests[a],
            hier.l1.size, hier.l1.line_size,
        )
        decision = fusion_profitable(delta, model)

        sim_o = simulate_kernel_layout(kernel, original, lay_o, hier)
        sim_f = simulate_kernel_layout(kernel, fused, lay_f, hier)
        base = sim_o.total_refs
        d_l1 = 100 * (sim_f.level("L1").misses - sim_o.level("L1").misses) / base
        d_l2 = 100 * (sim_f.level("L2").misses - sim_o.level("L2").misses) / base

        print(
            f"{n:>4} {before.memory_refs:>4}/{after.memory_refs:<4} "
            f"{before.l2_refs:>4}/{after.l2_refs:<4} "
            f"{str(decision):>8} {d_l1:>7.2f} {d_l2:>7.2f}"
        )

    print(
        "\nFusion always saves 3 memory references/iteration (the shared "
        "ZA/ZB/ZR leading\nreferences) but can lose group reuse on the "
        "small L1 cache; the cost model weighs\nthe two (L2 misses cost "
        f"{model.l2_miss_cost:.0f} cycles vs {model.l1_miss_cost:.0f} "
        "for L1) exactly as Section 4 prescribes."
    )


if __name__ == "__main__":
    main()
