#!/usr/bin/env python
"""Tiling matrix multiply for the L1 vs the L2 cache (Section 5, Fig 13).

For a handful of matrix sizes, selects self-interference-free tiles
targeting the L1 cache and the L2 cache, simulates both tiled loop nests
(exactly the Figure 8 KK/II/J/K/I structure), reports modeled MFLOPS --
and then *executes* the tiled kernel in NumPy to confirm the transformed
code computes the same product.

Run:  python examples/tiling_matmul.py
"""

import numpy as np

from repro import DataLayout, ultrasparc_i
from repro.cache.streaming import StreamingHierarchy
from repro.experiments.common import estimated_cycles, mflops
from repro.experiments.fig13_tiling import tile_for_version
from repro.kernels import matmul
from repro.kernels.numeric import run_matmul_tiled
from repro.trace.generator import program_trace_chunks


def modeled_mflops(program, hier):
    sim = StreamingHierarchy(hier)
    sim.feed_all(program_trace_chunks(program, DataLayout.sequential(program)))
    flops = program.total_flops()
    return mflops(flops, estimated_cycles(sim.result(), hier, flops))


def main() -> None:
    hier = ultrasparc_i()
    print("tile selection + modeled MFLOPS (UltraSparc-era cycle model)\n")
    print(f"{'N':>4} {'version':>6} {'tile WxH':>10} {'MFLOPS':>8}")
    for n in (128, 256, 352):
        for version in ("Orig", "L1", "L2"):
            shape = tile_for_version(version, n, hier)
            if shape is None:
                prog = matmul.build(n)
                tile = "-"
            else:
                prog = matmul.build_tiled(n, shape.width, shape.height)
                tile = f"{shape.width}x{shape.height}"
            print(
                f"{n:>4} {version:>6} {tile:>10} "
                f"{modeled_mflops(prog, hier):>8.2f}"
            )
        print()

    # Correctness: the Figure 8 loop structure computes the same product.
    n = 96
    shape = tile_for_version("L1", n, hier)
    rng = np.random.default_rng(0)
    a = np.asfortranarray(rng.random((n, n)))
    b = np.asfortranarray(rng.random((n, n)))
    c = np.zeros((n, n), order="F")
    run_matmul_tiled(a, b, c, shape.width, shape.height)
    err = float(np.abs(c - a @ b).max())
    print(f"numeric check at N={n}, tile {shape.width}x{shape.height}: "
          f"max |C - A@B| = {err:.2e}")


if __name__ == "__main__":
    main()
