"""The optimization driver: the paper's recipe as one call.

Chains the passes in the order the paper applies them (Section 6.1 and
the per-transformation sections) and records every decision:

1. **intra-variable padding** -- clear same-array resonance first, so
   inter-variable analysis is not masked (done for ADI32/ERLE64 in §6.1);
2. **loop permutation** (memory order) -- cache-size independent (§2.1);
3. **loop fusion** -- adjacent compatible nests, fused only when the
   group-reuse accounting scaled by miss costs says it pays (§4);
4. **inter-variable padding** -- GROUPPAD for the L1 cache, then, under
   the ``"L1&L2"`` strategy, L2MAXPAD for the second level (§3); the
   ``"PAD"`` strategy runs plain severe-conflict elimination instead.

The paper's conclusion -- "most locality transformations can usually
improve reuse for multiple levels of cache by simply targeting the
smallest usable level" -- is a testable statement about this driver: the
``"L1"`` and ``"L1&L2"`` strategies should land within a whisker of each
other (see ``tests/test_driver.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.costmodel import MissCostModel
from repro.analysis.fusionmodel import fusion_delta, fusion_profitable
from repro.cache.config import HierarchyConfig
from repro.cache.stats import SimulationResult
from repro.errors import ReproError
from repro.ir.program import Program
from repro.layout.layout import DataLayout
from repro.transforms.fusion import can_fuse, fuse_nests, fusion_dependence_ok
from repro.transforms.grouppad import grouppad
from repro.transforms.intrapad import intra_pad
from repro.transforms.maxpad import l2maxpad
from repro.transforms.pad import multilvl_pad, pad
from repro.transforms.permute import memory_order

__all__ = [
    "optimize",
    "optimize_searched",
    "evaluate_strategies",
    "OptimizationReport",
    "StrategyOutcome",
]

STRATEGIES = ("PAD", "L1", "L1&L2")


@dataclass
class OptimizationReport:
    """What the driver did and why."""

    strategy: str
    decisions: list[str] = field(default_factory=list)

    def log(self, message: str) -> None:
        """Append one decision line to the report."""
        self.decisions.append(message)

    def __str__(self) -> str:
        lines = [f"strategy: {self.strategy}"]
        lines.extend(f"  - {d}" for d in self.decisions)
        return "\n".join(lines)


def optimize(
    program: Program,
    hierarchy: HierarchyConfig,
    strategy: str = "L1",
    permute: bool = True,
    fuse: bool = True,
) -> tuple[Program, DataLayout, OptimizationReport]:
    """Apply the paper's optimization pipeline; returns the transformed
    program, its layout, and a decision report.

    ``strategy``: ``"PAD"`` = severe-conflict elimination only; ``"L1"`` =
    GROUPPAD targeting the first level; ``"L1&L2"`` = GROUPPAD followed by
    L2MAXPAD (requires a second level).
    """
    if strategy not in STRATEGIES:
        raise ReproError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        )
    if strategy == "L1&L2" and len(hierarchy) < 2:
        raise ReproError("strategy 'L1&L2' needs a hierarchy with an L2 cache")
    report = OptimizationReport(strategy=strategy)
    l1 = hierarchy.l1

    # 1. Intra-variable padding.
    before_shapes = {a.name: a.shape for a in program.arrays}
    program = intra_pad(program, l1.size, l1.line_size, hierarchy=hierarchy)
    for decl in program.arrays:
        if decl.shape != before_shapes[decl.name]:
            report.log(
                f"intra-pad {decl.name}: leading dim "
                f"{before_shapes[decl.name][0]} -> {decl.shape[0]}"
            )

    # 2. Loop permutation (memory order).
    if permute:
        nests = []
        for nest in program.nests:
            ordered = memory_order(program, nest, l1.line_size)
            if ordered.loop_vars != nest.loop_vars:
                report.log(
                    f"permute {nest.label}: {nest.loop_vars} -> {ordered.loop_vars}"
                )
            nests.append(ordered)
        program = program.with_nests(nests)

    # 3. Profitable fusion of adjacent nests.
    if fuse:
        model = MissCostModel.from_hierarchy(hierarchy)
        i = 0
        while i + 1 < len(program.nests):
            a, b = program.nests[i], program.nests[i + 1]
            if not can_fuse(a, b):
                i += 1
                continue
            if not fusion_dependence_ok(program, a, b):
                report.log(
                    f"keep {a.label} | {b.label} separate: fusion would "
                    f"reverse a dependence"
                )
                i += 1
                continue
            candidate = fuse_nests(program, i, i + 1)
            base_layout = grouppad(
                program, DataLayout.sequential(program), l1.size, l1.line_size
            )
            cand_layout = grouppad(
                candidate, DataLayout.sequential(candidate), l1.size, l1.line_size
            )
            delta = fusion_delta(
                program, base_layout, [a, b],
                candidate, cand_layout, candidate.nests[i],
                l1.size, l1.line_size,
            )
            if fusion_profitable(delta, model):
                report.log(
                    f"fuse {a.label} + {b.label}: ΔL2refs={delta.l2_refs}, "
                    f"Δmem={delta.memory_refs} -> profitable"
                )
                program = candidate
            else:
                report.log(
                    f"keep {a.label} | {b.label} separate: ΔL2refs="
                    f"{delta.l2_refs}, Δmem={delta.memory_refs} -> not profitable"
                )
                i += 1

    # 4. Inter-variable padding.
    layout = DataLayout.sequential(program)
    if strategy == "PAD":
        layout = pad(program, layout, l1.size, l1.line_size)
        report.log(f"PAD: pads={layout.pads}")
        if len(hierarchy) > 1:
            layout = multilvl_pad(program, layout, hierarchy)
            report.log(f"MULTILVLPAD: pads={layout.pads}")
    else:
        layout = grouppad(program, layout, l1.size, l1.line_size)
        report.log(f"GROUPPAD(L1): pads={layout.pads}")
        if strategy == "L1&L2":
            layout = l2maxpad(program, layout, hierarchy)
            report.log(f"L2MAXPAD: pads={layout.pads}")

    return program, layout, report


def optimize_searched(
    program: Program,
    hierarchy: HierarchyConfig,
    strategy: str = "L1&L2",
    budget: int | None = 64,
    seed: int = 0,
    search_strategy: str = "coordinate",
    max_lines: int = 8,
    assoc_aware: bool = False,
    workers: int | None = None,
    store=None,
    executor=None,
):
    """The heuristic pipeline plus an empirical pad-search refinement.

    Runs :func:`optimize` as usual, then searches the inter-variable pad
    space around the heuristic layout with the :mod:`repro.search`
    autotuner, seeded *with* the heuristic pads -- so the returned layout
    is never worse (under the miss-cost objective) than what the paper's
    recipe produced, and the report records how much the search moved.

    With ``assoc_aware=True`` the search runs in
    :func:`~repro.search.space.assoc_pad_space`, whose coarse stride is
    the L1's k-way set-mapping period instead of the full cache size --
    use it when ``hierarchy`` has a set-associative L1 and you want the
    search to explore placements the direct-mapped model cannot
    distinguish (the ``ext_assoc`` experiment does this systematically).

    ``search_strategy`` accepts any :data:`~repro.search.STRATEGIES`
    name; ``"predict"`` selects the two-tier
    :class:`~repro.search.PredictThenVerifyStrategy`, which ranks the
    whole space with the closed-form predictor (:mod:`repro.model`) and
    spends the simulation budget only on the top-ranked candidates.

    Returns ``(program, layout, report, search_report)``.
    """
    from repro.search import Autotuner, assoc_pad_space, pad_space

    program, layout, report = optimize(program, hierarchy, strategy=strategy)
    searched_arrays = layout.order[1:]
    heuristic_config = tuple(
        layout.pads[layout.index_of(a)] for a in searched_arrays
    )
    make_space = assoc_pad_space if assoc_aware else pad_space
    space = make_space(
        program, layout, hierarchy,
        max_lines=max_lines,
        include=dict(zip(searched_arrays, heuristic_config)),
        name=f"pad[{program.name}:{strategy}]",
    )
    tuner = Autotuner(executor=executor, workers=workers, store=store)
    search_report = tuner.search(
        space,
        strategy=search_strategy,
        budget=budget,
        seed=seed,
        baseline=heuristic_config,
    )
    best_layout = layout.with_pads(
        dict(zip(searched_arrays, search_report.best_config))
    )
    report.log(
        f"search({search_report.strategy}, budget={budget}): "
        f"objective {search_report.baseline_objective:.6g} -> "
        f"{search_report.best_objective:.6g} "
        f"(gap {search_report.gap_pct:+.2f}%) in "
        f"{search_report.evaluations} evaluations"
    )
    return program, best_layout, report, search_report


@dataclass(frozen=True)
class StrategyOutcome:
    """One strategy's optimized program, layout, decisions, and misses."""

    strategy: str
    program: Program
    layout: DataLayout
    report: OptimizationReport
    result: SimulationResult


def evaluate_strategies(
    program: Program,
    hierarchy: HierarchyConfig,
    strategies: tuple[str, ...] = STRATEGIES,
    workers: int | None = None,
    store=None,
    executor=None,
) -> dict[str, StrategyOutcome]:
    """Optimize under each strategy and simulate the outcomes in one sweep.

    The paper's headline comparison ("L1" vs "L1&L2" should land within a
    whisker of each other) as a single call: the optimization pipeline
    runs per strategy, then every resulting (program, layout) is simulated
    through a :class:`~repro.exec.executor.SweepExecutor` -- parallel
    across strategies and memoized like any other sweep.
    """
    from repro.exec.executor import SweepExecutor
    from repro.exec.jobs import SimJob

    optimized = {s: optimize(program, hierarchy, strategy=s) for s in strategies}
    jobs = [
        SimJob(program=p, layout=lay, hierarchy=hierarchy, tag=(s,))
        for s, (p, lay, _) in optimized.items()
    ]
    owns_executor = executor is None
    if executor is None:
        executor = SweepExecutor(workers=workers if workers is not None else 1,
                                 store=store)
    try:
        sims = executor.run(jobs)
    finally:
        if owns_executor:
            executor.close()
    return {
        s: StrategyOutcome(
            strategy=s, program=p, layout=lay, report=rep, result=sim
        )
        for (s, (p, lay, rep)), sim in zip(optimized.items(), sims)
    }
