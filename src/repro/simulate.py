"""One-call program simulation: IR + layout + hierarchy -> miss statistics.

This is the main entry point the experiments and examples use::

    from repro import simulate_program, ultrasparc_i
    result = simulate_program(program, layout, ultrasparc_i())
    print(result.miss_rate("L1"), result.miss_rate("L2"))
"""

from __future__ import annotations

from repro.cache.config import HierarchyConfig
from repro.cache.stats import SimulationResult
from repro.cache.streaming import StreamingHierarchy
from repro.ir.program import Program
from repro.layout.layout import DataLayout
from repro.trace.generator import DEFAULT_CHUNK_REFS, program_trace_chunks

__all__ = ["simulate_program", "simulate_nest"]


def simulate_program(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
    max_chunk_refs: int = DEFAULT_CHUNK_REFS,
) -> SimulationResult:
    """Trace the whole program under ``layout`` and simulate the hierarchy."""
    sim = StreamingHierarchy(hierarchy)
    sim.feed_all(program_trace_chunks(program, layout, max_chunk_refs))
    return sim.result()


def simulate_nest(
    program: Program,
    layout: DataLayout,
    nest_index: int,
    hierarchy: HierarchyConfig,
    max_chunk_refs: int = DEFAULT_CHUNK_REFS,
) -> SimulationResult:
    """Simulate a single nest of the program (cold caches)."""
    from repro.trace.generator import nest_trace_chunks

    nest = program.nests[nest_index]
    sim = StreamingHierarchy(hierarchy)
    sim.feed_all(nest_trace_chunks(program, layout, nest, max_chunk_refs))
    return sim.result()
