"""One-call program simulation: IR + layout + hierarchy -> miss statistics.

This is the main entry point the experiments and examples use::

    from repro import simulate_program, ultrasparc_i
    result = simulate_program(program, layout, ultrasparc_i())
    print(result.miss_rate("L1"), result.miss_rate("L2"))

Both helpers route through :mod:`repro.exec`: the simulation is expressed
as a :class:`~repro.exec.jobs.SimJob` and memoized against the
process-wide default :class:`~repro.exec.store.ResultStore` (off unless
``REPRO_CACHE_DIR`` is set or :func:`repro.exec.set_default_store` is
called).  Sweeps over many configurations should build the jobs directly
and hand them to a :class:`~repro.exec.executor.SweepExecutor`.
"""

from __future__ import annotations

from repro.cache.config import HierarchyConfig
from repro.cache.stats import SimulationResult
from repro.exec.executor import _UNSET, execute_one
from repro.exec.jobs import SimJob
from repro.ir.program import Program
from repro.layout.layout import DataLayout
from repro.trace.generator import DEFAULT_CHUNK_REFS

__all__ = ["simulate_program", "simulate_nest"]


def simulate_program(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
    max_chunk_refs: int = DEFAULT_CHUNK_REFS,
    store=_UNSET,
    backend: str = "sim",
) -> SimulationResult:
    """Trace the whole program under ``layout`` and simulate the hierarchy.

    ``store`` overrides the default result store (None disables
    memoization for this call); ``backend`` selects the executor tier
    (``"auto"`` serves the symbolic closed form where provably exact),
    routed through exactly the same tier/key logic a
    :class:`~repro.exec.executor.SweepExecutor` sweep uses.
    """
    job = SimJob(
        program=program,
        layout=layout,
        hierarchy=hierarchy,
        max_chunk_refs=max_chunk_refs,
    )
    return execute_one(job, store=store, backend=backend)


def simulate_nest(
    program: Program,
    layout: DataLayout,
    nest_index: int,
    hierarchy: HierarchyConfig,
    max_chunk_refs: int = DEFAULT_CHUNK_REFS,
    store=_UNSET,
    backend: str = "sim",
) -> SimulationResult:
    """Simulate a single nest of the program (cold caches)."""
    job = SimJob(
        program=program,
        layout=layout,
        hierarchy=hierarchy,
        nest_index=nest_index,
        max_chunk_refs=max_chunk_refs,
    )
    return execute_one(job, store=store, backend=backend)
