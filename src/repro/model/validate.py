"""Predictor-vs-simulator agreement metrics.

The predictor's job is *ranking* candidate layouts, so the headline
metric is Spearman rank correlation between predicted and simulated
objective values over a configuration space (implemented here directly
-- average ranks for ties, Pearson on the ranks -- since SciPy is not a
dependency).  Absolute accuracy is reported as mean relative error of
the miss counts; ``ext_model`` prints both per kernel.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["rankdata", "spearman", "mean_abs_rel_error"]


def rankdata(values: Sequence[float]) -> list[float]:
    """1-based ranks with ties sharing their average rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation of two equal-length samples.

    Degenerate samples: two constant sides correlate perfectly (1.0);
    one constant side carries no ranking information (0.0).
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        return 1.0
    rx, ry = rankdata(xs), rankdata(ys)
    n = len(rx)
    mx = sum(rx) / n
    my = sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0.0 and vy == 0.0:
        return 1.0
    if vx == 0.0 or vy == 0.0:
        return 0.0
    return cov / (vx * vy) ** 0.5


def mean_abs_rel_error(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Mean of ``|predicted - actual| / actual`` over entries with
    ``actual != 0`` (entries where both sides are zero are exact and
    skipped; a false positive against a zero actual counts as 100%)."""
    if len(predicted) != len(actual):
        raise ValueError(f"length mismatch: {len(predicted)} vs {len(actual)}")
    errors = []
    for p, a in zip(predicted, actual):
        if a != 0:
            errors.append(abs(p - a) / abs(a))
        elif p != 0:
            errors.append(1.0)
    return sum(errors) / len(errors) if errors else 0.0
