"""Set-mapping conflict clusters for the closed-form miss predictor.

The paper's severe-conflict analysis (Section 3.1.1) is pairwise and
direct-mapped: two references whose address delta modulo the cache size
falls within one line ping-pong on the same cache line and miss every
iteration.  The predictor generalizes that test to k-way caches the same
way :func:`repro.search.space.assoc_pad_space` generalizes the pad grid:

* positions are taken modulo the **set-mapping period** ``size / k``
  (the k-way cache's set index is ``(addr / line) % (size / (line * k))``,
  so placements repeat every ``size / k`` bytes, not every ``size``);
* a group of references landing on the same set only thrashes when more
  *distinct arrays* compete there than the cache has ways -- two
  conflicting references are harmless under a 2-way LRU cache, which is
  exactly the effect ``ext_assoc`` measures empirically.

Only *uniformly related* pairs (constant address delta over the whole
iteration space) are clustered: references advancing at different rates
collide only transiently, and transient overlap is not a steady-state
miss source the way resonance is.  This mirrors the restriction in
:func:`repro.layout.conflicts.nest_severe_conflicts`, where only
constant-delta conflicts are considered pad-fixable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.ir.ranges import canonical_env
from repro.ir.refs import ArrayRef
from repro.layout.layout import DataLayout
from repro.util.mathutil import circular_distance

__all__ = ["ThrashCluster", "thrash_clusters", "thrashing_refs"]


@dataclass(frozen=True)
class ThrashCluster:
    """References resonating on one set of a (possibly k-way) cache."""

    refs: tuple[ArrayRef, ...]
    positions: tuple[int, ...]  # addr mod the set-mapping period
    arrays: tuple[str, ...]  # distinct arrays competing for the set

    @property
    def competitors(self) -> int:
        return len(self.arrays)

    def thrashes(self, associativity: int) -> bool:
        """More competing arrays than ways: LRU evicts the reused line."""
        return self.competitors > associativity


def _unique_refs(nest: LoopNest) -> list[ArrayRef]:
    uniq: list[ArrayRef] = []
    for r in nest.refs:
        key = ArrayRef(r.array, r.subscripts, is_write=False)
        if not any(
            u.array == key.array and u.subscripts == key.subscripts for u in uniq
        ):
            uniq.append(key)
    return uniq


def thrash_clusters(
    program: Program,
    layout: DataLayout,
    nest: LoopNest,
    cache: CacheConfig,
) -> list[ThrashCluster]:
    """Connected components of the nest's set-mapping conflict graph.

    Nodes are the nest's deduplicated references; an edge joins two
    references of *different* arrays whose address delta is constant over
    the iteration space and lies within one line of the set-mapping
    period (same-array pairs within a line are group-spatial reuse, not
    conflicts).  Every returned cluster has at least one edge; call
    :meth:`ThrashCluster.thrashes` to apply the associativity threshold.
    """
    period = cache.size // cache.associativity
    line = cache.line_size
    env = canonical_env(nest)
    refs = _unique_refs(nest)
    offs = [r.offset_expr(program.decl(r.array)) for r in refs]
    addrs = [
        layout.base(r.array) + int(off.evaluate(env))
        for r, off in zip(refs, offs)
    ]

    parent = list(range(len(refs)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    edges = 0
    for i in range(len(refs)):
        for j in range(i + 1, len(refs)):
            if refs[i].array == refs[j].array:
                continue  # intra-array spacing is intra_pad's problem
            if not (offs[i] - offs[j]).is_constant:
                continue  # different velocities: only transient overlap
            if circular_distance(addrs[i], addrs[j], period) < line:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[ri] = rj
                edges += 1
    if not edges:
        return []

    groups: dict[int, list[int]] = {}
    for i in range(len(refs)):
        groups.setdefault(find(i), []).append(i)
    clusters = []
    for members in groups.values():
        if len(members) < 2:
            continue
        clusters.append(
            ThrashCluster(
                refs=tuple(refs[i] for i in members),
                positions=tuple(addrs[i] % period for i in members),
                arrays=tuple(sorted({refs[i].array for i in members})),
            )
        )
    clusters.sort(key=lambda c: c.positions)
    return clusters


def thrashing_refs(
    program: Program,
    layout: DataLayout,
    nest: LoopNest,
    cache: CacheConfig,
) -> set[ArrayRef]:
    """References predicted to miss every iteration on ``cache``."""
    out: set[ArrayRef] = set()
    for cluster in thrash_clusters(program, layout, nest, cache):
        if cluster.thrashes(cache.associativity):
            out.update(cluster.refs)
    return out
