"""repro.model -- the static, closed-form multi-level miss predictor.

Everything the simulator measures by replaying a trace, this subsystem
estimates in closed form from the program IR, the data layout, and the
hierarchy: spatial misses from strides, conflict misses from k-way
set-mapping overlap, capacity and cross-nest temporal reuse from
footprints.  A prediction costs microseconds where a simulation costs
seconds, which is what powers the two-tier predict-then-verify search
(:class:`repro.search.strategies.PredictThenVerifyStrategy`).

Entry points:

* :func:`predict_program` / :func:`predict_nest` -- analytic counterparts
  of ``simulate_program`` / ``simulate_nest``;
* :func:`predict_job` -- score a :class:`~repro.exec.jobs.SimJob` without
  running it (the executor's :meth:`~repro.exec.executor.SweepExecutor.predict`
  batch hook maps this over job lists);
* :class:`PredictedStats` -- the result type, mirroring
  :class:`~repro.cache.stats.SimulationResult` so predictions drop into
  existing reports, objectives, and cycle models;
* :func:`spearman` -- the rank-agreement metric ``ext_model`` and the
  property suite validate the predictor with.
"""

from repro.model.conflicts import ThrashCluster, thrash_clusters, thrashing_refs
from repro.model.predictor import (
    LevelPrediction,
    NestPrediction,
    PredictedStats,
    predict_job,
    predict_nest,
    predict_program,
)
from repro.model.validate import mean_abs_rel_error, rankdata, spearman

__all__ = [
    "LevelPrediction",
    "NestPrediction",
    "PredictedStats",
    "predict_nest",
    "predict_program",
    "predict_job",
    "ThrashCluster",
    "thrash_clusters",
    "thrashing_refs",
    "rankdata",
    "spearman",
    "mean_abs_rel_error",
]
