"""The closed-form multi-level miss predictor.

Maps ``(program IR, layout, hierarchy)`` to predicted per-level miss
counts without generating a trace, in the spirit of the paper's "simple
cache model" (Section 6.4) but covering every axis the search subsystem
tunes over:

* **spatial misses** from reference strides against each level's line
  size (one miss per line's worth of iterations along the innermost
  address-varying loop, the Wolf & Lam self-reuse estimate);
* **conflict misses** from set-mapping overlap of uniformly related
  reference pairs, direct-mapped *and* k-way via the ``S/k`` mapping
  period (:mod:`repro.model.conflicts`) -- a thrashing reference misses
  on every iteration, which is the paper's severe-conflict closed form;
* **group reuse** through the layout diagram: a trailing reference whose
  arc is exploited at a level is charged nothing there;
* **capacity and cross-nest temporal reuse** from the footprint
  machinery: a reference whose span fits a level pays one sweep of
  misses (and nothing at all when a previous nest left the array
  resident); one that does not fit re-faults on every revisit of its
  varying subspace.

The per-reference cost is O(loops x levels); a whole-program prediction
is O(refs^2) at worst (the pairwise conflict graph), microseconds against
the simulator's O(trace).  That asymmetry is what makes the
predict-then-verify search strategy pay off: score everything
analytically, simulate only what looks good.

Accuracy contract: the predictor is built to *rank* layouts, not to hit
miss counts exactly.  Resonant layouts (the severe-conflict closed form)
are predicted exactly; smooth layouts carry O(1) per-array error from
boundary effects.  See ``docs/model.md`` for the measured error envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.cache.stats import LevelStats, SimulationResult
from repro.errors import AnalysisError, IRError
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program
from repro.ir.ranges import affine_interval, loop_var_ranges
from repro.ir.refs import ArrayRef
from repro.layout.layout import DataLayout
from repro.model.conflicts import thrashing_refs

__all__ = [
    "LevelPrediction",
    "NestPrediction",
    "PredictedStats",
    "predict_nest",
    "predict_program",
    "predict_job",
]


@dataclass(frozen=True)
class LevelPrediction:
    """Predicted miss count at one level, with its conflict component."""

    name: str
    misses: float
    conflict_misses: float = 0.0

    def __post_init__(self) -> None:
        if self.misses < 0 or self.conflict_misses < 0:
            raise AnalysisError("predicted miss counts must be non-negative")


@dataclass(frozen=True)
class NestPrediction:
    """One nest's per-level prediction."""

    label: str | None
    iterations: int
    refs_per_iteration: int
    levels: tuple[LevelPrediction, ...]

    @property
    def total_refs(self) -> int:
        return self.iterations * self.refs_per_iteration


@dataclass(frozen=True)
class PredictedStats:
    """Program-level prediction, mirroring :class:`SimulationResult`.

    ``predictions`` holds the raw (fractional) per-level miss counts;
    :attr:`levels` rounds them into a :class:`LevelStats` chain whose
    accesses follow the miss stream (accesses at level *i+1* equal misses
    at level *i*, clamped), so :attr:`result` is a well-formed
    :class:`SimulationResult` that drops into every existing report,
    objective, and cycle model.
    """

    total_refs: int
    predictions: tuple[LevelPrediction, ...]
    nests: tuple[NestPrediction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "predictions", tuple(self.predictions))
        object.__setattr__(self, "nests", tuple(self.nests))
        if self.total_refs < 0:
            raise AnalysisError("total_refs must be non-negative")
        if not self.predictions:
            raise AnalysisError("at least one level prediction is required")

    # -- SimulationResult mirror --------------------------------------------
    @cached_property
    def levels(self) -> tuple[LevelStats, ...]:
        out = []
        accesses = self.total_refs
        for p in self.predictions:
            misses = int(min(accesses, max(0, round(p.misses))))
            out.append(LevelStats(name=p.name, accesses=accesses, misses=misses))
            accesses = misses
        return tuple(out)

    @cached_property
    def result(self) -> SimulationResult:
        """The prediction as a drop-in :class:`SimulationResult`."""
        return SimulationResult(total_refs=self.total_refs, levels=self.levels)

    def level(self, name: str) -> LevelStats:
        return self.result.level(name)

    def miss_rate(self, name: str) -> float:
        return self.result.miss_rate(name)

    @property
    def memory_refs(self) -> int:
        return self.result.memory_refs

    def cycles(self, hierarchy) -> float:
        return self.result.cycles(hierarchy)

    def summary(self) -> str:
        return "predicted " + self.result.summary()

    # -- model-specific detail ----------------------------------------------
    def conflict_misses(self, name: str) -> float:
        """The raw conflict component of one level's prediction."""
        for p in self.predictions:
            if p.name == name:
                return p.conflict_misses
        raise KeyError(f"no cache level named {name!r}")

    @property
    def is_conflict_free(self) -> bool:
        """True when no level predicts any steady-state conflict misses."""
        return all(p.conflict_misses == 0.0 for p in self.predictions)


# -- per-reference model -----------------------------------------------------

def _ref_span_bytes(
    program: Program,
    nest: LoopNest,
    ref: ArrayRef,
    ranges: dict[str, tuple[int, int]],
) -> int:
    """Bytes spanned by this one reference over the iteration space."""
    decl = program.decl(ref.array)
    lo, hi = affine_interval(ref.offset_expr(decl), ranges)
    return (hi - lo) + decl.element_size


def _trip_count(lp: Loop, ranges: dict[str, tuple[int, int]]) -> int:
    """A loop's trip count; triangular loops use their value-range width
    (the rectangular hull, an upper bound consistent with the interval
    arithmetic the span estimates already use)."""
    try:
        return max(1, lp.trip_count())
    except IRError:
        vmin, vmax = ranges[lp.var]
        return max(1, (vmax - vmin) // abs(lp.step) + 1)


def _ref_sweep_misses(
    program: Program,
    nest: LoopNest,
    ref: ArrayRef,
    cache: CacheConfig,
    resident: frozenset[str],
    ranges: dict[str, tuple[int, int]],
) -> float:
    """Self-reuse misses of one reference at one level (no conflicts).

    One *sweep* is a full traversal of the loops the address depends on;
    it costs one miss per new line entered.  Invariant loops wrapped
    around the sweep repeat it; the repeats are free when the reference's
    span fits the cache, and cost full sweeps when it does not.  An array
    left resident by the previous nest makes the first sweep free too.
    """
    decl = program.decl(ref.array)
    off = ref.offset_expr(decl)
    strides = [off.coeff(lp.var) * lp.step for lp in nest.loops]
    varying = [i for i, s in enumerate(strides) if s != 0]
    if not varying:
        # Scalar-like address: one cold line, or none if already cached.
        return 0.0 if ref.array in resident else 1.0

    sweep_iters = 1
    for i in varying:
        sweep_iters *= _trip_count(nest.loops[i], ranges)
    inner_stride = abs(strides[varying[-1]])
    frac = min(1.0, inner_stride / cache.line_size)
    per_sweep = frac * sweep_iters

    span = _ref_span_bytes(program, nest, ref, ranges)
    if span <= cache.size:
        return 0.0 if ref.array in resident else per_sweep
    # Does not fit: every enclosing invariant loop restarts the sweep
    # against a cold cache.
    revisits = 1
    for i, s in enumerate(strides):
        if s == 0 and i < varying[-1]:
            revisits *= _trip_count(nest.loops[i], ranges)
    return per_sweep * revisits


# -- nest / program / job entry points ---------------------------------------

def predict_nest(
    program: Program,
    layout: DataLayout,
    nest: LoopNest,
    hierarchy: HierarchyConfig,
    resident: tuple[frozenset[str], ...] | None = None,
) -> NestPrediction:
    """Predict one nest's misses at every level of the hierarchy.

    ``resident`` gives, per level, the arrays assumed cached on entry
    (:func:`predict_program` threads this across nests); by default every
    level starts cold, matching :func:`repro.simulate.simulate_nest`.
    """
    from repro.layout.diagram import CacheDiagram  # lazy: import-cycle guard

    if resident is None:
        resident = tuple(frozenset() for _ in hierarchy.levels)
    iters = nest.iterations()
    ranges = loop_var_ranges(nest)
    levels = []
    for cache, cached_arrays in zip(hierarchy.levels, resident):
        thrash = thrashing_refs(program, layout, nest, cache)
        diagram = CacheDiagram(program, layout, nest, cache.size, cache.line_size)
        exploited = diagram.trailing_refs_exploited()
        base = 0.0
        conflict = 0.0
        for dot in diagram.dots:
            if dot.ref in thrash:
                # Severe conflict: the competing reference evicts the
                # line between consecutive touches, every iteration.
                conflict += float(iters)
            elif dot.ref in exploited:
                continue  # served by group reuse at this level
            else:
                base += _ref_sweep_misses(
                    program, nest, dot.ref, cache, cached_arrays, ranges
                )
        levels.append(
            LevelPrediction(
                name=cache.name, misses=base + conflict, conflict_misses=conflict
            )
        )
    return NestPrediction(
        label=nest.label,
        iterations=iters,
        refs_per_iteration=nest.refs_per_iteration,
        levels=tuple(levels),
    )


def _update_residency(
    program: Program,
    nest: LoopNest,
    hierarchy: HierarchyConfig,
    resident: list[frozenset[str]],
) -> None:
    """What the next nest may assume cached after this one ran.

    A level retains the nest's arrays when the nest's whole footprint fit;
    a nest that streamed more data than the level holds flushes it (the
    fusion machinery's "no reuse between nests due to capacity
    constraints" assumption, applied per level).
    """
    from repro.analysis.footprint import nest_footprint_bytes

    footprint = nest_footprint_bytes(program, nest)
    touched = frozenset(nest.arrays_used())
    for i, cache in enumerate(hierarchy.levels):
        resident[i] = touched if footprint <= cache.size else frozenset()


def predict_program(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
    nests: tuple[LoopNest, ...] | None = None,
) -> PredictedStats:
    """Predict per-level misses for a whole program (or a nest subset).

    Nests are processed in program order; arrays a nest leaves resident
    at a level (its footprint fit) satisfy the next nest's cold misses
    there -- the cross-nest temporal reuse that fusion profitability and
    the three-level experiments depend on.
    """
    selected = tuple(nests) if nests is not None else tuple(program.nests)
    if not selected:
        raise AnalysisError(f"program {program.name!r} has no nests to predict")
    resident: list[frozenset[str]] = [frozenset() for _ in hierarchy.levels]
    totals = [0.0] * len(hierarchy.levels)
    conflicts = [0.0] * len(hierarchy.levels)
    nest_preds = []
    total_refs = 0
    for nest in selected:
        pred = predict_nest(
            program, layout, nest, hierarchy, resident=tuple(resident)
        )
        nest_preds.append(pred)
        total_refs += pred.total_refs
        for i, lv in enumerate(pred.levels):
            totals[i] += lv.misses
            conflicts[i] += lv.conflict_misses
        _update_residency(program, nest, hierarchy, resident)
    return PredictedStats(
        total_refs=total_refs,
        predictions=tuple(
            LevelPrediction(name=c.name, misses=m, conflict_misses=k)
            for c, m, k in zip(hierarchy.levels, totals, conflicts)
        ),
        nests=tuple(nest_preds),
    )


def predict_job(job) -> PredictedStats:
    """Score one :class:`~repro.exec.jobs.SimJob` analytically.

    The exact analytic counterpart of ``job.run()``: same program,
    layout, and hierarchy, with ``nest_index`` jobs predicted on that
    nest alone (cold caches, as :func:`simulate_nest` measures).  Kernels
    with custom trace hooks (IRR's runtime gathers) are predicted from
    their affine IR, which ignores the data-dependent indirection -- rank
    them with care, or not at all.
    """
    nests = None
    if job.nest_index is not None:
        nests = (job.program.nests[job.nest_index],)
    return predict_program(job.program, job.layout, job.hierarchy, nests=nests)
