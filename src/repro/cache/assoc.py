"""Sequential set-associative LRU cache simulation (ground-truth oracle).

The paper treats all caches as direct-mapped and notes that "simply
treating k-way associative caches as direct-mapped for locality
optimizations achieves nearly all the benefits."  We nevertheless provide a
k-way LRU simulator: it serves as the ground-truth model the vectorized
simulators are validated against (associativity 1 must agree exactly with
:mod:`repro.cache.direct`, and :mod:`repro.cache.assoc_vec` must agree for
every k), and it lets users measure how much associativity would have
changed the paper's miss rates.

This model replays the trace one access at a time in Python.  It is the
*reference* implementation: deliberately simple, obviously correct, and
slow.  Production paths — full-size experiments and the ``ext_assoc``
sweeps — use :mod:`repro.cache.direct` for direct-mapped levels and
:mod:`repro.cache.assoc_vec` for k-way levels; both are property-tested
against this module.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["simulate_assoc", "miss_mask_assoc", "replay_lru"]


def replay_lru(
    lines,
    num_sets: int,
    associativity: int,
    sets: list[list[int]],
    miss: np.ndarray,
) -> np.ndarray:
    """Sequential LRU replay of ``lines``; the single reference implementation.

    ``sets`` holds one list of tags per cache set, ordered most-recently-used
    first; it is mutated in place so callers can carry state across chunks
    (:class:`repro.cache.streaming.SequentialAssocCache` does exactly that).
    ``miss`` is a preallocated boolean array the same length as ``lines``;
    positions that miss are set ``True``.  Returns ``miss``.
    """
    for i, line in enumerate(lines):
        s = line % num_sets
        tag = line // num_sets
        ways = sets[s]
        try:
            pos = ways.index(tag)
        except ValueError:
            miss[i] = True
            ways.insert(0, tag)
            if len(ways) > associativity:
                ways.pop()
        else:
            if pos:
                ways.insert(0, ways.pop(pos))
    return miss


def miss_mask_assoc(
    addresses: np.ndarray,
    size: int,
    line_size: int,
    associativity: int,
) -> np.ndarray:
    """Boolean miss mask of the trace on a k-way LRU cache.

    ``size`` must be a multiple of ``line_size * associativity``.
    """
    if line_size <= 0 or size <= 0 or associativity <= 0:
        raise SimulationError(
            f"invalid geometry: size={size}, line_size={line_size}, "
            f"associativity={associativity}"
        )
    if size % (line_size * associativity) != 0:
        raise SimulationError(
            f"size {size} not a multiple of line_size*associativity "
            f"({line_size * associativity})"
        )
    addresses = np.asarray(addresses)
    if addresses.ndim != 1:
        raise SimulationError(f"trace must be 1-D, got shape {addresses.shape}")
    n = addresses.size
    miss = np.zeros(n, dtype=bool)
    if n == 0:
        return miss
    if addresses.min() < 0:
        raise SimulationError("trace contains negative addresses")

    num_sets = size // (line_size * associativity)
    lines = (addresses.astype(np.int64) // line_size).tolist()
    sets: list[list[int]] = [[] for _ in range(num_sets)]
    return replay_lru(lines, num_sets, associativity, sets, miss)


def simulate_assoc(
    addresses: np.ndarray,
    size: int,
    line_size: int,
    associativity: int,
) -> int:
    """Number of misses of the trace on a k-way LRU cache."""
    return int(miss_mask_assoc(addresses, size, line_size, associativity).sum())
