"""Sequential set-associative LRU cache simulation (reference model).

The paper treats all caches as direct-mapped and notes that "simply
treating k-way associative caches as direct-mapped for locality
optimizations achieves nearly all the benefits."  We nevertheless provide a
k-way LRU simulator: it serves as the ground-truth model the vectorized
direct-mapped simulator is validated against (associativity 1 must agree
exactly), and it lets users measure how much associativity would have
changed the paper's miss rates.

This model replays the trace one access at a time and is intended for
traces up to a few million references; use :mod:`repro.cache.direct` for
the full-size experiments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["simulate_assoc", "miss_mask_assoc"]


def miss_mask_assoc(
    addresses: np.ndarray,
    size: int,
    line_size: int,
    associativity: int,
) -> np.ndarray:
    """Boolean miss mask of the trace on a k-way LRU cache.

    ``size`` must be a multiple of ``line_size * associativity``.
    """
    if line_size <= 0 or size <= 0 or associativity <= 0:
        raise SimulationError(
            f"invalid geometry: size={size}, line_size={line_size}, "
            f"associativity={associativity}"
        )
    if size % (line_size * associativity) != 0:
        raise SimulationError(
            f"size {size} not a multiple of line_size*associativity "
            f"({line_size * associativity})"
        )
    addresses = np.asarray(addresses)
    if addresses.ndim != 1:
        raise SimulationError(f"trace must be 1-D, got shape {addresses.shape}")
    n = addresses.size
    miss = np.zeros(n, dtype=bool)
    if n == 0:
        return miss
    if addresses.min() < 0:
        raise SimulationError("trace contains negative addresses")

    num_sets = size // (line_size * associativity)
    lines = (addresses.astype(np.int64) // line_size).tolist()

    # Each set is a list of tags ordered most-recently-used first.
    sets: list[list[int]] = [[] for _ in range(num_sets)]
    for i, line in enumerate(lines):
        s = line % num_sets
        tag = line // num_sets
        ways = sets[s]
        try:
            pos = ways.index(tag)
        except ValueError:
            miss[i] = True
            ways.insert(0, tag)
            if len(ways) > associativity:
                ways.pop()
        else:
            if pos:
                ways.insert(0, ways.pop(pos))
    return miss


def simulate_assoc(
    addresses: np.ndarray,
    size: int,
    line_size: int,
    associativity: int,
) -> int:
    """Number of misses of the trace on a k-way LRU cache."""
    return int(miss_mask_assoc(addresses, size, line_size, associativity).sum())
