"""Simulation statistics.

Follows the paper's reporting convention (Section 6.1): miss rates at every
level are normalized to the *total* number of memory references issued by
the program, so an L2 miss rate of 5% means 5% of all references missed
both caches, regardless of how many reached the L2.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LevelStats", "SimulationResult"]


@dataclass(frozen=True)
class LevelStats:
    """Access/miss counters for one cache level."""

    name: str
    accesses: int
    misses: int

    def __post_init__(self) -> None:
        if self.accesses < 0 or self.misses < 0:
            raise ValueError("counters must be non-negative")
        if self.misses > self.accesses:
            raise ValueError(
                f"{self.name}: misses ({self.misses}) exceed accesses ({self.accesses})"
            )

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def local_miss_ratio(self) -> float:
        """Misses over accesses *at this level* (undefined -> 0.0)."""
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class SimulationResult:
    """Result of simulating one trace through a hierarchy."""

    total_refs: int
    levels: tuple[LevelStats, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(self.levels))
        if self.total_refs < 0:
            raise ValueError("total_refs must be non-negative")
        if not self.levels:
            raise ValueError("at least one level of statistics is required")

    def level(self, name: str) -> LevelStats:
        """Look up a level's stats by name ("L1", "L2", ...)."""
        for lv in self.levels:
            if lv.name == name:
                return lv
        raise KeyError(f"no cache level named {name!r}")

    def miss_rate(self, name: str) -> float:
        """Misses at level ``name`` divided by *total* references (paper norm)."""
        if self.total_refs == 0:
            return 0.0
        return self.level(name).misses / self.total_refs

    @property
    def memory_refs(self) -> int:
        """References that missed every cache level (went to main memory)."""
        return self.levels[-1].misses

    def cycles(self, hierarchy) -> float:
        """Estimated execution cycles of the memory system under ``hierarchy``.

        Each reference pays the L1 hit cost; each miss at level *i*
        additionally pays the next level's hit cost (or memory cost at the
        last level).  This simple additive model substitutes for the
        paper's hardware timings; see DESIGN.md, Substitutions.
        """
        total = self.total_refs * hierarchy.levels[0].hit_cycles
        for i, lv in enumerate(self.levels):
            total += lv.misses * hierarchy.miss_cycles(i)
        return total

    def summary(self) -> str:
        parts = [f"refs={self.total_refs}"]
        for lv in self.levels:
            rate = self.miss_rate(lv.name)
            parts.append(f"{lv.name}: {lv.misses} misses ({100.0 * rate:.2f}%)")
        return ", ".join(parts)
