"""Multi-level hierarchy simulation.

The hierarchy is modeled the way the paper reports it: the L1 cache sees
the full reference stream; each lower level sees exactly the stream of
references that missed the level above (a blocking, no-prefetch,
write-allocate-agnostic model -- reads and writes are both just
"references", as in the paper's simulations).
"""

from __future__ import annotations

import numpy as np

from repro.cache.assoc_vec import miss_mask_assoc_vec
from repro.cache.config import CacheConfig, HierarchyConfig
from repro.cache.direct import miss_mask_direct
from repro.cache.stats import LevelStats, SimulationResult
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

__all__ = ["CacheHierarchy"]


def _level_miss_mask(addresses: np.ndarray, cfg: CacheConfig) -> np.ndarray:
    if cfg.is_direct_mapped:
        return miss_mask_direct(addresses, cfg.size, cfg.line_size)
    # Vectorized k-way path; exact w.r.t. repro.cache.assoc (the oracle).
    return miss_mask_assoc_vec(addresses, cfg.size, cfg.line_size, cfg.associativity)


class CacheHierarchy:
    """Simulates address traces through a :class:`HierarchyConfig`.

    Example
    -------
    >>> from repro.cache import CacheHierarchy, ultrasparc_i
    >>> import numpy as np
    >>> hier = CacheHierarchy(ultrasparc_i())
    >>> result = hier.simulate(np.arange(0, 1 << 16, 4))
    >>> round(result.miss_rate("L1"), 3)
    0.125
    """

    def __init__(self, config: HierarchyConfig):
        self.config = config

    def simulate(self, addresses: np.ndarray) -> SimulationResult:
        """Simulate the trace and return per-level statistics.

        One ``cache.simulate`` span per call while tracing; the trace's
        reference count and each level's access/miss totals feed the
        ``cache.*`` counters of the metrics registry either way.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        total = int(addresses.size)
        levels: list[LevelStats] = []
        with get_tracer().span("cache.simulate", cat="cache", refs=total):
            stream = addresses
            for cfg in self.config:
                mask = _level_miss_mask(stream, cfg)
                levels.append(
                    LevelStats(
                        name=cfg.name, accesses=int(stream.size), misses=int(mask.sum())
                    )
                )
                stream = stream[mask]
        m = get_metrics()
        m.counter("cache.refs").inc(total)
        for lv in levels:
            m.counter(f"cache.{lv.name}.accesses").inc(lv.accesses)
            m.counter(f"cache.{lv.name}.misses").inc(lv.misses)
        return SimulationResult(total_refs=total, levels=tuple(levels))

    def miss_masks(self, addresses: np.ndarray) -> list[np.ndarray]:
        """Per-level miss masks, each the length of that level's access stream.

        ``masks[0]`` has one entry per reference; ``masks[1]`` one entry per
        L1 miss; and so on.  Useful for attributing misses to individual
        references in analyses and tests.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        masks: list[np.ndarray] = []
        stream = addresses
        for cfg in self.config:
            mask = _level_miss_mask(stream, cfg)
            masks.append(mask)
            stream = stream[mask]
        return masks

    def cycles(self, addresses: np.ndarray) -> float:
        """Estimated memory-system cycles for the trace (see ``SimulationResult.cycles``)."""
        return self.simulate(addresses).cycles(self.config)
