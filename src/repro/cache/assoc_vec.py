"""Vectorized set-associative LRU cache simulation.

The sequential reference model (:mod:`repro.cache.assoc`) replays the
trace one access at a time in Python, which makes k-way sweeps ~100x
slower than the direct-mapped simulator and blocks full-size Table 1
experiments on associative hierarchies.  This module classifies the same
accesses with NumPy segment operations instead:

1. **Adjacent-repeat collapse.**  An access to the line accessed
   immediately before it is a guaranteed LRU hit at any associativity and
   leaves the stack unchanged, so consecutive same-line accesses collapse
   before any sorting (skipped when the trace has too few of them to pay
   for the compaction).
2. **Set decomposition by packed-key sort.**  Each access is packed into
   one integer ``(set << idx_bits) | position``; because positions make
   the keys unique, an ordinary quicksort of the packed keys *is* the
   stable grouping by set (the same decomposition
   :class:`~repro.cache.streaming.StreamingDirectCache` reaches through a
   stable argsort, at a fraction of the cost -- and in 32-bit keys when
   the chunk is small enough).  A second collapse then removes same-line
   repeats that are adjacent within a set, so consecutive surviving
   *events* of a set always name different lines.
3. **Carried state as virtual events.**  The persistent LRU stack of
   each set (a ``(num_sets, k)`` line matrix, most-recently-used first)
   is replayed as up to ``k`` virtual events prepended to the set's run,
   oldest first.  In-chunk classification is then stateless, and chunked
   simulation is byte-identical to one-shot simulation.
4. **Way-recurrence classification.**  Consecutive-distinct events make
   the LRU stack a closed-form function of the event sequence: the stack
   an event sees always has ``way1 = el[t-1]`` and ``way2 = el[t-2]``
   (a 2-way hit is literally ``el[t] == el[t-2]``), and each deeper way
   follows a sample-and-hold recurrence -- way ``w`` takes the value of
   way ``w-1`` whenever the event missed ways ``1..w-1``, and holds
   otherwise -- which one ``np.maximum.accumulate`` over the sample
   positions plus a gather evaluates for a whole chunk at once.  The
   cost is ``O(k * events)`` with no Python-level per-access or
   per-round loop, for any associativity and any trace shape.

The sequential model remains the ground-truth oracle; the property suite
asserts exact miss-mask agreement on randomized traces, geometries, and
chunkings (``tests/properties/test_property_assoc_vec.py``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["miss_mask_assoc_vec", "simulate_assoc_vec", "AssocLRUState"]


def _validate_geometry(size: int, line_size: int, associativity: int) -> int:
    """Validate a k-way geometry; returns the number of sets."""
    if line_size <= 0 or size <= 0 or associativity <= 0:
        raise SimulationError(
            f"invalid geometry: size={size}, line_size={line_size}, "
            f"associativity={associativity}"
        )
    if size % (line_size * associativity) != 0:
        raise SimulationError(
            f"size {size} not a multiple of line_size*associativity "
            f"({line_size * associativity})"
        )
    return size // (line_size * associativity)


def _packed_group_sort(values: np.ndarray, value_bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Stable grouping of ``values`` via one sort of packed unique keys.

    Returns ``(grouped_values, positions)``: the equivalent of a stable
    argsort by value, recovered from ``np.sort`` of ``(value << idx_bits)
    | index``.  Unique keys make the unstable sort deterministic, and the
    packed keys drop to 32 bits whenever ``value_bits + idx_bits`` allow,
    which is several times faster than a stable argsort.
    """
    m = values.size
    idx_bits = max(1, (m - 1).bit_length())
    if value_bits + idx_bits <= 31:
        key = (values.astype(np.int32, copy=False) << np.int32(idx_bits)) | np.arange(
            m, dtype=np.int32
        )
    elif value_bits + idx_bits <= 62:
        key = (values.astype(np.int64, copy=False) << np.int64(idx_bits)) | np.arange(
            m, dtype=np.int64
        )
    else:  # pragma: no cover - needs >2^40 sets; fallback for safety
        order = np.argsort(values, kind="stable")
        return values[order], order
    key = np.sort(key)
    positions = key & ((1 << idx_bits) - 1)
    return key >> idx_bits, positions


def _shift_one(values: np.ndarray, first: np.ndarray) -> np.ndarray:
    """``values`` shifted down by one position, -1 at run starts."""
    out = np.empty_like(values)
    out[0] = -1
    out[1:] = values[:-1]
    out[first] = -1
    return out


def _run_last(rid: np.ndarray) -> np.ndarray:
    """Indices of the last element of each run id (``rid`` non-decreasing)."""
    tail = np.empty(rid.size, dtype=bool)
    tail[-1] = True
    np.not_equal(rid[1:], rid[:-1], out=tail[:-1])
    return np.nonzero(tail)[0]


def _classify_events(
    el: np.ndarray,
    ep: np.ndarray,
    efirst: np.ndarray,
    num_runs: int,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Positions (``ep`` values) of missing events + final per-run stacks.

    ``el`` holds each set's events contiguously (runs delimited by
    ``efirst``), consecutive events of a run always naming different
    lines.  Under that invariant the LRU stack is a closed-form function
    of the event sequence, peeled one way per level over a shrinking
    domain:

    * The way-1 line an event sees is simply the previous event of its
      run (any event becomes the new top).
    * Way ``w`` only changes when an event misses ways ``1..w-1`` -- so
      restricted to the domain ``D_w`` of such events, the way-``w``
      value each event sees is the way-``w-1`` value seen by the
      *previous domain event* of the run (that event pushed it down).
      One shift per level, no per-access work.
    * An event that matches its way-``w`` value is a hit and drops out;
      survivors of level ``k`` are exactly the misses.

    Each level therefore compares ``el == shift(way_{w-1})`` on the
    events still unclassified and compresses; for realistic traces the
    domains shrink geometrically (most events hit in the first ways), so
    the cost beyond 2-way is a few extra passes over the *miss* stream
    only.  The way-``w-1`` value at a run's last domain event is way
    ``w`` of the set's final stack, so carried state falls out of the
    same peeling.
    """
    nE = el.size
    stack = np.full((num_runs, k), -1, dtype=np.int64)
    # Ways 1 and 2 live on the full domain, where every run is present in
    # order: run boundaries come straight from ``efirst`` and the final
    # stack columns are plain gathers at each run's last event.
    rs = np.nonzero(efirst)[0]
    lastpos = np.empty(num_runs, dtype=np.int64)
    lastpos[:-1] = rs[1:] - 1
    lastpos[-1] = nE - 1
    B1 = _shift_one(el, efirst)
    stack[:, 0] = el[lastpos]
    if k == 1:
        # Consecutive events of a run always differ: every event misses.
        return ep, stack
    B2 = _shift_one(B1, efirst)
    stack[:, 1] = B1[lastpos]
    alive = el != B2
    if k == 2:
        return ep[alive], stack

    # Deeper ways on shrinking domains; runs can drop out entirely, so
    # track run ids and scatter the per-run stack columns.
    if not alive.any():
        return ep[alive], stack
    rid = np.cumsum(efirst, dtype=np.int32)
    rid -= 1
    cel = el[alive]
    cep = ep[alive]
    crid = rid[alive]
    cB = B2[alive]
    cfirst = np.empty(crid.size, dtype=bool)
    cfirst[0] = True
    np.not_equal(crid[1:], crid[:-1], out=cfirst[1:])
    for w in range(3, k + 1):
        Bw = _shift_one(cB, cfirst)
        lastpos = _run_last(crid)
        stack[crid[lastpos], w - 1] = cB[lastpos]
        alive = cel != Bw
        if w == k or not alive.any():
            # Survivors of the last level are the misses; an empty domain
            # earlier means the deeper ways were never filled (-1 stands).
            cep = cep[alive]
            break
        cel = cel[alive]
        cep = cep[alive]
        crid = crid[alive]
        cB = Bw[alive]
        cfirst = np.empty(crid.size, dtype=bool)
        cfirst[0] = True
        np.not_equal(crid[1:], crid[:-1], out=cfirst[1:])
    return cep, stack


class AssocLRUState:
    """k-way LRU cache state with a fully vectorized ``feed``.

    The carried state is ``stack``, a ``(num_sets, associativity)``
    int64 matrix of line numbers ordered most-recently-used first
    (``-1`` marks an empty way).  ``feed`` classifies one chunk and
    updates the stack so that any chunking of a trace produces exactly
    the miss mask of the concatenated trace.
    """

    def __init__(self, size: int, line_size: int, associativity: int):
        self.num_sets = _validate_geometry(size, line_size, associativity)
        self.size = size
        self.line_size = line_size
        self.associativity = associativity
        self.stack = np.full((self.num_sets, associativity), -1, dtype=np.int64)

    def _preamble(self, present: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Virtual (sets, lines) replaying the stacks of ``present`` sets.

        Within a set the lines come oldest (LRU) first, so replaying them
        before the chunk's real events reconstructs the stack exactly.
        """
        stacks = self.stack[present]  # (P, k), MRU first
        lru_first = stacks[:, ::-1].ravel()
        sets = np.repeat(present, self.associativity)
        valid = lru_first >= 0
        return sets[valid], lru_first[valid]

    def feed(self, addresses: np.ndarray) -> np.ndarray:
        """Classify one chunk; returns its miss mask and updates the stack."""
        addresses = np.asarray(addresses)
        if addresses.ndim != 1:
            raise SimulationError(
                f"trace must be 1-D, got shape {addresses.shape}"
            )
        n = addresses.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        addresses = addresses.astype(np.int64, copy=False)
        if addresses.min() < 0:
            raise SimulationError("trace contains negative addresses")
        k = self.associativity
        nsets = self.num_sets
        # Line numbers (and everything derived from them) fit 32 bits for
        # any address space below 2^31 * line_size; the narrow pipeline
        # halves memory traffic and allocation cost on the hot path.
        top = max(int(addresses.max()) // self.line_size, int(self.stack.max()))
        dtype = np.int32 if top <= np.iinfo(np.int32).max - 1 else np.int64
        lines = np.empty(n, dtype=dtype)
        if self.line_size & (self.line_size - 1) == 0:
            np.right_shift(
                addresses,
                self.line_size.bit_length() - 1,
                out=lines,
                casting="unsafe",
            )
        else:
            np.floor_divide(addresses, self.line_size, out=lines, casting="unsafe")

        miss = np.zeros(n, dtype=bool)

        # 1. Adjacent same-line repeats are hits at any associativity and
        # are also caught by the in-set collapse below, so compact here
        # only when it shrinks the sort meaningfully.
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.not_equal(lines[1:], lines[:-1], out=keep[1:])
        if np.count_nonzero(keep) <= (n - (n >> 2)):
            surv_idx = np.nonzero(keep)[0]
            slines = lines[surv_idx]
        else:
            surv_idx = None
            slines = lines
        if nsets & (nsets - 1) == 0:
            ssets = slines & (nsets - 1)
        else:
            ssets = slines % nsets

        # 2. Prepend the carried stacks of the sets this chunk touches.
        # A cold cache (every way-0 slot empty) has nothing to replay, so
        # ``present`` can wait until the grouping sort hands it over for
        # free -- bincount on a large chunk is a measurable cost.
        if bool((self.stack[:, 0] >= 0).any()):
            present = np.nonzero(np.bincount(ssets, minlength=nsets))[0]
            pre_sets, pre_lines = self._preamble(present)
        else:
            present = None
            pre_sets = pre_lines = np.empty(0, dtype=np.int64)
        npre = pre_sets.size
        if npre:
            # Cast the (tiny) virtual arrays so the concatenation keeps
            # the narrow pipeline dtype.
            ext_sets = np.concatenate([pre_sets.astype(dtype), ssets])
            ext_lines = np.concatenate([pre_lines.astype(dtype), slines])
        else:
            ext_sets = ssets
            ext_lines = slines

        # 3. Group by set, program order inside each run (virtual first).
        ss, pos = _packed_group_sort(ext_sets, max(1, (nsets - 1).bit_length()))
        ls = ext_lines[pos]

        m = ls.size
        first = np.empty(m, dtype=bool)
        first[0] = True
        np.not_equal(ss[1:], ss[:-1], out=first[1:])
        dup = np.zeros(m, dtype=bool)
        np.equal(ls[1:], ls[:-1], out=dup[1:])
        dup &= ~first
        # Same-set same-line repeats are MRU hits; the rest are events.
        if dup.any():
            evt = ~dup
            el = ls[evt]
            ep = pos[evt]
            efirst = first[evt]
        else:
            el, ep, efirst = ls, pos, first

        # Event runs are contiguous after the grouping sort, in ascending
        # set order -- so run i belongs to present[i] (every present set
        # contributes at least one event: its first survivor, or its
        # preamble).
        if present is None:
            present = ss[np.nonzero(first)[0]]

        mp, stacks = _classify_events(el, ep, efirst, present.size, k)
        self.stack[present] = stacks

        # 4. Scatter real (non-preamble) misses to original positions.
        if npre:
            mp = mp[mp >= npre] - npre
        if surv_idx is not None:
            miss[surv_idx[mp]] = True
        else:
            miss[mp] = True
        return miss


def miss_mask_assoc_vec(
    addresses: np.ndarray,
    size: int,
    line_size: int,
    associativity: int,
) -> np.ndarray:
    """Boolean miss mask of the trace on a k-way LRU cache (vectorized).

    Exact drop-in for :func:`repro.cache.assoc.miss_mask_assoc`: the two
    agree element-for-element on every trace, the sequential version
    simply replays the accesses one at a time while this one classifies
    them with NumPy segment operations.
    """
    state = AssocLRUState(size, line_size, associativity)
    return state.feed(addresses)


def simulate_assoc_vec(
    addresses: np.ndarray,
    size: int,
    line_size: int,
    associativity: int,
) -> int:
    """Number of misses of the trace on a k-way LRU cache (vectorized)."""
    return int(miss_mask_assoc_vec(addresses, size, line_size, associativity).sum())
