"""Vectorized direct-mapped cache simulation.

A direct-mapped cache holds exactly one line per set, so an access hits if
and only if the *most recent previous access to the same set* touched the
same line (tag).  That predicate does not require replaying the trace: a
stable sort by set index groups each set's accesses in temporal order, and
a single shifted comparison of tags inside each group classifies every
access.  The whole simulation is therefore O(N log N) in NumPy with no
Python-level loop, which is what makes full-program traces (tens of
millions of references for the 512x512 kernels) tractable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["simulate_direct", "miss_mask_direct"]


def _check_trace(addresses: np.ndarray) -> np.ndarray:
    addresses = np.asarray(addresses)
    if addresses.ndim != 1:
        raise SimulationError(f"trace must be 1-D, got shape {addresses.shape}")
    if addresses.size and addresses.min() < 0:
        raise SimulationError("trace contains negative addresses")
    return addresses.astype(np.int64, copy=False)


def miss_mask_direct(addresses: np.ndarray, size: int, line_size: int) -> np.ndarray:
    """Return a boolean array marking which accesses miss.

    Parameters
    ----------
    addresses:
        1-D integer array of byte addresses in program order.
    size, line_size:
        Cache capacity and line size in bytes; ``size`` must be a positive
        multiple of ``line_size``.
    """
    if line_size <= 0 or size <= 0 or size % line_size != 0:
        raise SimulationError(
            f"invalid direct-mapped geometry: size={size}, line_size={line_size}"
        )
    addresses = _check_trace(addresses)
    n = addresses.size
    if n == 0:
        return np.zeros(0, dtype=bool)

    num_sets = size // line_size
    lines = addresses // line_size
    sets = lines % num_sets
    tags = lines // num_sets

    # Stable sort by set: inside each set's run, accesses keep program order.
    order = np.argsort(sets, kind="stable")
    sets_sorted = sets[order]
    tags_sorted = tags[order]

    miss_sorted = np.empty(n, dtype=bool)
    miss_sorted[0] = True
    same_set = sets_sorted[1:] == sets_sorted[:-1]
    same_tag = tags_sorted[1:] == tags_sorted[:-1]
    miss_sorted[1:] = ~(same_set & same_tag)

    miss = np.empty(n, dtype=bool)
    miss[order] = miss_sorted
    return miss


def simulate_direct(addresses: np.ndarray, size: int, line_size: int) -> int:
    """Return the number of misses of the trace on a direct-mapped cache."""
    return int(miss_mask_direct(addresses, size, line_size).sum())
