"""LRU stack (reuse) distances and the cold/capacity/conflict taxonomy.

The paper's padding transformations attack *conflict* misses specifically.
This module makes that claim measurable: the classic three-way split
(Hill's taxonomy) classifies each direct-mapped miss as

* **cold** -- first touch of the line;
* **capacity** -- would miss even on a fully-associative LRU cache of the
  same size (reuse distance >= number of lines);
* **conflict** -- hits fully-associative but misses direct-mapped (the
  set-mapping's fault; exactly what inter-variable padding can fix).

Reuse distances are computed with the standard Fenwick-tree algorithm
(O(N log N)): the distance of an access is the number of *distinct* lines
touched since the previous access to its line.

Tests assert the paper's premise directly: PAD removes conflict misses
while leaving cold and capacity misses untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.direct import miss_mask_direct
from repro.errors import SimulationError

__all__ = ["reuse_distances", "fully_associative_miss_mask", "MissTaxonomy",
           "classify_misses"]


def reuse_distances(addresses: np.ndarray, line_size: int) -> np.ndarray:
    """LRU stack distance of every access, in cache lines.

    Returns an int64 array: -1 for a line's first access (cold), otherwise
    the number of distinct lines referenced since the last access to the
    same line.  An access with distance d hits a fully-associative LRU
    cache iff d < capacity_in_lines.
    """
    if line_size <= 0:
        raise SimulationError(f"line_size must be positive, got {line_size}")
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.ndim != 1:
        raise SimulationError("trace must be 1-D")
    n = addresses.size
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    if addresses.min() < 0:
        raise SimulationError("trace contains negative addresses")

    lines = (addresses // line_size).tolist()
    # Fenwick tree over access positions 1..n: tree[i] == 1 when position i
    # is some line's most recent access.
    tree = [0] * (n + 1)

    def update(i: int, delta: int) -> None:
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def query(i: int) -> int:
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return s

    last_pos: dict[int, int] = {}
    for idx, line in enumerate(lines):
        pos = idx + 1
        prev = last_pos.get(line)
        if prev is not None:
            # Distinct lines touched strictly between prev and pos.
            out[idx] = query(pos - 1) - query(prev)
            update(prev, -1)
        update(pos, 1)
        last_pos[line] = pos
    return out


def fully_associative_miss_mask(
    addresses: np.ndarray, size: int, line_size: int
) -> np.ndarray:
    """Miss mask of a fully-associative LRU cache of the same capacity."""
    if size <= 0 or size % line_size != 0:
        raise SimulationError(f"invalid geometry: size={size}, line={line_size}")
    capacity = size // line_size
    d = reuse_distances(addresses, line_size)
    return (d < 0) | (d >= capacity)


@dataclass(frozen=True)
class MissTaxonomy:
    """Cold / capacity / conflict decomposition of a direct-mapped run."""

    total_refs: int
    cold: int
    capacity: int
    conflict: int

    @property
    def total_misses(self) -> int:
        return self.cold + self.capacity + self.conflict

    def rate(self, kind: str) -> float:
        if self.total_refs == 0:
            return 0.0
        return getattr(self, kind) / self.total_refs

    def __str__(self) -> str:
        return (
            f"cold={self.cold}, capacity={self.capacity}, "
            f"conflict={self.conflict} (of {self.total_refs} refs)"
        )


def classify_misses(addresses: np.ndarray, cache: CacheConfig) -> MissTaxonomy:
    """Split a direct-mapped cache's misses into cold/capacity/conflict.

    Conflict misses are exactly the direct-mapped misses a
    fully-associative cache of the same size would have hit -- the
    population inter-variable padding exists to eliminate.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    dm = miss_mask_direct(addresses, cache.size, cache.line_size)
    d = reuse_distances(addresses, cache.line_size)
    capacity_lines = cache.size // cache.line_size
    cold_mask = d < 0  # first touch always misses direct-mapped too
    fa_miss = cold_mask | (d >= capacity_lines)
    cold = int(cold_mask.sum())
    # Classify *direct-mapped* misses only, so the three classes sum to
    # the direct-mapped miss count exactly.  (A fully-associative miss the
    # direct-mapped cache happens to hit is an LRU-depth anomaly, not a
    # miss to explain.)
    capacity = int((dm & fa_miss & ~cold_mask).sum())
    conflict = int((dm & ~fa_miss).sum())
    return MissTaxonomy(
        total_refs=int(addresses.size),
        cold=cold,
        capacity=capacity,
        conflict=conflict,
    )
