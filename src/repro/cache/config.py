"""Cache and hierarchy configurations.

The paper's experimental hierarchy (Section 6.1) is a 16 KB direct-mapped
L1 with 32-byte lines and a 512 KB direct-mapped L2 with 64-byte lines --
the UltraSparc I configuration.  :func:`ultrasparc_i` builds exactly that.

The multi-level padding theory in the paper assumes each cache's size
evenly divides every larger cache's size (true of real machines of the
era); :class:`HierarchyConfig` validates that property so analyses can rely
on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigError

__all__ = ["CacheConfig", "HierarchyConfig", "ultrasparc_i", "alpha_21164"]


@dataclass(frozen=True)
class CacheConfig:
    """One level of cache.

    Parameters
    ----------
    size:
        Capacity in bytes.
    line_size:
        Cache line (block) size in bytes.
    associativity:
        1 for direct-mapped (the paper's assumption), ``k`` for k-way LRU.
    name:
        Display name ("L1", "L2", ...).
    hit_cycles:
        Cost of a hit at this level, used by the cycle/timing model that
        substitutes for the paper's UltraSparc wall-clock measurements.
    """

    size: int
    line_size: int
    associativity: int = 1
    name: str = "cache"
    hit_cycles: float = 1.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigError(f"{self.name}: cache size must be positive, got {self.size}")
        if self.line_size <= 0:
            raise ConfigError(
                f"{self.name}: line size must be positive, got {self.line_size}"
            )
        if self.associativity <= 0:
            raise ConfigError(
                f"{self.name}: associativity must be positive, got {self.associativity}"
            )
        if self.size % (self.line_size * self.associativity) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size} is not a multiple of "
                f"line_size*associativity = {self.line_size * self.associativity}"
            )

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (== ``num_lines`` when direct-mapped)."""
        return self.size // (self.line_size * self.associativity)

    @property
    def is_direct_mapped(self) -> bool:
        return self.associativity == 1

    def lines_for(self, nbytes: int) -> int:
        """How many cache lines ``nbytes`` bytes occupy (upper bound)."""
        return -(-nbytes // self.line_size)


@dataclass(frozen=True)
class HierarchyConfig:
    """An ordered multi-level cache hierarchy, L1 first.

    ``memory_cycles`` is the cost of going to main memory on a miss at the
    last cache level; together with each level's ``hit_cycles`` it defines
    the cycle model used in place of hardware timings.
    """

    levels: tuple[CacheConfig, ...]
    memory_cycles: float = 50.0

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigError("hierarchy needs at least one cache level")
        object.__setattr__(self, "levels", tuple(self.levels))
        for upper, lower in zip(self.levels, self.levels[1:]):
            if lower.size <= upper.size:
                raise ConfigError(
                    f"{lower.name} ({lower.size} B) must be larger than "
                    f"{upper.name} ({upper.size} B)"
                )
            if lower.size % upper.size != 0:
                raise ConfigError(
                    f"{upper.name} size {upper.size} must divide "
                    f"{lower.name} size {lower.size} (paper assumption, §3.1.2)"
                )
            if lower.line_size < upper.line_size:
                raise ConfigError(
                    f"{lower.name} line size {lower.line_size} must be >= "
                    f"{upper.name} line size {upper.line_size}"
                )
        if self.memory_cycles <= 0:
            raise ConfigError("memory_cycles must be positive")

    def __iter__(self) -> Iterator[CacheConfig]:
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    @property
    def l1(self) -> CacheConfig:
        return self.levels[0]

    @property
    def l2(self) -> CacheConfig:
        if len(self.levels) < 2:
            raise ConfigError("hierarchy has no L2 cache")
        return self.levels[1]

    @property
    def max_line_size(self) -> int:
        """``Lmax`` from the paper: the largest line size at any level."""
        return max(c.line_size for c in self.levels)

    def multilevel_pad_config(self) -> CacheConfig:
        """The virtual cache MULTILVLPAD targets (paper §3.1.2).

        Combines the *smallest* cache size (S1) with the *largest* line size
        (Lmax).  When all levels share a line size this is exactly the L1
        cache; otherwise the configuration "does not actually exist in the
        memory hierarchy" but padding against it avoids severe conflicts at
        every level by modular arithmetic.
        """
        s1 = self.l1.size
        lmax = self.max_line_size
        # The virtual cache keeps S1 and Lmax; S1 is a multiple of Lmax on
        # all sane configurations (16K / 64B here).
        if s1 % lmax != 0:
            raise ConfigError(
                f"L1 size {s1} is not a multiple of the largest line size {lmax}"
            )
        return CacheConfig(size=s1, line_size=lmax, associativity=1, name="multilvl")

    def miss_cycles(self, level_index: int) -> float:
        """Cycle cost charged when an access is satisfied *below* ``level_index``.

        ``level_index`` is 0-based; an access that misses every level costs
        ``memory_cycles``.
        """
        if level_index + 1 < len(self.levels):
            return self.levels[level_index + 1].hit_cycles
        return self.memory_cycles


def ultrasparc_i(
    l1_size: int = 16 * 1024,
    l1_line: int = 32,
    l2_size: int = 512 * 1024,
    l2_line: int = 64,
) -> HierarchyConfig:
    """The paper's simulated hierarchy (Section 6.1): UltraSparc I.

    16 KB direct-mapped L1 with 32 B lines, 512 KB direct-mapped L2 with
    64 B lines.  ``hit_cycles``/``memory_cycles`` follow UltraSparc-era
    latency ratios (L1 hit 1, L2 hit ~6, memory ~50 cycles).
    """
    return HierarchyConfig(
        levels=(
            CacheConfig(size=l1_size, line_size=l1_line, name="L1", hit_cycles=1.0),
            CacheConfig(size=l2_size, line_size=l2_line, name="L2", hit_cycles=6.0),
        ),
        memory_cycles=50.0,
    )


def alpha_21164() -> HierarchyConfig:
    """A three-level hierarchy modeled on the DEC Alpha 21164.

    The paper cites the 21164 as an example of a three-level cache machine;
    this preset exercises the >2-level generalizations of the padding
    algorithms (8 KB L1 / 96 KB L3-ish scaled to power-of-two multiples so
    the divisibility assumption holds: 8K, 64K, 2M).
    """
    return HierarchyConfig(
        levels=(
            CacheConfig(size=8 * 1024, line_size=32, name="L1", hit_cycles=1.0),
            CacheConfig(size=64 * 1024, line_size=64, name="L2", hit_cycles=5.0),
            CacheConfig(size=2 * 1024 * 1024, line_size=64, name="L3", hit_cycles=12.0),
        ),
        memory_cycles=60.0,
    )
