"""Write-back modeling: dirty-line evictions on a direct-mapped cache.

The paper's simulations count reads and writes identically; real
hierarchies additionally pay for *write-backs* -- evictions of dirty
lines.  This extension tracks them so experiments can report memory
traffic, not just miss counts (the DOT footnote about "the underlying
memory system" is the paper's own hint that traffic effects exist).

The implementation stays vectorized: within a chunk sorted by set, the
line evicted at each miss was resident since the previous miss to the
same set, so "was it dirtied?" is a difference of a prefix-sum of the
write mask over that span.  Cross-chunk state carries each set's resident
tag and dirty bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = ["WritebackDirectCache", "WritebackStats", "simulate_writebacks"]


@dataclass(frozen=True)
class WritebackStats:
    """Counters accumulated by a write-back simulation."""

    accesses: int
    misses: int
    writebacks: int

    @property
    def memory_transfers(self) -> int:
        """Line transfers to/from the next level: fills plus write-backs."""
        return self.misses + self.writebacks


class WritebackDirectCache:
    """Direct-mapped write-back, write-allocate cache with dirty bits."""

    def __init__(self, size: int, line_size: int):
        if line_size <= 0 or size <= 0 or size % line_size != 0:
            raise SimulationError(
                f"invalid geometry: size={size}, line_size={line_size}"
            )
        self.size = size
        self.line_size = line_size
        self.num_sets = size // line_size
        self._tags = np.full(self.num_sets, -1, dtype=np.int64)
        self._dirty = np.zeros(self.num_sets, dtype=bool)
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0

    def feed(self, addresses: np.ndarray, writes: np.ndarray) -> np.ndarray:
        """Classify one chunk; returns its miss mask, tallies write-backs."""
        addresses = np.asarray(addresses, dtype=np.int64)
        writes = np.asarray(writes, dtype=bool)
        if addresses.shape != writes.shape:
            raise SimulationError("addresses and writes must align")
        n = addresses.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        if addresses.min() < 0:
            raise SimulationError("trace contains negative addresses")

        lines = addresses // self.line_size
        sets = lines % self.num_sets
        tags = lines // self.num_sets

        order = np.argsort(sets, kind="stable")
        sets_s = sets[order]
        tags_s = tags[order]
        w_s = writes[order]
        idx = np.arange(n)

        first = np.empty(n, dtype=bool)
        first[0] = True
        first[1:] = sets_s[1:] != sets_s[:-1]
        run_start = idx[first][np.cumsum(first) - 1]  # start index of my run

        miss_s = np.empty(n, dtype=bool)
        miss_s[first] = self._tags[sets_s[first]] != tags_s[first]
        rest = ~first
        if rest.any():
            r = np.nonzero(rest)[0]
            miss_s[r] = tags_s[r] != tags_s[r - 1]

        # Prefix sums of writes (inclusive) for span queries.
        cumw = np.cumsum(w_s)

        # Previous miss position in the same run, or -1.
        acc = np.maximum.accumulate(np.where(miss_s, idx, -1))
        prev_global = np.empty(n, dtype=np.int64)
        prev_global[0] = -1
        prev_global[1:] = acc[:-1]
        prev_in_run = np.where(prev_global >= run_start, prev_global, -1)

        miss_idx = idx[miss_s]
        if miss_idx.size:
            p = prev_in_run[miss_s]
            rs = run_start[miss_s]
            s_of_miss = sets_s[miss_s]

            # Case 1: the evicted line was loaded at p (a miss in this chunk).
            have_prev = p >= 0
            span_lo = np.where(have_prev, p, rs)
            writes_in_span = cumw[np.maximum(miss_idx - 1, 0)] - np.where(
                span_lo > 0, cumw[span_lo - 1], 0
            )
            writes_in_span = np.where(miss_idx > span_lo, writes_in_span, 0)
            # The loading access itself may have been a write.
            loaded_dirty = np.where(have_prev, w_s[np.maximum(p, 0)], False)
            dirty_now = (writes_in_span > 0) | loaded_dirty
            # Case 2 extras: carried line's dirty bit, and validity.
            carried_valid = self._tags[s_of_miss] != -1
            carried_dirty = self._dirty[s_of_miss]
            evict_valid = np.where(have_prev, True, carried_valid)
            evict_dirty = np.where(
                have_prev, dirty_now, carried_dirty | dirty_now
            )
            self.writebacks += int((evict_valid & evict_dirty).sum())

        # Carry out per-set state from the last access of each run.
        last = np.empty(n, dtype=bool)
        last[-1] = True
        last[:-1] = sets_s[1:] != sets_s[:-1]
        last_idx = idx[last]
        s_last = sets_s[last]
        # The resident line at chunk end = tag at the last access; its dirty
        # bit = writes since it was loaded (last miss in run, or carried).
        lm = acc[last_idx]
        lm_in_run = np.where(lm >= run_start[last_idx], lm, -1)
        have_lm = lm_in_run >= 0
        span_lo = np.where(have_lm, lm_in_run, run_start[last_idx])
        writes_since = cumw[last_idx] - np.where(span_lo > 0, cumw[span_lo - 1], 0)
        base_dirty = np.where(have_lm, False, self._dirty[s_last])
        new_dirty = base_dirty | (writes_since > 0)
        self._tags[s_last] = tags_s[last_idx]
        self._dirty[s_last] = new_dirty

        miss = np.empty(n, dtype=bool)
        miss[order] = miss_s
        self.accesses += n
        self.misses += int(miss_s.sum())
        return miss

    def flush(self) -> int:
        """Write back all remaining dirty lines; returns how many."""
        count = int(self._dirty.sum())
        self.writebacks += count
        self._dirty[:] = False
        return count

    @property
    def stats(self) -> WritebackStats:
        """Snapshot of the accumulated counters."""
        return WritebackStats(
            accesses=self.accesses, misses=self.misses, writebacks=self.writebacks
        )


def simulate_writebacks(
    program, layout, size: int, line_size: int, flush: bool = True
) -> WritebackStats:
    """Run a program's trace through a write-back cache.

    Uses the statement structure to recover each reference's read/write
    flag (every generated chunk covers whole iterations, so the per-
    iteration write pattern tiles exactly).
    """
    from repro.trace.generator import nest_trace_chunks

    cache = WritebackDirectCache(size, line_size)
    for nest in program.nests:
        pattern = np.array([r.is_write for r in nest.refs], dtype=bool)
        for chunk in nest_trace_chunks(program, layout, nest):
            if chunk.size % pattern.size:
                raise SimulationError(
                    "trace chunk does not cover whole iterations"
                )
            writes = np.tile(pattern, chunk.size // pattern.size)
            cache.feed(chunk, writes)
    if flush:
        cache.flush()
    return cache.stats
