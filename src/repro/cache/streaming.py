"""Streaming (chunk-at-a-time) cache simulation.

Large programs are traced as a sequence of NumPy chunks
(:mod:`repro.trace.generator`); these simulators carry cache state between
chunks so whole-program miss counts are identical to simulating the
concatenated trace, with bounded memory.

For a direct-mapped level the carried state is one tag per set.  Inside a
chunk the sort-based classification of :mod:`repro.cache.direct` applies;
only each set's *first* access in the chunk needs the carried tag.

For a k-way level the carried state is a ``(num_sets, k)`` LRU tag matrix
(:class:`repro.cache.assoc_vec.AssocLRUState`): chunk classification is
fully vectorized, and the carried stacks are replayed as virtual leading
accesses so chunked simulation stays byte-identical to one-shot replay.
:class:`SequentialAssocCache` keeps the one-access-at-a-time reference
model around as the oracle the vectorized path is property-tested against.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cache.assoc import replay_lru
from repro.cache.assoc_vec import AssocLRUState
from repro.cache.config import CacheConfig, HierarchyConfig
from repro.cache.stats import LevelStats, SimulationResult
from repro.errors import SimulationError
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

__all__ = [
    "StreamingDirectCache",
    "StreamingAssocCache",
    "SequentialAssocCache",
    "StreamingHierarchy",
]


class StreamingDirectCache:
    """Direct-mapped cache with persistent per-set tags across chunks."""

    def __init__(self, size: int, line_size: int):
        if line_size <= 0 or size <= 0 or size % line_size != 0:
            raise SimulationError(
                f"invalid direct-mapped geometry: size={size}, line_size={line_size}"
            )
        self.size = size
        self.line_size = line_size
        self.num_sets = size // line_size
        self._tags = np.full(self.num_sets, -1, dtype=np.int64)
        self.accesses = 0
        self.misses = 0

    def feed(self, addresses: np.ndarray) -> np.ndarray:
        """Classify one chunk; returns its miss mask and updates state."""
        addresses = np.asarray(addresses, dtype=np.int64)
        n = addresses.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        if addresses.min() < 0:
            raise SimulationError("trace contains negative addresses")
        lines = addresses // self.line_size
        sets = lines % self.num_sets
        tags = lines // self.num_sets

        order = np.argsort(sets, kind="stable")
        sets_s = sets[order]
        tags_s = tags[order]

        miss_s = np.empty(n, dtype=bool)
        first = np.empty(n, dtype=bool)
        first[0] = True
        first[1:] = sets_s[1:] != sets_s[:-1]
        # First access per set in this chunk: compare with carried tag.
        miss_s[first] = self._tags[sets_s[first]] != tags_s[first]
        # Later accesses: compare with the previous access to the same set.
        rest = ~first
        if rest.any():
            idx = np.nonzero(rest)[0]
            miss_s[idx] = tags_s[idx] != tags_s[idx - 1]

        # Carry out: last tag per set (the final element of each run).
        last = np.empty(n, dtype=bool)
        last[-1] = True
        last[:-1] = sets_s[1:] != sets_s[:-1]
        self._tags[sets_s[last]] = tags_s[last]

        miss = np.empty(n, dtype=bool)
        miss[order] = miss_s
        self.accesses += n
        self.misses += int(miss.sum())
        return miss


class StreamingAssocCache:
    """k-way LRU cache with persistent state (vectorized classification).

    Thin counting wrapper around :class:`repro.cache.assoc_vec.AssocLRUState`;
    byte-identical to :class:`SequentialAssocCache` on every chunking.
    """

    def __init__(self, size: int, line_size: int, associativity: int):
        self._state = AssocLRUState(size, line_size, associativity)
        self.size = size
        self.line_size = line_size
        self.associativity = associativity
        self.num_sets = self._state.num_sets
        self.accesses = 0
        self.misses = 0

    def feed(self, addresses: np.ndarray) -> np.ndarray:
        """Classify one chunk; returns its miss mask and updates LRU state.

        Per-chunk timing of the vectorized k-way path lands in the
        ``cache.assoc.chunk_seconds`` histogram while a tracer is active.
        """
        tracer = get_tracer()
        t0 = time.perf_counter() if tracer.enabled else 0.0
        miss = self._state.feed(addresses)
        self.accesses += int(miss.size)
        self.misses += int(miss.sum())
        if tracer.enabled:
            get_metrics().histogram("cache.assoc.chunk_seconds").observe(
                time.perf_counter() - t0
            )
        return miss


class SequentialAssocCache:
    """k-way LRU cache with persistent state (sequential reference replay).

    The streaming form of the :func:`repro.cache.assoc.replay_lru` oracle:
    one access at a time, obviously correct, slow.  Kept as the ground
    truth that :class:`StreamingAssocCache` is property-tested against.
    """

    def __init__(self, size: int, line_size: int, associativity: int):
        if (
            line_size <= 0
            or size <= 0
            or associativity <= 0
            or size % (line_size * associativity) != 0
        ):
            raise SimulationError(
                f"invalid geometry: size={size}, line_size={line_size}, "
                f"assoc={associativity}"
            )
        self.size = size
        self.line_size = line_size
        self.associativity = associativity
        self.num_sets = size // (line_size * associativity)
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0

    def feed(self, addresses: np.ndarray) -> np.ndarray:
        """Classify one chunk; returns its miss mask and updates LRU state."""
        addresses = np.asarray(addresses, dtype=np.int64)
        miss = np.zeros(addresses.size, dtype=bool)
        if addresses.size and addresses.min() < 0:
            raise SimulationError("trace contains negative addresses")
        lines = (addresses // self.line_size).tolist()
        replay_lru(lines, self.num_sets, self.associativity, self._sets, miss)
        self.accesses += int(addresses.size)
        self.misses += int(miss.sum())
        return miss


def _make_level(cfg: CacheConfig):
    if cfg.is_direct_mapped:
        return StreamingDirectCache(cfg.size, cfg.line_size)
    return StreamingAssocCache(cfg.size, cfg.line_size, cfg.associativity)


class StreamingHierarchy:
    """Multi-level streaming simulation: feed chunks, then read the result.

    Pass a :class:`repro.obs.timeline.Timeline` to also accumulate
    windowed per-level telemetry: ``feed`` then splits each chunk at
    window boundaries (re-reading ``timeline.window_refs`` per slice,
    since coalescing can widen it mid-run) and records each slice's
    per-level ``(accesses, misses)`` delta.  Window boundaries land at
    exactly the same reference positions regardless of how the trace was
    chunked, and every reference lands in exactly one window, so the
    timeline's totals equal :meth:`result`'s bit-for-bit -- the
    property ``tests/properties/test_property_timeline.py`` pins.
    """

    def __init__(self, config: HierarchyConfig, timeline=None):
        self.config = config
        self._levels = [_make_level(cfg) for cfg in config]
        self.total_refs = 0
        self.timeline = timeline
        # Resolved once: `feed` is the hot path and the registry lookup,
        # cheap as it is, should not recur per chunk.
        self._refs_counter = get_metrics().counter("cache.refs")

    def _feed_levels(self, stream: np.ndarray) -> None:
        for level in self._levels:
            mask = level.feed(stream)
            stream = stream[mask]

    def feed(self, addresses: np.ndarray) -> None:
        """Push one trace chunk through every level.

        Instrumentation stays at chunk granularity: one counter add per
        chunk always, one histogram observation per chunk only while a
        tracer is active -- nothing per reference, so the disabled
        overhead is a single branch (``benchmarks/test_bench_obs.py``
        guards this stays under 2% of simulator throughput).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        tracer = get_tracer()
        t0 = time.perf_counter() if tracer.enabled else 0.0
        n = int(addresses.size)
        if self.timeline is None:
            self.total_refs += n
            self._feed_levels(addresses)
        else:
            pos = 0
            while pos < n:
                window = self.timeline.window_refs
                take = min(window - self.total_refs % window, n - pos)
                start_ref = self.total_refs
                before = [(lv.accesses, lv.misses) for lv in self._levels]
                self._feed_levels(addresses[pos:pos + take])
                self.timeline.record(
                    start_ref,
                    start_ref + take,
                    [(lv.accesses - acc, lv.misses - miss)
                     for lv, (acc, miss) in zip(self._levels, before)],
                )
                self.total_refs += take
                pos += take
        self._refs_counter.inc(n)
        if tracer.enabled:
            get_metrics().histogram("cache.chunk_seconds").observe(
                time.perf_counter() - t0
            )

    def feed_all(self, chunks) -> "StreamingHierarchy":
        """Consume an iterable of chunks; returns self for chaining."""
        for chunk in chunks:
            self.feed(chunk)
        return self

    def result(self) -> SimulationResult:
        """Aggregate statistics of everything fed so far."""
        return SimulationResult(
            total_refs=self.total_refs,
            levels=tuple(
                LevelStats(name=cfg.name, accesses=lv.accesses, misses=lv.misses)
                for cfg, lv in zip(self.config, self._levels)
            ),
        )
