"""Trace-driven multi-level cache simulator.

This package is the reproduction's stand-in for the cache simulator used in
Section 6.1 of the paper.  It simulates an inclusive hierarchy of
direct-mapped or set-associative caches over an address trace: the L1 cache
sees every reference, and each lower level sees only the miss stream of the
level above it.  Miss rates are reported relative to the *total* number of
references, matching the paper's normalization.

Both production simulators are fully vectorized with NumPy: the
direct-mapped model uses a sort-based previous-occurrence comparison and
the k-way LRU model (:mod:`repro.cache.assoc_vec`) a set-grouped
stack-distance classification, so full-program traces of tens of millions
of references simulate in seconds either way.  A sequential
one-access-at-a-time LRU model (:mod:`repro.cache.assoc`) is kept as the
ground-truth oracle the vectorized paths are property-tested against.
See ``docs/simulators.md`` for the three families and when each is used.
"""

from repro.cache.config import (
    CacheConfig,
    HierarchyConfig,
    alpha_21164,
    ultrasparc_i,
)
from repro.cache.direct import simulate_direct
from repro.cache.assoc import simulate_assoc
from repro.cache.assoc_vec import AssocLRUState, miss_mask_assoc_vec, simulate_assoc_vec
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.stats import LevelStats, SimulationResult
from repro.cache.stackdist import (
    MissTaxonomy,
    classify_misses,
    fully_associative_miss_mask,
    reuse_distances,
)
from repro.cache.streaming import StreamingHierarchy

__all__ = [
    "CacheConfig",
    "HierarchyConfig",
    "CacheHierarchy",
    "LevelStats",
    "SimulationResult",
    "simulate_direct",
    "simulate_assoc",
    "simulate_assoc_vec",
    "miss_mask_assoc_vec",
    "AssocLRUState",
    "ultrasparc_i",
    "alpha_21164",
    "MissTaxonomy",
    "classify_misses",
    "fully_associative_miss_mask",
    "reuse_distances",
    "StreamingHierarchy",
]
