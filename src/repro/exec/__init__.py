"""Parallel experiment execution with content-addressed memoization.

The subsystem's layers:

* :mod:`repro.exec.hashing` -- stable content hashing of simulation
  inputs (program IR, layout, hierarchy geometry, trace mode);
* :mod:`repro.exec.store` -- :class:`ResultStore`, an on-disk
  content-addressed cache of :class:`~repro.cache.stats.SimulationResult`
  with an in-memory hot tier and a packed per-store manifest for
  batched warm-up scans;
* :mod:`repro.exec.cost` -- trace-free per-job cost estimates (dynamic
  reference count, working-set lower bound) that order dispatch and
  size trace chunk budgets;
* :mod:`repro.exec.scheduler` -- the persistent worker pool
  (:class:`WorkerPool`), shared-payload broadcast, and cost-aware
  work-stealing dispatch the executor runs on;
* :mod:`repro.exec.executor` -- :class:`SweepExecutor`, fanning
  independent :class:`SimJob` simulations across the pool with
  deterministic ordering and graceful serial fallback;
* :mod:`repro.exec.backends` -- the tier catalogue (``auto``,
  ``symbolic``, ``model``, ``sim``, ``oracle``) the executor selects
  from, each keyed separately in the store;
* :mod:`repro.exec.shard` -- deterministic ``i/N`` sweep partitioning
  (:class:`ShardSpec`) plus :func:`merge_stores` / :func:`merge_traces`
  to fuse per-shard artifacts back into one.

Typical sweep::

    from repro.exec import ResultStore, SimJob, SweepExecutor

    jobs = [SimJob(program, layout, hierarchy) for layout in layouts]
    with SweepExecutor(workers=4, store=ResultStore("~/.cache/repro-sim")) as ex:
        results = ex.run(jobs)      # parallel; re-running is ~free
        print(ex.stats.format())    # hits/misses, per-job timing

See ``docs/parallel_execution.md`` for the design and the cache-key
contract.
"""

from repro.exec.backends import BACKENDS, run_oracle, validate_backend
from repro.exec.cost import auto_chunk_refs, estimate_job_refs, job_cost
from repro.exec.executor import (
    ExecStats,
    JobRecord,
    SweepExecutor,
    execute_one,
    get_default_store,
    run_jobs,
    set_default_store,
)
from repro.exec.hashing import SCHEMA_VERSION, job_key, program_fingerprint
from repro.exec.jobs import SimJob
from repro.exec.scheduler import WorkerPool
from repro.exec.shard import (
    ShardSpec,
    merge_stores,
    merge_traces,
    parse_shard,
    shard_jobs,
)
from repro.exec.store import ResultStore, open_default_store

__all__ = [
    "BACKENDS",
    "SCHEMA_VERSION",
    "ExecStats",
    "JobRecord",
    "ResultStore",
    "ShardSpec",
    "SimJob",
    "SweepExecutor",
    "WorkerPool",
    "auto_chunk_refs",
    "estimate_job_refs",
    "execute_one",
    "get_default_store",
    "job_cost",
    "job_key",
    "merge_stores",
    "merge_traces",
    "open_default_store",
    "parse_shard",
    "program_fingerprint",
    "run_jobs",
    "run_oracle",
    "set_default_store",
    "shard_jobs",
    "validate_backend",
]
