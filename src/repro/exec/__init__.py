"""Parallel experiment execution with content-addressed memoization.

The subsystem has three layers:

* :mod:`repro.exec.hashing` -- stable content hashing of simulation
  inputs (program IR, layout, hierarchy geometry, trace mode);
* :mod:`repro.exec.store` -- :class:`ResultStore`, an on-disk
  content-addressed cache of :class:`~repro.cache.stats.SimulationResult`;
* :mod:`repro.exec.executor` -- :class:`SweepExecutor`, fanning
  independent :class:`SimJob` simulations across worker processes with
  deterministic ordering and graceful serial fallback;
* :mod:`repro.exec.backends` -- the tier catalogue (``auto``,
  ``symbolic``, ``model``, ``sim``, ``oracle``) the executor selects
  from, each keyed separately in the store.

Typical sweep::

    from repro.exec import ResultStore, SimJob, SweepExecutor

    jobs = [SimJob(program, layout, hierarchy) for layout in layouts]
    ex = SweepExecutor(workers=4, store=ResultStore("~/.cache/repro-sim"))
    results = ex.run(jobs)          # parallel; re-running is ~free
    print(ex.stats.format())        # hits/misses, per-job timing

See ``docs/parallel_execution.md`` for the design and the cache-key
contract.
"""

from repro.exec.backends import BACKENDS, run_oracle, validate_backend
from repro.exec.executor import (
    ExecStats,
    JobRecord,
    SweepExecutor,
    execute_one,
    get_default_store,
    run_jobs,
    set_default_store,
)
from repro.exec.hashing import SCHEMA_VERSION, job_key, program_fingerprint
from repro.exec.jobs import SimJob
from repro.exec.store import ResultStore, open_default_store

__all__ = [
    "BACKENDS",
    "SCHEMA_VERSION",
    "ExecStats",
    "JobRecord",
    "ResultStore",
    "SimJob",
    "SweepExecutor",
    "execute_one",
    "get_default_store",
    "job_key",
    "open_default_store",
    "program_fingerprint",
    "run_jobs",
    "run_oracle",
    "set_default_store",
    "validate_backend",
]
