"""Stable content hashing of simulation inputs.

A simulation's miss counters are fully determined by (a) the program IR
(arrays + loop nests), (b) the data layout (variable order, pads, sizes,
origin -- i.e. every base address), (c) the cache geometry of every
hierarchy level, (d) how the trace is produced (whole program, one
nest, or a kernel's custom trace hook), and (e) which *backend* produced
the counters (vectorized simulator, sequential oracle, or the symbolic
tier).  :func:`job_key` hashes exactly that set and nothing else, so the
on-disk result store can safely reuse results across processes,
sessions, and cosmetic refactors -- and results from different backends
can never alias under one key.

Deliberately **excluded** from the key:

* program / nest / statement labels and the program name -- cosmetic;
* ``hit_cycles`` / ``memory_cycles`` -- the cycle model is applied *after*
  simulation and never changes the stored counters;
* trace chunk sizes -- the streaming simulator guarantees chunking does
  not affect miss counts.

Cache level *names* are included: they are recorded inside the stored
:class:`~repro.cache.stats.SimulationResult`.

Bump :data:`SCHEMA_VERSION` whenever trace generation or simulation
semantics change in a way that invalidates previously stored results.
"""

from __future__ import annotations

import hashlib
import json

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.ir.affine import AffineExpr
from repro.ir.arrays import ArrayDecl
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.program import Program
from repro.ir.refs import ArrayRef
from repro.layout.layout import DataLayout

__all__ = [
    "SCHEMA_VERSION",
    "canonical",
    "digest",
    "job_key",
    "program_fingerprint",
]

# v2: a backend component joined the key when the executor grew tiered
# backends -- a symbolic (or oracle) result must never be served for a
# simulator request, and vice versa.
SCHEMA_VERSION = 2


def _affine(e: AffineExpr) -> list:
    return ["affine", sorted(e.terms.items()), e.constant]


def _array(a: ArrayDecl) -> list:
    return ["array", a.name, list(a.shape), a.element_size]


def _ref(r: ArrayRef) -> list:
    return ["ref", r.array, [_affine(s) for s in r.subscripts], r.is_write]


def _statement(s: Statement) -> list:
    return ["stmt", [_ref(r) for r in s.refs], s.flops]


def _loop(lp: Loop) -> list:
    return [
        "loop",
        lp.var,
        _affine(lp.lower),
        _affine(lp.upper),
        lp.step,
        [_affine(e) for e in lp.extra_uppers],
        [_affine(e) for e in lp.extra_lowers],
    ]


def _nest(n: LoopNest) -> list:
    return ["nest", [_loop(lp) for lp in n.loops], [_statement(s) for s in n.body]]


def canonical(obj) -> object:
    """Lower a simulation input to a deterministic JSON-able structure."""
    if isinstance(obj, Program):
        return [
            "program",
            [_array(a) for a in obj.arrays],
            [_nest(n) for n in obj.nests],
        ]
    if isinstance(obj, DataLayout):
        return [
            "layout",
            list(obj.order),
            list(obj.pads),
            list(obj.sizes),
            obj.origin,
        ]
    if isinstance(obj, HierarchyConfig):
        return ["hierarchy", [canonical(c) for c in obj.levels]]
    if isinstance(obj, CacheConfig):
        return ["cache", obj.name, obj.size, obj.line_size, obj.associativity]
    if isinstance(obj, AffineExpr):
        return _affine(obj)
    if isinstance(obj, (ArrayDecl, ArrayRef, Statement, Loop, LoopNest)):
        return {
            ArrayDecl: _array,
            ArrayRef: _ref,
            Statement: _statement,
            Loop: _loop,
            LoopNest: _nest,
        }[type(obj)](obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, (tuple, list)):
        return [canonical(x) for x in obj]
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for hashing")


def digest(payload: object) -> str:
    """SHA-256 hex digest of a canonical structure."""
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def program_fingerprint(program: Program) -> str:
    """Content hash of a program's IR alone (arrays + nests)."""
    return digest(canonical(program))


def job_key(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
    trace: tuple = ("program",),
    backend: str = "sim",
) -> str:
    """The result-store key of one simulation job.

    ``trace`` names how the address trace is produced: ``("program",)``
    for the default whole-program generator, ``("nest", i)`` for a single
    cold-cache nest, or ``("kernel", name)`` for a registry kernel with a
    custom trace hook.  ``backend`` names the tier that produced the
    counters (``"sim"``, ``"oracle"``, ``"symbolic"``); it partitions the
    store so tiers never serve each other's results.
    """
    return digest(
        [
            SCHEMA_VERSION,
            ["backend", backend],
            canonical(program),
            canonical(layout),
            canonical(hierarchy),
            canonical(tuple(trace)),
        ]
    )
