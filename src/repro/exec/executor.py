"""The parallel sweep executor.

Every experiment in the reproduction is a list of *independent*
(program, layout, hierarchy) simulations; :class:`SweepExecutor` runs such
a list with

* **memoization** -- each job's content key is checked against a
  :class:`~repro.exec.store.ResultStore` before any work happens;
* **parallelism** -- remaining jobs fan out across worker processes via
  :class:`concurrent.futures.ProcessPoolExecutor` (``pool.map`` with the
  job order preserved, so results are deterministic and byte-identical to
  the serial path);
* **graceful degradation** -- ``workers=1``, a single pending job, or any
  failure to stand a pool up (restricted environments, unpicklable
  platforms) falls back to in-process serial execution;
* **observability** -- per-job timing and hit/miss provenance are kept in
  :attr:`SweepExecutor.stats` and the cumulative :attr:`history`.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.cache.stats import SimulationResult
from repro.errors import ReproError
from repro.exec.jobs import SimJob
from repro.exec.store import ResultStore, open_default_store

__all__ = [
    "JobRecord",
    "ExecStats",
    "SweepExecutor",
    "execute_one",
    "run_jobs",
    "get_default_store",
    "set_default_store",
]

_UNSET = object()


@dataclass(frozen=True)
class JobRecord:
    """Provenance of one executed job."""

    index: int
    key: str
    seconds: float
    source: str  # "cache" | "serial" | "pool"
    tag: tuple = ()


@dataclass
class ExecStats:
    """What one :meth:`SweepExecutor.run` call did, and how long it took."""

    workers: int = 1
    wall_seconds: float = 0.0
    records: list[JobRecord] = field(default_factory=list)

    @property
    def jobs(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.source == "cache")

    @property
    def cache_misses(self) -> int:
        return self.jobs - self.cache_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.jobs if self.jobs else 0.0

    @property
    def sim_seconds(self) -> float:
        """Summed simulation time across jobs (exceeds wall time when
        jobs overlap in the pool)."""
        return sum(r.seconds for r in self.records if r.source != "cache")

    @classmethod
    def merged(cls, runs: "list[ExecStats]") -> "ExecStats":
        """Aggregate several runs' stats into one (batch evaluators, search).

        Wall time adds up (the runs happened sequentially); records
        concatenate, so every hit/miss/timing property keeps working.
        """
        out = cls(workers=max((r.workers for r in runs), default=1))
        for r in runs:
            out.wall_seconds += r.wall_seconds
            out.records.extend(r.records)
        return out

    def format(self) -> str:
        """One observability line for CLI output."""
        pooled = sum(1 for r in self.records if r.source == "pool")
        parts = [
            f"{self.jobs} jobs",
            f"{self.cache_hits} cached ({100.0 * self.hit_rate:.0f}%)",
            f"{self.cache_misses} simulated"
            + (f" ({pooled} in pool, workers={self.workers})" if pooled else ""),
            f"sim {self.sim_seconds:.2f}s",
            f"wall {self.wall_seconds:.2f}s",
        ]
        return ", ".join(parts)


def _timed_run(job: SimJob) -> tuple[SimulationResult, float]:
    """Worker entry point: simulate one job, measuring its time.

    Must stay a module-level function so it pickles to worker processes.
    """
    t0 = time.perf_counter()
    result = job.run()
    return result, time.perf_counter() - t0


class SweepExecutor:
    """Run independent simulation jobs, memoized and in parallel.

    Parameters
    ----------
    workers:
        Worker process count; ``None`` means ``os.cpu_count()``.  With one
        worker (or one pending job) everything runs in-process.
    store:
        A :class:`ResultStore` for memoization, or None to disable.
    """

    def __init__(self, workers: int | None = None, store: ResultStore | None = None):
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.store = store
        self.stats = ExecStats(workers=self.workers)
        self.history: list[ExecStats] = []
        self.predictions = 0
        self.predict_seconds = 0.0

    # -- internals ---------------------------------------------------------
    def _run_pool(self, jobs: list[SimJob], nworkers: int) -> list | None:
        """Map jobs over a process pool; None when the pool cannot be used."""
        try:
            with ProcessPoolExecutor(max_workers=nworkers) as pool:
                return list(pool.map(_timed_run, jobs, chunksize=1))
        except (
            OSError,
            ValueError,
            RuntimeError,
            ImportError,
            NotImplementedError,
            BrokenProcessPool,
            pickle.PicklingError,
        ):
            return None

    # -- API ---------------------------------------------------------------
    def run(self, jobs) -> list[SimulationResult]:
        """Execute all jobs; results come back in job order.

        Parallel and serial paths produce bit-identical results: the
        simulation is deterministic and ``pool.map`` preserves ordering.
        """
        jobs = list(jobs)
        t0 = time.perf_counter()
        stats = ExecStats(workers=self.workers)
        results: list[SimulationResult | None] = [None] * len(jobs)
        pending: list[tuple[int, str, SimJob]] = []

        for i, job in enumerate(jobs):
            if not isinstance(job, SimJob):
                raise ReproError(f"SweepExecutor.run expects SimJobs, got {type(job)!r}")
            key = job.key()
            cached = self.store.get(key) if self.store is not None else None
            if cached is not None:
                results[i] = cached
                stats.records.append(JobRecord(i, key, 0.0, "cache", job.tag))
            else:
                pending.append((i, key, job))

        if pending:
            # Duplicate keys inside one run simulate once; the extra
            # occurrences share the result like cache hits.
            unique: dict[str, tuple[int, SimJob]] = {}
            for i, key, job in pending:
                unique.setdefault(key, (i, job))
            ordered = list(unique.values())
            nworkers = min(self.workers, len(ordered))
            outs = None
            source = "pool"
            if nworkers > 1:
                outs = self._run_pool([job for _, job in ordered], nworkers)
            if outs is None:
                source = "serial"
                outs = [_timed_run(job) for _, job in ordered]
            computed = {key: out for (key, _), out in zip(unique.items(), outs)}
            for i, key, job in pending:
                result, seconds = computed[key]
                first = unique[key][0] == i
                results[i] = result
                stats.records.append(
                    JobRecord(i, key, seconds if first else 0.0,
                              source if first else "cache", job.tag)
                )
                if first and self.store is not None:
                    self.store.put(key, result)

        stats.records.sort(key=lambda r: r.index)
        stats.wall_seconds = time.perf_counter() - t0
        self.stats = stats
        self.history.append(stats)
        return results  # type: ignore[return-value]

    def predict(self, jobs) -> list[SimulationResult]:
        """Analytically score jobs without simulating (or caching) them.

        The batch-scoring counterpart of :meth:`run` for the closed-form
        predictor (:mod:`repro.model`): same job-list-in, result-list-out
        shape, but each entry is a :class:`~repro.cache.stats.SimulationResult`
        *mirror* derived from :func:`~repro.model.predict_job` -- an
        estimate for ranking, never a measurement.  Predictions are not
        written to the result store (they must never shadow real
        simulations under the same content key); :attr:`predictions` and
        :attr:`predict_seconds` accumulate across calls for reporting.
        """
        from repro.model import predict_job  # lazy: model imports analysis/layout

        jobs = list(jobs)
        t0 = time.perf_counter()
        out = []
        for job in jobs:
            if not isinstance(job, SimJob):
                raise ReproError(
                    f"SweepExecutor.predict expects SimJobs, got {type(job)!r}"
                )
            out.append(predict_job(job).result)
        self.predictions += len(jobs)
        self.predict_seconds += time.perf_counter() - t0
        return out

    def mark(self) -> int:
        """Checkpoint for :meth:`cumulative_stats` (current history length)."""
        return len(self.history)

    def cumulative_stats(self, since: int = 0) -> ExecStats:
        """Merged stats of every run since a :meth:`mark` checkpoint.

        Multi-round drivers (the autotuner, the experiments CLI) call
        :meth:`run` many times; this is the one-line summary across all
        of those rounds.
        """
        return ExecStats.merged(self.history[since:])


def run_jobs(
    jobs,
    workers: int | None = None,
    store: ResultStore | None = None,
) -> tuple[list[SimulationResult], ExecStats]:
    """One-shot convenience wrapper around :class:`SweepExecutor`."""
    ex = SweepExecutor(workers=workers, store=store)
    results = ex.run(jobs)
    return results, ex.stats


# -- default store plumbing (library entry points) --------------------------
#
# simulate_program / simulate_nest / simulate_kernel_layout memoize through
# a process-wide default store: off unless REPRO_CACHE_DIR is set or
# set_default_store() is called.  The experiments CLI manages its own store.

_default_store: ResultStore | None | object = _UNSET


def get_default_store() -> ResultStore | None:
    """The process-wide store used by the one-call simulation helpers."""
    global _default_store
    if _default_store is _UNSET:
        _default_store = open_default_store()
    return _default_store  # type: ignore[return-value]


def set_default_store(store: ResultStore | str | os.PathLike | None) -> None:
    """Install (or disable, with None) the process-wide default store."""
    global _default_store
    if store is None or isinstance(store, ResultStore):
        _default_store = store
    else:
        _default_store = ResultStore(store)


def execute_one(job: SimJob, store: ResultStore | None | object = _UNSET) -> SimulationResult:
    """Run one job through the memoization layer (serial, in-process).

    ``store`` defaults to the process-wide store; pass None to force a
    fresh simulation.
    """
    if store is _UNSET:
        store = get_default_store()
    if store is not None:
        key = job.key()
        cached = store.get(key)
        if cached is not None:
            return cached
    result = job.run()
    if store is not None:
        store.put(key, result)
    return result
