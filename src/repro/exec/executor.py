"""The parallel sweep executor.

Every experiment in the reproduction is a list of *independent*
(program, layout, hierarchy) simulations; :class:`SweepExecutor` runs such
a list with

* **memoization** -- each job's content key is checked against a
  :class:`~repro.exec.store.ResultStore` before any work happens; large
  sweeps trigger one batched :meth:`~repro.exec.store.ResultStore.scan`
  so a warm sweep costs one manifest read, not thousands of JSON opens;
* **tiered backends** -- ``backend="auto"`` serves each job from the
  cheapest authoritative tier: the symbolic closed form where it is
  provably exact (:mod:`repro.symbolic`), the vectorized simulator
  everywhere else (with a working-set-bounded trace chunk budget, see
  :func:`repro.exec.cost.auto_chunk_refs`).  ``"symbolic"``, ``"model"``,
  ``"sim"``, and ``"oracle"`` force a tier (see
  :mod:`repro.exec.backends`); every tier's results are keyed with its
  backend name so they never alias in the store;
* **parallelism** -- remaining jobs are ordered longest-first by a
  cost estimate from the IR (:func:`repro.exec.cost.job_cost`) and
  dispatched to a *persistent* worker pool
  (:mod:`repro.exec.scheduler`): the pool survives across ``run()``
  calls (close it with :meth:`close` or a ``with`` block), shared
  program/hierarchy state pickles once per sweep instead of once per
  job, and idle workers pull from the shared queue so stragglers never
  serialize the tail.  Results are reassembled in job order, so
  parallel execution stays byte-identical to the serial path;
* **sharding** -- ``shard="i/N"`` deterministically partitions any
  sweep by content key (:mod:`repro.exec.shard`): non-owned jobs are
  served from the store when present but never computed, so N shard
  runs over disjoint store directories can be fused with
  :func:`repro.exec.shard.merge_stores` into a store that replays
  byte-identically to the unsharded run;
* **graceful degradation** -- ``workers=1``, a single pending job, or any
  failure to stand a pool up (restricted environments, unpicklable
  platforms) falls back to in-process serial execution;
* **observability** -- per-job timing and hit/miss provenance are kept in
  :attr:`SweepExecutor.stats` and the cumulative :attr:`history`, mirrored
  into the :mod:`repro.obs` metrics registry (including ``exec.steals``
  and the pool queue-depth gauge), and (when a tracer is active) emitted
  as one span per sweep plus one span per executed job -- pool jobs
  carry their worker's pid and queue-wait time, so a Chrome trace shows
  per-worker lanes and scheduling gaps.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

from repro.cache.stats import SimulationResult
from repro.errors import ReproError, SimulationError
from repro.exec.backends import _timed_run_oracle, validate_backend
from repro.exec.cost import auto_chunk_refs, job_cost
from repro.exec.jobs import SimJob
from repro.exec.scheduler import WorkerPool, dispatch_jobs, pack_payloads
from repro.exec.shard import ShardSpec, parse_shard
from repro.exec.store import ResultStore, open_default_store
from repro.obs.metrics import format_exec_line, get_metrics
from repro.obs.timeline import emit_counter_tracks, get_timeline_window
from repro.obs.tracer import get_tracer
from repro.trace.generator import DEFAULT_CHUNK_REFS

__all__ = [
    "JobRecord",
    "ExecStats",
    "SweepExecutor",
    "execute_one",
    "run_jobs",
    "get_default_store",
    "set_default_store",
]

_UNSET = object()

#: Sweeps at least this large trigger one batched store scan up front
#: (warm sweeps then resolve every hit from the hot tier); smaller calls
#: keep the historic per-key lookups, so one-off helpers never pay a
#: whole-store read.
SCAN_THRESHOLD = 32


@dataclass(frozen=True)
class JobRecord:
    """Provenance of one executed job.

    ``span_id`` is the trace id of the ``exec.job`` span that computed
    this result (None when tracing is off or the job was store-served),
    so downstream layers -- the autotuner's ``search.best`` events, the
    tuning service's provenance -- can link back to the evidence.
    """

    index: int
    key: str
    seconds: float
    source: str  # "cache" | "serial" | "pool" | "symbolic" | "model"
    tag: tuple = ()
    span_id: int | None = None


@dataclass
class ExecStats:
    """What one :meth:`SweepExecutor.run` call did, and how long it took."""

    workers: int = 1
    wall_seconds: float = 0.0
    records: list[JobRecord] = field(default_factory=list)
    skipped: int = 0  # non-owned jobs a sharded run declined to compute
    steals: int = 0  # out-of-order completions (dynamic load balancing)
    queue_depth_peak: int = 0

    @property
    def jobs(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.source == "cache")

    @property
    def cache_misses(self) -> int:
        return self.jobs - self.cache_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.jobs if self.jobs else 0.0

    @property
    def symbolic_jobs(self) -> int:
        """Jobs the symbolic tier served (exact or forced-approximate)."""
        return sum(1 for r in self.records if r.source == "symbolic")

    @property
    def model_jobs(self) -> int:
        """Jobs the analytic-predictor tier served."""
        return sum(1 for r in self.records if r.source == "model")

    @property
    def simulated_jobs(self) -> int:
        """Jobs that actually ran a simulator (serial or pool)."""
        return sum(1 for r in self.records if r.source in ("serial", "pool"))

    @property
    def sim_seconds(self) -> float:
        """Summed simulation time across jobs (exceeds wall time when
        jobs overlap in the pool)."""
        return sum(r.seconds for r in self.records if r.source != "cache")

    @classmethod
    def merged(cls, runs: "list[ExecStats]") -> "ExecStats":
        """Aggregate several runs' stats into one (batch evaluators, search).

        Wall time adds up (the runs happened sequentially); records
        concatenate, so every hit/miss/timing property keeps working.
        """
        out = cls(workers=max((r.workers for r in runs), default=1))
        for r in runs:
            out.wall_seconds += r.wall_seconds
            out.records.extend(r.records)
            out.skipped += r.skipped
            out.steals += r.steals
            out.queue_depth_peak = max(out.queue_depth_peak, r.queue_depth_peak)
        return out

    def format(self) -> str:
        """One observability line for CLI output.

        Delegates to :func:`repro.obs.metrics.format_exec_line`, the same
        renderer the CLI's metrics-driven line uses, so the two views
        cannot drift.
        """
        pooled = sum(1 for r in self.records if r.source == "pool")
        return format_exec_line(
            jobs=self.jobs,
            cache_hits=self.cache_hits,
            pooled=pooled,
            workers=self.workers,
            sim_seconds=self.sim_seconds,
            wall_seconds=self.wall_seconds,
            symbolic=self.symbolic_jobs,
        )


def _timed_run(job: SimJob) -> tuple[SimulationResult, float, int, int, list | None]:
    """Worker entry point: simulate one job, measuring its time.

    Returns ``(result, seconds, start_time_ns, pid, timeline_rows)`` --
    the wall-clock start and worker pid let the parent synthesize a
    trace span for work that ran in another process, and the timeline
    rows (None unless the job asked for windowed telemetry) are replayed
    by the parent as Perfetto counter tracks.  Must stay a module-level
    function so it pickles to worker processes.
    """
    start_ns = time.time_ns()
    t0 = time.perf_counter()
    result, rows = job.run_timed()
    return result, time.perf_counter() - t0, start_ns, os.getpid(), rows


class SweepExecutor:
    """Run independent simulation jobs, memoized and in parallel.

    Parameters
    ----------
    workers:
        Worker process count; ``None`` means ``os.cpu_count()``.  With one
        worker (or one pending job) everything runs in-process.
    store:
        A :class:`ResultStore` for memoization, or None to disable.
    backend:
        Default tier for :meth:`run` (see :mod:`repro.exec.backends`):
        ``"sim"`` (the default, byte-identical to the pre-tier executor),
        ``"auto"`` (symbolic where provably exact, sim elsewhere),
        ``"symbolic"``, ``"model"``, or ``"oracle"``.
    validate:
        With True, every exact symbolic result is cross-checked against a
        real simulation of the same job; a divergence raises
        :class:`~repro.errors.SimulationError`.  A correctness harness
        switch -- it forfeits the symbolic tier's speed.
    shard:
        ``"i/N"`` (or a :class:`~repro.exec.shard.ShardSpec`) restricts
        *computation* to the jobs this shard owns; non-owned jobs are
        served from the store when present, else their result slot is
        ``None``.  The default (None) computes everything.

    The executor owns a persistent :class:`~repro.exec.scheduler.WorkerPool`
    created on first parallel dispatch and reused across ``run()`` calls;
    release it with :meth:`close` or use the executor as a context
    manager.  An unclosed executor's workers are reclaimed on garbage
    collection, so short-lived executors stay safe -- but multi-round
    drivers should keep one executor alive to amortize pool spin-up.
    """

    def __init__(
        self,
        workers: int | None = None,
        store: ResultStore | None = None,
        backend: str = "sim",
        validate: bool = False,
        shard: "str | ShardSpec | None" = None,
    ):
        if workers is not None and workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.store = store
        self.backend = validate_backend(backend)
        self.validate = validate
        self.shard = parse_shard(shard)
        self.stats = ExecStats(workers=self.workers)
        self.history: list[ExecStats] = []
        self.predictions = 0
        self.predict_seconds = 0.0
        self._pool: WorkerPool | None = None

    # -- lifecycle ---------------------------------------------------------
    def pool(self) -> WorkerPool:
        """The executor's persistent worker pool (created lazily)."""
        if self._pool is None:
            self._pool = WorkerPool(self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- internals ---------------------------------------------------------
    def _run_model(self, i, job, stats, results, tracer) -> None:
        """Serve one job from the analytic-predictor tier (never stored)."""
        from repro.model import predict_job  # lazy: model imports analysis/layout

        t0 = time.perf_counter()
        results[i] = predict_job(job).result
        stats.records.append(
            JobRecord(i, job.key("model"), time.perf_counter() - t0, "model", job.tag)
        )

    def _try_symbolic(self, i, job, mode, stats, results, tracer) -> bool:
        """Serve one job from the symbolic tier if the mode allows it.

        ``mode="symbolic"`` (forced) serves every job, approximate terms
        included; ``mode="auto"`` serves only jobs classified exact at
        every level and reports False otherwise so the caller falls back
        to the simulator.  Exact results are memoized under the job's
        symbolic key; approximate ones never touch the store.
        """
        from repro.symbolic import analyze_job, classify_job  # lazy: import cycle

        key = job.key("symbolic")
        if self.store is not None:
            cached = self.store.get(key)
            if cached is not None:
                results[i] = cached
                stats.records.append(JobRecord(i, key, 0.0, "cache", job.tag))
                if tracer.enabled:
                    tracer.event("exec.store_hit", cat="exec",
                                 key=key[:12], index=i, backend="symbolic")
                return True
        start_ns = time.time_ns()
        t0 = time.perf_counter()
        classification = classify_job(job)
        exact = all(c.exact for c in classification)
        if mode == "auto" and not exact:
            return False
        symbolic = analyze_job(job, classification=classification)
        seconds = time.perf_counter() - t0
        result = symbolic.result
        if exact:
            if self.validate:
                reference = job.run()
                if reference.total_refs != result.total_refs or any(
                    a.accesses != b.accesses or a.misses != b.misses
                    for a, b in zip(reference.levels, result.levels)
                ):
                    raise SimulationError(
                        f"symbolic/simulator divergence on job {key[:12]}: "
                        f"simulator {reference.summary()!r} vs "
                        f"symbolic {result.summary()!r}"
                    )
            if self.store is not None:
                self.store.put(key, result)
        results[i] = result
        sid = None
        if tracer.enabled:
            sid = tracer.add_span(
                "exec.job",
                start_ns=start_ns,
                dur_ns=int(seconds * 1e9),
                cat="exec",
                key=key[:12],
                source="symbolic",
                index=i,
                backend="symbolic",
                exact=exact,
                refs=result.total_refs,
            )
        stats.records.append(
            JobRecord(i, key, seconds, "symbolic", job.tag, span_id=sid)
        )
        return True

    def _serve_unowned(self, i, job, chosen, sim_backend, stats, results) -> None:
        """Store-only service of a job another shard owns.

        Checks every key the chosen tier could have stored the job
        under; a miss leaves ``results[i]`` as None and counts the job
        as skipped -- the owning shard's store has it.
        """
        cached = None
        key = None
        if self.store is not None and chosen != "model":
            if chosen in ("symbolic", "auto"):
                key = job.key("symbolic")
                cached = self.store.get(key)
            if cached is None and chosen != "symbolic":
                key = job.key(sim_backend)
                cached = self.store.get(key)
        if cached is not None:
            results[i] = cached
            stats.records.append(JobRecord(i, key, 0.0, "cache", job.tag))
        else:
            stats.skipped += 1

    def _dispatch_pending(self, ordered, runner, tracer, stats):
        """Compute the unique pending jobs, cost-ordered, pool-first.

        ``ordered`` is a list of ``(key, index, job)`` triples in
        first-seen order.  Returns ``{key: (out_tuple, source)}``.
        Longest-first submission plus a shared worker queue means short
        jobs backfill around stragglers; any pool failure finishes the
        missing jobs serially in-process, preserving determinism.
        """
        ranked = sorted(
            range(len(ordered)),
            key=lambda r: (
                -job_cost(ordered[r][2])[0],
                -job_cost(ordered[r][2])[1],
                r,
            ),
        )
        submit = [ordered[r] for r in ranked]
        outs: dict[int, tuple] = {}
        pooled_ranks: set[int] = set()
        if self.workers > 1 and len(submit) > 1:
            disp = dispatch_jobs(
                self.pool(), pack_payloads([job for _, _, job in submit]), runner
            )
            outs = disp.outs
            pooled_ranks = set(outs)
            stats.steals += disp.steals
            if disp.depth_samples:
                stats.queue_depth_peak = max(
                    stats.queue_depth_peak, max(disp.depth_samples)
                )
                m = get_metrics()
                depth_hist = m.histogram("exec.queue_depth")
                for depth in disp.depth_samples:
                    depth_hist.observe(depth)
        for rank, (_, _, job) in enumerate(submit):
            if rank not in outs:
                outs[rank] = runner(job)
        return {
            key: (outs[rank], "pool" if rank in pooled_ranks else "serial")
            for rank, (key, _, _) in enumerate(submit)
        }

    # -- API ---------------------------------------------------------------
    def run(self, jobs, backend: str | None = None) -> list[SimulationResult]:
        """Execute all jobs; results come back in job order.

        ``backend`` overrides the executor's default tier for this call
        (see :mod:`repro.exec.backends`).  Parallel and serial simulation
        paths produce bit-identical results: the simulation is
        deterministic and every result is keyed back to its submission
        index, whatever order workers finish in; the symbolic tier
        serves only results it can prove bit-identical (unless forced
        with ``backend="symbolic"``).

        When a tracer is active the whole call is one ``exec.sweep`` span
        with an ``exec.job`` child per executed job (worker pid + queue
        wait attached, backend-tagged) and a store hit/miss event per
        memoized lookup; either way the run's totals land in the metrics
        registry.
        """
        jobs = list(jobs)
        chosen = validate_backend(backend if backend is not None else self.backend)
        sim_backend = "oracle" if chosen == "oracle" else "sim"
        runner = _timed_run_oracle if chosen == "oracle" else _timed_run
        tracer = get_tracer()
        t0 = time.perf_counter()
        stats = ExecStats(workers=self.workers)
        results: list[SimulationResult | None] = [None] * len(jobs)
        pending: list[tuple[int, str, SimJob]] = []
        fresh_results: list[SimulationResult] = []
        if self.store is not None and len(jobs) >= SCAN_THRESHOLD:
            # One batched read; warm sweeps then hit the hot tier only.
            self.store.scan()

        with tracer.span(
            "exec.sweep", cat="exec", jobs=len(jobs), workers=self.workers,
            backend=chosen, **({"shard": str(self.shard)} if self.shard else {}),
        ) as sweep:
            for i, job in enumerate(jobs):
                if not isinstance(job, SimJob):
                    raise ReproError(
                        f"SweepExecutor.run expects SimJobs, got {type(job)!r}"
                    )
                if self.shard is not None and not self.shard.owns(job):
                    self._serve_unowned(i, job, chosen, sim_backend, stats, results)
                    continue
                if chosen == "model":
                    self._run_model(i, job, stats, results, tracer)
                    continue
                if chosen in ("symbolic", "auto") and self._try_symbolic(
                    i, job, chosen, stats, results, tracer
                ):
                    continue
                key = job.key(sim_backend)
                cached = self.store.get(key) if self.store is not None else None
                if cached is not None:
                    results[i] = cached
                    stats.records.append(JobRecord(i, key, 0.0, "cache", job.tag))
                    if tracer.enabled:
                        tracer.event("exec.store_hit", cat="exec",
                                     key=key[:12], index=i)
                else:
                    if (
                        chosen == "auto"
                        and job.max_chunk_refs == DEFAULT_CHUNK_REFS
                    ):
                        # Working-set-bounded chunk budget for the sim
                        # fallback; chunking never changes miss counts,
                        # and the chunk size is outside the content key.
                        job = replace(job, max_chunk_refs=auto_chunk_refs(job))
                    if tracer.enabled and job.timeline_window is None:
                        # Traced runs also collect windowed per-level
                        # telemetry (pure observability: outside the
                        # content key, counts unchanged).
                        window = get_timeline_window()
                        if window:
                            job = replace(job, timeline_window=window)
                    pending.append((i, key, job))
                    if tracer.enabled and self.store is not None:
                        tracer.event("exec.store_miss", cat="exec",
                                     key=key[:12], index=i)

            if pending:
                # Duplicate keys inside one run simulate once; the extra
                # occurrences share the result like cache hits.
                unique: dict[str, tuple[int, SimJob]] = {}
                for i, key, job in pending:
                    unique.setdefault(key, (i, job))
                ordered = [(key, i, job) for key, (i, job) in unique.items()]
                dispatch_ns = time.time_ns()
                computed = self._dispatch_pending(ordered, runner, tracer, stats)
                job_spans: dict[str, int] = {}
                timeline_emits: list[tuple[tuple, list, int | None]] = []
                for i, key, job in pending:
                    (result, seconds, start_ns, worker_pid, rows), source = (
                        computed[key]
                    )
                    first = unique[key][0] == i
                    results[i] = result
                    if first:
                        fresh_results.append(result)
                        if self.store is not None:
                            self.store.put(key, result)
                        if tracer.enabled:
                            extra = (
                                {"tag": "/".join(map(str, job.tag))}
                                if job.tag else {}
                            )
                            job_spans[key] = tracer.add_span(
                                "exec.job",
                                start_ns=start_ns,
                                dur_ns=int(seconds * 1e9),
                                cat="exec",
                                tid=worker_pid if source == "pool" else None,
                                key=key[:12],
                                source=source,
                                index=i,
                                worker_pid=worker_pid,
                                refs=result.total_refs,
                                queue_wait_s=round(
                                    max(0.0, (start_ns - dispatch_ns) / 1e9), 6
                                ),
                                **extra,
                            )
                        if rows and tracer.enabled:
                            timeline_emits.append((
                                tuple(cfg.name for cfg in job.hierarchy),
                                rows,
                                worker_pid if source == "pool" else None,
                            ))
                    stats.records.append(
                        JobRecord(i, key, seconds if first else 0.0,
                                  source if first else "cache", job.tag,
                                  span_id=job_spans.get(key))
                    )
                # Counter tracks replay in start-time order so each
                # (pid, tid, track) lane is monotone in the export even
                # when pool completions arrived out of order.
                timeline_emits.sort(key=lambda e: e[1][0][2])
                for levels, rows, lane_tid in timeline_emits:
                    emit_counter_tracks(levels, rows, tracer=tracer,
                                        tid=lane_tid)

            stats.records.sort(key=lambda r: r.index)
            stats.wall_seconds = time.perf_counter() - t0
            if tracer.enabled:
                sweep.set(
                    store_hits=stats.cache_hits,
                    simulated=stats.simulated_jobs,
                    symbolic=stats.symbolic_jobs,
                    sim_seconds=round(stats.sim_seconds, 6),
                    steals=stats.steals,
                    queue_peak=stats.queue_depth_peak,
                    **({"skipped": stats.skipped} if stats.skipped else {}),
                )

        self._publish_metrics(stats, fresh_results)
        self.stats = stats
        self.history.append(stats)
        return results  # type: ignore[return-value]

    def _publish_metrics(
        self, stats: ExecStats, fresh_results: list[SimulationResult]
    ) -> None:
        """Mirror one run's totals into the process-wide metrics registry.

        ``exec.*`` counters carry exactly the numbers behind the ``[exec]``
        CLI line; ``sim.refs`` and the per-level ``cache.<level>.*``
        counters aggregate what the *fresh* simulations (including those
        run in pool workers) pushed through each cache level.
        """
        m = get_metrics()
        m.gauge("exec.workers").set(self.workers)
        m.counter("exec.jobs").inc(stats.jobs)
        m.counter("exec.store_hits").inc(stats.cache_hits)
        m.counter("exec.simulated").inc(stats.simulated_jobs)
        m.counter("exec.pool_jobs").inc(
            sum(1 for r in stats.records if r.source == "pool")
        )
        if stats.symbolic_jobs:
            m.counter("exec.symbolic_jobs").inc(stats.symbolic_jobs)
        if stats.model_jobs:
            m.counter("exec.model_jobs").inc(stats.model_jobs)
        if stats.steals:
            m.counter("exec.steals").inc(stats.steals)
        if stats.skipped:
            m.counter("exec.shard_skipped").inc(stats.skipped)
        m.gauge("exec.queue_depth").set(stats.queue_depth_peak)
        m.counter("exec.sim_seconds").inc(stats.sim_seconds)
        m.counter("exec.wall_seconds").inc(stats.wall_seconds)
        if stats.simulated_jobs:
            job_hist = m.histogram("exec.job_seconds")
            for r in stats.records:
                if r.source in ("serial", "pool"):
                    job_hist.observe(r.seconds)
        for result in fresh_results:
            m.counter("sim.refs").inc(result.total_refs)
            for lv in result.levels:
                m.counter(f"cache.{lv.name}.accesses").inc(lv.accesses)
                m.counter(f"cache.{lv.name}.misses").inc(lv.misses)

    def predict(self, jobs, prefer_exact: bool = False) -> list[SimulationResult]:
        """Analytically score jobs without simulating (or caching) them.

        The batch-scoring counterpart of :meth:`run` for the closed-form
        predictor (:mod:`repro.model`): same job-list-in, result-list-out
        shape, but each entry is a :class:`~repro.cache.stats.SimulationResult`
        *mirror* derived from :func:`~repro.model.predict_job` -- an
        estimate for ranking, never a measurement.  With ``prefer_exact``
        each job is first classified by the symbolic tier and its exact
        counts used when authoritative (still trace-free, still never
        stored).  Predictions are not written to the result store (they
        must never shadow real simulations under the same content key);
        :attr:`predictions` and :attr:`predict_seconds` accumulate across
        calls for reporting.
        """
        from repro.model import predict_job  # lazy: model imports analysis/layout

        if prefer_exact:
            from repro.symbolic import analyze_job, classify_job

        jobs = list(jobs)
        t0 = time.perf_counter()
        out = []
        with get_tracer().span("exec.predict", cat="model", jobs=len(jobs)):
            for job in jobs:
                if not isinstance(job, SimJob):
                    raise ReproError(
                        f"SweepExecutor.predict expects SimJobs, got {type(job)!r}"
                    )
                if prefer_exact:
                    classification = classify_job(job)
                    if all(c.exact for c in classification):
                        out.append(
                            analyze_job(job, classification=classification).result
                        )
                        continue
                out.append(predict_job(job).result)
        elapsed = time.perf_counter() - t0
        self.predictions += len(jobs)
        self.predict_seconds += elapsed
        m = get_metrics()
        m.counter("model.predictions").inc(len(jobs))
        m.counter("model.predict_seconds").inc(elapsed)
        return out

    def mark(self) -> int:
        """Checkpoint for :meth:`cumulative_stats` (current history length)."""
        return len(self.history)

    def cumulative_stats(self, since: int = 0) -> ExecStats:
        """Merged stats of every run since a :meth:`mark` checkpoint.

        Multi-round drivers (the autotuner, the experiments CLI) call
        :meth:`run` many times; this is the one-line summary across all
        of those rounds.
        """
        return ExecStats.merged(self.history[since:])


def run_jobs(
    jobs,
    workers: int | None = None,
    store: ResultStore | None = None,
    backend: str = "sim",
) -> tuple[list[SimulationResult], ExecStats]:
    """One-shot convenience wrapper around :class:`SweepExecutor`.

    The executor (and its worker pool) is closed before returning --
    use a long-lived :class:`SweepExecutor` to amortize pool spin-up
    across calls.
    """
    with SweepExecutor(workers=workers, store=store, backend=backend) as ex:
        results = ex.run(jobs)
        return results, ex.stats


# -- default store plumbing (library entry points) --------------------------
#
# simulate_program / simulate_nest / simulate_kernel_layout memoize through
# a process-wide default store: off unless REPRO_CACHE_DIR is set or
# set_default_store() is called.  The experiments CLI manages its own store.

_default_store: ResultStore | None | object = _UNSET


def get_default_store() -> ResultStore | None:
    """The process-wide store used by the one-call simulation helpers."""
    global _default_store
    if _default_store is _UNSET:
        _default_store = open_default_store()
    return _default_store  # type: ignore[return-value]


def set_default_store(store: ResultStore | str | os.PathLike | None) -> None:
    """Install (or disable, with None) the process-wide default store."""
    global _default_store
    if store is None or isinstance(store, ResultStore):
        _default_store = store
    else:
        _default_store = ResultStore(store)


def execute_one(
    job: SimJob,
    store: ResultStore | None | object = _UNSET,
    backend: str = "sim",
) -> SimulationResult:
    """Run one job through the memoization layer (serial, in-process).

    Routes through the same tier/key logic as :meth:`SweepExecutor.run`,
    so a one-off call sees exactly the store entries a sweep would --
    including, with ``backend="auto"``, results the symbolic tier stored
    under its own key.  ``store`` defaults to the process-wide store;
    pass None to force a fresh computation.  The default ``backend="sim"``
    is byte-identical to the historic behavior (same key, same
    simulator).
    """
    if store is _UNSET:
        store = get_default_store()
    ex = SweepExecutor(workers=1, store=store, backend=backend)
    return ex.run([job])[0]
