"""The persistent, cost-aware, work-stealing dispatch core.

Before this module the executor stood a fresh ``ProcessPoolExecutor`` up
inside every :meth:`~repro.exec.executor.SweepExecutor.run` call and
mapped jobs over it statically (``pool.map(chunksize=1)``).  Multi-round
drivers -- the autotuner calls ``run()`` every round -- paid the full
pool spin-up/teardown per round, re-pickled the shared program IR and
hierarchy once *per job*, and a long straggler dispatched late
serialized the sweep's tail while short jobs idled the pool.

Three mechanisms fix that, all behind :class:`WorkerPool` and
:func:`dispatch`:

* **persistence** -- the pool is created lazily on first use and reused
  across ``run()`` calls until :meth:`WorkerPool.close` (the executor
  exposes ``close()`` and works as a context manager; a dropped pool is
  also shut down by a ``weakref.finalize`` guard so tests and notebooks
  cannot leak worker processes);
* **shared-payload broadcast** -- each sweep groups jobs by their shared
  ``(program, hierarchy)`` objects and pickles that pair *once per
  group*; workers receive the pickled blob plus a slim per-job variant
  (layout, trace mode, chunk budget) and memoize the unpickled payload
  by digest, so the expensive IR graph traversal happens once per sweep
  on the parent and once per worker on the other side, not once per job;
* **cost-aware work stealing** -- jobs are submitted longest-first
  (:func:`repro.exec.cost.job_cost`) to a shared queue that idle workers
  pull from (``submit`` + ``as_completed``), so load balances itself
  dynamically; a completion that overtakes an earlier-submitted job
  still in flight is counted as a *steal* (evidence the queue, not a
  static partition, assigned the work).

Determinism is untouched: results are keyed back to their submission
index, so the caller reassembles them in job order no matter what order
workers finish in -- byte-identical to the serial path, which
``tests/exec`` and the hypothesis property suite pin.
"""

from __future__ import annotations

import hashlib
import pickle
import weakref
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

__all__ = ["WorkerPool", "DispatchResult", "dispatch_jobs", "pack_payloads"]

#: Exceptions that mean "the pool is unusable", not "the job failed" --
#: the caller falls back to in-process serial execution on any of these.
POOL_ERRORS = (
    OSError,
    ValueError,
    RuntimeError,
    ImportError,
    NotImplementedError,
    BrokenProcessPool,
    pickle.PicklingError,
)

# -- worker side -------------------------------------------------------------

#: Per-worker-process memo of unpickled shared payloads, keyed by digest.
#: Bounded FIFO: a worker that outlives many sweeps holds only the most
#: recent payloads.
_PAYLOAD_CACHE: "OrderedDict[str, tuple]" = OrderedDict()
_PAYLOAD_CACHE_MAX = 8


def _shared_payload(digest: str, blob: bytes) -> tuple:
    payload = _PAYLOAD_CACHE.get(digest)
    if payload is None:
        payload = pickle.loads(blob)
        _PAYLOAD_CACHE[digest] = payload
        while len(_PAYLOAD_CACHE) > _PAYLOAD_CACHE_MAX:
            _PAYLOAD_CACHE.popitem(last=False)
    return payload


def run_shared(digest: str, blob: bytes, variant: tuple, runner) -> tuple:
    """Worker entry point: rebuild one job from its shared payload + slim
    variant, then run it through ``runner``.

    Must stay a module-level function so it pickles by reference.  The
    blob rides along with every submission (cheap: pickling ``bytes`` is
    a copy, not a graph traversal), but is unpickled at most once per
    worker per digest.
    """
    from repro.exec.jobs import SimJob  # lazy: avoid import cycle at fork

    program, hierarchy = _shared_payload(digest, blob)
    layout, kernel, nest_index, max_chunk_refs, timeline_window = variant
    job = SimJob(
        program=program,
        layout=layout,
        hierarchy=hierarchy,
        kernel=kernel,
        nest_index=nest_index,
        max_chunk_refs=max_chunk_refs,
        timeline_window=timeline_window,
    )
    return runner(job)


# -- parent side -------------------------------------------------------------


def pack_payloads(jobs) -> list[tuple[str, bytes, tuple]]:
    """One ``(digest, blob, variant)`` triple per job, payloads deduped.

    Jobs sharing ``(program, hierarchy)`` *objects* (the common sweep
    shape: one program, many layouts) share one pickled blob; distinct
    objects with identical content also collapse, because the digest is
    taken over the pickled bytes.
    """
    blob_of: dict[tuple[int, int], tuple[str, bytes]] = {}
    out = []
    for job in jobs:
        ident = (id(job.program), id(job.hierarchy))
        cached = blob_of.get(ident)
        if cached is None:
            blob = pickle.dumps(
                (job.program, job.hierarchy), protocol=pickle.HIGHEST_PROTOCOL
            )
            cached = (hashlib.sha256(blob).hexdigest(), blob)
            blob_of[ident] = cached
        digest, blob = cached
        variant = (job.layout, job.kernel, job.nest_index, job.max_chunk_refs,
                   job.timeline_window)
        out.append((digest, blob, variant))
    return out


class WorkerPool:
    """A lazily-created, persistent process pool with an explicit lifecycle.

    ``ensure()`` creates the inner :class:`ProcessPoolExecutor` on first
    use and returns it on every later call; ``close()`` shuts it down.
    A broken pool (worker crash, unpicklable platform) is discarded so
    the next ``ensure()`` can try again -- or the caller can fall back
    to serial execution.  Dropping the last reference shuts the workers
    down via ``weakref.finalize``, so an unclosed pool cannot leak
    processes past garbage collection.
    """

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: ProcessPoolExecutor | None = None
        self._finalizer = None
        self.spinups = 0

    def ensure(self) -> ProcessPoolExecutor:
        """The live inner pool, created on first use (may raise
        ``POOL_ERRORS`` members on platforms without process support)."""
        if self._pool is None:
            pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self._pool = pool
            self.spinups += 1
            self._finalizer = weakref.finalize(
                self, _shutdown_quietly, pool
            )
        return self._pool

    @property
    def alive(self) -> bool:
        return self._pool is not None

    def discard(self) -> None:
        """Drop a broken pool without waiting on its workers."""
        pool, self._pool = self._pool, None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if pool is not None:
            _shutdown_quietly(pool, wait_workers=False)

    def close(self) -> None:
        """Shut the workers down and forget the pool (idempotent)."""
        pool, self._pool = self._pool, None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if pool is not None:
            _shutdown_quietly(pool)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self.alive else "cold"
        return f"WorkerPool(max_workers={self.max_workers}, {state}, spinups={self.spinups})"


def _shutdown_quietly(pool: ProcessPoolExecutor, wait_workers: bool = True) -> None:
    try:
        pool.shutdown(wait=wait_workers, cancel_futures=True)
    except Exception:  # pragma: no cover - interpreter-teardown races
        pass


@dataclass
class DispatchResult:
    """What one parallel dispatch round did.

    ``outs`` maps submission rank -> worker return value for every job
    that completed in the pool; ranks absent from ``outs`` must be run
    serially by the caller (pool failure mid-flight).  ``steals`` counts
    completions that overtook an earlier-submitted job still in flight;
    ``depth_samples`` holds the queue depth observed at each completion.
    """

    outs: dict[int, tuple]
    steals: int
    depth_samples: list[int]
    failed: bool  # pool became unusable; caller finishes serially


def dispatch_jobs(pool: WorkerPool, entries, runner) -> DispatchResult:
    """Submit ``entries`` (already cost-ordered) and drain completions.

    ``entries`` is the ``pack_payloads`` output, one triple per job in
    submission order.  Returns partial results instead of raising when
    the pool breaks: the caller retains determinism by re-running the
    missing ranks in-process.
    """
    outs: dict[int, tuple] = {}
    steals = 0
    depth_samples: list[int] = []
    try:
        inner = pool.ensure()
        future_rank = {}
        for rank, (digest, blob, variant) in enumerate(entries):
            future_rank[inner.submit(run_shared, digest, blob, variant, runner)] = rank
    except POOL_ERRORS:
        pool.discard()
        return DispatchResult(outs, 0, depth_samples, failed=True)

    pending = set(future_rank)
    failed = False
    while pending:
        try:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
        except POOL_ERRORS:
            failed = True
            break
        for future in done:
            rank = future_rank[future]
            try:
                outs[rank] = future.result()
            except POOL_ERRORS:
                failed = True
                continue
            except BaseException:
                # A deterministic job error (SimulationError, ...): not a
                # pool problem -- cancel the rest and let it propagate,
                # exactly as the serial path would raise it.
                for f in pending:
                    f.cancel()
                raise
            if any(future_rank[f] < rank for f in pending):
                steals += 1
            depth_samples.append(len(pending))
        if failed:
            break
    if failed:
        for future in pending:
            future.cancel()
        pool.discard()
    return DispatchResult(outs, steals, depth_samples, failed=failed)
