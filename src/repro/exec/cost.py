"""Cheap per-job cost estimates for the sweep scheduler.

The scheduler (:mod:`repro.exec.scheduler`) dispatches pending jobs
longest-first, so a full-size ERLE straggler starts immediately instead
of serializing the tail of a sweep while short jobs idle the pool.  For
that ordering to be free it must come from the IR alone -- no traces,
no simulation:

* the **primary** cost is the dynamic reference count, computed exactly
  from loop trip counts (:meth:`repro.ir.loops.LoopNest.iterations`
  walks triangular bounds with the same
  :meth:`~repro.ir.loops.Loop.concrete_trip` arithmetic the trace
  generator uses, so the estimate counts precisely the references the
  simulator will stream);
* the **refinement** is the symbolic tier's working-set lower bound
  (:func:`repro.analysis.footprint.ref_lines_lower_bound`, microseconds
  per reference): of two jobs with equal reference counts, the one
  touching more distinct lines compresses worse in the vectorized
  simulator and runs longer.

The same working-set bound also picks the **trace chunk budget** for the
auto tier's sim fallback (:func:`auto_chunk_refs`): the streaming
simulator guarantees chunking never changes miss counts, so the budget
is a pure locality knob -- a job with a small footprint gets chunks
sized to keep the simulator's per-chunk intermediates cache-resident
instead of paying the default 4M-reference allocations.
"""

from __future__ import annotations

from repro.analysis.footprint import ref_lines_lower_bound
from repro.trace.generator import DEFAULT_CHUNK_REFS

__all__ = [
    "estimate_job_refs",
    "estimate_job_lines",
    "job_cost",
    "auto_chunk_refs",
    "MIN_CHUNK_REFS",
    "REFS_PER_LINE_BUDGET",
]

#: Floor of the adaptive chunk budget: small enough that a tiny job's
#: simulator intermediates stay cache-resident, large enough that the
#: per-chunk fixed costs (LRU state replay, domain compression setup)
#: stay amortized.
MIN_CHUNK_REFS = 65_536

#: Adaptive budget: this many streamed references per distinct line of
#: estimated working set.  A reuse-heavy job (many refs per line) still
#: gets proportionally roomy chunks; a streaming job converges to the
#: default budget.
REFS_PER_LINE_BUDGET = 64


def _job_nests(job):
    """The nests one job actually traces (all, or the selected one)."""
    if job.nest_index is not None:
        return (job.program.nests[job.nest_index],)
    return tuple(job.program.nests)


def estimate_job_refs(job) -> int:
    """Exact dynamic reference count of a job's generic trace.

    Kernels with custom trace hooks (IRR's gathers) may deviate slightly
    from the generic count; for cost *ordering* the generic count is the
    right estimate either way.
    """
    return sum(
        nest.iterations() * nest.refs_per_iteration for nest in _job_nests(job)
    )


def estimate_job_lines(job, line_size: int | None = None) -> int:
    """Working-set lower bound in distinct cache lines.

    Sum of per-reference :func:`ref_lines_lower_bound` values at the
    hierarchy's smallest line size (layout bases are ignored -- they
    shift offsets, never shrink a reference's own line count).  A lower
    bound, not an exact footprint: good enough to order equal-ref jobs
    and to scale chunk budgets, at microseconds per job.
    """
    if line_size is None:
        line_size = min(c.line_size for c in job.hierarchy)
    total = 0
    for nest in _job_nests(job):
        for ref in nest.refs:
            decl = job.program.decl(ref.array)
            total += ref_lines_lower_bound(nest, ref.offset_expr(decl), line_size)
    return total


def job_cost(job) -> tuple[int, int]:
    """Sortable cost estimate: ``(dynamic refs, working-set lines)``.

    Descending sort on this tuple is the scheduler's longest-first
    dispatch order; the lines refinement breaks ties between jobs whose
    reference counts agree (layout variants of one sweep point usually
    do).  Deterministic by construction -- both components come from the
    IR, never from timing.
    """
    return (estimate_job_refs(job), estimate_job_lines(job))


def auto_chunk_refs(job) -> int:
    """Working-set-bounded trace chunk budget for the sim fallback.

    ``REFS_PER_LINE_BUDGET`` references per estimated working-set line,
    clamped to ``[MIN_CHUNK_REFS, DEFAULT_CHUNK_REFS]`` and never above
    the job's own reference count rounded up to the floor.  Chunking is
    guaranteed not to change miss counts (the streaming simulator's
    contract, pinned by ``tests/cache``), so this is purely a locality /
    peak-memory knob.
    """
    refs = estimate_job_refs(job)
    if refs <= MIN_CHUNK_REFS:
        return MIN_CHUNK_REFS
    lines = estimate_job_lines(job)
    budget = lines * REFS_PER_LINE_BUDGET
    return max(MIN_CHUNK_REFS, min(DEFAULT_CHUNK_REFS, budget, refs))
