"""Content-addressed, on-disk memoization of simulation results.

A :class:`ResultStore` maps the stable job key of
:mod:`repro.exec.hashing` to a :class:`~repro.cache.stats.SimulationResult`
serialized as one small JSON file, sharded by the first two hex digits of
the key.  Writes are atomic (temp file + ``os.replace``), so concurrent
worker processes and concurrent sweep runs can share one store directory:
two writers racing on the same key write identical content, and readers
never observe a partial file.

Two read tiers sit above the loose files:

* a **hot in-memory tier** -- every ``get``/``put``/``scan`` leaves the
  decoded result in a process-local dict, so re-lookups inside one
  session (autotuner rounds re-crossing configs, the executor's warm
  sweeps) never touch the filesystem again;
* a **packed manifest** (``manifest.jsonl`` in the store root) -- one
  line per entry, appended on every ``put``.  :meth:`ResultStore.scan`
  loads the whole store through it in one batched read plus one
  directory listing (reconciling any loose files the manifest missed,
  then rewriting it), instead of thousands of tiny JSON opens.  The
  loose files stay the source of truth; the manifest is a cache of
  them and is rebuilt whenever it disagrees.

Invalidation is purely content-based -- there is nothing to expire.  Any
change to the program IR, the layout, the cache geometry, or the trace
mode produces a different key; bumping
:data:`repro.exec.hashing.SCHEMA_VERSION` orphans every old entry at once.

**Concurrency contract.**  Any number of processes (the long-running
tuning service, CLI sweeps, shard runs) may share one store directory:

* loose-file writes are write-temp-then-rename, so readers never see a
  partial entry and same-key racers simply overwrite with identical
  content;
* manifest appends are one ``os.write`` on an ``O_APPEND`` fd, so
  concurrent appenders land whole lines;
* a manifest rewrite racing an append can drop the appended line -- the
  loose files stay the source of truth and the next :meth:`scan`
  reconciles, re-reading anything the manifest missed.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from repro.cache.stats import LevelStats, SimulationResult

__all__ = ["ResultStore", "open_default_store", "result_to_payload", "payload_to_result"]

_PAYLOAD_SCHEMA = 1

MANIFEST_NAME = "manifest.jsonl"

# Environment surface: REPRO_CACHE_DIR points the default store somewhere,
# REPRO_NO_CACHE=1 disables it outright.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"


def result_to_payload(result: SimulationResult) -> dict:
    """Lossless JSON-able encoding of a simulation result."""
    return {
        "schema": _PAYLOAD_SCHEMA,
        "total_refs": result.total_refs,
        "levels": [
            {"name": lv.name, "accesses": lv.accesses, "misses": lv.misses}
            for lv in result.levels
        ],
    }


def payload_to_result(payload: dict) -> SimulationResult:
    """Inverse of :func:`result_to_payload` (raises on malformed payloads)."""
    if payload.get("schema") != _PAYLOAD_SCHEMA:
        raise ValueError(f"unsupported result payload schema: {payload.get('schema')!r}")
    return SimulationResult(
        total_refs=int(payload["total_refs"]),
        levels=tuple(
            LevelStats(
                name=lv["name"],
                accesses=int(lv["accesses"]),
                misses=int(lv["misses"]),
            )
            for lv in payload["levels"]
        ),
    )


class ResultStore:
    """Disk-backed result cache keyed by content hash.

    ``hits`` / ``misses`` count :meth:`get` outcomes and ``puts`` counts
    writes, giving the executor its observability for free.  Results
    served from the in-memory hot tier count as hits -- they *are*
    store hits, just cheap ones.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._hot: dict[str, SimulationResult] = {}
        self._scanned = False

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.root / MANIFEST_NAME

    def path_for(self, key: str) -> pathlib.Path:
        """Sharded file path of one key."""
        return self.root / key[:2] / f"{key}.json"

    def _read_file(self, key: str) -> SimulationResult | None:
        try:
            payload = json.loads(self.path_for(key).read_text())
            return payload_to_result(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def peek(self, key: str) -> SimulationResult | None:
        """Lookup without touching the hit/miss counters (merge, tests)."""
        cached = self._hot.get(key)
        if cached is not None:
            return cached
        result = self._read_file(key)
        if result is not None:
            self._hot[key] = result
        return result

    def get(self, key: str) -> SimulationResult | None:
        """Look up a key; unreadable or corrupt entries count as misses.

        Hot-tier entries answer without filesystem access; cold lookups
        fall through to the loose file (so entries written by *another*
        process after a :meth:`scan` are still found)."""
        result = self.peek(key)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store a result atomically (last writer wins, content identical).

        Write-through: the loose file is the durable record, the hot
        tier serves later lookups, and one line is appended to the
        manifest so the next :meth:`scan` (this process or another)
        stays a single batched read.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = result_to_payload(result)
        blob = json.dumps(payload, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._hot[key] = result
        self._append_manifest(key, payload)
        self.puts += 1

    def _append_manifest(self, key: str, payload: dict) -> None:
        # One os.write on an O_APPEND fd: concurrent writers (the tuning
        # service and a CLI sweep sharing one store dir) each land a
        # whole line, never an interleaved one.  POSIX guarantees the
        # atomicity for appends of this size; a torn line on an exotic
        # filesystem is still tolerated by _read_manifest/scan.
        line = json.dumps({"key": key, **payload}, separators=(",", ":"))
        try:
            fd = os.open(
                self.manifest_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            try:
                os.write(fd, (line + "\n").encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            pass  # manifest is a cache; scan() rebuilds it from loose files

    def _read_manifest(self) -> dict[str, SimulationResult]:
        out: dict[str, SimulationResult] = {}
        try:
            text = self.manifest_path.read_text()
        except OSError:
            return out
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                row = json.loads(line)
                out[row["key"]] = payload_to_result(row)
            except (ValueError, KeyError, TypeError):
                continue  # torn or stale line; the loose file wins
        return out

    def _loose_keys(self) -> set[str]:
        return {p.stem for p in self.root.glob("*/*.json")}

    def scan(self, refresh: bool = False) -> dict[str, SimulationResult]:
        """Load every stored entry in one batched read; returns the map.

        Reads the manifest once, reconciles it against the loose-file
        listing (files the manifest missed are read individually, stale
        manifest entries are dropped), rewrites the manifest when it
        disagreed, and leaves everything in the hot tier.  Idempotent
        and cached per store instance; pass ``refresh=True`` to pick up
        entries another process wrote since the last scan.
        """
        if self._scanned and not refresh:
            return dict(self._hot)
        manifest = self._read_manifest()
        loose = self._loose_keys()
        entries: dict[str, SimulationResult] = {}
        missed = 0
        for key in loose:
            result = manifest.get(key)
            if result is None:
                result = self._read_file(key)
                missed += 1
            if result is not None:
                entries[key] = result
        if missed or set(manifest) - loose:
            self._rewrite_manifest(entries)
        self._hot.update(entries)
        self._scanned = True
        return dict(self._hot)

    def _rewrite_manifest(self, entries: dict[str, SimulationResult]) -> None:
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "w") as f:
                for key in sorted(entries):
                    row = {"key": key, **result_to_payload(entries[key])}
                    f.write(json.dumps(row, separators=(",", ":")) + "\n")
            os.replace(tmp, self.manifest_path)
        except OSError:
            pass  # cache only; next scan tries again

    def merge_from(self, other: "ResultStore") -> int:
        """Copy every entry of ``other`` into this store; returns count.

        The byte-equality of colliding keys is the caller's concern
        (see :func:`repro.exec.shard.merge_stores`, which verifies it);
        this primitive just bulk-copies.
        """
        count = 0
        for key, result in other.scan().items():
            self.put(key, result)
            count += 1
        return count

    def __contains__(self, key: str) -> bool:
        return key in self._hot or self.path_for(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every stored entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            self.manifest_path.unlink()
        except OSError:
            pass
        self._hot.clear()
        self._scanned = False
        return removed

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from memory or disk (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"ResultStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, puts={self.puts}, hot={len(self._hot)})"
        )


def open_default_store() -> ResultStore | None:
    """The environment-configured store, or None when caching is off.

    Library entry points (``simulate_program`` etc.) memoize only when the
    user opts in via ``REPRO_CACHE_DIR``; the experiments CLI constructs
    its own store explicitly (on by default there, see ``--no-cache``).
    """
    if os.environ.get(ENV_NO_CACHE):
        return None
    root = os.environ.get(ENV_CACHE_DIR)
    if not root:
        return None
    return ResultStore(root)
