"""Content-addressed, on-disk memoization of simulation results.

A :class:`ResultStore` maps the stable job key of
:mod:`repro.exec.hashing` to a :class:`~repro.cache.stats.SimulationResult`
serialized as one small JSON file, sharded by the first two hex digits of
the key.  Writes are atomic (temp file + ``os.replace``), so concurrent
worker processes and concurrent sweep runs can share one store directory:
two writers racing on the same key write identical content, and readers
never observe a partial file.

Invalidation is purely content-based -- there is nothing to expire.  Any
change to the program IR, the layout, the cache geometry, or the trace
mode produces a different key; bumping
:data:`repro.exec.hashing.SCHEMA_VERSION` orphans every old entry at once.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from repro.cache.stats import LevelStats, SimulationResult

__all__ = ["ResultStore", "open_default_store", "result_to_payload", "payload_to_result"]

_PAYLOAD_SCHEMA = 1

# Environment surface: REPRO_CACHE_DIR points the default store somewhere,
# REPRO_NO_CACHE=1 disables it outright.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"


def result_to_payload(result: SimulationResult) -> dict:
    """Lossless JSON-able encoding of a simulation result."""
    return {
        "schema": _PAYLOAD_SCHEMA,
        "total_refs": result.total_refs,
        "levels": [
            {"name": lv.name, "accesses": lv.accesses, "misses": lv.misses}
            for lv in result.levels
        ],
    }


def payload_to_result(payload: dict) -> SimulationResult:
    """Inverse of :func:`result_to_payload` (raises on malformed payloads)."""
    if payload.get("schema") != _PAYLOAD_SCHEMA:
        raise ValueError(f"unsupported result payload schema: {payload.get('schema')!r}")
    return SimulationResult(
        total_refs=int(payload["total_refs"]),
        levels=tuple(
            LevelStats(
                name=lv["name"],
                accesses=int(lv["accesses"]),
                misses=int(lv["misses"]),
            )
            for lv in payload["levels"]
        ),
    )


class ResultStore:
    """Disk-backed result cache keyed by content hash.

    ``hits`` / ``misses`` count :meth:`get` outcomes and ``puts`` counts
    writes, giving the executor its observability for free.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def path_for(self, key: str) -> pathlib.Path:
        """Sharded file path of one key."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimulationResult | None:
        """Look up a key; unreadable or corrupt entries count as misses."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            result = payload_to_result(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store a result atomically (last writer wins, content identical)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(result_to_payload(result), separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every stored entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from disk (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"ResultStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, puts={self.puts})"
        )


def open_default_store() -> ResultStore | None:
    """The environment-configured store, or None when caching is off.

    Library entry points (``simulate_program`` etc.) memoize only when the
    user opts in via ``REPRO_CACHE_DIR``; the experiments CLI constructs
    its own store explicitly (on by default there, see ``--no-cache``).
    """
    if os.environ.get(ENV_NO_CACHE):
        return None
    root = os.environ.get(ENV_CACHE_DIR)
    if not root:
        return None
    return ResultStore(root)
