"""Deterministic sweep sharding and shard-store / trace merging.

A sweep is a list of independent jobs, so it shards trivially -- the
only design questions are *which* jobs a shard owns and how the pieces
fuse back into one artifact.  The answers here:

* **Partition by content key.**  ``ShardSpec(i, n)`` owns job *j* iff
  ``int(sha256-key-prefix, 16) % n == i - 1`` over the job's
  backend-independent content key (:meth:`SimJob.key` at the ``sim``
  tier).  The partition depends only on job *content* -- never on list
  order, worker count, or the backend tier a run selects -- so any two
  runs of ``--shard i/N`` over the same sweep agree on ownership, and
  the N shards exactly tile the sweep.
* **One store per shard.**  Each shard writes its own
  :class:`~repro.exec.store.ResultStore` directory;
  :func:`merge_stores` fuses them into a destination store, verifying
  that any key present in several shards carries identical payloads
  (content-addressing makes honest collisions byte-equal; a divergence
  is corruption and raises).
* **One trace per run.**  :func:`merge_traces` fuses per-shard JSONL
  traces into a single file: span ids are re-based per shard so they
  cannot collide, and metrics lines are summed counter-wise, so a
  multi-shard run renders as one timeline with one totals block.

The executor consumes :class:`ShardSpec` directly
(``SweepExecutor(shard="2/4")``): non-owned jobs are still served from
the store when present but are never *computed*, so a shard's store
contains exactly its partition and the merged store replays
byte-identically to the unsharded run (pinned by
``tests/exec/test_shard.py`` and the CI shard-merge smoke job).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.errors import ReproError
from repro.exec.store import ResultStore

__all__ = ["ShardSpec", "parse_shard", "shard_jobs", "merge_stores", "merge_traces"]


@dataclass(frozen=True)
class ShardSpec:
    """One shard of an N-way sweep partition (1-based, ``i/N`` notation)."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ReproError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ReproError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )

    def owns_key(self, key: str) -> bool:
        """Deterministic ownership of one content key (hex digest)."""
        return int(key[:16], 16) % self.count == self.index - 1

    def owns(self, job) -> bool:
        """Ownership of one job, decided on its backend-independent key.

        The ``sim`` tier key is the partition domain: every backend of
        the same job then lands in the same shard, so a shard's store is
        self-contained whatever tier served each job.
        """
        return self.owns_key(job.key("sim"))

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def parse_shard(spec: "str | ShardSpec | None") -> ShardSpec | None:
    """``"i/N"`` -> :class:`ShardSpec` (None passes through)."""
    if spec is None or isinstance(spec, ShardSpec):
        return spec
    try:
        index_s, count_s = str(spec).split("/", 1)
        return ShardSpec(int(index_s), int(count_s))
    except (ValueError, TypeError):
        raise ReproError(
            f"shard spec must look like 'i/N' (e.g. '2/4'), got {spec!r}"
        ) from None


def shard_jobs(jobs, spec: "str | ShardSpec") -> list:
    """The sub-list of ``jobs`` a shard owns (order preserved)."""
    spec = parse_shard(spec)
    return [job for job in jobs if spec.owns(job)]


def merge_stores(
    dest: "ResultStore | str", sources, clear_dest: bool = False
) -> dict[str, int]:
    """Fuse shard stores into ``dest``; returns merge statistics.

    Every entry of every source is copied into ``dest``
    (write-through, atomic per entry).  A key present in several
    sources -- or already in ``dest`` -- must carry an identical
    payload; differing payloads under one content key mean a corrupt
    store and raise :class:`~repro.errors.ReproError`.  Returns
    ``{"merged": fresh entries, "duplicates": byte-equal re-merges,
    "sources": source count}``.
    """
    if not isinstance(dest, ResultStore):
        dest = ResultStore(dest)
    if clear_dest:
        dest.clear()
    merged = duplicates = 0
    nsources = 0
    for source in sources:
        if not isinstance(source, ResultStore):
            source = ResultStore(source)
        nsources += 1
        for key, result in source.scan().items():
            existing = dest.peek(key)
            if existing is not None:
                if existing != result:
                    raise ReproError(
                        f"store merge conflict on key {key[:12]}...: "
                        f"{existing.summary()!r} vs {result.summary()!r}"
                    )
                duplicates += 1
                continue
            dest.put(key, result)
            merged += 1
    return {"merged": merged, "duplicates": duplicates, "sources": nsources}


def _rebase(value, offset: int):
    return value + offset if isinstance(value, int) else value


def merge_traces(dest: "str | pathlib.Path", sources) -> dict[str, int]:
    """Fuse per-shard JSONL traces into one file at ``dest``.

    Span/event records pass through with their ids (and parent ids)
    re-based by a per-shard offset so ids from different shard processes
    cannot collide; every shard's ``metrics`` line is folded into one
    final line whose counters are summed (gauges last-write-wins,
    histograms re-aggregated).  Returns ``{"spans": ..., "events": ...,
    "sources": ...}``.
    """
    dest = pathlib.Path(dest)
    spans = events = 0
    merged_metrics: dict = {}
    offset = 0
    nsources = 0
    with open(dest, "w") as out:
        for source in sources:
            nsources += 1
            max_id = 0
            for line in pathlib.Path(source).read_text().splitlines():
                if not line.strip():
                    continue
                row = json.loads(line)
                kind = row.get("type")
                if kind == "metrics":
                    _fold_metrics(merged_metrics, row.get("metrics") or {})
                    continue
                if kind == "span":
                    spans += 1
                elif kind == "event":
                    events += 1
                row_id = row.get("id")
                if isinstance(row_id, int):
                    max_id = max(max_id, row_id)
                    row["id"] = row_id + offset
                row["parent"] = _rebase(row.get("parent"), offset)
                if row.get("parent") is None:
                    row["parent"] = None
                out.write(json.dumps(row, separators=(",", ":")) + "\n")
            offset += max_id
        if merged_metrics:
            out.write(
                json.dumps({"type": "metrics", "metrics": merged_metrics},
                           separators=(",", ":")) + "\n"
            )
    return {"spans": spans, "events": events, "sources": nsources}


def _fold_metrics(into: dict, metrics: dict) -> None:
    counters = into.setdefault("counters", {})
    for name, value in (metrics.get("counters") or {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = into.setdefault("gauges", {})
    gauges.update(metrics.get("gauges") or {})
    hists = into.setdefault("histograms", {})
    for name, summ in (metrics.get("histograms") or {}).items():
        agg = hists.get(name)
        if agg is None:
            hists[name] = dict(summ)
            continue
        agg["count"] += summ.get("count", 0)
        agg["total"] += summ.get("total", 0.0)
        agg["min"] = min(agg.get("min", float("inf")), summ.get("min", float("inf")))
        agg["max"] = max(agg.get("max", float("-inf")), summ.get("max", float("-inf")))
        agg["mean"] = agg["total"] / agg["count"] if agg["count"] else 0.0
    for section in ("counters", "gauges", "histograms"):
        if not into.get(section):
            into.pop(section, None)
