"""Simulation jobs: one (program, layout, hierarchy) point of a sweep.

A :class:`SimJob` is a picklable value object, so a
:class:`~repro.exec.executor.SweepExecutor` can ship it to worker
processes.  Kernels with custom trace hooks (IRR's irregular gathers) are
referenced *by registry name* rather than by callable, which keeps jobs
independent of process state; ordinary kernels trace identically to the
generic program path and deliberately share its cache key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.cache.config import HierarchyConfig
from repro.cache.stats import SimulationResult
from repro.cache.streaming import StreamingHierarchy
from repro.errors import ReproError
from repro.exec.hashing import job_key
from repro.ir.program import Program
from repro.layout.layout import DataLayout
from repro.trace.generator import DEFAULT_CHUNK_REFS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.kernels.registry import Kernel

__all__ = ["SimJob"]


@dataclass(frozen=True)
class SimJob:
    """One independent simulation of a sweep.

    ``kernel`` names a registry kernel whose *custom* trace hook must be
    used; leave it None for the generic vectorized trace.  ``nest_index``
    restricts the trace to one nest (cold caches), as
    :func:`repro.simulate.simulate_nest` does.  ``tag`` is opaque caller
    metadata (figure/version labels); it never reaches the cache key.
    ``timeline_window`` asks :meth:`run_timed` for windowed per-level
    telemetry (refs per window; None/0 disables); like ``tag`` it is
    pure observability and never reaches the cache key -- the simulated
    counts are bit-identical with or without it.
    """

    program: Program
    layout: DataLayout
    hierarchy: HierarchyConfig
    kernel: str | None = None
    nest_index: int | None = None
    max_chunk_refs: int = DEFAULT_CHUNK_REFS
    tag: tuple = field(default=(), compare=False)
    timeline_window: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kernel is not None and self.nest_index is not None:
            raise ReproError("a job traces either a kernel or one nest, not both")
        if self.nest_index is not None and not (
            0 <= self.nest_index < len(self.program.nests)
        ):
            raise ReproError(
                f"nest_index {self.nest_index} out of range for program "
                f"with {len(self.program.nests)} nests"
            )
        if self.max_chunk_refs <= 0:
            raise ReproError("max_chunk_refs must be positive")
        object.__setattr__(self, "tag", tuple(self.tag))

    @classmethod
    def for_kernel(
        cls,
        kernel: "Kernel",
        program: Program,
        layout: DataLayout,
        hierarchy: HierarchyConfig,
        max_chunk_refs: int = DEFAULT_CHUNK_REFS,
        tag: tuple = (),
    ) -> "SimJob":
        """Job for a registry kernel, honoring its custom trace hook.

        Kernels without a hook produce exactly the generic program trace,
        so their jobs omit the kernel name and share cache entries with
        :func:`repro.simulate.simulate_program`.
        """
        name = kernel.name if kernel.custom_trace is not None else None
        return cls(
            program=program,
            layout=layout,
            hierarchy=hierarchy,
            kernel=name,
            max_chunk_refs=max_chunk_refs,
            tag=tag,
        )

    def trace_spec(self) -> tuple:
        """The trace-mode component of the cache key."""
        if self.kernel is not None:
            return ("kernel", self.kernel)
        if self.nest_index is not None:
            return ("nest", self.nest_index)
        return ("program",)

    def key(self, backend: str = "sim") -> str:
        """Stable content hash identifying this job's result.

        ``backend`` names the tier whose result the key addresses; tiers
        get disjoint keys so an analytic or symbolic result can never be
        served for a simulator request (or vice versa).
        """
        return job_key(
            self.program, self.layout, self.hierarchy, self.trace_spec(), backend
        )

    def chunks(self) -> Iterator:
        """The job's address-trace chunks."""
        # Imported lazily: the kernel registry imports transforms/layout
        # modules that in turn may import repro.exec.
        if self.kernel is not None:
            from repro.kernels.registry import get_kernel

            return get_kernel(self.kernel).trace_chunks(self.program, self.layout)
        from repro.trace.generator import nest_trace_chunks, program_trace_chunks

        if self.nest_index is not None:
            nest = self.program.nests[self.nest_index]
            return nest_trace_chunks(
                self.program, self.layout, nest, self.max_chunk_refs
            )
        return program_trace_chunks(self.program, self.layout, self.max_chunk_refs)

    def run(self) -> SimulationResult:
        """Simulate this job (pure computation, no memoization)."""
        return self.run_timed()[0]

    def run_timed(self) -> tuple[SimulationResult, list | None]:
        """Simulate and also return timeline rows when requested.

        The second element is ``Timeline.rows()`` (plain picklable
        lists) when ``timeline_window`` is set, else None.  The
        simulation itself is identical either way.
        """
        timeline = None
        if self.timeline_window:
            from repro.obs.timeline import Timeline

            timeline = Timeline(
                levels=tuple(cfg.name for cfg in self.hierarchy),
                window_refs=self.timeline_window,
            )
        sim = StreamingHierarchy(self.hierarchy, timeline=timeline)
        sim.feed_all(self.chunks())
        result = sim.result()
        return result, (timeline.rows() if timeline is not None else None)
