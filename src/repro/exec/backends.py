"""Backend tiers of the execution substrate.

Every tier answers the same question -- "what are this job's per-level
miss counts?" -- at a different point on the cost/authority curve:

``symbolic``
    Closed-form counting from the IR (:mod:`repro.symbolic`).  Exact --
    bit-for-bit the simulator's counts -- on jobs classified into the
    no-eviction regime; the analytic estimate otherwise.  Microseconds,
    zero address traces.
``model``
    The analytic predictor (:mod:`repro.model`).  Always an estimate,
    built for ranking layouts.  Microseconds.
``sim``
    The vectorized streaming simulator -- the reproduction's reference
    measurement.  O(trace).
``oracle``
    Sequential one-access-at-a-time LRU replay
    (:class:`~repro.cache.streaming.SequentialAssocCache` per level).
    Obviously correct, slowest; the ground truth the vectorized
    simulator is property-tested against.
``auto``
    Per-job selection: serve the symbolic tier where it is provably
    exact, fall back to ``sim`` everywhere else.

Tier results never alias in the :class:`~repro.exec.store.ResultStore`:
the backend that produced a result is part of its content key
(:func:`~repro.exec.hashing.job_key`), and only *authoritative* backends
(``sim``, ``oracle``, exact ``symbolic``) are stored at all.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.cache.stats import LevelStats, SimulationResult
from repro.cache.streaming import SequentialAssocCache
from repro.errors import ReproError

__all__ = ["BACKENDS", "STORED_BACKENDS", "validate_backend", "run_oracle"]

#: Every selectable backend tier, cheapest-authoritative first.
BACKENDS = ("auto", "symbolic", "model", "sim", "oracle")

#: Backends whose results are memoized (under their own key component).
#: ``model`` is never stored -- an estimate must not shadow a
#: measurement; ``symbolic`` results are stored only when exact.
STORED_BACKENDS = ("symbolic", "sim", "oracle")


def validate_backend(name: str) -> str:
    """Check a backend name, returning it for chaining."""
    if name not in BACKENDS:
        raise ReproError(
            f"unknown backend {name!r}; expected one of {', '.join(BACKENDS)}"
        )
    return name


def run_oracle(job) -> SimulationResult:
    """Simulate one job on the sequential reference hierarchy.

    Streams the job's trace chunks through a chain of
    :class:`SequentialAssocCache` levels with the same filtering
    semantics as the vectorized simulator (level *i+1* sees level *i*'s
    miss stream) -- the executor's slowest, most trustworthy tier.
    """
    caches = [
        SequentialAssocCache(c.size, c.line_size, c.associativity)
        for c in job.hierarchy
    ]
    total = 0
    for chunk in job.chunks():
        stream = np.asarray(chunk, dtype=np.int64)
        total += int(stream.size)
        for cache in caches:
            mask = cache.feed(stream)
            stream = stream[mask]
    return SimulationResult(
        total_refs=total,
        levels=tuple(
            LevelStats(cfg.name, cache.accesses, cache.misses)
            for cfg, cache in zip(job.hierarchy, caches)
        ),
    )


def _timed_run_oracle(job) -> tuple[SimulationResult, float, int, int, None]:
    """Pool-able worker entry point for the oracle tier (mirrors
    :func:`repro.exec.executor._timed_run`; the sequential oracle does
    not produce timeline rows)."""
    start_ns = time.time_ns()
    t0 = time.perf_counter()
    result = run_oracle(job)
    return result, time.perf_counter() - t0, start_ns, os.getpid(), None
