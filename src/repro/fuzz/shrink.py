"""Greedy divergence-preserving program minimization.

A campaign-scale divergence is only useful once it is small enough to
stare at.  :func:`shrink_program` walks a fixed sequence of reduction
passes -- drop nests, drop statements, drop reads, halve loop trips,
simplify subscripts to stride 1 / offset 0, flatten triangular bounds --
and accepts a candidate whenever (a) it still validates and (b) the
caller's ``still_diverges`` predicate still fires.  Array extents are
re-tightened after every accepted step, so the minimized program's
declarations match exactly what it touches.

The predicate sees complete candidate :class:`~repro.ir.program.Program`
objects, so the same shrinker serves every divergence kind: sim-vs-oracle
mismatches, model blind spots, trace disagreements.  Passes iterate to a
fixpoint with a hard round cap; shrinking is deterministic, so a
minimized corpus case is stable across runs.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import IRError, ReproError
from repro.ir.affine import AffineExpr, const
from repro.ir.arrays import ArrayDecl
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.program import Program
from repro.ir.ranges import affine_interval, loop_var_ranges
from repro.ir.validate import validate_program

__all__ = ["shrink_program", "tighten_arrays"]

MAX_ROUNDS = 40


def _is_valid(program: Program) -> bool:
    try:
        return not any(
            f.severity == "error" for f in validate_program(program)
        )
    except IRError:
        return False


def tighten_arrays(program: Program) -> Program:
    """Drop unreferenced arrays and shrink extents to the subscript hulls.

    Keeps the program valid by construction: the new extent of every
    dimension is exactly the interval maximum of the subscripts that
    touch it (at least 1).
    """
    needed: dict[str, list[int]] = {}
    for nest in program.nests:
        ranges = loop_var_ranges(nest)
        for ref in nest.refs:
            decl = program.decl(ref.array)
            extents = needed.setdefault(ref.array, [1] * decl.rank)
            for dim, sub in enumerate(ref.subscripts):
                _, hi = affine_interval(sub, ranges)
                extents[dim] = max(extents[dim], hi)
    arrays = tuple(
        ArrayDecl(a.name, tuple(needed[a.name]), a.element_size)
        for a in program.arrays
        if a.name in needed
    )
    if not arrays:
        return program
    return Program(program.name, arrays, program.nests)


def _drop_nests(program: Program) -> Iterator[Program]:
    if len(program.nests) <= 1:
        return
    for i in range(len(program.nests)):
        nests = program.nests[:i] + program.nests[i + 1:]
        yield program.with_nests(nests)


def _drop_statements(program: Program) -> Iterator[Program]:
    for ni, nest in enumerate(program.nests):
        if len(nest.body) <= 1:
            continue
        for si in range(len(nest.body)):
            body = nest.body[:si] + nest.body[si + 1:]
            yield program.replace_nest(ni, nest.with_body(body))


def _drop_reads(program: Program) -> Iterator[Program]:
    for ni, nest in enumerate(program.nests):
        for si, st in enumerate(nest.body):
            if len(st.refs) <= 1:
                continue
            for ri in range(len(st.refs)):
                refs = st.refs[:ri] + st.refs[ri + 1:]
                body = list(nest.body)
                body[si] = Statement(refs, st.flops, st.label)
                yield program.replace_nest(ni, nest.with_body(tuple(body)))


def _halve_trips(program: Program) -> Iterator[Program]:
    for ni, nest in enumerate(program.nests):
        for li, lp in enumerate(nest.loops):
            if not (lp.lower.is_constant and lp.upper.is_constant):
                continue
            trip = lp.trip_count()
            if trip <= 1:
                continue
            lo = lp.lower.constant
            upper = const(lo + (max(1, trip // 2) - 1) * lp.step)
            loops = list(nest.loops)
            loops[li] = Loop(lp.var, lp.lower, upper, lp.step,
                             lp.extra_uppers, lp.extra_lowers)
            yield program.replace_nest(ni, nest.with_loops(tuple(loops)))


def _flatten_triangular(program: Program) -> Iterator[Program]:
    """Replace symbolic loop bounds with their constant interval hulls."""
    for ni, nest in enumerate(program.nests):
        ranges = loop_var_ranges(nest)
        for li, lp in enumerate(nest.loops):
            if lp.is_rectangular and not (lp.extra_uppers or lp.extra_lowers):
                continue
            lo, _ = affine_interval(lp.lower, ranges)
            _, hi = affine_interval(lp.upper, ranges)
            loops = list(nest.loops)
            loops[li] = Loop(lp.var, const(lo), const(max(lo, hi)), lp.step)
            yield program.replace_nest(ni, nest.with_loops(tuple(loops)))


def _simplify_subscripts(program: Program) -> Iterator[Program]:
    """One subscript at a time: stride -> +-1, then offset -> minimal."""
    for ni, nest in enumerate(program.nests):
        ranges = loop_var_ranges(nest)
        for si, st in enumerate(nest.body):
            for ri, ref in enumerate(st.refs):
                for di, sub in enumerate(ref.subscripts):
                    for simpler in _simpler_subscripts(sub, ranges):
                        refs = list(st.refs)
                        subs = list(ref.subscripts)
                        subs[di] = simpler
                        refs[ri] = type(ref)(ref.array, tuple(subs),
                                             ref.is_write)
                        body = list(nest.body)
                        body[si] = Statement(tuple(refs), st.flops, st.label)
                        yield program.replace_nest(
                            ni, nest.with_body(tuple(body))
                        )


def _simpler_subscripts(sub: AffineExpr, ranges) -> Iterator[AffineExpr]:
    candidates: list[AffineExpr] = []
    terms = sub.terms
    if len(terms) > 1:
        # Collapse multi-variable subscripts to a single variable.
        for name, coeff in terms.items():
            base = AffineExpr({name: coeff})
            lo, _ = affine_interval(base, ranges)
            candidates.append(base + max(0, 1 - lo))
    elif len(terms) == 1:
        ((name, coeff),) = terms.items()
        if abs(coeff) != 1:
            base = AffineExpr({name: 1 if coeff > 0 else -1})
        else:
            base = AffineExpr({name: coeff})
        lo, _ = affine_interval(base, ranges)
        candidates.append(base + max(0, 1 - lo))
    elif sub.constant > 1:
        candidates.append(const(1))
    for cand in candidates:
        if cand != sub:
            yield cand


PASSES: tuple[Callable[[Program], Iterator[Program]], ...] = (
    _drop_nests,
    _drop_statements,
    _drop_reads,
    _flatten_triangular,
    _halve_trips,
    _simplify_subscripts,
)


def shrink_program(
    program: Program,
    still_diverges: Callable[[Program], bool],
    max_rounds: int = MAX_ROUNDS,
) -> Program:
    """Minimize ``program`` while ``still_diverges`` keeps returning True.

    ``still_diverges`` must be True for the input program, otherwise there
    is nothing to preserve and :class:`ReproError` is raised.  Returns the
    fixpoint of the greedy pass sequence (or the best program found when
    the round cap trips first); the result always validates.
    """
    current = tighten_arrays(program)
    if not still_diverges(current):
        if not still_diverges(program):
            raise ReproError(
                "shrink_program: the input program does not satisfy the "
                "divergence predicate"
            )
        current = program  # tightening alone killed it; shrink the original

    for _ in range(max_rounds):
        improved = False
        for reduce in PASSES:
            accepted = True
            while accepted:
                accepted = False
                for candidate in reduce(current):
                    candidate = tighten_arrays(candidate)
                    if not _is_valid(candidate):
                        continue
                    try:
                        if still_diverges(candidate):
                            current = candidate
                            improved = accepted = True
                            break
                    except Exception:
                        continue  # a crashing candidate is not a shrink
        if not improved:
            break
    return current
