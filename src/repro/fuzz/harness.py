"""The differential fuzz harness: predictor vs. simulator vs. oracles.

Each generated program is pushed through every cross-check the repo's
correctness story rests on, and disagreements are recorded as typed,
classified :class:`Divergence` records:

* ``trace`` -- the vectorized trace generator vs. the bounds-checking
  Python interpreter (byte equality of the address stream);
* ``sim`` -- the production hierarchy simulation (vectorized
  direct-mapped / k-way paths via :class:`~repro.exec.jobs.SimJob`) vs. a
  :class:`~repro.cache.streaming.SequentialAssocCache` oracle hierarchy
  (exact per-level access/miss equality);
* ``model`` -- the closed-form predictor vs. the simulator, classified
  by per-level relative miss error into magnitude bands
  (``exact <= 1% < close <= 10% < coarse <= 1x < loose <= 10x < blind``);
  only ``blind`` counts as a divergence worth distilling;
* ``error`` -- any component raising where it should have produced a
  number.

The exact pairs (``trace``, ``sim``) are hard contracts: a single
divergence is a bug.  The ``model`` band is an accuracy envelope: blind
spots are expected occasionally, get shrunk and committed to the
regression corpus, and the CI gate requires every one found by the
fixed-seed smoke campaign to already be a committed (minimized) case.

Every case knows its one-line repro command (:func:`repro_command`), so
a failure at campaign scale collapses to ``ext_fuzz --seed N --count 1``.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.cache.stats import LevelStats, SimulationResult
from repro.cache.streaming import SequentialAssocCache
from repro.errors import ReproError
from repro.exec.executor import SweepExecutor
from repro.exec.jobs import SimJob
from repro.fuzz.generator import FuzzConfig, program_stream
from repro.ir.program import Program
from repro.layout.layout import DataLayout
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.trace.generator import generate_trace
from repro.trace.interpreter import interpret_program

__all__ = [
    "MODEL_BANDS",
    "FUZZ_HIERARCHIES",
    "Divergence",
    "CaseReport",
    "CampaignReport",
    "repro_command",
    "classify_model_error",
    "oracle_simulate",
    "diff_case",
    "run_campaign",
]

# Relative per-level miss error -> band name, tightest first.  "blind"
# (the open-ended band) is the only one treated as a divergence.  The
# bounds are calibrated against the predictor's measured error
# distribution on fuzzed programs (median ~0.25, p99 ~7x): "blind" means
# beyond the ~99.5th percentile -- a statistically exceptional miss of
# the envelope, not the model's routine coarseness on random kernels.
MODEL_BANDS: tuple[tuple[float, str], ...] = (
    (0.01, "exact"),
    (0.10, "close"),
    (1.00, "coarse"),
    (10.0, "loose"),
    (float("inf"), "blind"),
)

BAND_ORDER = tuple(name for _, name in MODEL_BANDS)


def _hier(l1_kb: int, l1_line: int, l1_k: int, l2_kb: int, l2_line: int,
          l2_k: int) -> HierarchyConfig:
    return HierarchyConfig(
        levels=(
            CacheConfig(l1_kb * 1024, l1_line, l1_k, "L1", 1.0),
            CacheConfig(l2_kb * 1024, l2_line, l2_k, "L2", 6.0),
        ),
        memory_cycles=50.0,
    )


# Deliberately tiny caches: fuzzed arrays are a few KB, so conflict and
# capacity behaviour -- the regimes the predictor models -- actually
# trigger.  Keys name the associativity shape.
FUZZ_HIERARCHIES: dict[str, HierarchyConfig] = {
    "dm": _hier(1, 32, 1, 8, 64, 1),
    "2way": _hier(1, 32, 2, 8, 64, 4),
    "4way": _hier(2, 64, 4, 16, 64, 8),
}

QUICK_HIERARCHY_NAMES = ("dm", "2way")


def repro_command(seed: int) -> str:
    """The one-line repro for a fuzz case found at campaign scale."""
    return (
        "PYTHONPATH=src python -m repro.experiments ext_fuzz "
        f"--seed {seed} --count 1"
    )


@dataclass(frozen=True)
class Divergence:
    """One classified disagreement between two backends on one case."""

    kind: str  # "trace" | "sim" | "model" | "error"
    level: str  # cache level name, or "-" for whole-trace kinds
    magnitude: float  # relative error (model) or absolute delta (sim/trace)
    band: str  # MODEL_BANDS name, or "mismatch" for exact contracts
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"{self.kind}@{self.level} band={self.band} "
            f"magnitude={self.magnitude:.4g} {self.detail}".rstrip()
        )


@dataclass(frozen=True)
class CaseReport:
    """Everything the harness learned about one (program, hierarchy) case."""

    seed: int
    program_name: str
    hierarchy: str
    refs: int
    model_bands: tuple[tuple[str, str], ...]  # (level, band) per level
    divergences: tuple[Divergence, ...] = ()
    known: bool = False  # already covered by a committed corpus case

    @property
    def diverged(self) -> bool:
        return bool(self.divergences)

    def repro(self) -> str:
        return repro_command(self.seed)

    def describe(self) -> str:
        parts = "; ".join(str(d) for d in self.divergences) or "clean"
        return (
            f"seed={self.seed} hierarchy={self.hierarchy} "
            f"refs={self.refs} {parts}  [{self.repro()}]"
        )


def classify_model_error(predicted: SimulationResult,
                         simulated: SimulationResult) -> list[tuple[str, float, str]]:
    """Per-level ``(level, relative_error, band)`` of a prediction.

    Error is ``|pred - sim| / max(sim, 1)`` on miss counts -- the
    ``max(..., 1)`` keeps conflict-free levels (0 simulated misses) from
    reading as infinite error when the predictor charges a handful.
    """
    out = []
    for p, s in zip(predicted.levels, simulated.levels):
        err = abs(p.misses - s.misses) / max(s.misses, 1)
        band = next(name for bound, name in MODEL_BANDS if err <= bound)
        out.append((s.name, err, band))
    return out


def oracle_simulate(trace: np.ndarray,
                    hierarchy: HierarchyConfig) -> SimulationResult:
    """Reference hierarchy simulation: sequential LRU replay at every level.

    Mirrors :class:`~repro.cache.streaming.StreamingHierarchy`'s filtering
    semantics (level *i+1* sees level *i*'s misses) with the obviously
    correct one-access-at-a-time cache, direct-mapped levels included
    (k=1 LRU *is* direct-mapped).
    """
    stream = np.asarray(trace, dtype=np.int64)
    levels = []
    total = int(stream.size)
    for cfg in hierarchy:
        cache = SequentialAssocCache(cfg.size, cfg.line_size, cfg.associativity)
        mask = cache.feed(stream)
        levels.append(LevelStats(cfg.name, cache.accesses, cache.misses))
        stream = stream[mask]
    return SimulationResult(total_refs=total, levels=tuple(levels))


def diff_case(
    seed: int,
    program: Program,
    hierarchy_name: str,
    hierarchy: HierarchyConfig,
    vec_result: SimulationResult | None = None,
    layout: DataLayout | None = None,
) -> CaseReport:
    """Run every cross-check on one case; ``vec_result`` may be precomputed
    (campaigns batch the vectorized simulations through the executor)."""
    layout = layout or DataLayout.sequential(program)
    divergences: list[Divergence] = []

    trace = generate_trace(program, layout)
    try:
        oracle_trace = interpret_program(program, layout, check_bounds=True)
    except Exception as exc:  # bounds violation or interpreter crash
        oracle_trace = None
        divergences.append(
            Divergence("error", "-", float("inf"), "mismatch",
                       f"interpreter raised: {exc!r}")
        )
    if oracle_trace is not None and not np.array_equal(trace, oracle_trace):
        first = int(np.argmax(trace[: oracle_trace.size] !=
                              oracle_trace[: trace.size])) \
            if trace.size == oracle_trace.size else -1
        divergences.append(
            Divergence(
                "trace", "-",
                float(abs(trace.size - oracle_trace.size)) or 1.0,
                "mismatch",
                f"generator vs interpreter differ "
                f"(lengths {trace.size}/{oracle_trace.size}, "
                f"first mismatch index {first})",
            )
        )

    if vec_result is None:
        vec_result = SimJob(program, layout, hierarchy).run()

    sim_reference = oracle_simulate(
        oracle_trace if oracle_trace is not None else trace, hierarchy
    )
    for vec_lv, orc_lv in zip(vec_result.levels, sim_reference.levels):
        if (vec_lv.accesses, vec_lv.misses) != (orc_lv.accesses, orc_lv.misses):
            divergences.append(
                Divergence(
                    "sim", orc_lv.name,
                    float(abs(vec_lv.misses - orc_lv.misses)
                          + abs(vec_lv.accesses - orc_lv.accesses)),
                    "mismatch",
                    f"vec {vec_lv.accesses}/{vec_lv.misses} vs "
                    f"oracle {orc_lv.accesses}/{orc_lv.misses} "
                    f"(accesses/misses)",
                )
            )

    model_bands: list[tuple[str, str]] = []
    try:
        from repro.model import predict_job

        predicted = predict_job(SimJob(program, layout, hierarchy)).result
        for level, err, band in classify_model_error(predicted, vec_result):
            model_bands.append((level, band))
            if band == "blind":
                pred_misses = predicted.level(level).misses
                sim_misses = vec_result.level(level).misses
                divergences.append(
                    Divergence(
                        "model", level, err, band,
                        f"predicted {pred_misses} vs simulated {sim_misses} misses",
                    )
                )
    except Exception as exc:
        divergences.append(
            Divergence("error", "-", float("inf"), "mismatch",
                       f"predictor raised: {exc!r}")
        )

    return CaseReport(
        seed=seed,
        program_name=program.name,
        hierarchy=hierarchy_name,
        refs=vec_result.total_refs,
        model_bands=tuple(model_bands),
        divergences=tuple(divergences),
    )


@dataclass
class CampaignReport:
    """What one fuzz campaign covered and what it found."""

    seed: int
    count: int
    hierarchy_names: tuple[str, ...]
    cases: list[CaseReport] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def programs(self) -> int:
        return self.count

    @property
    def total_refs(self) -> int:
        return sum(c.refs for c in self.cases)

    def divergent_cases(self) -> list[CaseReport]:
        return [c for c in self.cases if c.diverged]

    def count_kind(self, kind: str) -> int:
        return sum(
            1 for c in self.cases for d in c.divergences if d.kind == kind
        )

    @property
    def unminimized(self) -> int:
        """Divergent cases not yet covered by a committed corpus case."""
        return sum(1 for c in self.divergent_cases() if not c.known)

    def band_histogram(self) -> dict[str, dict[str, int]]:
        """level -> band -> case count, over every case's model bands."""
        hist: dict[str, dict[str, int]] = {}
        for case in self.cases:
            for level, band in case.model_bands:
                hist.setdefault(level, {b: 0 for b in BAND_ORDER})[band] += 1
        return hist

    def smoke_line(self) -> str:
        """One greppable line condensing the CI acceptance check."""
        return (
            f"[fuzz] smoke seed={self.seed} programs={self.programs} "
            f"cases={len(self.cases)} refs={self.total_refs} "
            f"trace_div={self.count_kind('trace')} "
            f"sim_div={self.count_kind('sim')} "
            f"errors={self.count_kind('error')} "
            f"model_blind={self.count_kind('model')} "
            f"unminimized={self.unminimized}"
        )


def run_campaign(
    seed: int,
    count: int,
    config: FuzzConfig | None = None,
    hierarchies: dict[str, HierarchyConfig] | None = None,
    executor: SweepExecutor | None = None,
    known_seeds: set[tuple[int, str, str]] | None = None,
) -> CampaignReport:
    """Fuzz ``count`` programs through every differential pair.

    The vectorized simulations of all (program, hierarchy) cases run as
    one batched :class:`SweepExecutor` sweep (parallel, memoized); the
    pure-Python oracles and the predictor run in-process per case.
    ``known_seeds`` marks divergences already distilled into the corpus:
    ``(case_seed, hierarchy_name, kind)`` triples
    (:func:`repro.fuzz.corpus.corpus_known_seeds`).
    """
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")
    hierarchies = hierarchies or FUZZ_HIERARCHIES
    executor = executor or SweepExecutor(workers=1)
    known_seeds = known_seeds or set()
    tracer = get_tracer()
    t0 = time.perf_counter()

    report = CampaignReport(
        seed=seed, count=count, hierarchy_names=tuple(hierarchies)
    )
    with tracer.span("fuzz.campaign", cat="fuzz", seed=seed, count=count,
                     hierarchies=len(hierarchies)):
        cases = [
            (case_seed, program) for case_seed, program in
            program_stream(seed, count, config)
        ]
        jobs = [
            SimJob(program, DataLayout.sequential(program), hier,
                   tag=("fuzz", case_seed, name))
            for case_seed, program in cases
            for name, hier in hierarchies.items()
        ]
        # Force the simulator tier regardless of the executor's default
        # backend: the campaign's whole point is differential testing of
        # the *vectorized simulator* against the oracles, and a symbolic
        # tier serving these jobs would test it against itself.
        vec_results = executor.run(jobs, backend="sim")

        i = 0
        for case_seed, program in cases:
            for name, hier in hierarchies.items():
                case = diff_case(case_seed, program, name, hier,
                                 vec_result=vec_results[i])
                i += 1
                if case.diverged and all(
                    (case_seed, name, d.kind) in known_seeds
                    for d in case.divergences
                ):
                    case = dataclasses.replace(case, known=True)
                if tracer.enabled and case.diverged:
                    tracer.event("fuzz.divergence", cat="fuzz",
                                 seed=case_seed, hierarchy=name,
                                 kinds=",".join(d.kind for d in case.divergences))
                report.cases.append(case)

    report.wall_seconds = time.perf_counter() - t0
    m = get_metrics()
    m.counter("fuzz.programs").inc(count)
    m.counter("fuzz.cases").inc(len(report.cases))
    m.counter("fuzz.refs").inc(report.total_refs)
    m.counter("fuzz.divergences").inc(len(report.divergent_cases()))
    m.counter("fuzz.model_blind").inc(report.count_kind("model"))
    m.counter("fuzz.sim_divergences").inc(
        report.count_kind("sim") + report.count_kind("trace")
    )
    return report
