"""The distilled regression corpus: minimized divergences as JSON.

A fuzz campaign's output only matters if what it finds becomes permanent:
every divergence worth keeping is shrunk (:mod:`repro.fuzz.shrink`),
serialized with its provenance and classification, and committed under
``tests/fuzz/corpus/``.  ``tests/fuzz/test_corpus.py`` replays every file
on every test run, so a blind spot found once can never silently return.

The JSON schema is complete and self-describing -- arrays, loops with
affine bounds, statements, hierarchy geometry, the recorded divergence --
so a corpus case replays identically even if the generator that produced
it has long since changed.  Affine expressions serialize as
``{"const": c, "terms": {"i": k, ...}}``.

Replay semantics per kind:

* ``trace`` / ``sim`` / ``error`` cases assert the exact contracts hold
  *now* (the historical bug stays fixed);
* ``model`` cases assert the predictor's error band at the recorded level
  is **no worse** than the recorded band -- the model may improve past a
  committed blind spot, never regress beneath it.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.errors import ReproError
from repro.ir.affine import AffineExpr
from repro.ir.arrays import ArrayDecl
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.program import Program
from repro.ir.refs import ArrayRef

__all__ = [
    "SCHEMA_VERSION",
    "CorpusCase",
    "affine_to_data",
    "affine_from_data",
    "program_to_data",
    "program_from_data",
    "hierarchy_to_data",
    "hierarchy_from_data",
    "save_case",
    "load_case",
    "load_corpus",
    "corpus_known_seeds",
    "default_corpus_dir",
]

SCHEMA_VERSION = 1


def default_corpus_dir() -> pathlib.Path:
    """``tests/fuzz/corpus`` of the source checkout (may not exist)."""
    return (
        pathlib.Path(__file__).resolve().parents[3] / "tests" / "fuzz" / "corpus"
    )


# -- affine / IR serialization ----------------------------------------------

def affine_to_data(expr: AffineExpr) -> dict:
    return {"const": expr.constant, "terms": expr.terms}


def affine_from_data(data: dict) -> AffineExpr:
    return AffineExpr(dict(data.get("terms", {})), int(data.get("const", 0)))


def program_to_data(program: Program) -> dict:
    """A complete, order-preserving JSON structure for one program."""
    return {
        "name": program.name,
        "arrays": [
            {
                "name": a.name,
                "shape": list(a.shape),
                "element_size": a.element_size,
            }
            for a in program.arrays
        ],
        "nests": [
            {
                "label": nest.label,
                "loops": [
                    {
                        "var": lp.var,
                        "lower": affine_to_data(lp.lower),
                        "upper": affine_to_data(lp.upper),
                        "step": lp.step,
                        "extra_uppers": [affine_to_data(e) for e in lp.extra_uppers],
                        "extra_lowers": [affine_to_data(e) for e in lp.extra_lowers],
                    }
                    for lp in nest.loops
                ],
                "body": [
                    {
                        "flops": st.flops,
                        "label": st.label,
                        "refs": [
                            {
                                "array": r.array,
                                "subscripts": [
                                    affine_to_data(s) for s in r.subscripts
                                ],
                                "write": r.is_write,
                            }
                            for r in st.refs
                        ],
                    }
                    for st in nest.body
                ],
            }
            for nest in program.nests
        ],
    }


def program_from_data(data: dict) -> Program:
    arrays = tuple(
        ArrayDecl(a["name"], tuple(a["shape"]), a.get("element_size", 8))
        for a in data["arrays"]
    )
    nests = tuple(
        LoopNest(
            loops=tuple(
                Loop(
                    lp["var"],
                    affine_from_data(lp["lower"]),
                    affine_from_data(lp["upper"]),
                    lp.get("step", 1),
                    tuple(affine_from_data(e) for e in lp.get("extra_uppers", [])),
                    tuple(affine_from_data(e) for e in lp.get("extra_lowers", [])),
                )
                for lp in nest["loops"]
            ),
            body=tuple(
                Statement(
                    refs=tuple(
                        ArrayRef(
                            r["array"],
                            tuple(affine_from_data(s) for s in r["subscripts"]),
                            is_write=r.get("write", False),
                        )
                        for r in st["refs"]
                    ),
                    flops=st.get("flops", 0),
                    label=st.get("label", ""),
                )
                for st in nest["body"]
            ),
            label=nest.get("label", ""),
        )
        for nest in data["nests"]
    )
    return Program(data["name"], arrays, nests)


def hierarchy_to_data(hierarchy: HierarchyConfig) -> dict:
    return {
        "memory_cycles": hierarchy.memory_cycles,
        "levels": [
            {
                "size": c.size,
                "line_size": c.line_size,
                "associativity": c.associativity,
                "name": c.name,
                "hit_cycles": c.hit_cycles,
            }
            for c in hierarchy.levels
        ],
    }


def hierarchy_from_data(data: dict) -> HierarchyConfig:
    return HierarchyConfig(
        levels=tuple(
            CacheConfig(
                size=c["size"],
                line_size=c["line_size"],
                associativity=c.get("associativity", 1),
                name=c.get("name", f"L{i + 1}"),
                hit_cycles=c.get("hit_cycles", 1.0),
            )
            for i, c in enumerate(data["levels"])
        ),
        memory_cycles=data.get("memory_cycles", 50.0),
    )


# -- corpus cases ------------------------------------------------------------

@dataclass(frozen=True)
class CorpusCase:
    """One committed, minimized regression case."""

    name: str
    program: Program
    hierarchy: HierarchyConfig
    hierarchy_name: str
    kind: str  # "trace" | "sim" | "model" | "error"
    level: str
    band: str
    magnitude: float
    seed: int  # the case seed of the campaign that found it
    note: str = ""

    def file_name(self) -> str:
        return f"{self.name}.json"

    def to_data(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "provenance": {"seed": self.seed, "hierarchy": self.hierarchy_name},
            "divergence": {
                "kind": self.kind,
                "level": self.level,
                "band": self.band,
                "magnitude": self.magnitude,
            },
            "note": self.note,
            "hierarchy": hierarchy_to_data(self.hierarchy),
            "program": program_to_data(self.program),
        }

    @classmethod
    def from_data(cls, data: dict) -> "CorpusCase":
        if data.get("schema") != SCHEMA_VERSION:
            raise ReproError(
                f"corpus case {data.get('name')!r}: unsupported schema "
                f"{data.get('schema')!r} (expected {SCHEMA_VERSION})"
            )
        div = data["divergence"]
        prov = data["provenance"]
        return cls(
            name=data["name"],
            program=program_from_data(data["program"]),
            hierarchy=hierarchy_from_data(data["hierarchy"]),
            hierarchy_name=prov["hierarchy"],
            kind=div["kind"],
            level=div.get("level", "-"),
            band=div.get("band", "mismatch"),
            magnitude=float(div.get("magnitude", 0.0)),
            seed=int(prov["seed"]),
            note=data.get("note", ""),
        )


def save_case(directory: str | pathlib.Path, case: CorpusCase) -> pathlib.Path:
    """Write one case as pretty, diff-stable JSON; returns the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / case.file_name()
    path.write_text(
        json.dumps(case.to_data(), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_case(path: str | pathlib.Path) -> CorpusCase:
    return CorpusCase.from_data(json.loads(pathlib.Path(path).read_text()))


def load_corpus(directory: str | pathlib.Path | None = None) -> list[CorpusCase]:
    """Every committed case, sorted by file name (missing dir -> empty)."""
    directory = pathlib.Path(directory) if directory else default_corpus_dir()
    if not directory.is_dir():
        return []
    return [load_case(p) for p in sorted(directory.glob("*.json"))]


def corpus_known_seeds(
    cases: list[CorpusCase],
) -> set[tuple[int, str, str]]:
    """The ``(seed, hierarchy, kind)`` triples a campaign treats as known."""
    return {(c.seed, c.hierarchy_name, c.kind) for c in cases}
