"""Seeded random affine-program generation.

Turns the paper's fixed menu of ~14 kernels into a workload *population*:
every call to :func:`random_program` derives a complete, valid IR program
-- column-major arrays, perfect (optionally triangular) loop nests,
affine subscripts with constant strides and offsets, optionally several
fusable nests over a shared array pool -- from nothing but an integer
seed.  Generation is byte-deterministic: the same seed always yields the
same program, so any divergence a fuzz campaign finds is reproducible
from its seed alone.

Validity by construction: subscripts are generated first and array
extents are then sized to the subscripts' interval hulls (the same
interval arithmetic :mod:`repro.ir.validate` checks with), so every
emitted program passes ``check_program`` with zero bounds errors.  Loop
trip counts are budgeted so the program's dynamic reference count stays
under ``max_refs`` -- small enough that the pure-Python oracle simulators
in the differential harness stay affordable at campaign scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.ir.affine import AffineExpr, const, var
from repro.ir.arrays import ArrayDecl
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.program import Program
from repro.ir.ranges import affine_interval
from repro.ir.refs import ArrayRef

__all__ = ["FuzzConfig", "random_program", "program_stream"]


@dataclass(frozen=True)
class FuzzConfig:
    """Bounds of the random-program grammar.

    The defaults produce small stencil/sweep-shaped programs (1-3 nests,
    depth 1-3, rank 1-2 arrays, trips up to 24) whose traces run in
    milliseconds on the sequential oracle -- sized for campaigns of
    hundreds to thousands of programs, not for realism.  ``max_refs``
    caps each program's dynamic reference count; trip counts are scaled
    down until the program fits.
    """

    max_nests: int = 3
    max_depth: int = 3
    max_arrays: int = 3
    max_rank: int = 2
    max_trip: int = 24
    max_stride: int = 3
    max_offset: int = 2
    max_statements: int = 2
    max_reads: int = 3
    max_refs: int = 4000
    element_sizes: tuple[int, ...] = (8, 4)
    p_multi_nest: float = 0.5
    p_fuse_bounds: float = 0.5
    p_triangular: float = 0.2
    p_constant_sub: float = 0.15
    p_negative_stride: float = 0.15

    def __post_init__(self) -> None:
        for name in (
            "max_nests", "max_depth", "max_arrays", "max_rank", "max_trip",
            "max_stride", "max_statements", "max_reads", "max_refs",
        ):
            if getattr(self, name) < 1:
                raise ReproError(f"FuzzConfig.{name} must be >= 1")
        if self.max_offset < 0:
            raise ReproError("FuzzConfig.max_offset must be >= 0")
        if not self.element_sizes:
            raise ReproError("FuzzConfig.element_sizes must be non-empty")


@dataclass
class _ArraySpec:
    """An array being grown: rank fixed at creation, extents accumulate."""

    name: str
    rank: int
    element_size: int
    extents: list[int] = field(default_factory=list)
    read: bool = False

    def __post_init__(self) -> None:
        if not self.extents:
            self.extents = [1] * self.rank


def _loop_ranges(loops: list[Loop]) -> dict[str, tuple[int, int]]:
    """(min, max) value of each loop variable, outer to inner.

    The incremental form of :func:`repro.ir.ranges.loop_var_ranges`, usable
    while the nest is still being built.
    """
    ranges: dict[str, tuple[int, int]] = {}
    for lp in loops:
        lower_ivs = [affine_interval(l, ranges) for l in lp.lowers]
        upper_ivs = [affine_interval(u, ranges) for u in lp.uppers]
        lo = max(iv[0] for iv in lower_ivs)
        hi = min(iv[1] for iv in upper_ivs)
        ranges[lp.var] = (lo, max(hi, lo))
    return ranges


def _make_loops(rng: random.Random, cfg: FuzzConfig, nest_idx: int,
                trip_budget: int) -> list[Loop]:
    """Random loops for one nest, trip product bounded by ``trip_budget``."""
    depth = rng.randint(1, cfg.max_depth)
    loops: list[Loop] = []
    remaining = max(2, trip_budget)
    for level in range(depth):
        name = f"{'ijklmn'[level]}{nest_idx}"
        levels_left = depth - level
        # Even split of the remaining trip budget across the loops still
        # to be generated, so deep nests stay runnable.
        cap = max(1, int(round(remaining ** (1.0 / levels_left))))
        trip = rng.randint(1, min(cfg.max_trip, max(1, cap)))
        lower = rng.randint(1, 2)
        upper = lower + trip - 1
        lo_expr: AffineExpr = const(lower)
        up_expr: AffineExpr = const(upper)
        if loops and rng.random() < cfg.p_triangular:
            # Triangular: one bound rides an outer variable.  Keeping the
            # constant counterpart as the other bound keeps ranges sane.
            outer = rng.choice(loops)
            if rng.random() < 0.5:
                lo_expr = var(outer.var)
            else:
                up_expr = var(outer.var) + rng.randint(0, cfg.max_offset)
        loops.append(Loop(name, lo_expr, up_expr, step=1))
        remaining = max(1, remaining // max(1, trip))
    return loops


def _make_subscript(
    rng: random.Random,
    cfg: FuzzConfig,
    loops: list[Loop],
    ranges: dict[str, tuple[int, int]],
) -> AffineExpr:
    """One in-bounds-by-construction affine subscript."""
    if rng.random() < cfg.p_constant_sub:
        return const(rng.randint(1, 1 + cfg.max_offset))
    lp = rng.choice(loops)
    stride = rng.randint(1, cfg.max_stride)
    vmin, vmax = ranges[lp.var]
    if rng.random() < cfg.p_negative_stride:
        # c*v + o with c < 0: anchor the offset so the minimum lands >= 1.
        return var(lp.var) * (-stride) + (stride * vmax + 1 + rng.randint(0, cfg.max_offset))
    return var(lp.var) * stride + rng.randint(1 - stride * max(1, vmin), cfg.max_offset)


def _grow_ref(
    rng: random.Random,
    cfg: FuzzConfig,
    spec: _ArraySpec,
    loops: list[Loop],
    ranges: dict[str, tuple[int, int]],
    is_write: bool,
) -> ArrayRef:
    """A reference to ``spec``; widens the spec's extents to fit."""
    subs = tuple(_make_subscript(rng, cfg, loops, ranges) for _ in range(spec.rank))
    for dim, sub in enumerate(subs):
        lo, hi = affine_interval(sub, ranges)
        if lo < 1:  # negative-stride anchoring guarantees lo >= 1; belt and braces
            raise ReproError(f"generated subscript {sub!r} spans below 1")
        spec.extents[dim] = max(spec.extents[dim], hi)
    if not is_write:
        spec.read = True
    return ArrayRef(spec.name, subs, is_write=is_write)


def random_program(seed: int, config: FuzzConfig | None = None) -> Program:
    """One random affine program, byte-deterministic in ``seed``.

    The program always touches at least one array, reads every array it
    writes somewhere (no validator warnings beyond never-executed nests),
    and stays within ``config.max_refs`` dynamic references.
    """
    cfg = config or FuzzConfig()
    rng = random.Random(seed)

    specs: list[_ArraySpec] = []

    def new_spec() -> _ArraySpec:
        spec = _ArraySpec(
            name=f"A{len(specs)}",
            rank=rng.randint(1, cfg.max_rank),
            element_size=rng.choice(cfg.element_sizes),
        )
        specs.append(spec)
        return spec

    def pick_spec() -> _ArraySpec:
        if len(specs) < cfg.max_arrays and (not specs or rng.random() < 0.5):
            return new_spec()
        return rng.choice(specs)

    nnests = 1
    while nnests < cfg.max_nests and rng.random() < cfg.p_multi_nest:
        nnests += 1
    per_nest_refs = max(4, cfg.max_refs // nnests)

    nests: list[LoopNest] = []
    prev_loops: list[Loop] | None = None
    for n in range(nnests):
        refs_per_iter_est = 2 * cfg.max_statements
        if prev_loops is not None and rng.random() < cfg.p_fuse_bounds:
            # A fusable sibling: same bounds and depth as the previous
            # nest, fresh variable names (fusion's precondition).
            loops = [
                Loop(f"{'ijklmn'[lv]}{n}",
                     lp.lower.rename({p.var: f"{'ijklmn'[i]}{n}"
                                      for i, p in enumerate(prev_loops)}),
                     lp.upper.rename({p.var: f"{'ijklmn'[i]}{n}"
                                      for i, p in enumerate(prev_loops)}),
                     lp.step)
                for lv, lp in enumerate(prev_loops)
            ]
        else:
            loops = _make_loops(rng, cfg, n, per_nest_refs // refs_per_iter_est)
        prev_loops = loops
        ranges = _loop_ranges(loops)

        body: list[Statement] = []
        for _ in range(rng.randint(1, cfg.max_statements)):
            nreads = rng.randint(1, cfg.max_reads)
            reads = tuple(
                _grow_ref(rng, cfg, pick_spec(), loops, ranges, is_write=False)
                for _ in range(nreads)
            )
            if rng.random() < 0.85:
                target = _grow_ref(rng, cfg, pick_spec(), loops, ranges,
                                   is_write=True)
                body.append(Statement(reads + (target,), flops=rng.randint(0, 2)))
            else:
                body.append(Statement(reads, flops=rng.randint(0, 2)))
        nests.append(LoopNest(tuple(loops), tuple(body), label=f"fuzz{n}"))

    # Arrays that are written but never read get one covering read in the
    # last nest, so the "written but never read" validator warning cannot
    # fire and every array participates in cross-nest reuse analysis.
    fixups: list[ArrayRef] = []
    last = nests[-1]
    last_ranges = _loop_ranges(list(last.loops))
    for spec in specs:
        if not spec.read:
            fixups.append(
                _grow_ref(rng, cfg, spec, list(last.loops), last_ranges,
                          is_write=False)
            )
    if fixups:
        nests[-1] = last.with_body(last.body + (Statement(tuple(fixups)),))

    arrays = tuple(
        ArrayDecl(s.name, tuple(s.extents), s.element_size) for s in specs
    )
    program = Program(f"fuzz-{seed}", arrays, tuple(nests))

    # Trip budgeting used rectangular estimates; triangular nests can
    # only be smaller, but fused bodies may push past the cap.  Halve the
    # widest constant-bounded loop of the widest nest until the real
    # count fits.  A triangular-heavy nest may have no constant/constant
    # loop left; then pull a constant *upper* toward its range minimum,
    # and failing that trim a triangular upper's offset — the fallbacks
    # only run when the primary rule has nothing to halve, so seeds the
    # halving already fits keep generating byte-identically.
    guard = 0
    while program.total_refs() > cfg.max_refs and guard < 64:
        guard += 1
        widest = max(
            range(len(program.nests)),
            key=lambda i: program.nests[i].iterations(),
        )
        nest = program.nests[widest]
        shrinkable = [
            (lp.upper.constant - lp.lower.constant, li)
            for li, lp in enumerate(nest.loops)
            if lp.lower.is_constant and lp.upper.is_constant
            and lp.upper.constant > lp.lower.constant
        ]
        if shrinkable:
            _, li = max(shrinkable)
            lp = nest.loops[li]
            lo, hi = lp.lower.constant, lp.upper.constant
            shrunk = Loop(lp.var, lp.lower,
                          const(lo + max(0, (hi - lo) // 2 - 1)), lp.step)
        else:
            ranges = _loop_ranges(list(nest.loops))
            by_range = [
                (ranges[lp.var][1] - ranges[lp.var][0], li)
                for li, lp in enumerate(nest.loops)
                if lp.upper.is_constant
                and ranges[lp.var][1] > ranges[lp.var][0]
            ]
            offsets = [
                (lp.upper.constant, li)
                for li, lp in enumerate(nest.loops)
                if not lp.upper.is_constant and lp.upper.constant > 0
            ]
            if by_range:
                _, li = max(by_range)
                lp = nest.loops[li]
                lo, hi = ranges[lp.var][0], lp.upper.constant
                shrunk = Loop(lp.var, lp.lower,
                              const(lo + max(0, (hi - lo) // 2 - 1)), lp.step)
            elif offsets:
                off, li = max(offsets)
                lp = nest.loops[li]
                shrunk = Loop(lp.var, lp.lower, lp.upper - (off - off // 2),
                              lp.step)
            else:
                break
        loops = list(nest.loops)
        loops[li] = shrunk
        program = program.replace_nest(widest, nest.with_loops(tuple(loops)))
    return program


def program_stream(seed: int, count: int, config: FuzzConfig | None = None):
    """Yield ``(case_seed, program)`` for a campaign of ``count`` programs.

    Case ``i`` uses seed ``seed + i``, so any single case reruns as
    ``ext_fuzz --seed <case_seed> --count 1``.
    """
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")
    for i in range(count):
        yield seed + i, random_program(seed + i, config)


def fuzzed_workloads(seed: int, count: int, config: FuzzConfig | None = None):
    """``(case_seed, program, layout)`` triples for downstream consumers.

    The fuzzed population as ready-to-run workloads: each program paired
    with its sequential layout, reproducible from ``seed`` alone.  This
    is the sampling surface the symbolic cross-validation suite, the
    ``BENCH_symbolic.json`` benchmarks, and search smoke tests draw from
    -- one definition, so "program ``i`` of seed ``s``" means the same
    workload everywhere.
    """
    from repro.layout.layout import DataLayout  # lazy: layout imports ir only

    return [
        (case_seed, program, DataLayout.sequential(program))
        for case_seed, program in program_stream(seed, count, config)
    ]
