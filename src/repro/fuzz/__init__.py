"""Kernel fuzzing at scale: generation, differential testing, distillation.

``repro.fuzz`` closes the loop the hand-written test suite cannot: the
paper's kernels exercise a dozen loop shapes, but the predictor, the
vectorized simulators, and the trace generator claim to agree on *all*
affine programs.  This package generates random valid programs from a
seed (:mod:`.generator`), runs every cross-check between the independent
backends (:mod:`.harness`), minimizes whatever disagrees (:mod:`.shrink`),
and commits the minimized cases as a replayable regression corpus
(:mod:`.corpus`).  The ``ext_fuzz`` experiment verb drives campaigns from
the CLI.
"""

from repro.fuzz.corpus import (
    CorpusCase,
    corpus_known_seeds,
    default_corpus_dir,
    load_corpus,
    save_case,
)
from repro.fuzz.generator import (
    FuzzConfig,
    fuzzed_workloads,
    program_stream,
    random_program,
)
from repro.fuzz.harness import (
    FUZZ_HIERARCHIES,
    MODEL_BANDS,
    CampaignReport,
    CaseReport,
    Divergence,
    diff_case,
    oracle_simulate,
    repro_command,
    run_campaign,
)
from repro.fuzz.shrink import shrink_program, tighten_arrays

__all__ = [
    "FuzzConfig",
    "random_program",
    "program_stream",
    "fuzzed_workloads",
    "MODEL_BANDS",
    "FUZZ_HIERARCHIES",
    "Divergence",
    "CaseReport",
    "CampaignReport",
    "repro_command",
    "diff_case",
    "oracle_simulate",
    "run_campaign",
    "shrink_program",
    "tighten_arrays",
    "CorpusCase",
    "save_case",
    "load_corpus",
    "corpus_known_seeds",
    "default_corpus_dir",
]
