"""Naive trace interpreter: one Python iteration per loop iteration.

Ground truth for the vectorized generator.  Also performs the bounds
checking the fast path skips, so tests route small programs through here
to validate kernels' subscripts stay inside their declarations.
"""

from __future__ import annotations

import numpy as np

from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.layout.layout import DataLayout

__all__ = ["interpret_nest", "interpret_program"]


def interpret_nest(
    program: Program,
    layout: DataLayout,
    nest: LoopNest,
    check_bounds: bool = True,
) -> np.ndarray:
    """Replay one nest iteration by iteration, returning its byte trace."""
    bases = layout.bases()
    decls = {ref.array: program.decl(ref.array) for ref in nest.refs}
    out: list[int] = []

    def run(level: int, env: dict[str, int]) -> None:
        if level == nest.depth:
            for st in nest.body:
                for ref in st.refs:
                    decl = decls[ref.array]
                    subs = tuple(int(s.evaluate(env)) for s in ref.subscripts)
                    if check_bounds:
                        off = decl.element_offset(subs)  # validates 1..extent
                    else:
                        off = sum(
                            (idx - 1) * stride
                            for idx, stride in zip(subs, decl.strides_bytes)
                        )
                    out.append(bases[ref.array] + off)
            return
        lp = nest.loops[level]
        lo = lp.effective_lower(env)
        hi = lp.effective_upper(env)
        stop = hi + (1 if lp.step > 0 else -1)
        for value in range(lo, stop, lp.step):
            env[lp.var] = value
            run(level + 1, env)
        env.pop(lp.var, None)

    run(0, {})
    return np.asarray(out, dtype=np.int64)


def interpret_program(
    program: Program,
    layout: DataLayout,
    check_bounds: bool = True,
) -> np.ndarray:
    """Replay every nest in order; concatenated byte trace."""
    parts = [
        interpret_nest(program, layout, nest, check_bounds)
        for nest in program.nests
    ]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)
