"""Vectorized address-trace generation.

For a rectangular sub-nest every reference's byte address is affine in the
loop indices, so the entire sub-trace is a broadcast sum of index grids --
no Python-level per-iteration work.  Loops whose bounds depend on outer
variables (triangular nests) or whose sub-space exceeds the chunk budget
are iterated in Python, with the fully-vectorized path used as soon as the
remaining sub-nest qualifies.  Reference interleaving follows statement
order exactly: the trace of a sub-space is an (iterations x refs) matrix
raveled row-major.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import IRError
from repro.ir.affine import AffineExpr
from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.layout.layout import DataLayout

__all__ = ["nest_trace_chunks", "program_trace_chunks", "generate_trace"]

DEFAULT_CHUNK_REFS = 4_000_000


def _loop_values(lower: int, upper: int, step: int) -> np.ndarray:
    if step > 0:
        return np.arange(lower, upper + 1, step, dtype=np.int64)
    return np.arange(lower, upper - 1, step, dtype=np.int64)


def _offset_exprs(program: Program, layout: DataLayout, nest: LoopNest) -> list[AffineExpr]:
    """Absolute-address affine expression of every reference, in trace order."""
    bases = layout.bases()
    out = []
    for ref in nest.refs:
        decl = program.decl(ref.array)
        out.append(ref.offset_expr(decl) + bases[ref.array])
    return out


def _concrete_from(nest: LoopNest, level: int) -> bool:
    """Can every loop from ``level`` inward be evaluated once outers are fixed?

    Delegates to :meth:`LoopNest.concrete_from`, the shared rectangularity
    test this generator and the symbolic footprint enumeration
    (:mod:`repro.symbolic.lines`) must agree on.
    """
    return nest.concrete_from(level)


def _subspace_refs(nest: LoopNest, level: int, env: dict[str, int]) -> int:
    """Dynamic reference count of the sub-nest from ``level`` inward."""
    count = nest.refs_per_iteration
    for lp in nest.loops[level:]:
        lo = lp.effective_lower(env)
        hi = lp.effective_upper(env)
        count *= max(0, ((hi - lo) // lp.step + 1) if (hi - lo) * lp.step >= 0 else 0)
    return count


def _emit_subspace(
    exprs: list[AffineExpr],
    nest: LoopNest,
    level: int,
    env: dict[str, int],
) -> np.ndarray:
    """Fully vectorized trace of the rectangular sub-nest from ``level``."""
    inner = nest.loops[level:]
    values = []
    for lp in inner:
        lo = lp.effective_lower(env)
        hi = lp.effective_upper(env)
        values.append(_loop_values(lo, hi, lp.step))
    counts = [v.size for v in values]
    total = 1
    for c in counts:
        total *= c
    nrefs = len(exprs)
    if total == 0:
        return np.empty(0, dtype=np.int64)

    # Broadcastable index grids, innermost fastest-varying.
    grids = {}
    ndim = len(inner)
    for k, (lp, v) in enumerate(zip(inner, values)):
        shape = [1] * ndim
        shape[k] = v.size
        grids[lp.var] = v.reshape(shape)

    out = np.empty((total, nrefs), dtype=np.int64)
    vector_env: dict[str, object] = dict(env)
    vector_env.update(grids)
    for r, expr in enumerate(exprs):
        addr = expr.evaluate(vector_env)
        if isinstance(addr, (int, np.integer)):
            out[:, r] = int(addr)
        else:
            out[:, r] = np.broadcast_to(addr, tuple(counts)).reshape(total)
    return out.reshape(total * nrefs)


def nest_trace_chunks(
    program: Program,
    layout: DataLayout,
    nest: LoopNest,
    max_chunk_refs: int = DEFAULT_CHUNK_REFS,
) -> Iterator[np.ndarray]:
    """Yield the nest's address trace as a sequence of int64 chunks.

    ``max_chunk_refs`` bounds the number of references per emitted chunk;
    the generator descends into outer loops in Python until the remaining
    sub-nest both is rectangular (given fixed outer indices) and fits the
    budget, then vectorizes it in one shot.
    """
    if max_chunk_refs <= 0:
        raise IRError("max_chunk_refs must be positive")
    exprs = _offset_exprs(program, layout, nest)

    def walk(level: int, env: dict[str, int]) -> Iterator[np.ndarray]:
        if level == nest.depth:
            # All loops fixed: emit the single iteration's refs.
            yield _emit_subspace(exprs, nest, level, env)
            return
        if _concrete_from(nest, level):
            size = _subspace_refs(nest, level, env)
            if size <= max_chunk_refs:
                yield _emit_subspace(exprs, nest, level, env)
                return
        lp = nest.loops[level]
        lo = lp.effective_lower(env)
        hi = lp.effective_upper(env)
        for value in range(lo, hi + (1 if lp.step > 0 else -1), lp.step):
            child = dict(env)
            child[lp.var] = value
            yield from walk(level + 1, child)

    # Top-level: bounds of loop 0 are necessarily constant (no outer vars).
    yield from walk(0, {})


def program_trace_chunks(
    program: Program,
    layout: DataLayout,
    max_chunk_refs: int = DEFAULT_CHUNK_REFS,
) -> Iterator[np.ndarray]:
    """Concatenated chunked trace of all nests in program order."""
    for nest in program.nests:
        yield from nest_trace_chunks(program, layout, nest, max_chunk_refs)


def generate_trace(
    program: Program,
    layout: DataLayout,
    max_chunk_refs: int = DEFAULT_CHUNK_REFS,
) -> np.ndarray:
    """Materialize the full program trace (use chunks for large programs)."""
    chunks = list(program_trace_chunks(program, layout, max_chunk_refs))
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)
