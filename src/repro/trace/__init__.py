"""Lowering IR programs to byte-address traces.

The generator is chunked: large nests are produced as a stream of NumPy
address arrays (iterating outer loops in Python only when a sub-nest is
too large or has symbolic bounds), so whole-program simulations never
materialize gigabyte traces.  The naive interpreter replays nests one
access at a time and serves as the generator's ground truth in tests.
"""

from repro.trace.generator import (
    generate_trace,
    nest_trace_chunks,
    program_trace_chunks,
)
from repro.trace.interpreter import interpret_nest, interpret_program

__all__ = [
    "generate_trace",
    "nest_trace_chunks",
    "program_trace_chunks",
    "interpret_nest",
    "interpret_program",
]
