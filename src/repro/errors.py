"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "IRError",
    "LayoutError",
    "TransformError",
    "AnalysisError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid cache or experiment configuration was supplied."""


class IRError(ReproError):
    """A malformed loop-nest IR construct was built or used."""


class LayoutError(ReproError):
    """A data-layout operation was invalid (unknown array, overlap, ...)."""


class TransformError(ReproError):
    """A program transformation could not be applied legally."""


class AnalysisError(ReproError):
    """A reuse/locality analysis was asked something it cannot answer."""


class SimulationError(ReproError):
    """The cache simulator was driven with invalid inputs."""
