"""Search strategies over a :class:`~repro.search.space.SearchSpace`.

A strategy is *policy only*: it proposes batches of configs and reads
back their objective values through an ``evaluate`` callback supplied by
the :class:`~repro.search.tuner.Autotuner`.  Simulation, memoization,
budget accounting, and best-so-far tracking all live in the tuner, so a
strategy is a small deterministic loop:

* it must propose only configs inside the space;
* it must be a pure function of (space, evaluate results, rng) -- a
  fixed seed reproduces the exact proposal sequence;
* it may be interrupted at any batch boundary by the tuner's budget
  (``evaluate`` raises, the tuner catches).

Batches matter: every list passed to one ``evaluate`` call becomes one
:class:`~repro.exec.executor.SweepExecutor` run, so proposals in a batch
simulate in parallel.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Protocol, Sequence

from repro.errors import ReproError
from repro.search.space import Config, SearchSpace

__all__ = [
    "SearchStrategy",
    "ExhaustiveSearch",
    "RandomSearch",
    "CoordinateDescent",
    "PredictThenVerifyStrategy",
    "STRATEGIES",
    "get_strategy",
]

Evaluate = Callable[[Sequence[Config]], list[float]]


class SearchStrategy(Protocol):
    """The policy interface: propose configs, consume their objectives."""

    name: str

    def run(
        self,
        space: SearchSpace,
        evaluate: Evaluate,
        rng: random.Random,
        start: Config | None = None,
    ) -> None:
        """Drive the search until done (the tuner's budget may cut it short)."""
        ...  # pragma: no cover - protocol


def _batched(it: Iterable[Config], size: int) -> Iterable[list[Config]]:
    batch: list[Config] = []
    for item in it:
        batch.append(item)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


class ExhaustiveSearch:
    """Visit every point of the space, in deterministic grid order.

    Only sensible for small spaces (the tuner's budget still applies);
    within a batch all points simulate in parallel.
    """

    name = "exhaustive"

    def __init__(self, batch_size: int = 32):
        if batch_size < 1:
            raise ReproError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def run(self, space, evaluate, rng, start=None) -> None:
        for batch in _batched(space.configs(), self.batch_size):
            evaluate(batch)


class RandomSearch:
    """Seeded uniform sampling without replacement.

    Stops after ``samples`` draws (None = run until the tuner's budget, or
    the whole space, is exhausted).  The draw sequence depends only on the
    seed, so runs are reproducible.
    """

    name = "random"

    def __init__(self, samples: int | None = None, batch_size: int = 16):
        if samples is not None and samples < 1:
            raise ReproError(f"samples must be >= 1, got {samples}")
        if batch_size < 1:
            raise ReproError(f"batch_size must be >= 1, got {batch_size}")
        self.samples = samples
        self.batch_size = batch_size

    def run(self, space, evaluate, rng, start=None) -> None:
        seen: set[Config] = set()
        if start is not None:
            seen.add(space.validate(start))
        target = self.samples if self.samples is not None else space.size
        drawn = 0
        while drawn < target and len(seen) < space.size:
            batch: list[Config] = []
            # Rejection-sample unseen points; bounded so a nearly-covered
            # space cannot stall the loop.
            attempts = 0
            limit = 50 * self.batch_size
            while (
                len(batch) < min(self.batch_size, target - drawn)
                and attempts < limit
                and len(seen) + len(batch) < space.size
            ):
                attempts += 1
                cfg = space.random_config(rng)
                if cfg not in seen and cfg not in batch:
                    batch.append(cfg)
            if not batch:
                break
            evaluate(batch)
            seen.update(batch)
            drawn += len(batch)


class CoordinateDescent:
    """Axis-by-axis descent from a start point (hill-climbing on a grid).

    Each round evaluates *every* choice along one dimension (one parallel
    batch) and moves to the best; a full pass over all dimensions without
    movement means convergence.  Ties break toward the smaller choice
    index, keeping the walk deterministic.
    """

    name = "coordinate"

    def __init__(self, max_passes: int = 8):
        if max_passes < 1:
            raise ReproError(f"max_passes must be >= 1, got {max_passes}")
        self.max_passes = max_passes

    def run(self, space, evaluate, rng, start=None) -> None:
        current = space.validate(start) if start is not None else space.default_config()
        (current_value,) = evaluate([current])
        for _ in range(self.max_passes):
            moved = False
            for dim_index in range(len(space.dimensions)):
                axis = space.axis_configs(current, dim_index)
                values = evaluate(axis)
                best_i = min(range(len(axis)), key=lambda i: (values[i], i))
                if values[best_i] < current_value and axis[best_i] != current:
                    current, current_value = axis[best_i], values[best_i]
                    moved = True
            if not moved:
                return


class PredictThenVerifyStrategy:
    """Two-tier search: score analytically, simulate only the top-K.

    Tier one runs the closed-form predictor (:mod:`repro.model`) over the
    whole space -- or, above ``max_scored`` points, over a seeded random
    sample plus the start point -- which costs microseconds per config
    and **zero** simulation budget.  Tier two passes the ``top_k``
    best-predicted configs to ``evaluate``, i.e. through the tuner's
    exact :class:`~repro.exec.jobs.SimJob` path, so the verification
    simulations batch in parallel and land in the executor's result
    store like any other search's.

    The simulated best can only be as good as what tier one surfaces:
    the strategy is safe exactly when the predictor *ranks* well
    (``ext_model`` measures Spearman agreement per space; see
    ``docs/model.md`` for when that holds).  Seeding the tuner with a
    heuristic baseline keeps the usual never-worse-than-baseline
    guarantee regardless.

    ``last_scored`` records how many configs tier one scored on the most
    recent run -- the ``ext_model`` experiment reports it next to the
    simulation count to show the 10-50x effective-budget expansion.
    """

    name = "predict"

    def __init__(
        self,
        top_k: int = 8,
        max_scored: int = 2048,
        objective: "ModelObjective | None" = None,
    ):
        if top_k < 1:
            raise ReproError(f"top_k must be >= 1, got {top_k}")
        if max_scored < 1:
            raise ReproError(f"max_scored must be >= 1, got {max_scored}")
        self.top_k = top_k
        self.max_scored = max_scored
        self.objective = objective
        self.last_scored = 0

    def _candidates(self, space, rng, start) -> list[Config]:
        if space.size <= self.max_scored:
            return list(space.configs())
        seen: set[Config] = set()
        if start is not None:
            seen.add(space.validate(start))
        attempts, limit = 0, 50 * self.max_scored
        while len(seen) < self.max_scored and attempts < limit:
            seen.add(space.random_config(rng))
            attempts += 1
        return sorted(seen)

    def run(self, space, evaluate, rng, start=None) -> None:
        from repro.obs.tracer import get_tracer
        from repro.search.objective import model_objective

        tracer = get_tracer()
        scorer = self.objective if self.objective is not None else model_objective()
        with tracer.span("ptv.predict", cat="search", space=space.name) as predict:
            candidates = self._candidates(space, rng, start)
            self.last_scored = len(candidates)
            # Ties break toward the lexicographically smallest config, so the
            # verified set is a pure function of (space, seed).
            scored = sorted((scorer(space.job(c)), c) for c in candidates)
            if tracer.enabled:
                predict.set(scored=len(candidates))
        top = [c for _, c in scored[: self.top_k]]
        if start is not None and start not in top:
            top.append(start)  # usually memoized already; never a new sim
        with tracer.span("ptv.verify", cat="search",
                         space=space.name, top_k=len(top)):
            evaluate(top)


STRATEGIES: dict[str, Callable[[], SearchStrategy]] = {
    "exhaustive": ExhaustiveSearch,
    "random": RandomSearch,
    "coordinate": CoordinateDescent,
    "predict": PredictThenVerifyStrategy,
}


def get_strategy(spec: "str | SearchStrategy") -> SearchStrategy:
    """A strategy instance from a name (or pass an instance through)."""
    if isinstance(spec, str):
        try:
            return STRATEGIES[spec]()
        except KeyError:
            raise ReproError(
                f"unknown strategy {spec!r}; choose from {sorted(STRATEGIES)}"
            ) from None
    if hasattr(spec, "run") and hasattr(spec, "name"):
        return spec
    raise ReproError(f"not a search strategy: {spec!r}")
