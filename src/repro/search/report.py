"""Structured outcome of one autotuning run."""

from __future__ import annotations

from dataclasses import dataclass

from repro.search.space import Config

__all__ = ["SearchReport"]


@dataclass(frozen=True)
class SearchReport:
    """Everything one :meth:`~repro.search.tuner.Autotuner.search` did.

    ``trajectory`` is the best-so-far curve: one ``(evaluations, value)``
    point per strict improvement, x measured in *simulated* evaluations
    (in-memory memo replays are free and do not advance it).
    ``store_hits`` counts evaluations served by the executor's result
    store rather than fresh simulation -- across runs with
    ``REPRO_CACHE_DIR`` set, a repeated search is mostly store hits.
    """

    space: str
    strategy: str
    objective: str
    best_config: Config
    best_objective: float
    evaluations: int
    trajectory: tuple[tuple[int, float], ...]
    store_hits: int
    memo_hits: int
    sim_seconds: float
    wall_seconds: float
    stopped: str  # "completed" | "budget"
    baseline_config: Config | None = None
    baseline_objective: float | None = None

    @property
    def store_hit_rate(self) -> float:
        """Fraction of evaluations served from the result store."""
        return self.store_hits / self.evaluations if self.evaluations else 0.0

    @property
    def gap_pct(self) -> float | None:
        """How far the searched best moved past the baseline, in percent.

        Positive means search improved on the heuristic; 0.0 means the
        heuristic was already optimal within the space; None when no
        baseline was supplied.
        """
        if self.baseline_objective is None:
            return None
        if self.baseline_objective <= 0:
            return 0.0
        return (
            100.0
            * (self.baseline_objective - self.best_objective)
            / self.baseline_objective
        )

    def format(self) -> str:
        """A compact multi-line rendering for CLI output and logs."""
        lines = [
            f"search[{self.space}] strategy={self.strategy} "
            f"objective={self.objective} ({self.stopped})",
            f"  best: {self.best_objective:.6g} at {self.best_config}",
        ]
        if self.baseline_objective is not None:
            lines.append(
                f"  baseline: {self.baseline_objective:.6g} at "
                f"{self.baseline_config} (gap {self.gap_pct:+.2f}%)"
            )
        lines.append(
            f"  evaluations: {self.evaluations} "
            f"({self.store_hits} from store, {self.memo_hits} memoized), "
            f"sim {self.sim_seconds:.2f}s, wall {self.wall_seconds:.2f}s"
        )
        return "\n".join(lines)
