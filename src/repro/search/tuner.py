"""The autotuner: strategies x spaces x objectives, through the executor.

:class:`Autotuner` owns everything a strategy should not have to think
about:

* **batch evaluation** -- each proposed batch becomes one
  :class:`~repro.exec.executor.SweepExecutor` run, so candidates simulate
  in parallel and are memoized in the executor's result store (searches
  re-run with ``REPRO_CACHE_DIR`` set replay mostly from disk);
* **in-run memoization** -- a config evaluated twice (coordinate descent
  re-crossing an axis, a baseline re-proposed) is answered from memory
  without touching the executor;
* **budget control** -- ``budget`` caps *simulated* evaluations; the
  strategy is interrupted at the first batch that would exceed it;
* **best/trajectory tracking** -- strict improvements are recorded as the
  objective trajectory, independent of strategy internals.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import ReproError
from repro.exec.executor import SweepExecutor
from repro.exec.store import ResultStore
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.search.objective import Objective, miss_cost_objective
from repro.search.report import SearchReport
from repro.search.space import Config, SearchSpace
from repro.search.strategies import SearchStrategy, get_strategy

__all__ = ["Autotuner"]


class _BudgetExhausted(Exception):
    """Internal: unwinds the strategy when the evaluation budget is spent."""


class Autotuner:
    """Search configuration spaces for empirically best layouts.

    Pass an ``executor`` to share one (and its result store) across many
    searches -- the ``ext_search`` experiment does exactly that -- or let
    the tuner build a private serial one.  One executor serves *every*
    round of a search, so its persistent worker pool spins up once per
    search (or once per experiment, when shared), not once per round;
    :meth:`close` releases a tuner-owned pool when the search is done.
    """

    def __init__(
        self,
        executor: SweepExecutor | None = None,
        workers: int | None = None,
        store: ResultStore | None = None,
    ):
        self._owns_executor = executor is None
        self.executor = executor or SweepExecutor(
            workers=workers if workers is not None else 1, store=store
        )

    def close(self) -> None:
        """Release the executor's worker pool if this tuner created it."""
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "Autotuner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def search(
        self,
        space: SearchSpace,
        strategy: str | SearchStrategy = "coordinate",
        objective: Objective | None = None,
        budget: int | None = None,
        seed: int = 0,
        baseline: Sequence[int] | None = None,
    ) -> SearchReport:
        """Run one search; returns the structured :class:`SearchReport`.

        ``baseline`` (e.g. a heuristic layout's config) is evaluated
        first and seeds the strategy's start point, so the reported best
        can never be worse than it.  ``budget`` caps simulated
        evaluations -- the baseline counts against it.
        """
        if budget is not None and budget < 1:
            raise ReproError(f"budget must be >= 1, got {budget}")
        objective = objective if objective is not None else miss_cost_objective()
        strat = get_strategy(strategy)
        rng = random.Random(seed)
        tracer = get_tracer()
        metrics = get_metrics()

        memo: dict[Config, float] = {}
        trajectory: list[tuple[int, float]] = []
        state = {
            "evals": 0, "memo_hits": 0, "store_hits": 0,
            "sim_seconds": 0.0, "wall_seconds": 0.0,
            "best": None, "best_config": None,
        }

        def record(config: Config, value: float,
                   span_id: int | None = None) -> None:
            if state["best"] is None or value < state["best"]:
                state["best"] = value
                state["best_config"] = config
                trajectory.append((state["evals"], value))
                # Objective improvements as instant events: the search
                # trajectory falls straight out of any recorded trace.
                # ``exec_span`` links the event to the ``exec.job`` span
                # that simulated this config, so a recommendation's trace
                # walks back to its evidence.
                if tracer.enabled:
                    extra = {"exec_span": span_id} if span_id is not None else {}
                    tracer.event("search.best", cat="search",
                                 value=value, evals=state["evals"], **extra)

        def evaluate(configs: Sequence[Config]) -> list[float]:
            cfgs = [space.validate(c) for c in configs]
            fresh: list[Config] = []
            seen_in_batch: set[Config] = set()
            for c in cfgs:
                if c in memo:
                    state["memo_hits"] += 1
                elif c in seen_in_batch:
                    state["memo_hits"] += 1
                else:
                    fresh.append(c)
                    seen_in_batch.add(c)
            metrics.counter("search.memo_hits").inc(len(cfgs) - len(fresh))
            truncated = False
            if budget is not None:
                remaining = budget - state["evals"]
                if remaining <= 0 and fresh:
                    raise _BudgetExhausted
                if len(fresh) > remaining:
                    fresh = fresh[:remaining]
                    truncated = True
            if fresh:
                with tracer.span("search.round", cat="search",
                                 proposed=len(cfgs), fresh=len(fresh)):
                    jobs = [space.job(c) for c in fresh]
                    results = self.executor.run(jobs)
                stats = self.executor.stats
                state["store_hits"] += stats.cache_hits
                state["sim_seconds"] += stats.sim_seconds
                state["wall_seconds"] += stats.wall_seconds
                metrics.counter("search.evals").inc(len(fresh))
                metrics.counter("search.store_hits").inc(stats.cache_hits)
                # records are index-sorted, one per job, so records[k]
                # is the provenance (incl. exec.job span id) of jobs[k].
                spans = [r.span_id for r in stats.records]
                for k, (c, job, result) in enumerate(zip(fresh, jobs, results)):
                    value = objective(result, job.hierarchy)
                    memo[c] = value
                    state["evals"] += 1
                    record(c, value, span_id=spans[k] if k < len(spans) else None)
            if truncated:
                raise _BudgetExhausted
            return [memo[c] for c in cfgs]

        stopped = "completed"
        start: Config | None = None
        with tracer.span(
            "search.run", cat="search",
            space=space.name, strategy=strat.name, objective=objective.name,
        ) as search_span:
            try:
                if baseline is not None:
                    start = space.validate(baseline)
                    evaluate([start])
                strat.run(space, evaluate, rng, start=start)
            except _BudgetExhausted:
                stopped = "budget"
            if tracer.enabled:
                search_span.set(evaluations=state["evals"], stopped=stopped,
                                best=state["best"])

        if state["best"] is None:
            raise ReproError(
                f"search over {space.name!r} evaluated nothing "
                f"(budget={budget}); raise the budget"
            )
        return SearchReport(
            space=space.name,
            strategy=strat.name,
            objective=objective.name,
            best_config=state["best_config"],
            best_objective=state["best"],
            evaluations=state["evals"],
            trajectory=tuple(trajectory),
            store_hits=state["store_hits"],
            memo_hits=state["memo_hits"],
            sim_seconds=state["sim_seconds"],
            wall_seconds=state["wall_seconds"],
            stopped=stopped,
            baseline_config=start,
            baseline_objective=memo.get(start) if start is not None else None,
        )
