"""Configuration spaces for empirical search.

A :class:`SearchSpace` is a finite Cartesian product of integer-valued
:class:`Dimension`\\ s plus a rule that materializes any point of the
product as a :class:`~repro.exec.jobs.SimJob`.  Strategies only ever see
the product structure (dimension names, choice lists, membership tests);
the job builder is what ties a point back to a concrete (program, layout,
hierarchy) simulation.

Three concrete spaces cover the paper's tuning decisions:

* :func:`pad_space` -- inter-variable pad vectors, one dimension per
  array after the first (a uniform shift of the whole block cannot change
  any inter-variable conflict).  Choices step by ``Lmax`` (the MULTILVLPAD
  granularity, valid at every level because each cache size divides the
  next) and optionally extend by multiples of ``S1``, which move an array
  in the L2 while leaving its L1 mapping fixed -- exactly L2MAXPAD's trick.
* :func:`assoc_pad_space` -- the associativity-aware variant of
  :func:`pad_space`: its coarse stride is the k-way L1's *set-mapping
  period* ``S1 / k`` rather than the full cache size, so candidates move
  arrays between the k images of each set -- the placements a
  direct-mapped model cannot distinguish.  Used by the ``ext_assoc``
  experiment to measure how much headroom the paper's "treat k-way as
  direct-mapped" claim (Section 1) leaves behind.
* :func:`tile_space` -- W x H tile edges for the Figure 8 tiled matrix
  multiply, up to L2-sized edges (Section 5).
* :func:`pad_tile_space` -- the joint product of tile edges *and*
  inter-variable pads for the tiled multiply.  The paper tunes the two
  independently (tile for capacity, then pad for conflicts); the joint
  space is usually too large to simulate exhaustively, which is exactly
  what the analytic predict-then-verify strategy is for.
* :func:`fusion_space` -- binary fuse/no-fuse decisions for each
  adjacent compatible nest pair (Section 4).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from repro.cache.config import HierarchyConfig
from repro.errors import ReproError
from repro.exec.jobs import SimJob
from repro.ir.program import Program
from repro.layout.layout import DataLayout

__all__ = [
    "Dimension",
    "SearchSpace",
    "pad_space",
    "assoc_pad_space",
    "tile_space",
    "pad_tile_space",
    "fusion_space",
]

Config = tuple[int, ...]


@dataclass(frozen=True)
class Dimension:
    """One searchable axis: a name and its finite, ordered choice list."""

    name: str
    choices: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "choices", tuple(int(c) for c in self.choices))
        if not self.choices:
            raise ReproError(f"dimension {self.name!r} has no choices")
        if len(set(self.choices)) != len(self.choices):
            raise ReproError(f"dimension {self.name!r} has duplicate choices")

    def nearest(self, value: int) -> int:
        """The choice closest to ``value`` (ties go to the smaller choice)."""
        return min(self.choices, key=lambda c: (abs(c - value), c))


@dataclass(frozen=True)
class SearchSpace:
    """A finite product of dimensions with a job-materialization rule.

    ``job_builder`` maps a config (one value per dimension, in dimension
    order) to the :class:`SimJob` that measures it; it is excluded from
    equality so spaces compare by structure.
    """

    name: str
    dimensions: tuple[Dimension, ...]
    job_builder: Callable[[Config], SimJob] = field(compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "dimensions", tuple(self.dimensions))
        if not self.dimensions:
            raise ReproError(f"search space {self.name!r} has no dimensions")
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            raise ReproError(f"search space {self.name!r} has duplicate dimensions")

    # -- product structure ---------------------------------------------------
    @property
    def size(self) -> int:
        """Number of points in the space."""
        n = 1
        for d in self.dimensions:
            n *= len(d.choices)
        return n

    def contains(self, config: Sequence[int]) -> bool:
        """True when ``config`` is a point of this space."""
        config = tuple(config)
        return len(config) == len(self.dimensions) and all(
            v in d.choices for v, d in zip(config, self.dimensions)
        )

    def validate(self, config: Sequence[int]) -> Config:
        """``config`` as a canonical tuple; raises when outside the space."""
        cfg = tuple(int(v) for v in config)
        if not self.contains(cfg):
            raise ReproError(f"config {cfg} is not in search space {self.name!r}")
        return cfg

    def default_config(self) -> Config:
        """The first choice of every dimension (the un-transformed point)."""
        return tuple(d.choices[0] for d in self.dimensions)

    def configs(self) -> Iterator[Config]:
        """All points, in deterministic lexicographic (choice-order) order."""
        return itertools.product(*(d.choices for d in self.dimensions))

    def random_config(self, rng: random.Random) -> Config:
        """One uniformly drawn point (deterministic for a seeded ``rng``)."""
        return tuple(rng.choice(d.choices) for d in self.dimensions)

    def axis_configs(self, config: Sequence[int], dim_index: int) -> list[Config]:
        """All points reachable from ``config`` by varying one dimension."""
        cfg = self.validate(config)
        out = []
        for choice in self.dimensions[dim_index].choices:
            candidate = list(cfg)
            candidate[dim_index] = choice
            out.append(tuple(candidate))
        return out

    def nearest_config(self, values: Sequence[int]) -> Config:
        """Snap arbitrary per-dimension values onto the grid."""
        if len(values) != len(self.dimensions):
            raise ReproError(
                f"expected {len(self.dimensions)} values, got {len(values)}"
            )
        return tuple(d.nearest(int(v)) for v, d in zip(values, self.dimensions))

    # -- materialization -----------------------------------------------------
    def job(self, config: Sequence[int]) -> SimJob:
        """The simulation measuring one point of the space."""
        return self.job_builder(self.validate(config))

    def describe(self, config: Sequence[int]) -> str:
        """Human-readable ``dim=value`` rendering of a point."""
        cfg = self.validate(config)
        return ", ".join(
            f"{d.name}={v}" for d, v in zip(self.dimensions, cfg)
        )


# -- pad space ---------------------------------------------------------------

def pad_space(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
    kernel=None,
    max_lines: int = 8,
    l2_multiples: int = 1,
    include: Mapping[str, int] | None = None,
    name: str | None = None,
) -> SearchSpace:
    """Inter-variable pad vectors around a base layout.

    One dimension per array in ``layout.order`` except the first: padding
    the first array shifts every array by the same amount, which leaves
    all inter-variable distances -- the only thing severe-conflict
    behaviour depends on -- unchanged.

    Each dimension's choices are ``k * Lmax`` for ``k in [0, max_lines)``
    (``Lmax`` = the hierarchy's largest line size, the granularity at
    which MULTILVLPAD is guaranteed safe for every level), optionally
    crossed with ``m * S1`` for ``m in [0, l2_multiples)`` -- S1-sized
    pads leave the L1 mapping of everything downstream intact while
    moving it in larger caches (the L2MAXPAD mechanism).  ``include``
    merges extra per-array pad values into the grid, so a heuristic
    layout's exact pads can be made representable and used to seed a
    search.
    """
    if max_lines < 1:
        raise ReproError(f"max_lines must be >= 1, got {max_lines}")
    if l2_multiples < 1:
        raise ReproError(f"l2_multiples must be >= 1, got {l2_multiples}")
    include = dict(include or {})
    unknown = set(include) - set(layout.order)
    if unknown:
        raise ReproError(f"include names unknown arrays: {sorted(unknown)}")
    step = hierarchy.max_line_size
    s1 = hierarchy.l1.size
    dims = []
    for arr in layout.order[1:]:
        choices = {
            k * step + m * s1
            for k in range(max_lines)
            for m in range(l2_multiples)
        }
        if arr in include:
            choices.add(int(include[arr]))
        dims.append(Dimension(name=f"pad:{arr}", choices=tuple(sorted(choices))))
    searched = tuple(layout.order[1:])

    def build(config: Config) -> SimJob:
        padded = layout.with_pads(dict(zip(searched, config)))
        if kernel is not None:
            return SimJob.for_kernel(
                kernel, program, padded, hierarchy, tag=("search", config)
            )
        return SimJob(
            program=program, layout=padded, hierarchy=hierarchy,
            tag=("search", config),
        )

    return SearchSpace(
        name=name or f"pad[{program.name}]",
        dimensions=tuple(dims),
        job_builder=build,
    )


def assoc_pad_space(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
    kernel=None,
    max_lines: int = 8,
    span_multiples: int = 2,
    include: Mapping[str, int] | None = None,
    name: str | None = None,
) -> SearchSpace:
    """Inter-variable pads whose strides target k-way L1 set mappings.

    A k-way L1 of size ``S1`` maps an address to set ``(addr / line) %
    (S1 / (line * k))``: its set mapping repeats every ``S1 / k`` bytes,
    not every ``S1``.  :func:`pad_space` steps its coarse stride by the
    full ``S1`` (the direct-mapped period), so under a k-way L1 it only
    ever samples one of the ``k`` equivalent images of each set.  This
    space replaces that stride with the true period ``S1 / k``: the
    ``m * (S1/k)`` component moves an array between set images (changing
    which lines compete for the same k ways) while the fine ``Lmax``
    component walks sets, together covering placements a direct-mapped
    model treats as identical.

    With ``associativity == 1`` the span equals ``S1`` and the space
    degenerates to :func:`pad_space`'s grid -- the k-way-aware search is
    a strict generalization, which is what lets ``ext_assoc`` attribute
    any improvement it finds to associativity awareness alone.
    """
    if max_lines < 1:
        raise ReproError(f"max_lines must be >= 1, got {max_lines}")
    if span_multiples < 1:
        raise ReproError(f"span_multiples must be >= 1, got {span_multiples}")
    include = dict(include or {})
    unknown = set(include) - set(layout.order)
    if unknown:
        raise ReproError(f"include names unknown arrays: {sorted(unknown)}")
    step = hierarchy.max_line_size
    l1 = hierarchy.l1
    span = l1.size // l1.associativity  # set-mapping period of the k-way L1
    dims = []
    for arr in layout.order[1:]:
        choices = {
            k * step + m * span
            for k in range(max_lines)
            for m in range(span_multiples)
        }
        if arr in include:
            choices.add(int(include[arr]))
        dims.append(Dimension(name=f"pad:{arr}", choices=tuple(sorted(choices))))
    searched = tuple(layout.order[1:])

    def build(config: Config) -> SimJob:
        padded = layout.with_pads(dict(zip(searched, config)))
        if kernel is not None:
            return SimJob.for_kernel(
                kernel, program, padded, hierarchy, tag=("search", config)
            )
        return SimJob(
            program=program, layout=padded, hierarchy=hierarchy,
            tag=("search", config),
        )

    return SearchSpace(
        name=name or f"assoc_pad[{program.name}]",
        dimensions=tuple(dims),
        job_builder=build,
    )


# -- tile space --------------------------------------------------------------

def _edge_ladder(n: int, max_edge: int) -> tuple[int, ...]:
    """Geometric candidate tile edges ``4, 6, 9, 13, ...`` up to the bound."""
    bound = max(1, min(n, max_edge))
    edges = {bound}
    e = 4
    while e < bound:
        edges.add(e)
        e = max(e + 1, e * 3 // 2)
    return tuple(sorted(edges))


def tile_space(
    n: int,
    hierarchy: HierarchyConfig,
    element_size: int = 8,
    widths: Sequence[int] | None = None,
    heights: Sequence[int] | None = None,
    name: str | None = None,
) -> SearchSpace:
    """W x H tile edges for the tiled matrix multiply of Figure 8.

    Edges default to a geometric ladder bounded so a single tile edge
    never exceeds what an L2-sized tile could use (Section 5 considers
    tiles up to L2-sized); degenerate or over-capacity combinations are
    legal points -- the objective simply rates them poorly.
    """
    from repro.kernels import matmul  # local: keeps module import light

    l2 = hierarchy.l2.size if len(hierarchy) > 1 else hierarchy.l1.size
    max_edge = max(4, l2 // (element_size * 4))
    w_choices = tuple(widths) if widths is not None else _edge_ladder(n, max_edge)
    h_choices = tuple(heights) if heights is not None else _edge_ladder(n, max_edge)
    dims = (
        Dimension(name="tile:w", choices=w_choices),
        Dimension(name="tile:h", choices=h_choices),
    )

    def build(config: Config) -> SimJob:
        w, h = config
        program = matmul.build_tiled(n, w, h)
        return SimJob(
            program=program,
            layout=DataLayout.sequential(program),
            hierarchy=hierarchy,
            tag=("search", config),
        )

    return SearchSpace(
        name=name or f"tile[matmul-{n}]", dimensions=dims, job_builder=build
    )


def pad_tile_space(
    n: int,
    hierarchy: HierarchyConfig,
    element_size: int = 8,
    max_lines: int = 4,
    widths: Sequence[int] | None = None,
    heights: Sequence[int] | None = None,
    include_tile: Sequence[int] | None = None,
    include_pads: Mapping[str, int] | None = None,
    name: str | None = None,
) -> SearchSpace:
    """The joint tile x pad product for the tiled matrix multiply.

    Four dimensions: ``tile:w`` and ``tile:h`` (same ladders as
    :func:`tile_space`) crossed with one pad dimension per matmul array
    after the first (the B and C operands), stepping by ``Lmax`` exactly
    like :func:`pad_space`.  Tiling and padding interact -- a tile shape
    fixes which sub-columns are live at once, and the pads decide whether
    those sub-columns conflict -- so the joint optimum can beat the
    tile-then-pad pipeline; this space makes that measurable.

    The product is deliberately large (it is the stress case for
    predict-then-verify search); ``include_tile`` / ``include_pads``
    merge a heuristic baseline's exact tile edges and pad values into the
    grid so it can seed the search.
    """
    from repro.kernels import matmul  # local: keeps module import light

    if max_lines < 1:
        raise ReproError(f"max_lines must be >= 1, got {max_lines}")
    l2 = hierarchy.l2.size if len(hierarchy) > 1 else hierarchy.l1.size
    max_edge = max(4, l2 // (element_size * 4))
    w_choices = set(widths) if widths is not None else set(_edge_ladder(n, max_edge))
    h_choices = set(heights) if heights is not None else set(_edge_ladder(n, max_edge))
    if include_tile is not None:
        w, h = include_tile
        w_choices.add(int(w))
        h_choices.add(int(h))
    step = hierarchy.max_line_size
    base = matmul.build(n)
    padded_arrays = tuple(a.name for a in base.arrays[1:])
    include_pads = dict(include_pads or {})
    unknown = set(include_pads) - set(padded_arrays)
    if unknown:
        raise ReproError(f"include_pads names unknown arrays: {sorted(unknown)}")
    dims = [
        Dimension(name="tile:w", choices=tuple(sorted(w_choices))),
        Dimension(name="tile:h", choices=tuple(sorted(h_choices))),
    ]
    for arr in padded_arrays:
        choices = {k * step for k in range(max_lines)}
        if arr in include_pads:
            choices.add(int(include_pads[arr]))
        dims.append(Dimension(name=f"pad:{arr}", choices=tuple(sorted(choices))))

    def build(config: Config) -> SimJob:
        w, h = config[0], config[1]
        program = matmul.build_tiled(n, w, h)
        layout = DataLayout.sequential(program).with_pads(
            dict(zip(padded_arrays, config[2:]))
        )
        return SimJob(
            program=program,
            layout=layout,
            hierarchy=hierarchy,
            tag=("search", config),
        )

    return SearchSpace(
        name=name or f"pad_tile[matmul-{n}]",
        dimensions=tuple(dims),
        job_builder=build,
    )


# -- fusion space ------------------------------------------------------------

def fusion_space(
    program: Program,
    hierarchy: HierarchyConfig,
    layout_for: Callable[[Program], DataLayout] | None = None,
    check: str = "strict",
    name: str | None = None,
) -> SearchSpace:
    """Fuse/no-fuse decisions over the program's adjacent compatible pairs.

    One binary dimension per adjacent nest pair that :func:`can_fuse`
    accepts in the *original* program.  Decisions apply left to right; a
    decision whose pair has been absorbed into an earlier fusion (or that
    fails the dependence check after earlier fusions) is skipped, so every
    point of the hypercube is a valid program.  ``layout_for`` lays out
    each candidate (default: GROUPPAD for L1, then L2MAXPAD when the
    hierarchy has a second level, as the driver does).
    """
    from repro.transforms.fusion import can_fuse, fuse_nests, fusion_dependence_ok
    from repro.transforms.grouppad import grouppad
    from repro.transforms.maxpad import l2maxpad

    pairs = [
        i
        for i in range(len(program.nests) - 1)
        if can_fuse(program.nests[i], program.nests[i + 1])
    ]
    if not pairs:
        raise ReproError(
            f"program {program.name!r} has no adjacent fusable nest pairs"
        )
    dims = tuple(
        Dimension(name=f"fuse:{program.nests[i].label}+{program.nests[i + 1].label}",
                  choices=(0, 1))
        for i in pairs
    )

    def default_layout(p: Program) -> DataLayout:
        lay = grouppad(
            p, DataLayout.sequential(p), hierarchy.l1.size, hierarchy.l1.line_size
        )
        if len(hierarchy) > 1:
            lay = l2maxpad(p, lay, hierarchy)
        return lay

    make_layout = layout_for or default_layout

    def build(config: Config) -> SimJob:
        out = program
        # current index of each original nest; fused nests share an index.
        current = list(range(len(program.nests)))
        for pair_index, decision in zip(pairs, config):
            if not decision:
                continue
            a, b = current[pair_index], current[pair_index + 1]
            if a == b:
                continue  # already merged by an earlier decision
            if not can_fuse(out.nests[a], out.nests[b]):
                continue
            if check == "strict" and not fusion_dependence_ok(
                out, out.nests[a], out.nests[b]
            ):
                continue
            out = fuse_nests(out, a, b, check="none")
            current = [c if c <= a else c - 1 for c in current]
        return SimJob(
            program=out,
            layout=make_layout(out),
            hierarchy=hierarchy,
            tag=("search", config),
        )

    return SearchSpace(
        name=name or f"fusion[{program.name}]", dimensions=dims, job_builder=build
    )
