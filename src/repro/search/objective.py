"""Objectives: what the autotuner minimizes.

The contract is deliberately small: an :class:`Objective` maps one
simulated :class:`~repro.cache.stats.SimulationResult` (plus the hierarchy
it ran on) to a single float, and **lower is better**.  Everything the
strategies and the tuner do -- comparisons, trajectories, gaps -- relies
only on that ordering, so any pure function of the miss statistics plugs
in.

Built-ins:

* :func:`miss_cost_objective` -- miss counts weighted by the hierarchy's
  per-level penalties (:class:`~repro.analysis.costmodel.MissCostModel`),
  the same scaling the paper uses for fusion profitability (Section 4);
* :func:`miss_rate_objective` -- one level's raw miss rate (paper
  normalization: misses over *total* references);
* :func:`cycles_objective` -- the full cycle model including hit costs
  (what the figures' "execution time improvement" axes derive from).

:func:`model_objective` is the *analytic* counterpart: it scores a
:class:`~repro.exec.jobs.SimJob` directly -- no trace, no simulation --
by running the closed-form predictor (:mod:`repro.model`) and applying a
base objective to the :class:`~repro.model.PredictedStats` mirror result.
It deliberately has a different call signature (job in, float out): a
predicted score is a *ranking* device, never a measurement, and the type
difference keeps the two from being mixed up in reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.costmodel import MissCostModel
from repro.cache.config import HierarchyConfig
from repro.cache.stats import SimulationResult

__all__ = [
    "Objective",
    "ModelObjective",
    "miss_cost_objective",
    "miss_rate_objective",
    "cycles_objective",
    "model_objective",
]


@dataclass(frozen=True)
class Objective:
    """A named, minimized figure of merit over simulation results."""

    name: str
    fn: Callable[[SimulationResult, HierarchyConfig], float] = field(
        compare=False, repr=False
    )

    def __call__(self, result: SimulationResult, hierarchy: HierarchyConfig) -> float:
        return float(self.fn(result, hierarchy))


def miss_cost_objective() -> Objective:
    """Penalty cycles of all misses, weighted per level (Section 4 scaling).

    L1 misses pay the next level's hit cost; references that miss every
    level pay the memory cost.  Hit costs are excluded -- every config of
    a pad/tile space issues the same references, so the hit term is a
    constant offset that only compresses relative gaps.
    """

    def fn(result: SimulationResult, hierarchy: HierarchyConfig) -> float:
        model = MissCostModel.from_hierarchy(hierarchy)
        l1_misses = result.levels[0].misses
        to_memory = result.memory_refs
        # Intermediate-level misses (3+ level hierarchies) pay their own
        # next-level costs on top of the L1/memory endpoints.
        extra = sum(
            lv.misses * hierarchy.miss_cycles(i)
            for i, lv in enumerate(result.levels[1:-1], start=1)
        )
        return model.weighted(l1_misses, to_memory) + extra

    return Objective(name="miss-cost", fn=fn)


@dataclass(frozen=True)
class ModelObjective:
    """An analytic (simulation-free) score over :class:`SimJob`\\ s.

    Wraps a base :class:`Objective` and feeds it the closed-form
    predictor's :class:`~repro.model.PredictedStats` mirror result
    instead of a simulation.  Used by
    :class:`~repro.search.strategies.PredictThenVerifyStrategy` to rank
    whole spaces and by :meth:`SweepExecutor.predict
    <repro.exec.executor.SweepExecutor.predict>` batch scoring.

    With ``prefer_exact`` each job is first classified by the symbolic
    tier (:mod:`repro.symbolic`); jobs provably in the no-eviction
    regime are scored from their *exact* miss counts rather than the
    predictor's estimate -- still trace-free, strictly more faithful on
    the jobs where it applies.
    """

    name: str
    base: Objective
    prefer_exact: bool = False

    def __call__(self, job) -> float:
        from repro.model import predict_job  # lazy: keeps import DAG acyclic

        if self.prefer_exact:
            from repro.symbolic import analyze_job, classify_job

            classification = classify_job(job)
            if all(c.exact for c in classification):
                result = analyze_job(job, classification=classification).result
                return self.base(result, job.hierarchy)
        return self.base(predict_job(job).result, job.hierarchy)


def model_objective(
    base: Objective | None = None, prefer_exact: bool = False
) -> ModelObjective:
    """The closed-form predictor scoring jobs under ``base`` (default:
    the weighted miss cost, so predicted and simulated scores are in the
    same units and directly comparable).  ``prefer_exact`` upgrades the
    score to the symbolic tier's exact counts on jobs it can prove."""
    base = base if base is not None else miss_cost_objective()
    name = f"model[{base.name}]" if not prefer_exact else f"symbolic[{base.name}]"
    return ModelObjective(name=name, base=base, prefer_exact=prefer_exact)


def miss_rate_objective(level: str = "L1") -> Objective:
    """One level's miss rate, normalized to total references (paper norm)."""

    def fn(result: SimulationResult, hierarchy: HierarchyConfig) -> float:
        return result.miss_rate(level)

    return Objective(name=f"{level}-miss-rate", fn=fn)


def cycles_objective() -> Objective:
    """The full additive cycle model (hits + misses at every level)."""

    def fn(result: SimulationResult, hierarchy: HierarchyConfig) -> float:
        return result.cycles(hierarchy)

    return Objective(name="cycles", fn=fn)
