"""Empirical autotuning: search pad/tile/fusion spaces for best layouts.

The paper's claim is that cheap compile-time heuristics (PAD,
MULTILVLPAD, GROUPPAD, euclid-style tile selection) land close to the
best achievable multi-level locality.  This subsystem measures the gap:
it searches the corresponding configuration spaces *empirically*, using
the simulator as the oracle, with candidate batches fanned out through
the parallel memoized :class:`~repro.exec.executor.SweepExecutor`.

Pieces:

* :mod:`repro.search.space` -- :class:`SearchSpace` and the three
  concrete spaces (:func:`pad_space`, :func:`tile_space`,
  :func:`fusion_space`);
* :mod:`repro.search.objective` -- minimized figures of merit over
  simulated miss statistics, plus :func:`model_objective`, the analytic
  (simulation-free) scorer backed by :mod:`repro.model`;
* :mod:`repro.search.strategies` -- exhaustive grid, seeded random
  sampling, coordinate descent, and the two-tier
  :class:`PredictThenVerifyStrategy` (score the whole space with the
  closed-form predictor, simulate only the top-K);
* :mod:`repro.search.tuner` -- :class:`Autotuner`, the batching /
  memoizing / budgeting harness;
* :mod:`repro.search.report` -- the structured :class:`SearchReport`.

Quickstart::

    from repro import ultrasparc_i, DataLayout
    from repro.kernels.registry import get_kernel
    from repro.search import Autotuner, pad_space

    kernel = get_kernel("jacobi")
    program = kernel.program(192)
    hier = ultrasparc_i()
    space = pad_space(program, DataLayout.sequential(program), hier,
                      kernel=kernel)
    report = Autotuner(workers=4).search(space, strategy="coordinate",
                                         budget=64)
    print(report.format())
"""

from repro.search.objective import (
    ModelObjective,
    Objective,
    cycles_objective,
    miss_cost_objective,
    miss_rate_objective,
    model_objective,
)
from repro.search.report import SearchReport
from repro.search.space import (
    Dimension,
    SearchSpace,
    assoc_pad_space,
    fusion_space,
    pad_space,
    pad_tile_space,
    tile_space,
)
from repro.search.strategies import (
    STRATEGIES,
    CoordinateDescent,
    ExhaustiveSearch,
    PredictThenVerifyStrategy,
    RandomSearch,
    SearchStrategy,
    get_strategy,
)
from repro.search.tuner import Autotuner

__all__ = [
    "Dimension",
    "SearchSpace",
    "pad_space",
    "assoc_pad_space",
    "tile_space",
    "pad_tile_space",
    "fusion_space",
    "Objective",
    "ModelObjective",
    "miss_cost_objective",
    "miss_rate_objective",
    "cycles_objective",
    "model_objective",
    "SearchStrategy",
    "ExhaustiveSearch",
    "RandomSearch",
    "CoordinateDescent",
    "PredictThenVerifyStrategy",
    "STRATEGIES",
    "get_strategy",
    "Autotuner",
    "SearchReport",
]
