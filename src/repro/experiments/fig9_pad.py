"""Figure 9: miss rates and execution-time improvements for PAD and MULTILVLPAD.

Three versions of every Table 1 program:

* ``orig``    -- sequential layout (the paper's unoptimized global struct);
* ``L1 Opt``  -- PAD targeting only the L1 cache;
* ``L1&L2``   -- MULTILVLPAD (PAD against the (S1, Lmax) virtual cache).

As in Section 6.1, intra-variable (column) padding is applied first to
ADI32 and ERLE64 so same-variable plane conflicts do not mask the
inter-variable effects.  The third chart's execution-time improvement uses
the cycle model (see :mod:`repro.experiments.common`).

Expected shape (paper Section 6.2): PAD alone removes most severe
conflicts at *both* levels; MULTILVLPAD is only slightly better on L2
(mostly EXPL); timing gains are modest and occasionally negative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import HierarchyConfig, ultrasparc_i
from repro.exec.jobs import SimJob
from repro.experiments.common import (
    VersionResult,
    improvement_pct,
    run_sweep,
)
from repro.kernels.registry import KERNELS, get_kernel
from repro.layout.layout import DataLayout
from repro.transforms.intrapad import intra_pad
from repro.transforms.pad import multilvl_pad, pad
from repro.util.tabulate import format_table

__all__ = ["run", "build_jobs", "Fig9Result", "DEFAULT_PROGRAMS", "QUICK_SIZES"]

DEFAULT_PROGRAMS = [k for k in KERNELS if KERNELS[k].suite != "extra"]
INTRA_PAD_FIRST = ("adi32", "erle64")

# Reduced problem sizes for the quick pass (benchmarks / CI).
QUICK_SIZES = {
    "adi32": 32, "dot": 16384, "erle64": 32, "expl": 192, "irr500k": 12_000,
    "jacobi": 192, "linpackd": 96, "shal": 128, "appbt": 96, "applu": 128,
    "appsp": 64, "buk": 30_000, "cgm": 6_000, "embar": 20_000, "fftpde": 32,
    "mgrid": 32, "apsi": 63, "fpppp": 48, "hydro2d": 128, "su2cor": 128,
    "swim": 129, "tomcatv": 129, "turb3d": 32, "wave5": 30_000,
}

VERSIONS = ("orig", "L1 Opt", "L1&L2 Opt")


@dataclass(frozen=True)
class Fig9Result:
    """All (program, version) simulations for Figure 9."""

    hierarchy: HierarchyConfig
    results: tuple[VersionResult, ...]  # 3 per program, VERSIONS order

    def by_program(self) -> dict[str, dict[str, VersionResult]]:
        """Group the flat result list as program -> version -> result."""
        out: dict[str, dict[str, VersionResult]] = {}
        for r in self.results:
            out.setdefault(r.program, {})[r.version] = r
        return out

    def format(self) -> str:
        """Render the two Figure 9 tables (miss rates, improvements)."""
        rows_rates = []
        rows_impr = []
        for prog, versions in self.by_program().items():
            orig = versions["orig"]
            rates = [prog]
            for v in VERSIONS:
                rates.append(100.0 * versions[v].miss_rate("L1"))
            for v in VERSIONS:
                rates.append(100.0 * versions[v].miss_rate("L2"))
            rows_rates.append(rates)
            base = orig.cycles(self.hierarchy)
            rows_impr.append(
                [
                    prog,
                    improvement_pct(base, versions["L1 Opt"].cycles(self.hierarchy)),
                    improvement_pct(base, versions["L1&L2 Opt"].cycles(self.hierarchy)),
                ]
            )
        t1 = format_table(
            ["program",
             "L1% orig", "L1% L1Opt", "L1% L1&L2",
             "L2% orig", "L2% L1Opt", "L2% L1&L2"],
            rows_rates,
            title="Figure 9: cache miss rates (percent of all references)",
        )
        t2 = format_table(
            ["program", "improv% L1 Opt", "improv% L1&L2 Opt"],
            rows_impr,
            title="Figure 9: execution time improvement (cycle model)",
        )
        return t1 + "\n\n" + t2


def _three_layouts(program, hierarchy):
    """(orig, PAD, MULTILVLPAD) layouts for one program."""
    orig = DataLayout.sequential(program)
    l1 = pad(program, orig, hierarchy.l1.size, hierarchy.l1.line_size)
    both = multilvl_pad(program, orig, hierarchy)
    return {"orig": orig, "L1 Opt": l1, "L1&L2 Opt": both}


def build_jobs(
    quick: bool = False,
    programs: list[str] | None = None,
    hierarchy: HierarchyConfig | None = None,
) -> list[SimJob]:
    """The figure's independent simulations, tagged (program, version, flops)."""
    hierarchy = hierarchy or ultrasparc_i()
    programs = programs or DEFAULT_PROGRAMS
    jobs: list[SimJob] = []
    for name in programs:
        kernel = get_kernel(name)
        n = QUICK_SIZES.get(name) if quick else None
        program = kernel.program(n)
        if name in INTRA_PAD_FIRST:
            program = intra_pad(
                program, hierarchy.l1.size, hierarchy.l1.line_size,
                hierarchy=hierarchy,
            )
        flops = program.total_flops()
        for version, layout in _three_layouts(program, hierarchy).items():
            jobs.append(
                SimJob.for_kernel(
                    kernel, program, layout, hierarchy,
                    tag=(name, version, flops),
                )
            )
    return jobs


def run(
    quick: bool = False,
    programs: list[str] | None = None,
    hierarchy: HierarchyConfig | None = None,
    workers: int | None = None,
    store=None,
    executor=None,
) -> Fig9Result:
    """Simulate all three versions of each program."""
    hierarchy = hierarchy or ultrasparc_i()
    jobs = build_jobs(quick, programs, hierarchy)
    sims = run_sweep(jobs, executor=executor, workers=workers, store=store)
    results = tuple(
        VersionResult(program=job.tag[0], version=job.tag[1],
                      result=sim, flops=job.tag[2])
        for job, sim in zip(jobs, sims)
    )
    return Fig9Result(hierarchy=hierarchy, results=results)
