"""Extension: three-level hierarchies (Alpha 21164-style).

Section 3.3: the multi-level padding techniques "easily generalize to
three or more cache levels", and the paper cites the DEC Alpha 21164's
three caches as motivation.  This experiment runs the full padding ladder
on the :func:`repro.cache.alpha_21164` hierarchy:

* ``orig``       -- sequential layout;
* ``L1 Opt``     -- PAD against L1 only;
* ``all levels`` -- MULTILVLPAD against the (S1, Lmax) virtual cache, which
  by the modular-arithmetic argument covers L1, L2 *and* L3 in one pass.

The paper's conclusion should survive the extra level: L1-targeted padding
already removes most misses at every level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import HierarchyConfig, alpha_21164
from repro.exec.jobs import SimJob
from repro.experiments.common import run_sweep
from repro.kernels.registry import get_kernel
from repro.layout.layout import DataLayout
from repro.transforms.pad import multilvl_pad, pad
from repro.util.tabulate import format_table

__all__ = ["run", "build_jobs", "ThreeLevelResult"]

DEFAULT_PROGRAMS = ["dot", "expl", "jacobi"]
# The Alpha preset's L1 is 8 KB: choose sizes resonant with *it*.
SIZES = {"dot": 32768, "expl": 128, "jacobi": 256}
QUICK_SIZES = {"dot": 8192, "expl": 96, "jacobi": 128}
VERSIONS = ("orig", "L1 Opt", "all levels")


@dataclass(frozen=True)
class ThreeLevelResult:
    """Per-level miss rates of each padding strategy."""

    hierarchy: HierarchyConfig
    # program -> version -> (l1, l2, l3) miss rates
    rates: dict[str, dict[str, tuple[float, float, float]]]

    def format(self) -> str:
        """Render the per-level miss-rate table."""
        rows = []
        for prog, versions in self.rates.items():
            for v in VERSIONS:
                l1, l2, l3 = versions[v]
                rows.append([prog, v, 100 * l1, 100 * l2, 100 * l3])
        return format_table(
            ["program", "version", "L1 miss%", "L2 miss%", "L3 miss%"],
            rows,
            title="Three-level extension: padding on an Alpha 21164-style hierarchy",
        )


def build_jobs(
    quick: bool = False,
    programs: list[str] | None = None,
) -> list[SimJob]:
    """Each (program, padding version) simulation on the Alpha hierarchy."""
    hier = alpha_21164()
    programs = programs or DEFAULT_PROGRAMS
    jobs: list[SimJob] = []
    for name in programs:
        kernel = get_kernel(name)
        n = (QUICK_SIZES if quick else SIZES).get(name)
        program = kernel.program(n)
        seq = DataLayout.sequential(program)
        layouts = {
            "orig": seq,
            "L1 Opt": pad(program, seq, hier.l1.size, hier.l1.line_size),
            "all levels": multilvl_pad(program, seq, hier),
        }
        for version, layout in layouts.items():
            jobs.append(
                SimJob.for_kernel(
                    kernel, program, layout, hier, tag=(name, version)
                )
            )
    return jobs


def run(
    quick: bool = False,
    programs: list[str] | None = None,
    workers: int | None = None,
    store=None,
    executor=None,
) -> ThreeLevelResult:
    jobs = build_jobs(quick, programs)
    sims = run_sweep(jobs, executor=executor, workers=workers, store=store)
    rates: dict[str, dict[str, tuple[float, float, float]]] = {}
    for job, r in zip(jobs, sims):
        name, version = job.tag
        rates.setdefault(name, {})[version] = (
            r.miss_rate("L1"), r.miss_rate("L2"), r.miss_rate("L3")
        )
    return ThreeLevelResult(hierarchy=alpha_21164(), rates=rates)
