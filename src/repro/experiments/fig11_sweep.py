"""Figure 11: miss rates over varying problem sizes (EXPL and SHAL).

Problem sizes 250..520 (the paper's tick spacing is 13) for two versions:

* ``L1 Opt``  -- GROUPPAD alone;
* ``L1&L2``   -- GROUPPAD followed by L2MAXPAD.

Expected shape (Section 6.3.2): the two versions share L1 curves; the
``L1 Opt`` L2 curve shows *clusters* of problem sizes where the miss rate
jumps by several points (array columns of different variables converging
on the L2 cache), which the ``L1&L2`` version flattens -- its L2 curve is
essentially invariant, while both L1 curves degrade as columns grow past
the L1 capacity (it holds only 3..8 columns over this range).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import HierarchyConfig, ultrasparc_i
from repro.exec.jobs import SimJob
from repro.experiments.common import run_sweep
from repro.experiments.fig10_grouppad import layouts_for
from repro.kernels.registry import get_kernel
from repro.util.tabulate import format_table

__all__ = ["run", "build_jobs", "Fig11Result", "sweep_sizes"]

DEFAULT_PROGRAMS = ("expl", "shal")


def sweep_sizes(quick: bool = False) -> list[int]:
    """The paper's x-axis: 250..520 step 13 (coarser for quick runs)."""
    step = 45 if quick else 13
    return list(range(250, 521, step))


@dataclass(frozen=True)
class Fig11Result:
    """Problem-size sweep series for Figure 11."""

    hierarchy: HierarchyConfig
    # program -> list of (n, l1_rate_l1opt, l2_rate_l1opt, l1_rate_both, l2_rate_both)
    series: dict[str, list[tuple[int, float, float, float, float]]]

    def format(self) -> str:
        """Render one miss-rate-vs-size table per program."""
        tables = []
        for prog, rows in self.series.items():
            tables.append(
                format_table(
                    ["N", "L1% (L1 Opt)", "L2% (L1 Opt)",
                     "L1% (L1&L2 Opt)", "L2% (L1&L2 Opt)"],
                    [[n, 100 * a, 100 * b, 100 * c, 100 * d]
                     for n, a, b, c, d in rows],
                    title=f"Figure 11: {prog} miss rates over problem size",
                )
            )
        return "\n\n".join(tables)

    def l2_cluster_gap(self, program: str) -> float:
        """Max excess of the L1-Opt L2 curve over the L1&L2 L2 curve --
        the height of the clusters L2MAXPAD removes (percentage points)."""
        rows = self.series[program]
        return max(100 * (b - d) for _, _, b, _, d in rows)


def build_jobs(
    quick: bool = False,
    programs: tuple[str, ...] = DEFAULT_PROGRAMS,
    sizes: list[int] | None = None,
    hierarchy: HierarchyConfig | None = None,
) -> list[SimJob]:
    """Every (program, size, variant) point of the sweep, in series order."""
    hierarchy = hierarchy or ultrasparc_i()
    sizes = sizes or sweep_sizes(quick)
    jobs: list[SimJob] = []
    for name in programs:
        kernel = get_kernel(name)
        for n in sizes:
            program = kernel.program(n)
            layouts = layouts_for(program, hierarchy)
            for variant in ("L1 Opt", "L1&L2 Opt"):
                jobs.append(
                    SimJob.for_kernel(
                        kernel, program, layouts[variant], hierarchy,
                        tag=(name, n, variant),
                    )
                )
    return jobs


def run(
    quick: bool = False,
    programs: tuple[str, ...] = DEFAULT_PROGRAMS,
    sizes: list[int] | None = None,
    hierarchy: HierarchyConfig | None = None,
    workers: int | None = None,
    store=None,
    executor=None,
) -> Fig11Result:
    """Sweep problem sizes, simulating both GROUPPAD variants at each."""
    hierarchy = hierarchy or ultrasparc_i()
    jobs = build_jobs(quick, programs, sizes, hierarchy)
    sims = run_sweep(jobs, executor=executor, workers=workers, store=store)
    series: dict[str, list[tuple[int, float, float, float, float]]] = {}
    # Jobs come in (program, size) order with the two variants adjacent.
    for (job_l1, sim_l1), (job_both, sim_both) in zip(
        zip(jobs[0::2], sims[0::2]), zip(jobs[1::2], sims[1::2])
    ):
        name, n, _ = job_l1.tag
        assert job_both.tag[:2] == (name, n)
        series.setdefault(name, []).append(
            (
                n,
                sim_l1.miss_rate("L1"),
                sim_l1.miss_rate("L2"),
                sim_both.miss_rate("L1"),
                sim_both.miss_rate("L2"),
            )
        )
    return Fig11Result(hierarchy=hierarchy, series=series)
