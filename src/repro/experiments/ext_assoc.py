"""Extension: associativity-aware pad search vs. direct-mapped heuristics.

Section 1 claims that "simply treating k-way associative caches as
direct-mapped for locality optimizations achieves nearly all the
benefits of explicitly considering higher associativity."  The
:mod:`~repro.experiments.ext_associativity` extension (CLI verb
``assoc_claim``; ``associativity`` is its deprecated alias) already
checks the claim's *mechanism* (direct-mapped-targeted PAD still works
on k-way caches); this experiment attacks it from the other side and
measures the *headroom*: for each Table 1 kernel under 2-way and 4-way
LRU hierarchies,

* the **heuristic** point is MULTILVLPAD computed against the paper's
  direct-mapped model (exactly what a compiler following the paper
  would emit), evaluated on the k-way hierarchy;
* the **searched** point is the best configuration an
  :class:`~repro.search.tuner.Autotuner` finds in
  :func:`~repro.search.space.assoc_pad_space` -- the pad grid whose
  coarse stride is the k-way set-mapping period ``S1/k``, i.e. the
  placements a direct-mapped model cannot tell apart -- with the k-way
  hierarchy itself as the oracle.

The heuristic pads are merged into the grid and seed the search, so the
searched objective can never be worse; the per-kernel ``gap %`` column
is therefore a direct measurement of how much the paper's
treat-as-direct-mapped simplification leaves on the table.  Small gaps
confirm the claim with evidence the paper never produced.

The whole sweep is only affordable because the k-way simulator is
vectorized (:mod:`repro.cache.assoc_vec`); under the old sequential
replay each search round was ~100x slower than its direct-mapped twin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import HierarchyConfig, ultrasparc_i
from repro.experiments.ext_associativity import assoc_hierarchy
from repro.experiments.fig9_pad import INTRA_PAD_FIRST, QUICK_SIZES
from repro.kernels.registry import get_kernel
from repro.layout.layout import DataLayout
from repro.search.objective import Objective, miss_cost_objective
from repro.search.report import SearchReport
from repro.search.space import SearchSpace, assoc_pad_space
from repro.search.tuner import Autotuner
from repro.transforms.intrapad import intra_pad
from repro.transforms.pad import multilvl_pad
from repro.util.tabulate import format_table

__all__ = [
    "run",
    "build_space",
    "ExtAssocResult",
    "AssocSearchRow",
    "DEFAULT_PROGRAMS",
    "DEFAULT_ASSOCS",
    "DEFAULT_BUDGET",
    "QUICK_BUDGET",
]

# Same kernel set as ext_search: the Table 1 scientific kernels whose
# miss rates are padding-sensitive.
DEFAULT_PROGRAMS = ["adi32", "dot", "erle64", "expl", "jacobi", "linpackd", "shal"]

DEFAULT_ASSOCS = (2, 4)

DEFAULT_BUDGET = 48  # simulated evaluations per (kernel, associativity)
QUICK_BUDGET = 16


@dataclass(frozen=True)
class AssocSearchRow:
    """One (kernel, associativity) heuristic-vs-searched comparison."""

    program: str
    associativity: int
    dimensions: int
    space_size: int
    heuristic_objective: float
    searched_objective: float
    report: SearchReport

    @property
    def gap_pct(self) -> float:
        """Relative improvement of k-way-aware search over the
        direct-mapped heuristic (>= 0); the modeling gap."""
        if self.heuristic_objective <= 0:
            return 0.0
        return (
            100.0
            * (self.heuristic_objective - self.searched_objective)
            / self.heuristic_objective
        )


@dataclass(frozen=True)
class ExtAssocResult:
    """Every (kernel, associativity) search outcome."""

    objective: str
    rows: tuple[AssocSearchRow, ...]

    @property
    def total_evaluations(self) -> int:
        return sum(r.report.evaluations for r in self.rows)

    @property
    def worst_gap_pct(self) -> float:
        """The largest modeling gap found -- the headline number."""
        return max((r.gap_pct for r in self.rows), default=0.0)

    def row(self, program: str, associativity: int) -> AssocSearchRow:
        for r in self.rows:
            if r.program == program and r.associativity == associativity:
                return r
        raise KeyError(f"no row for ({program!r}, {associativity})")

    def format(self) -> str:
        table = format_table(
            ["program", "assoc", "dims", "space", "strategy", "evals",
             "MULTILVLPAD", "searched", "gap %"],
            [
                [
                    r.program,
                    f"{r.associativity}-way",
                    r.dimensions,
                    r.space_size,
                    r.report.strategy,
                    r.report.evaluations,
                    r.heuristic_objective,
                    r.searched_objective,
                    r.gap_pct,
                ]
                for r in self.rows
            ],
            title=(
                "Associativity-aware search: direct-mapped MULTILVLPAD vs. "
                f"k-way-aware pads ({self.objective} objective, lower is "
                "better; gap % = headroom the direct-mapped model leaves)"
            ),
        )
        summary = (
            f"[assoc] worst modeling gap: {self.worst_gap_pct:.1f}% "
            f"over {len(self.rows)} (kernel, assoc) cells, "
            f"{self.total_evaluations} evaluations"
        )
        return table + "\n" + summary


def build_space(
    name: str,
    associativity: int,
    quick: bool = False,
    max_lines: int = 8,
    span_multiples: int = 2,
) -> tuple[object, SearchSpace, tuple[int, ...]]:
    """(kernel, space, heuristic config) for one (kernel, k-way) search.

    The heuristic pads come from MULTILVLPAD run against the
    *direct-mapped* Section 6.1 hierarchy -- the paper's model -- and are
    merged into the k-way-aware grid so the heuristic is an exact point
    of the space the search starts from.
    """
    dm = ultrasparc_i()
    hierarchy = assoc_hierarchy(associativity)
    kernel = get_kernel(name)
    n = QUICK_SIZES.get(name) if quick else None
    program = kernel.program(n)
    if name in INTRA_PAD_FIRST:
        program = intra_pad(
            program, dm.l1.size, dm.l1.line_size, hierarchy=dm
        )
    base = DataLayout.sequential(program)
    heuristic = multilvl_pad(program, base, dm)
    searched = base.order[1:]
    heuristic_config = tuple(
        heuristic.pads[heuristic.index_of(a)] for a in searched
    )
    space = assoc_pad_space(
        program, base, hierarchy,
        kernel=kernel,
        max_lines=max_lines,
        span_multiples=span_multiples,
        include=dict(zip(searched, heuristic_config)),
        name=f"assoc_pad[{name},{associativity}w]",
    )
    return kernel, space, heuristic_config


def _pick_strategy(space: SearchSpace, budget: int | None, override: str | None) -> str:
    if override is not None:
        return override
    if budget is None or space.size <= budget:
        return "exhaustive"
    return "coordinate"


def run(
    quick: bool = False,
    programs: list[str] | None = None,
    associativities: tuple[int, ...] = DEFAULT_ASSOCS,
    budget: int | None = None,
    seed: int = 0,
    strategy: str | None = None,
    objective: Objective | None = None,
    max_lines: int = 8,
    span_multiples: int = 2,
    workers: int | None = None,
    store=None,
    executor=None,
) -> ExtAssocResult:
    """Search each kernel's k-way-aware pad space under 2-/4-way L1s.

    ``budget`` caps simulated evaluations per (kernel, associativity)
    cell (defaults to :data:`DEFAULT_BUDGET`, :data:`QUICK_BUDGET` under
    ``quick``).
    """
    programs = programs or DEFAULT_PROGRAMS
    if budget is None:
        budget = QUICK_BUDGET if quick else DEFAULT_BUDGET
    objective = objective if objective is not None else miss_cost_objective()
    tuner = Autotuner(executor=executor, workers=workers, store=store)
    rows = []
    for name in programs:
        for assoc in associativities:
            _, space, heuristic_config = build_space(
                name, assoc, quick=quick,
                max_lines=max_lines, span_multiples=span_multiples,
            )
            report = tuner.search(
                space,
                strategy=_pick_strategy(space, budget, strategy),
                objective=objective,
                budget=budget,
                seed=seed,
                baseline=heuristic_config,
            )
            rows.append(
                AssocSearchRow(
                    program=name,
                    associativity=assoc,
                    dimensions=len(space.dimensions),
                    space_size=space.size,
                    heuristic_objective=report.baseline_objective,
                    searched_objective=report.best_objective,
                    report=report,
                )
            )
    return ExtAssocResult(objective=objective.name, rows=tuple(rows))
