"""Shared experiment plumbing: simulation, the cycle model, formatting.

The cycle model substitutes for the paper's UltraSparc wall-clock numbers
(DESIGN.md, Substitutions): every reference pays the L1 hit cost, every
miss pays the next level's cost, and floating-point work pays a fixed
per-flop cost at an UltraSparc-era clock.  Absolute MFLOPS are not
comparable to 1999 hardware; relative shapes (who wins, where curves
cross) are what the reproduction targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import HierarchyConfig
from repro.cache.stats import SimulationResult
from repro.exec.executor import _UNSET, SweepExecutor, execute_one
from repro.exec.jobs import SimJob
from repro.exec.store import ResultStore
from repro.ir.program import Program
from repro.kernels.registry import Kernel
from repro.layout.layout import DataLayout

__all__ = [
    "CLOCK_HZ",
    "FLOP_CYCLES",
    "CYCLE_MODEL_NOTE",
    "VersionResult",
    "simulate_kernel_layout",
    "run_sweep",
    "estimated_cycles",
    "mflops",
    "improvement_pct",
]

CLOCK_HZ = 143_000_000  # UltraSparc I clock
FLOP_CYCLES = 2.0  # per-flop cost without scalar replacement / unrolling

CYCLE_MODEL_NOTE = (
    "timings are the cycle model (simulated misses x UltraSparc-era "
    "penalties), not hardware wall-clock; see DESIGN.md Substitutions"
)


@dataclass(frozen=True)
class VersionResult:
    """One (program, layout-version) measurement."""

    program: str
    version: str
    result: SimulationResult
    flops: int

    def miss_rate(self, level: str) -> float:
        return self.result.miss_rate(level)

    def cycles(self, hierarchy: HierarchyConfig) -> float:
        return estimated_cycles(self.result, hierarchy, self.flops)

    def mflops(self, hierarchy: HierarchyConfig) -> float:
        return mflops(self.flops, self.cycles(hierarchy))


def simulate_kernel_layout(
    kernel: Kernel,
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
    store=_UNSET,
    backend: str = "sim",
) -> SimulationResult:
    """Full-program simulation honoring the kernel's custom trace hook.

    ``backend`` routes through the same executor tier/key logic a sweep
    uses (see :func:`repro.exec.execute_one`).
    """
    job = SimJob.for_kernel(kernel, program, layout, hierarchy)
    return execute_one(job, store=store, backend=backend)


def run_sweep(
    jobs: list[SimJob],
    executor: SweepExecutor | None = None,
    workers: int | None = None,
    store: ResultStore | None = None,
) -> list[SimulationResult]:
    """Run an experiment's job list through a sweep executor.

    Every figure/extension harness funnels its simulations through here:
    pass ``executor`` to share one (and read its stats afterwards), or
    just ``workers``/``store`` for a throwaway one.  The default (no
    arguments) is a serial, unmemoized run -- exactly the historic
    behavior of the experiment drivers.
    """
    if executor is None:
        executor = SweepExecutor(workers=workers if workers is not None else 1,
                                 store=store)
    return executor.run(jobs)


def estimated_cycles(
    result: SimulationResult,
    hierarchy: HierarchyConfig,
    flops: int,
    flop_cycles: float = FLOP_CYCLES,
) -> float:
    """Memory cycles from the simulation plus compute cycles for the flops."""
    return result.cycles(hierarchy) + flops * flop_cycles


def mflops(flops: int, cycles: float, clock_hz: float = CLOCK_HZ) -> float:
    """Achieved MFLOPS at the modeled clock."""
    if cycles <= 0:
        return 0.0
    seconds = cycles / clock_hz
    return flops / seconds / 1e6


def improvement_pct(orig_cycles: float, opt_cycles: float) -> float:
    """Execution-time improvement relative to the original, in percent.

    Positive = faster, matching the paper's "Improvement (UltraSparc)" axes.
    """
    if orig_cycles <= 0:
        return 0.0
    return 100.0 * (orig_cycles - opt_cycles) / orig_cycles
