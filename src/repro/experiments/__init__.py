"""Experiment harnesses regenerating every table and figure of the paper.

One module per artifact:

* :mod:`repro.experiments.table1_programs` -- Table 1 (program inventory);
* :mod:`repro.experiments.fig9_pad`        -- Figure 9 (PAD vs MULTILVLPAD);
* :mod:`repro.experiments.fig10_grouppad`  -- Figure 10 (GROUPPAD +/- L2MAXPAD);
* :mod:`repro.experiments.fig11_sweep`     -- Figure 11 (problem-size sweep);
* :mod:`repro.experiments.fig12_fusion`    -- Figure 12 (fusion deltas);
* :mod:`repro.experiments.fig13_tiling`    -- Figure 13 (tiling MFLOPS);
* :mod:`repro.experiments.timing`          -- wall-clock sanity series.

Run them all from the command line::

    python -m repro.experiments all --quick

Every ``run()`` accepts ``quick=True`` for a reduced-size pass (used by the
benchmark suite) and returns a structured result whose ``format()`` string
prints the same rows/series the paper's figure reports.
"""

from repro.experiments.common import (
    CYCLE_MODEL_NOTE,
    VersionResult,
    improvement_pct,
    simulate_kernel_layout,
)

__all__ = [
    "CYCLE_MODEL_NOTE",
    "VersionResult",
    "improvement_pct",
    "simulate_kernel_layout",
]
