"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig9 [--quick]
    python -m repro.experiments fig11 --workers 4          # parallel sweep
    python -m repro.experiments ext_search --workers 4 --budget 64
    python -m repro.experiments ext_assoc --quick --budget 16    # k-way search
    python -m repro.experiments ext_model --quick          # predictor vs simulator
    python -m repro.experiments ext_fuzz --quick           # differential fuzzing
    python -m repro.experiments ext_fuzz --seed 9 --count 1      # one fuzz case
    python -m repro.experiments ext_symbolic --quick       # symbolic vs simulator
    python -m repro.experiments fig9 --backend sim         # force pure simulation
    python -m repro.experiments assoc_claim --quick        # Section 1 claim check
    python -m repro.experiments all --quick --out results/
    python -m repro.experiments serve --port 8077          # tuning service

The ``serve`` verb starts the long-running tuning server of
:mod:`repro.service` (its flags are documented there and in
``docs/service.md``); every other verb regenerates an artifact and
exits.

Simulations fan out across ``--workers`` processes and are memoized in an
on-disk result store (``--cache-dir``, default ``~/.cache/repro-sim`` or
``$REPRO_CACHE_DIR``), so re-running a figure re-simulates only points
whose program/layout/hierarchy actually changed.  ``--no-cache`` disables
the store for a pure recomputation.

``--trace PATH`` records the run as structured spans (one root span per
experiment, one per sweep, one per simulation job) plus a metrics
snapshot; ``--trace-format chrome`` writes a Perfetto/chrome://tracing
loadable file instead of JSON lines.  ``report --trace PATH`` summarizes
a recorded trace (top spans by self-time, store hit rate, worker
utilization incl. steals and queue depth, refs/s); ``report --trace
PATH --trace-id ID`` reconstructs one request's causal span tree
instead.  Traced runs also record per-level miss-rate counter tracks
(one sample per ``--timeline-window`` references, default 65536; 0
disables), which render as phase curves in Perfetto.  ``diff --trace
FRESH --baseline BASE`` compares two recorded traces -- per-span
self-time and work counters -- and exits nonzero when growth crosses
``--fail-pct``.

Sweeps shard across machines by content key::

    python -m repro.experiments fig9 --shard 1/2 --cache-dir .store-a
    python -m repro.experiments fig9 --shard 2/2 --cache-dir .store-b
    python -m repro.experiments merge --stores .store-a .store-b \\
        --cache-dir .store-merged
    python -m repro.experiments fig9 --cache-dir .store-merged  # all cached

Each ``--shard i/N`` run computes only its deterministic partition of
the sweep (no table); ``merge`` fuses the shard stores (and, with
``--traces``/``--trace``, their trace files); the final unsharded run
replays entirely from the merged store, byte-identical to a run that
never sharded.
"""

from __future__ import annotations

import argparse
import inspect
import os
import pathlib
import sys
import time

from repro.errors import ReproError
from repro.exec.executor import SweepExecutor
from repro.exec.shard import merge_stores, merge_traces, parse_shard
from repro.exec.store import ENV_CACHE_DIR, ResultStore
from repro.obs.diff import FAIL_PCT, WARN_PCT, diff_traces
from repro.obs.metrics import diff_counters, format_exec_line, get_metrics
from repro.obs.report import format_report, format_trace_tree
from repro.obs.timeline import set_timeline_window
from repro.obs.tracer import get_tracer, start_tracing, stop_tracing
from repro.experiments import (
    ext_assoc,
    ext_associativity,
    ext_fuzz,
    ext_model,
    ext_search,
    ext_symbolic,
    ext_three_level,
    ext_timetile,
    ext_tlb,
    fig9_pad,
    fig10_grouppad,
    fig11_sweep,
    fig12_fusion,
    fig13_tiling,
    table1_programs,
    timing,
)

EXPERIMENTS = {
    "table1": table1_programs,
    "fig9": fig9_pad,
    "fig10": fig10_grouppad,
    "fig11": fig11_sweep,
    "fig12": fig12_fusion,
    "fig13": fig13_tiling,
    "timing": timing,
    # Extensions beyond the paper's figures (claims made in its prose).
    "assoc_claim": ext_associativity,
    "associativity": ext_associativity,  # deprecated alias of assoc_claim
    "threelevel": ext_three_level,
    "tlb": ext_tlb,
    "timetile": ext_timetile,
    "ext_search": ext_search,
    "ext_assoc": ext_assoc,
    "ext_model": ext_model,
    "ext_fuzz": ext_fuzz,
    "ext_symbolic": ext_symbolic,
}

# Old verb -> replacement.  Aliases still run (scripts keep working) but
# warn, and "all" skips them so each experiment executes once.
DEPRECATED_ALIASES = {"associativity": "assoc_claim"}


def experiment_names(verb: str) -> list[str]:
    """The experiments one CLI verb expands to.

    ``"all"`` runs every registered experiment exactly once -- deprecated
    aliases are skipped, their targets run under the canonical name.  Any
    other verb (including an alias) runs just itself.
    """
    if verb == "all":
        return sorted(k for k in EXPERIMENTS if k not in DEPRECATED_ALIASES)
    return [verb]


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro-sim``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-sim"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # The tuning service has its own long-running flag surface;
        # forward to it rather than threading a second mode through the
        # experiment parser.  See docs/service.md.
        from repro.service.__main__ import main as serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "report", "merge", "diff"],
        help="which artifact to regenerate ('report' summarizes a trace; "
             "'merge' fuses shard stores/traces; 'diff' compares a fresh "
             "trace against a baseline)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced problem sizes (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write each report to <out>/<experiment>.txt",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="simulation worker processes (default: all CPUs)",
    )
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, default=None, metavar="DIR",
        help=f"result-store directory (default: $" + ENV_CACHE_DIR +
             " or ~/.cache/repro-sim)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result store",
    )
    parser.add_argument(
        "--backend", choices=["auto", "symbolic", "model", "sim", "oracle"],
        default="auto",
        help="executor tier: 'auto' (default) serves jobs from the "
             "symbolic closed form where it is provably exact and the "
             "simulator elsewhere; 'sim' forces pure simulation "
             "(pre-tier behavior); 'symbolic'/'model'/'oracle' force "
             "those tiers",
    )
    parser.add_argument(
        "--budget", type=int, default=None, metavar="B",
        help="evaluation budget for search experiments (per kernel), "
             "or per-program reference cap for ext_fuzz",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="base seed for seeded experiments (ext_fuzz: the campaign "
             "window start; --seed S --count 1 reruns one fuzz case)",
    )
    parser.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="number of fuzzed programs for ext_fuzz",
    )
    parser.add_argument(
        "--shard", default=None, metavar="i/N",
        help="compute only this shard of each experiment's sweep "
             "(deterministic partition by job content key) and populate "
             "the store with its results; no table is rendered.  Run "
             "every shard against its own --cache-dir, fuse them with "
             "the 'merge' verb, then rerun unsharded against the merged "
             "store for a fully cached, byte-identical report",
    )
    parser.add_argument(
        "--stores", type=pathlib.Path, nargs="+", default=None, metavar="DIR",
        help="('merge' only) shard store directories to fuse into "
             "--cache-dir",
    )
    parser.add_argument(
        "--traces", type=pathlib.Path, nargs="+", default=None, metavar="PATH",
        help="('merge' only) per-shard trace files to fuse into --trace",
    )
    parser.add_argument(
        "--trace", type=pathlib.Path, default=None, metavar="PATH",
        help="record a trace of the run to PATH "
             "(or, with 'report', the trace file to summarize)",
    )
    parser.add_argument(
        "--trace-format", choices=["jsonl", "chrome"], default="jsonl",
        help="trace file format: JSON lines (default) or Chrome "
             "trace-event for chrome://tracing / Perfetto",
    )
    parser.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="('report' only) reconstruct one request's causal span tree "
             "instead of the aggregate summary",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None, metavar="PATH",
        help="('diff' only) baseline trace file; --trace is the fresh one",
    )
    parser.add_argument(
        "--warn-pct", type=float, default=WARN_PCT, metavar="PCT",
        help="('diff' only) self-time growth that warns "
             f"(default {WARN_PCT:g}%%)",
    )
    parser.add_argument(
        "--fail-pct", type=float, default=FAIL_PCT, metavar="PCT",
        help="('diff' only) self-time growth that fails the diff "
             f"(default {FAIL_PCT:g}%%)",
    )
    parser.add_argument(
        "--timeline-window", type=int, default=None, metavar="REFS",
        help="phase-telemetry window width in references for traced "
             "runs; each simulated job emits per-level miss-rate counter "
             "samples once per window (0 disables; default 65536)",
    )
    args = parser.parse_args(argv)
    if args.budget is not None and args.budget < 1:
        parser.error(f"--budget must be >= 1, got {args.budget}")
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.count is not None and args.count < 1:
        parser.error(f"--count must be >= 1, got {args.count}")
    shard = None
    if args.shard is not None:
        try:
            shard = parse_shard(args.shard)
        except ReproError as exc:
            parser.error(str(exc))
        if args.no_cache:
            parser.error("--shard populates the result store; drop --no-cache")
    if args.experiment != "merge" and (args.stores or args.traces):
        parser.error("--stores/--traces only apply to the 'merge' verb")
    if args.experiment != "report" and args.trace_id is not None:
        parser.error("--trace-id only applies to the 'report' verb")
    if args.experiment != "diff" and args.baseline is not None:
        parser.error("--baseline only applies to the 'diff' verb")
    if args.timeline_window is not None and args.timeline_window < 0:
        parser.error(f"--timeline-window must be >= 0, "
                     f"got {args.timeline_window}")

    if args.experiment == "diff":
        if args.trace is None or args.baseline is None:
            parser.error("'diff' needs --trace FRESH and --baseline BASELINE")
        for path in (args.trace, args.baseline):
            if not path.exists():
                parser.error(f"no trace file at {path}")
        result = diff_traces(args.baseline, args.trace,
                             warn_pct=args.warn_pct, fail_pct=args.fail_pct)
        print(result.format())
        return 1 if result.status == "fail" else 0

    if args.experiment == "merge":
        if not args.stores:
            parser.error("'merge' needs --stores DIR [DIR ...] to fuse")
        if args.cache_dir is None:
            parser.error("'merge' needs --cache-dir DIR as the destination store")
        if args.no_cache:
            parser.error("'merge' writes the destination store; drop --no-cache")
        stats = merge_stores(args.cache_dir, args.stores)
        print(f"[merge] {stats['merged']} entries merged "
              f"({stats['duplicates']} byte-equal duplicates) from "
              f"{stats['sources']} shard stores into {args.cache_dir}")
        if args.traces:
            if args.trace is None:
                parser.error("--traces needs --trace PATH for the merged output")
            tstats = merge_traces(args.trace, args.traces)
            print(f"[merge] {tstats['spans']} spans + {tstats['events']} events "
                  f"fused from {tstats['sources']} traces into {args.trace}")
        return 0

    if args.experiment == "report":
        if args.trace is None:
            parser.error("'report' needs --trace PATH pointing at a recorded trace")
        if not args.trace.exists():
            parser.error(f"no trace file at {args.trace}")
        if args.trace_id is not None:
            print(format_trace_tree(args.trace, trace_id=args.trace_id))
        else:
            print(format_report(args.trace))
        return 0

    if args.timeline_window is not None:
        set_timeline_window(args.timeline_window)
    tracer = start_tracing() if args.trace is not None else get_tracer()

    store = None
    if not args.no_cache:
        store = ResultStore(args.cache_dir or default_cache_dir())
    executor = SweepExecutor(workers=args.workers, store=store,
                             backend=args.backend, shard=shard)

    for name in experiment_names(args.experiment):
        if name in DEPRECATED_ALIASES:
            print(
                f"warning: {name!r} is deprecated; "
                f"use {DEPRECATED_ALIASES[name]!r}",
                file=sys.stderr,
            )
        module = EXPERIMENTS[name]
        if shard is not None:
            # Populate mode: compute this shard's partition of the
            # sweep into the store; the table renders later, from the
            # merged store, byte-identically to an unsharded run.
            if not hasattr(module, "build_jobs"):
                print(
                    f"warning: {name!r} has no static job list; "
                    f"skipping under --shard",
                    file=sys.stderr,
                )
                continue
            t0 = time.time()
            with tracer.span(f"experiment.{name}", cat="experiment",
                             quick=args.quick, shard=str(shard)):
                jobs = module.build_jobs(quick=args.quick)
                executor.run(jobs)
            stats = executor.stats
            print(f"==== {name} (shard {shard}, {time.time() - t0:.1f}s) ====")
            print(f"[exec] {stats.format()}")
            print(f"[shard] owned {stats.jobs}/{len(jobs)} jobs, "
                  f"skipped {stats.skipped} (other shards)")
            print()
            continue
        # Experiments that simulate accept the executor; table1/timing
        # (inventory and wall-clock measurement) run as before.
        kwargs = {"quick": args.quick}
        params = inspect.signature(module.run).parameters
        if "executor" in params:
            kwargs["executor"] = executor
        if "budget" in params and args.budget is not None:
            kwargs["budget"] = args.budget
        if "seed" in params and args.seed is not None:
            kwargs["seed"] = args.seed
        if "count" in params and args.count is not None:
            kwargs["count"] = args.count
        before = get_metrics().snapshot()
        t0 = time.time()
        with tracer.span(f"experiment.{name}", cat="experiment",
                         quick=args.quick):
            result = module.run(**kwargs)
        report = result.format()
        elapsed = time.time() - t0
        print(f"==== {name} ({elapsed:.1f}s) ====")
        if "executor" in kwargs:
            # Cumulative over every sweep round the experiment ran --
            # search experiments drive the executor many times per run.
            # Rendered from the metrics registry (counter deltas across
            # the run), the single source the trace snapshot shares.
            d = diff_counters(before, get_metrics().snapshot())
            print("[exec] " + format_exec_line(
                jobs=int(d.get("exec.jobs", 0)),
                cache_hits=int(d.get("exec.store_hits", 0)),
                pooled=int(d.get("exec.pool_jobs", 0)),
                workers=executor.workers,
                sim_seconds=d.get("exec.sim_seconds", 0.0),
                wall_seconds=d.get("exec.wall_seconds", 0.0),
                symbolic=int(d.get("exec.symbolic_jobs", 0)),
            ))
        print(report)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(report + "\n")
    executor.close()
    if args.trace is not None:
        tracer.write(args.trace, format=args.trace_format,
                     metrics=get_metrics().snapshot())
        print(f"[obs] trace written to {args.trace} "
              f"({args.trace_format}, {len(tracer.spans())} spans)")
        stop_tracing()
    return 0


if __name__ == "__main__":
    sys.exit(main())
