"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig9 [--quick]
    python -m repro.experiments all --quick --out results/
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments import (
    ext_associativity,
    ext_three_level,
    ext_timetile,
    ext_tlb,
    fig9_pad,
    fig10_grouppad,
    fig11_sweep,
    fig12_fusion,
    fig13_tiling,
    table1_programs,
    timing,
)

EXPERIMENTS = {
    "table1": table1_programs,
    "fig9": fig9_pad,
    "fig10": fig10_grouppad,
    "fig11": fig11_sweep,
    "fig12": fig12_fusion,
    "fig13": fig13_tiling,
    "timing": timing,
    # Extensions beyond the paper's figures (claims made in its prose).
    "associativity": ext_associativity,
    "threelevel": ext_three_level,
    "tlb": ext_tlb,
    "timetile": ext_timetile,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced problem sizes (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write each report to <out>/<experiment>.txt",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        module = EXPERIMENTS[name]
        t0 = time.time()
        result = module.run(quick=args.quick)
        report = result.format()
        elapsed = time.time() - t0
        print(f"==== {name} ({elapsed:.1f}s) ====")
        print(report)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
