"""Figure 10: GROUPPAD with and without L2MAXPAD.

Five programs "with numerous opportunities for improving group reuse":
EXPL512, JACOBI512, SHAL512, SWIM, TOMCATV.  Versions:

* ``orig``    -- sequential layout;
* ``L1 Opt``  -- GROUPPAD alone (L1 cache);
* ``L1&L2``   -- GROUPPAD followed by L2MAXPAD.

Expected shape (Section 6.3.1): L1 optimization accounts for most of the
L2 improvement too; only EXPL benefits further on L2 from L2MAXPAD; the
L2 transformation never hurts L1 miss rates ("no inherent tradeoff").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import HierarchyConfig, ultrasparc_i
from repro.exec.jobs import SimJob
from repro.experiments.common import (
    VersionResult,
    improvement_pct,
    run_sweep,
)
from repro.kernels.registry import get_kernel
from repro.layout.layout import DataLayout
from repro.transforms.grouppad import grouppad
from repro.transforms.maxpad import l2maxpad
from repro.util.tabulate import format_table

__all__ = ["run", "build_jobs", "Fig10Result", "DEFAULT_PROGRAMS"]

DEFAULT_PROGRAMS = ["expl", "jacobi", "shal", "swim", "tomcatv"]
QUICK_SIZES = {"expl": 192, "jacobi": 192, "shal": 128, "swim": 129, "tomcatv": 129}
VERSIONS = ("orig", "L1 Opt", "L1&L2 Opt")


@dataclass(frozen=True)
class Fig10Result:
    """All (program, version) simulations for Figure 10."""

    hierarchy: HierarchyConfig
    results: tuple[VersionResult, ...]

    def by_program(self) -> dict[str, dict[str, VersionResult]]:
        """Group the flat result list as program -> version -> result."""
        out: dict[str, dict[str, VersionResult]] = {}
        for r in self.results:
            out.setdefault(r.program, {})[r.version] = r
        return out

    def format(self) -> str:
        """Render the two Figure 10 tables (miss rates, improvements)."""
        rows_rates, rows_impr = [], []
        for prog, versions in self.by_program().items():
            rows_rates.append(
                [prog]
                + [100.0 * versions[v].miss_rate("L1") for v in VERSIONS]
                + [100.0 * versions[v].miss_rate("L2") for v in VERSIONS]
            )
            base = versions["orig"].cycles(self.hierarchy)
            rows_impr.append(
                [
                    prog,
                    improvement_pct(base, versions["L1 Opt"].cycles(self.hierarchy)),
                    improvement_pct(base, versions["L1&L2 Opt"].cycles(self.hierarchy)),
                ]
            )
        t1 = format_table(
            ["program",
             "L1% orig", "L1% L1Opt", "L1% L1&L2",
             "L2% orig", "L2% L1Opt", "L2% L1&L2"],
            rows_rates,
            title="Figure 10: miss rates, GROUPPAD vs GROUPPAD+L2MAXPAD",
        )
        t2 = format_table(
            ["program", "improv% L1 Opt", "improv% L1&L2 Opt"],
            rows_impr,
            title="Figure 10: execution time improvement (cycle model)",
        )
        return t1 + "\n\n" + t2


def layouts_for(program, hierarchy):
    """(orig, GROUPPAD, GROUPPAD+L2MAXPAD) layouts for a program."""
    orig = DataLayout.sequential(program)
    gp = grouppad(program, orig, hierarchy.l1.size, hierarchy.l1.line_size)
    both = l2maxpad(program, gp, hierarchy)
    return {"orig": orig, "L1 Opt": gp, "L1&L2 Opt": both}


def build_jobs(
    quick: bool = False,
    programs: list[str] | None = None,
    hierarchy: HierarchyConfig | None = None,
) -> list[SimJob]:
    """The figure's independent simulations, tagged (program, version, flops)."""
    hierarchy = hierarchy or ultrasparc_i()
    programs = programs or DEFAULT_PROGRAMS
    jobs: list[SimJob] = []
    for name in programs:
        kernel = get_kernel(name)
        n = QUICK_SIZES.get(name) if quick else None
        program = kernel.program(n)
        flops = program.total_flops()
        for version, layout in layouts_for(program, hierarchy).items():
            jobs.append(
                SimJob.for_kernel(
                    kernel, program, layout, hierarchy,
                    tag=(name, version, flops),
                )
            )
    return jobs


def run(
    quick: bool = False,
    programs: list[str] | None = None,
    hierarchy: HierarchyConfig | None = None,
    workers: int | None = None,
    store=None,
    executor=None,
) -> Fig10Result:
    """Simulate orig / GROUPPAD / GROUPPAD+L2MAXPAD for each program."""
    hierarchy = hierarchy or ultrasparc_i()
    jobs = build_jobs(quick, programs, hierarchy)
    sims = run_sweep(jobs, executor=executor, workers=workers, store=store)
    results = tuple(
        VersionResult(program=job.tag[0], version=job.tag[1],
                      result=sim, flops=job.tag[2])
        for job, sim in zip(jobs, sims)
    )
    return Fig10Result(hierarchy=hierarchy, results=results)
