"""Table 1: the test-program inventory.

Regenerates the paper's table (description + line counts) from the kernel
registry, extended with the reproduction's own metadata: model fidelity,
default problem size footprint, and dynamic reference counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.registry import KERNELS
from repro.util.tabulate import format_table

__all__ = ["run", "Table1"]

_SUITE_TITLES = {"kernels": "KERNELS", "nas": "NAS BENCHMARKS", "spec95": "SPEC95 BENCHMARKS"}


@dataclass(frozen=True)
class Table1:
    """The regenerated program inventory."""

    rows: tuple[tuple, ...]

    def format(self) -> str:
        """Render the three suite tables (kernels, NAS, SPEC95)."""
        out = []
        for suite, title in _SUITE_TITLES.items():
            rows = [r for r in self.rows if r[0] == suite]
            out.append(
                format_table(
                    ["suite", "program", "description", "lines (paper)",
                     "fidelity", "data (MB)", "dynamic refs"],
                    rows,
                    title=title,
                )
            )
        return "\n\n".join(out)


def run(quick: bool = False) -> Table1:
    """Build every Table 1 program and collect its inventory row."""
    rows = []
    for kernel in KERNELS.values():
        if kernel.suite == "extra":
            continue
        program = kernel.program()
        rows.append(
            (
                kernel.suite,
                kernel.name,
                kernel.description,
                kernel.table1_lines,
                kernel.fidelity,
                round(program.total_data_bytes() / 2**20, 2),
                program.total_refs(),
            )
        )
    return Table1(rows=tuple(rows))
