"""Extension: the closed-form miss predictor vs. the trace simulator.

Two questions, two tables:

**Accuracy** -- over the same per-kernel pad spaces ``ext_search``
searches (the Table 1 kernels around Figure 9's MULTILVLPAD layouts),
how well does :mod:`repro.model` agree with the simulator?  The metric
that matters for search is *rank* agreement (Spearman correlation of the
miss-cost objective over a sampled sub-space); absolute miss-count error
per level is reported alongside.  Kernels whose spaces are plateaus --
most configs conflict-free, the simulator separating them only by
sub-0.1% boundary effects -- legitimately score low Spearman while the
predictor still lands within a fraction of a percent of the simulated
best; ``best gap %`` (simulated cost of the predictor's top pick vs. the
simulated best of the sample) is the column that catches that.

**Predict-then-verify** -- rerunning the ``ext_search`` gap table with
the two-tier :class:`~repro.search.PredictThenVerifyStrategy`: rank
``scale x budget`` configurations analytically (a 10--50x effective
budget expansion), then simulate only the ``top_k``.  Each row compares
against the pure-simulation search at the same simulation budget:
``sims`` (evaluations issued through the tuner), the sims ratio, and
whether the verified best matched or beat the pure search's.  The last
row is the first *joint* pad x tile search on the Figure 13 tiled
matrix multiply -- a product space far too large to simulate, which is
exactly the regime the predictor exists for.

The ``[model] smoke`` line at the end condenses the CI acceptance check:
on the smoke kernel, predict-then-verify must reach the pure search's
best-found cost with a fraction of its simulations, and the predictor's
ranking over that kernel's space must be strongly correlated with the
simulator's.

See also ``docs/model.md`` for what the predictor does and does not
model, and ``ext_search`` for the pure-simulation baseline methodology.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.cache.config import HierarchyConfig, ultrasparc_i
from repro.exec.executor import SweepExecutor
from repro.experiments.ext_search import (
    DEFAULT_BUDGET,
    DEFAULT_PROGRAMS,
    QUICK_BUDGET,
    _pick_strategy,
    build_space,
)
from repro.experiments.fig13_tiling import tile_for_version
from repro.layout.layout import DataLayout
from repro.search.objective import Objective, miss_cost_objective, model_objective
from repro.search.space import SearchSpace, pad_tile_space
from repro.search.strategies import PredictThenVerifyStrategy
from repro.search.tuner import Autotuner
from repro.model.validate import mean_abs_rel_error, spearman
from repro.transforms.pad import multilvl_pad
from repro.util.tabulate import format_table

__all__ = [
    "run",
    "build_joint_space",
    "AccuracyRow",
    "VerifyRow",
    "ExtModelResult",
    "QUICK_PROGRAMS",
    "SMOKE_PROGRAM",
    "DEFAULT_SCALE",
    "DEFAULT_TOP_K",
]

# Quick mode trims to kernels with strong conflict structure (fast to
# simulate, informative to rank); the full run covers every ext_search
# kernel including the plateau-dominated ones.
QUICK_PROGRAMS = ["dot", "expl", "shal"]

# The CI smoke assertions key off this kernel's row: a 3-array
# finite-difference stencil whose pad space has real conflict structure
# (predictor Spearman ~0.9) and a coordinate-descent pure baseline.
SMOKE_PROGRAM = "expl"

DEFAULT_SCALE = 20  # analytic candidates per unit of simulation budget
DEFAULT_TOP_K = 3  # verified (simulated) candidates per search
ACCURACY_SAMPLE = 40  # configs simulated per kernel for the accuracy table


@dataclass(frozen=True)
class AccuracyRow:
    """Predictor-vs-simulator agreement over one kernel's sampled space."""

    program: str
    space_size: int
    sampled: int
    spearman: float
    l1_error: float  # mean |pred - sim| / sim over L1 misses
    mem_error: float  # same over memory references (last-level misses)
    best_gap_pct: float  # sim cost of predictor's top pick vs sampled sim best
    predict_seconds: float
    sim_seconds: float


@dataclass(frozen=True)
class VerifyRow:
    """Pure-simulation search vs. predict-then-verify on one space."""

    program: str
    space_size: int
    pure_strategy: str
    pure_sims: int
    pure_best: float
    ptv_sims: int
    ptv_scored: int
    ptv_best: float
    heuristic_objective: float

    @property
    def sims_ratio_pct(self) -> float:
        """Predict-then-verify simulations as a share of the pure search's."""
        return 100.0 * self.ptv_sims / self.pure_sims if self.pure_sims else 0.0

    @property
    def equal_quality(self) -> bool:
        """Did verification reach (or beat) the pure search's best cost?"""
        return self.ptv_best <= self.pure_best


@dataclass(frozen=True)
class ExtModelResult:
    """Both tables plus the condensed smoke line for CI."""

    hierarchy: HierarchyConfig
    objective: str
    accuracy: tuple[AccuracyRow, ...]
    verify: tuple[VerifyRow, ...]
    smoke_program: str

    def accuracy_row(self, program: str) -> AccuracyRow:
        for r in self.accuracy:
            if r.program == program:
                return r
        raise KeyError(f"no accuracy row for {program!r}")

    def verify_row(self, program: str) -> VerifyRow:
        for r in self.verify:
            if r.program == program:
                return r
        raise KeyError(f"no verify row for {program!r}")

    def smoke_line(self) -> str:
        """One greppable line condensing the CI acceptance check."""
        v = self.verify_row(self.smoke_program)
        a = self.accuracy_row(self.smoke_program)
        return (
            f"[model] smoke kernel={self.smoke_program} "
            f"ptv_sims={v.ptv_sims} pure_sims={v.pure_sims} "
            f"ratio={v.sims_ratio_pct:.0f}% "
            f"equal quality: {'yes' if v.equal_quality else 'no'} "
            f"spearman={a.spearman:.2f}"
        )

    def format(self) -> str:
        """Both tables plus the smoke line."""
        acc = format_table(
            ["program", "space", "sampled", "spearman", "L1 err %",
             "mem err %", "best gap %"],
            [
                [
                    r.program,
                    r.space_size,
                    r.sampled,
                    r.spearman,
                    100.0 * r.l1_error,
                    100.0 * r.mem_error,
                    r.best_gap_pct,
                ]
                for r in self.accuracy
            ],
            title=(
                "Model extension: closed-form predictor vs. simulator "
                f"({self.objective} objective)"
            ),
        )
        ver = format_table(
            ["program", "space", "pure strat", "pure sims", "pure best",
             "ptv scored", "ptv sims", "ptv best", "sims %", "equal"],
            [
                [
                    r.program,
                    r.space_size,
                    r.pure_strategy,
                    r.pure_sims,
                    r.pure_best,
                    r.ptv_scored,
                    r.ptv_sims,
                    r.ptv_best,
                    # vs. a 1-sim heuristic baseline the ratio is meaningless
                    r.sims_ratio_pct if r.pure_strategy != "heuristic" else "-",
                    "yes" if r.equal_quality else "no",
                ]
                for r in self.verify
            ],
            title=(
                "Predict-then-verify vs. pure simulated search "
                "(same simulation budget cap; scored = analytic candidates)"
            ),
        )
        return acc + "\n\n" + ver + "\n" + self.smoke_line()


def _sample_configs(space: SearchSpace, limit: int, rng: random.Random):
    """Up to ``limit`` configs: the whole space when it fits, else a
    seeded distinct sample (sorted, so runs are reproducible)."""
    if space.size <= limit:
        return list(space.configs())
    seen = set()
    attempts, cap = 0, 50 * limit
    while len(seen) < limit and attempts < cap:
        seen.add(space.random_config(rng))
        attempts += 1
    return sorted(seen)


def _accuracy_for(
    program: str,
    space: SearchSpace,
    executor: SweepExecutor,
    objective: Objective,
    sample: int,
    seed: int,
) -> AccuracyRow:
    """Simulate and predict one sampled sub-space; score the agreement."""
    rng = random.Random(seed)
    configs = _sample_configs(space, sample, rng)
    jobs = [space.job(c) for c in configs]
    t0 = time.perf_counter()
    predicted = executor.predict(jobs)
    predict_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    simulated = executor.run(jobs)
    sim_seconds = time.perf_counter() - t0
    pred_costs = [objective(p, space.job(c).hierarchy) for p, c in zip(predicted, configs)]
    sim_costs = [objective(s, space.job(c).hierarchy) for s, c in zip(simulated, configs)]
    best_pred_i = min(range(len(configs)), key=lambda i: (pred_costs[i], i))
    best_sim = min(sim_costs)
    best_gap = (
        100.0 * (sim_costs[best_pred_i] - best_sim) / best_sim if best_sim > 0 else 0.0
    )
    return AccuracyRow(
        program=program,
        space_size=space.size,
        sampled=len(configs),
        spearman=spearman(pred_costs, sim_costs),
        l1_error=mean_abs_rel_error(
            [p.levels[0].misses for p in predicted],
            [s.levels[0].misses for s in simulated],
        ),
        mem_error=mean_abs_rel_error(
            [p.memory_refs for p in predicted],
            [s.memory_refs for s in simulated],
        ),
        best_gap_pct=best_gap,
        predict_seconds=predict_seconds,
        sim_seconds=sim_seconds,
    )


def build_joint_space(
    n: int,
    hierarchy: HierarchyConfig | None = None,
    max_lines: int = 4,
):
    """(space, heuristic config) for the joint pad x tile matmul search.

    The heuristic baseline is the paper's pipeline: the L1
    self-interference-free tile (Figure 13's winning version), then
    MULTILVLPAD pads on the resulting tiled program.  Both are merged
    into the grid so the joint search starts from -- and can never lose
    to -- the tile-then-pad recipe.
    """
    from repro.kernels import matmul

    hierarchy = hierarchy or ultrasparc_i()
    shape = tile_for_version("L1", n, hierarchy)
    tiled = matmul.build_tiled(n, shape.width, shape.height)
    heuristic = multilvl_pad(tiled, DataLayout.sequential(tiled), hierarchy)
    padded = tuple(heuristic.order[1:])
    pads = {a: heuristic.pads[heuristic.index_of(a)] for a in padded}
    space = pad_tile_space(
        n, hierarchy,
        max_lines=max_lines,
        include_tile=(shape.width, shape.height),
        include_pads=pads,
        name=f"pad_tile[matmul-{n}]",
    )
    config = (shape.width, shape.height) + tuple(pads[a] for a in padded)
    return space, space.validate(config)


def run(
    quick: bool = False,
    programs: list[str] | None = None,
    hierarchy: HierarchyConfig | None = None,
    budget: int | None = None,
    seed: int = 0,
    scale: int = DEFAULT_SCALE,
    top_k: int = DEFAULT_TOP_K,
    matmul_n: int | None = None,
    workers: int | None = None,
    store=None,
    executor=None,
) -> ExtModelResult:
    """Measure predictor accuracy, then rerun the gap table two-tier.

    ``budget`` caps simulated evaluations per kernel exactly as in
    ``ext_search``; predict-then-verify ranks ``scale * budget``
    analytic candidates (clamped to the space) and simulates only
    ``top_k`` of them plus the heuristic baseline.
    """
    hierarchy = hierarchy or ultrasparc_i()
    programs = programs or (QUICK_PROGRAMS if quick else DEFAULT_PROGRAMS)
    if budget is None:
        budget = QUICK_BUDGET if quick else DEFAULT_BUDGET
    executor = executor or SweepExecutor(
        workers=workers if workers is not None else 1, store=store
    )
    objective = miss_cost_objective()
    tuner = Autotuner(executor=executor)
    max_scored = scale * budget
    sample = min(ACCURACY_SAMPLE, max(budget, 8))

    accuracy, verify = [], []
    for name in programs:
        _, space, heuristic_config = build_space(name, quick=quick, hierarchy=hierarchy)
        accuracy.append(
            _accuracy_for(name, space, executor, objective, sample, seed)
        )
        pure = tuner.search(
            space,
            strategy=_pick_strategy(space, budget, None),
            objective=objective,
            budget=budget,
            seed=seed,
            baseline=heuristic_config,
        )
        ptv = PredictThenVerifyStrategy(top_k=top_k, max_scored=max_scored)
        two_tier = tuner.search(
            space,
            strategy=ptv,
            objective=objective,
            budget=budget,
            seed=seed,
            baseline=heuristic_config,
        )
        verify.append(
            VerifyRow(
                program=name,
                space_size=space.size,
                pure_strategy=pure.strategy,
                pure_sims=pure.evaluations,
                pure_best=pure.best_objective,
                ptv_sims=two_tier.evaluations,
                ptv_scored=ptv.last_scored,
                ptv_best=two_tier.best_objective,
                heuristic_objective=two_tier.baseline_objective,
            )
        )

    # The joint pad x tile space: no pure-simulation counterpart is
    # tractable, so the comparison point is the tile-then-pad heuristic.
    n = matmul_n if matmul_n is not None else (96 if quick else 300)
    joint_space, joint_baseline = build_joint_space(n, hierarchy)
    ptv = PredictThenVerifyStrategy(top_k=top_k, max_scored=max_scored)
    joint = tuner.search(
        joint_space,
        strategy=ptv,
        objective=objective,
        budget=budget,
        seed=seed,
        baseline=joint_baseline,
    )
    verify.append(
        VerifyRow(
            program=f"matmul-{n} (joint)",
            space_size=joint_space.size,
            pure_strategy="heuristic",
            pure_sims=1,
            pure_best=joint.baseline_objective,
            ptv_sims=joint.evaluations,
            ptv_scored=ptv.last_scored,
            ptv_best=joint.best_objective,
            heuristic_objective=joint.baseline_objective,
        )
    )

    return ExtModelResult(
        hierarchy=hierarchy,
        objective=objective.name,
        accuracy=tuple(accuracy),
        verify=tuple(verify),
        smoke_program=SMOKE_PROGRAM if SMOKE_PROGRAM in programs else programs[0],
    )
