"""Extension: Song & Li time-step tiling targets the L2 cache (Section 5).

The paper's stated exception to "just tile for L1": when tiles span time
steps, the working set (block + skew x T columns) cannot fit the L1
cache at reasonable block sizes, so the algorithm "targets the L2 cache,
completely bypassing the L1 cache".  This experiment measures exactly
that on the time-iterated stencil:

* ``untiled``  -- T plain sweeps: every sweep streams the whole array;
* ``L1 block`` -- the largest block whose sliding working set fits L1
  (usually *none exists*, in which case block = 1 stands in for the
  degenerate attempt);
* ``L2 block`` -- the block sized for the L2 cache.

Expected shape: L2-sized time blocks cut memory references (L2 misses)
by roughly the number of time steps; L1-sized blocks are degenerate or
barely help; cycle-model time favors the L2 target -- the one case in
the paper where L1-targeted tiling is *not* the answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import HierarchyConfig, ultrasparc_i
from repro.exec.jobs import SimJob
from repro.experiments.common import estimated_cycles, run_sweep
from repro.kernels import timestep
from repro.layout.layout import DataLayout
from repro.transforms.timetile import block_columns_for_cache, time_tile
from repro.util.tabulate import format_table

__all__ = ["run", "build_jobs", "TimeTileResult"]


@dataclass(frozen=True)
class TimeTileResult:
    """Miss rates and cycles of untiled / L1-block / L2-block versions."""

    hierarchy: HierarchyConfig
    # version -> (block_cols, l1_rate, l2_rate, cycles)
    rows: dict[str, tuple[int, float, float, float]]

    def format(self) -> str:
        """Render the version comparison table."""
        table = [
            [v, b, 100 * l1, 100 * l2, cyc]
            for v, (b, l1, l2, cyc) in self.rows.items()
        ]
        return format_table(
            ["version", "block cols", "L1 miss%", "L2 miss%", "cycles"],
            table,
            title=(
                "Time-step tiling extension: the Section 5 exception "
                "(tiles must target L2)"
            ),
        )


def build_jobs(
    quick: bool = False,
    n: int | None = None,
    t_steps: int | None = None,
    hierarchy: HierarchyConfig | None = None,
) -> list[SimJob]:
    """The untiled / L1-block / L2-block versions, tagged (version, block, flops)."""
    hierarchy = hierarchy or ultrasparc_i()
    # The array must exceed the L2 cache or there is no cross-time-step
    # traffic to save; n=384 gives a 1.2 MB array against the 512 KB L2.
    n = n or (384 if quick else 512)
    t_steps = t_steps or (4 if quick else 8)
    program = timestep.build(n, t_steps)
    nest = program.nests[0]
    column = program.decl("A").column_size_bytes
    flops = program.total_flops()

    blocks: dict[str, int] = {"untiled": 0}
    b_l1 = block_columns_for_cache(hierarchy.l1.size, column, t_steps)
    blocks["L1 block"] = max(1, b_l1)  # degenerate fallback when 0
    blocks["L2 block"] = block_columns_for_cache(
        hierarchy.l2.size, column, t_steps
    )

    jobs: list[SimJob] = []
    for version, block in blocks.items():
        if version == "untiled":
            prog = program
        else:
            tiled = time_tile(nest, "t", "j", block=block, skew=1)
            prog = program.with_nests([tiled])
        jobs.append(
            SimJob(
                program=prog,
                layout=DataLayout.sequential(prog),
                hierarchy=hierarchy,
                tag=(version, block, flops),
            )
        )
    return jobs


def run(
    quick: bool = False,
    n: int | None = None,
    t_steps: int | None = None,
    hierarchy: HierarchyConfig | None = None,
    workers: int | None = None,
    store=None,
    executor=None,
) -> TimeTileResult:
    hierarchy = hierarchy or ultrasparc_i()
    jobs = build_jobs(quick, n, t_steps, hierarchy)
    sims = run_sweep(jobs, executor=executor, workers=workers, store=store)
    rows: dict[str, tuple[int, float, float, float]] = {}
    for job, result in zip(jobs, sims):
        version, block, flops = job.tag
        rows[version] = (
            block,
            result.miss_rate("L1"),
            result.miss_rate("L2"),
            estimated_cycles(result, hierarchy, flops),
        )
    return TimeTileResult(hierarchy=hierarchy, rows=rows)
