"""Figure 12: the L1/L2 tradeoff of loop fusion in EXPL over problem size.

For each problem size 250..700, the EXPL velocity-update and time-advance
nests (which share four arrays) are fused.  Following Section 6.4:

* the *analytic* series -- change in per-iteration L2 references and
  memory references -- comes from the GROUPPAD reuse statistics
  (:mod:`repro.analysis.fusionmodel`), with both versions laid out by
  GROUPPAD (+L2MAXPAD assumed for L2 reuse);
* the *simulated* series -- change in L1 and L2 miss rates -- divides both
  versions' miss counts by the ORIGINAL version's reference count, since
  fusion removes references.

Expected shape: ΔL2-references varies with problem size (group reuse lost
on L1 when the fused working set outgrows it) while Δmemory-references is
a constant negative (fusion always saves the shared arrays' memory
traffic); the simulated ΔL1 miss rate tracks ΔL2 references nearly
linearly and the ΔL2 miss rate is a flat negative curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fusionmodel import FusionDelta, fusion_delta
from repro.cache.config import HierarchyConfig, ultrasparc_i
from repro.exec.jobs import SimJob
from repro.experiments.common import run_sweep
from repro.kernels import expl
from repro.kernels.registry import get_kernel
from repro.layout.layout import DataLayout
from repro.transforms.fusion import fuse_nests
from repro.transforms.grouppad import grouppad
from repro.transforms.maxpad import l2maxpad
from repro.util.tabulate import format_table

__all__ = ["run", "build_jobs", "Fig12Result", "fusion_pair_for"]


def fusion_pair_for(n: int):
    """(original program, fused program) for EXPL at problem size ``n``.

    Fuses the nests named by :data:`repro.kernels.expl.FUSABLE_NESTS` with
    ``check="none"`` -- the paper fuses this pair to study locality even
    though the shared-array dependence would normally require shift-and-peel.
    """
    original = expl.build(n)
    a, b = expl.FUSABLE_NESTS
    fused = fuse_nests(original, a, b, check="none")
    return original, fused


@dataclass(frozen=True)
class Fig12Result:
    """Fusion delta series for Figure 12."""

    hierarchy: HierarchyConfig
    # (n, d_l2_refs, d_mem_refs, d_l1_rate, d_l2_rate)
    rows: tuple[tuple[int, int, int, float, float], ...]

    def format(self) -> str:
        """Render the fusion-delta table."""
        return format_table(
            ["N", "Δ L2 refs", "Δ memory refs", "Δ L1 miss rate %", "Δ L2 miss rate %"],
            [[n, dl2, dmem, 100 * dl1, 100 * dl2r]
             for n, dl2, dmem, dl1, dl2r in self.rows],
            title="Figure 12: change in references and miss rates from fusing EXPL",
        )


def _grouppad_layout(program, hierarchy) -> DataLayout:
    gp = grouppad(
        program, DataLayout.sequential(program),
        hierarchy.l1.size, hierarchy.l1.line_size,
    )
    return l2maxpad(program, gp, hierarchy)


def analytic_delta(n: int, hierarchy: HierarchyConfig) -> FusionDelta:
    """Δ(L2 refs) and Δ(memory refs) for fusing EXPL at size ``n``."""
    original, fused = fusion_pair_for(n)
    a, b = expl.FUSABLE_NESTS
    return fusion_delta(
        original,
        _grouppad_layout(original, hierarchy),
        [original.nests[a], original.nests[b]],
        fused,
        _grouppad_layout(fused, hierarchy),
        fused.nests[a],
        hierarchy.l1.size,
        hierarchy.l1.line_size,
    )


def build_jobs(
    quick: bool = False,
    sizes: list[int] | None = None,
    hierarchy: HierarchyConfig | None = None,
) -> list[SimJob]:
    """Original/fused simulation pairs per size, tagged (n, version)."""
    hierarchy = hierarchy or ultrasparc_i()
    if sizes is None:
        sizes = list(range(250, 701, 75 if quick else 24))
    kernel = get_kernel("expl")
    jobs: list[SimJob] = []
    for n in sizes:
        original, fused = fusion_pair_for(n)
        for version, program in (("orig", original), ("fused", fused)):
            jobs.append(
                SimJob.for_kernel(
                    kernel, program, _grouppad_layout(program, hierarchy),
                    hierarchy, tag=(n, version),
                )
            )
    return jobs


def run(
    quick: bool = False,
    sizes: list[int] | None = None,
    hierarchy: HierarchyConfig | None = None,
    workers: int | None = None,
    store=None,
    executor=None,
) -> Fig12Result:
    """Analytic + simulated fusion deltas over the problem-size sweep."""
    hierarchy = hierarchy or ultrasparc_i()
    jobs = build_jobs(quick, sizes, hierarchy)
    sims = run_sweep(jobs, executor=executor, workers=workers, store=store)
    rows = []
    for (job, sim_orig), (_, sim_fused) in zip(
        zip(jobs[0::2], sims[0::2]), zip(jobs[1::2], sims[1::2])
    ):
        n = job.tag[0]
        delta = analytic_delta(n, hierarchy)
        # Both versions normalized by the ORIGINAL reference count (§6.4).
        base = sim_orig.total_refs
        d_l1 = (sim_fused.level("L1").misses - sim_orig.level("L1").misses) / base
        d_l2 = (sim_fused.level("L2").misses - sim_orig.level("L2").misses) / base
        rows.append((n, delta.l2_refs, delta.memory_refs, d_l1, d_l2))
    return Fig12Result(hierarchy=hierarchy, rows=tuple(rows))
