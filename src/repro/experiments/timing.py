"""Wall-clock sanity series: real NumPy kernels on padded layouts.

The paper times real code on an UltraSparc I.  We cannot, so the primary
"timing" series is the cycle model -- but as a sanity check this module
*actually executes* NumPy kernels whose arrays are views into one padded
pool (:func:`repro.kernels.numeric.allocate_pool`), under the original and
PAD layouts, and reports measured improvements.  On CPython the
interpreter and NumPy dispatch overheads swamp most cache effects (the
expectation recorded in DESIGN.md), which is itself a result worth
reporting alongside the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import HierarchyConfig, ultrasparc_i
from repro.kernels import dot as dot_kernel
from repro.kernels import jacobi as jacobi_kernel
from repro.kernels.numeric import allocate_pool, run_dot, run_jacobi
from repro.layout.layout import DataLayout
from repro.obs.metrics import best_of
from repro.transforms.pad import multilvl_pad, pad
from repro.util.tabulate import format_table

__all__ = ["run", "TimingResult"]


@dataclass(frozen=True)
class TimingResult:
    """Best-of-N wall-clock seconds per program and layout version."""

    # program -> {"orig": s, "L1 Opt": s, "L1&L2 Opt": s}
    seconds: dict[str, dict[str, float]]

    def improvement_pct(self, program: str, version: str) -> float:
        """Speedup of a version over the original layout, in percent."""
        base = self.seconds[program]["orig"]
        return 100.0 * (base - self.seconds[program][version]) / base

    def format(self) -> str:
        """Render the wall-clock table."""
        rows = []
        for prog, t in self.seconds.items():
            rows.append(
                [
                    prog,
                    t["orig"],
                    t["L1 Opt"],
                    t["L1&L2 Opt"],
                    self.improvement_pct(prog, "L1 Opt"),
                    self.improvement_pct(prog, "L1&L2 Opt"),
                ]
            )
        return format_table(
            ["program", "orig (s)", "L1 Opt (s)", "L1&L2 (s)",
             "improv% L1", "improv% L1&L2"],
            rows,
            floatfmt=".4f",
            title="Wall-clock sanity check (NumPy on padded pools)",
        )


def run(
    quick: bool = False,
    hierarchy: HierarchyConfig | None = None,
    repeats: int = 3,
) -> TimingResult:
    """Time DOT and JACOBI under orig / PAD / MULTILVLPAD layouts."""
    hierarchy = hierarchy or ultrasparc_i()
    seconds: dict[str, dict[str, float]] = {}

    n_dot = 16384 if quick else 65536
    prog = dot_kernel.build(n_dot)
    layouts = {
        "orig": DataLayout.sequential(prog),
        "L1 Opt": pad(prog, DataLayout.sequential(prog),
                      hierarchy.l1.size, hierarchy.l1.line_size),
        "L1&L2 Opt": multilvl_pad(prog, DataLayout.sequential(prog), hierarchy),
    }
    seconds["dot"] = {}
    inner = 20 if quick else 200
    for version, layout in layouts.items():
        arrays = allocate_pool(prog, layout, fill=1.0)
        x, z = arrays["X"], arrays["Z"]
        # best_of records every repeat in the `timing.dot.<version>`
        # histogram as it measures, so a traced run keeps the raw samples.
        seconds["dot"][version] = best_of(
            lambda: run_dot(x, z, repeats=inner), repeats,
            name=f"timing.dot.{version}",
        )

    n_jac = 192 if quick else 512
    prog = jacobi_kernel.build(n_jac)
    layouts = {
        "orig": DataLayout.sequential(prog),
        "L1 Opt": pad(prog, DataLayout.sequential(prog),
                      hierarchy.l1.size, hierarchy.l1.line_size),
        "L1&L2 Opt": multilvl_pad(prog, DataLayout.sequential(prog), hierarchy),
    }
    seconds["jacobi"] = {}
    steps = 3 if quick else 10
    for version, layout in layouts.items():
        arrays = allocate_pool(prog, layout, fill=1.0)
        a, b = arrays["A"], arrays["B"]
        seconds["jacobi"][version] = best_of(
            lambda: run_jacobi(a, b, steps=steps), repeats,
            name=f"timing.jacobi.{version}",
        )
    return TimingResult(seconds=seconds)
