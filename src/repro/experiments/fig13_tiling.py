"""Figure 13: tiled matrix-multiply performance over matrix size.

Five versions at each size (the paper sweeps 100..400): untiled ``Orig``,
and tiles sized for the L1 cache, 2xL1, 4xL1, and the L2 cache, with tile
dimensions chosen to be self-interference-free (euc-style selection;
L1-sized tiles avoid interference on L1, larger tiles on L2 -- they cannot
fit the L1 at all).  MFLOPS come from the cycle model at the UltraSparc
clock.

Expected shape (Section 6.5): L1-sized tiles win overall and stay flat for
large matrices (they also capture L2 reuse); L2-sized tiles only help once
the data exceeds the L2 cache; 2xL1/4xL1 sit slightly above L2-sized,
having lost "most L1 benefits as soon as tiles exceed what can fit in L1";
the untiled version collapses once out of cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import HierarchyConfig, ultrasparc_i
from repro.exec.jobs import SimJob
from repro.experiments.common import estimated_cycles, mflops, run_sweep
from repro.kernels import matmul
from repro.transforms.tilesize import TileShape, select_tile
from repro.layout.layout import DataLayout
from repro.util.tabulate import format_table

__all__ = ["run", "build_jobs", "Fig13Result", "tile_for_version", "TILE_VERSIONS"]

TILE_VERSIONS = ("Orig", "L1", "2xL1", "4xL1", "L2")


def tile_for_version(
    version: str, n: int, hierarchy: HierarchyConfig, element_size: int = 8
) -> TileShape | None:
    """Self-interference-free tile shape for one Figure 13 version."""
    if version == "Orig":
        return None
    l1, l2 = hierarchy.l1.size, hierarchy.l2.size
    capacity = {"L1": l1, "2xL1": 2 * l1, "4xL1": 4 * l1, "L2": l2}[version]
    # L1-sized tiles avoid interference on the L1 cache; larger tiles
    # cannot, so their dimensions avoid interference on the L2 instead.
    interference = l1 if version == "L1" else l2
    line = hierarchy.l1.line_size if version == "L1" else hierarchy.l2.line_size
    return select_tile(
        column_bytes=n * element_size,
        element_size=element_size,
        rows=n,
        cols=n,
        capacity_bytes=capacity,
        interference_cache_bytes=interference,
        line_size=line,
    )


@dataclass(frozen=True)
class Fig13Result:
    """Per-version MFLOPS series for Figure 13."""

    hierarchy: HierarchyConfig
    # version -> list of (n, tile_w, tile_h, mflops)
    series: dict[str, list[tuple[int, int, int, float]]]

    def format(self) -> str:
        """Render the MFLOPS-per-version table."""
        sizes = [row[0] for row in next(iter(self.series.values()))]
        rows = []
        for i, n in enumerate(sizes):
            row = [n]
            for v in TILE_VERSIONS:
                row.append(self.series[v][i][3])
            rows.append(row)
        return format_table(
            ["N"] + [f"{v} MFLOPS" for v in TILE_VERSIONS],
            rows,
            title="Figure 13: tiled matmul performance (cycle model, UltraSparc clock)",
        )

    def mean_mflops(self, version: str) -> float:
        """Average modeled MFLOPS of one version across the sweep."""
        rows = self.series[version]
        return sum(r[3] for r in rows) / len(rows)


def build_jobs(
    quick: bool = False,
    sizes: list[int] | None = None,
    hierarchy: HierarchyConfig | None = None,
    versions: tuple[str, ...] = TILE_VERSIONS,
) -> list[SimJob]:
    """Every (size, tile version) simulation, tagged (n, version, w, h)."""
    hierarchy = hierarchy or ultrasparc_i()
    if sizes is None:
        sizes = [100, 160, 220] if quick else list(range(100, 401, 30))
    jobs: list[SimJob] = []
    for n in sizes:
        for version in versions:
            shape = tile_for_version(version, n, hierarchy)
            if shape is None:
                program = matmul.build(n)
                w = h = 0
            else:
                program = matmul.build_tiled(n, shape.width, shape.height)
                w, h = shape.width, shape.height
            jobs.append(
                SimJob(
                    program=program,
                    layout=DataLayout.sequential(program),
                    hierarchy=hierarchy,
                    tag=(n, version, w, h),
                )
            )
    return jobs


def run(
    quick: bool = False,
    sizes: list[int] | None = None,
    hierarchy: HierarchyConfig | None = None,
    versions: tuple[str, ...] = TILE_VERSIONS,
    workers: int | None = None,
    store=None,
    executor=None,
) -> Fig13Result:
    """Simulate every tile version at every size; report modeled MFLOPS."""
    hierarchy = hierarchy or ultrasparc_i()
    jobs = build_jobs(quick, sizes, hierarchy, versions)
    sims = run_sweep(jobs, executor=executor, workers=workers, store=store)
    series: dict[str, list[tuple[int, int, int, float]]] = {v: [] for v in versions}
    for job, result in zip(jobs, sims):
        n, version, w, h = job.tag
        flops = 2 * n * n * n
        cycles = estimated_cycles(result, hierarchy, flops)
        series[version].append((n, w, h, mflops(flops, cycles)))
    return Fig13Result(hierarchy=hierarchy, series=series)
