"""Extension: the symbolic tier vs. the trace simulator.

Two artifacts, one verb:

**Agreement table** -- the Table 1 pad sweep (the same jobs as Figure 9:
every kernel in ``orig`` / ``L1 Opt`` / ``L1&L2 Opt`` layouts) run twice,
once through the forced ``symbolic`` backend and once through the
``sim`` backend on identical fresh executors, with per-level miss counts
side by side.  Rows the classifier marks *exact* must agree bit-for-bit
-- any disagreement is a bug in the no-eviction proof, counted in
``exact_disagreements`` and gated to zero in CI.  Inexact rows show the
analytic estimate's relative error and the downgrade reason, which is
the honest picture of where the closed form is authoritative and where
it only ranks.  The wall-clock of the two passes gives the headline
speedup (the acceptance criterion: >= 10x on this sweep).

**Fuzz cross-validation** -- a fixed-seed sample of the fuzzed workload
population (:func:`repro.fuzz.fuzzed_workloads`) classified against
small conflict-prone hierarchies and one roomy hierarchy; every
exact-classified (job, hierarchy) pair is simulated and compared
bit-for-bit.  The trailing ``[symbolic] smoke`` line condenses the CI
gate: ``exact_disagreements=0`` over the whole sample.

See ``docs/symbolic.md`` for the exactness rules the classifier applies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.exec.executor import SweepExecutor
from repro.exec.jobs import SimJob
from repro.experiments.fig9_pad import build_jobs
from repro.fuzz.generator import fuzzed_workloads
from repro.fuzz.harness import FUZZ_HIERARCHIES
from repro.symbolic import analyze_job, classify_job

__all__ = ["run", "SymbolicResult", "CROSSVAL_HIERARCHIES", "SPEEDUP_TARGET"]

#: The acceptance criterion for the pad-sweep wall-clock comparison.
SPEEDUP_TARGET = 10.0


def _crossval_hierarchies() -> dict[str, HierarchyConfig]:
    """Fuzz cross-validation hierarchies: the campaign's conflict-prone
    direct-mapped and associative pairs, plus a roomy direct-mapped pair
    sized so a healthy fraction of fuzzed programs classifies exact."""
    return {
        "dm": FUZZ_HIERARCHIES["dm"],
        "2way": FUZZ_HIERARCHIES["2way"],
        "roomy": HierarchyConfig(
            levels=(
                CacheConfig(size=16 * 1024, line_size=32, name="L1"),
                CacheConfig(size=64 * 1024, line_size=64, name="L2"),
            )
        ),
    }


CROSSVAL_HIERARCHIES = _crossval_hierarchies()


@dataclass(frozen=True)
class AgreementRow:
    """One (job, level) line of the pad-sweep agreement table."""

    program: str
    version: str
    level: str
    sim_misses: int
    sym_misses: float
    exact: bool
    note: str = ""

    @property
    def rel_err(self) -> float:
        return abs(self.sym_misses - self.sim_misses) / max(1, self.sim_misses)

    @property
    def agrees(self) -> bool:
        return int(round(self.sym_misses)) == self.sim_misses


@dataclass
class SymbolicResult:
    """Everything ``ext_symbolic`` measured, formatted for the report."""

    rows: list[AgreementRow] = field(default_factory=list)
    sym_wall: float = 0.0
    sim_wall: float = 0.0
    seed: int = 0
    programs: int = 0
    fuzz_cases: int = 0
    fuzz_exact: int = 0
    fuzz_checked: int = 0
    fuzz_downgraded: int = 0
    exact_disagreements: int = 0

    @property
    def speedup(self) -> float:
        return self.sim_wall / self.sym_wall if self.sym_wall > 0 else float("inf")

    @property
    def speedup_ok(self) -> bool:
        return self.speedup >= SPEEDUP_TARGET

    def smoke_line(self) -> str:
        return (
            f"[symbolic] smoke seed={self.seed} programs={self.programs} "
            f"cases={self.fuzz_cases} exact={self.fuzz_exact} "
            f"checked={self.fuzz_checked} "
            f"exact_disagreements={self.exact_disagreements} "
            f"downgraded={self.fuzz_downgraded} "
            f"speedup={self.speedup:.1f}x "
            f"speedup_ok={'yes' if self.speedup_ok else 'no'}"
        )

    def format(self) -> str:
        lines = [
            "Symbolic tier vs. simulator -- Table 1 pad sweep",
            f"  symbolic wall {self.sym_wall:.2f}s, simulator wall "
            f"{self.sim_wall:.2f}s, speedup {self.speedup:.1f}x "
            f"(target >= {SPEEDUP_TARGET:.0f}x: "
            f"{'met' if self.speedup_ok else 'MISSED'})",
            "",
            f"  {'program':<10} {'version':<10} {'lvl':<4} "
            f"{'sim misses':>12} {'symbolic':>14} {'exact':>5} "
            f"{'relerr':>7}  note",
        ]
        for r in self.rows:
            lines.append(
                f"  {r.program:<10} {r.version:<10} {r.level:<4} "
                f"{r.sim_misses:>12} {r.sym_misses:>14.0f} "
                f"{'yes' if r.exact else 'no':>5} "
                f"{r.rel_err:>6.1%}  {r.note}"
            )
        exact_rows = [r for r in self.rows if r.exact]
        lines += [
            "",
            f"  exact rows: {len(exact_rows)}/{len(self.rows)}, "
            f"bitwise disagreements on exact rows: "
            f"{sum(1 for r in exact_rows if not r.agrees)}",
            "",
            "Fuzz cross-validation "
            f"(seed={self.seed}, {self.programs} programs x "
            f"{len(CROSSVAL_HIERARCHIES)} hierarchies)",
            f"  exact-classified: {self.fuzz_exact}/{self.fuzz_cases} "
            f"(downgraded {self.fuzz_downgraded}), "
            f"simulated+compared: {self.fuzz_checked}, "
            f"disagreements: {self.exact_disagreements}",
            "",
            self.smoke_line(),
        ]
        return "\n".join(lines)


def _pad_sweep_agreement(
    quick: bool, workers: int | None, result: SymbolicResult
) -> None:
    """Run the Figure 9 job list through both tiers and tabulate."""
    jobs = build_jobs(quick)

    sym_ex = SweepExecutor(workers=1, store=None, backend="symbolic")
    t0 = time.perf_counter()
    sym_ex.run(jobs)
    result.sym_wall = time.perf_counter() - t0

    sim_ex = SweepExecutor(workers=workers, store=None, backend="sim")
    t0 = time.perf_counter()
    sim_results = sim_ex.run(jobs)
    result.sim_wall = time.perf_counter() - t0

    for job, sim in zip(jobs, sim_results):
        name, version = job.tag[0], job.tag[1]
        symbolic = analyze_job(job)
        for sim_lv, sym_lv in zip(sim.levels, symbolic.levels):
            row = AgreementRow(
                program=name,
                version=version,
                level=sim_lv.name,
                sim_misses=sim_lv.misses,
                sym_misses=sym_lv.misses,
                exact=sym_lv.exact,
                note=sym_lv.note,
            )
            result.rows.append(row)
            if row.exact and not row.agrees:
                result.exact_disagreements += 1


def _fuzz_crossval(
    seed: int,
    count: int,
    executor: SweepExecutor | None,
    workers: int | None,
    result: SymbolicResult,
) -> None:
    """Classify fuzzed workloads; simulate and bit-compare the exact ones."""
    workloads = fuzzed_workloads(seed, count)
    result.seed = seed
    result.programs = len(workloads)

    exact_jobs: list[SimJob] = []
    expectations = []
    for case_seed, program, layout in workloads:
        for hier_name, hier in CROSSVAL_HIERARCHIES.items():
            result.fuzz_cases += 1
            job = SimJob(
                program, layout, hier, tag=("symbolic", case_seed, hier_name)
            )
            classification = classify_job(job)
            if not all(c.exact for c in classification):
                result.fuzz_downgraded += 1
                continue
            result.fuzz_exact += 1
            exact_jobs.append(job)
            expectations.append(
                analyze_job(job, classification=classification).result
            )

    if executor is None:
        executor = SweepExecutor(workers=workers, store=None)
    sims = executor.run(exact_jobs, backend="sim")
    for job, expected, sim in zip(exact_jobs, expectations, sims):
        result.fuzz_checked += 1
        same = expected.total_refs == sim.total_refs and all(
            a.misses == b.misses and a.accesses == b.accesses
            for a, b in zip(expected.levels, sim.levels)
        )
        if not same:
            result.exact_disagreements += 1


def run(
    quick: bool = False,
    executor: SweepExecutor | None = None,
    workers: int | None = None,
    store=None,
    seed: int = 0,
    count: int | None = None,
) -> SymbolicResult:
    """The full experiment: pad-sweep agreement + fuzz cross-validation.

    The wall-clock comparison always uses fresh, storeless executors (a
    cache hit would fake the speedup); the fuzz cross-validation's
    simulations go through the shared ``executor`` so CI reruns stay
    cheap.  ``count`` defaults to 200 programs (60 with ``--quick``).
    """
    if count is None:
        count = 60 if quick else 200
    result = SymbolicResult()
    sweep_workers = workers if workers is not None else (
        executor.workers if executor is not None else None
    )
    _pad_sweep_agreement(quick, sweep_workers, result)
    _fuzz_crossval(seed, count, executor, sweep_workers, result)
    return result
