"""Extension: differential fuzzing of predictor, simulators, and tracer.

A seeded campaign (:func:`repro.fuzz.run_campaign`) generates random
valid affine programs and pushes every one through the repo's
differential pairs on a set of deliberately tiny two-level hierarchies:

* trace generator vs. bounds-checking interpreter (byte equality),
* vectorized hierarchy simulation vs. a sequential LRU oracle
  (exact per-level access/miss equality),
* closed-form predictor vs. simulator (per-level error bands).

The report shows the per-level band histogram -- the predictor's
measured accuracy envelope over the random-program population -- and
lists every divergent case with its one-line repro command.  Divergences
already distilled into ``tests/fuzz/corpus/`` count as *known*; the
``[fuzz] smoke`` line's ``unminimized`` field is the CI gate: a
fixed-seed campaign must find **zero** divergences that are not already
committed, minimized regression cases.

Reproduce any case::

    PYTHONPATH=src python -m repro.experiments ext_fuzz --seed <case_seed> --count 1

``--seed`` moves the whole campaign window; ``--count`` sizes it;
``--budget`` caps each program's dynamic reference count.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

from repro.errors import ReproError
from repro.exec.executor import SweepExecutor
from repro.fuzz.corpus import corpus_known_seeds, default_corpus_dir, load_corpus
from repro.fuzz.generator import FuzzConfig
from repro.fuzz.harness import (
    BAND_ORDER,
    FUZZ_HIERARCHIES,
    QUICK_HIERARCHY_NAMES,
    CampaignReport,
    run_campaign,
)
from repro.util.tabulate import format_table

__all__ = [
    "run",
    "ExtFuzzResult",
    "DEFAULT_COUNT",
    "QUICK_COUNT",
    "DEFAULT_BUDGET",
    "QUICK_BUDGET",
]

DEFAULT_COUNT = 500  # programs per campaign (the CI acceptance floor)
QUICK_COUNT = 100
DEFAULT_BUDGET = 4000  # max dynamic references per generated program
QUICK_BUDGET = 2000


@dataclass(frozen=True)
class ExtFuzzResult:
    """One campaign's findings plus the corpus it was checked against."""

    report: CampaignReport
    corpus_cases: int
    corpus_dir: pathlib.Path

    def smoke_line(self) -> str:
        return self.report.smoke_line()

    def format(self) -> str:
        rep = self.report
        hist = rep.band_histogram()
        bands = format_table(
            ["level"] + list(BAND_ORDER),
            [
                [level] + [counts[b] for b in BAND_ORDER]
                for level, counts in sorted(hist.items())
            ],
            title=(
                f"Fuzz campaign: {rep.programs} programs x "
                f"{len(rep.hierarchy_names)} hierarchies "
                f"({', '.join(rep.hierarchy_names)}), "
                f"{rep.total_refs} refs, {rep.wall_seconds:.1f}s "
                f"-- predictor error bands per level (cases)"
            ),
        )
        lines = [bands, ""]
        divergent = rep.divergent_cases()
        if divergent:
            lines.append(
                f"divergent cases ({len(divergent)}, "
                f"{rep.unminimized} not in corpus):"
            )
            for case in divergent:
                mark = "known" if case.known else "NEW"
                lines.append(f"  [{mark}] {case.describe()}")
        else:
            lines.append("divergent cases: none")
        lines.append(
            f"corpus: {self.corpus_cases} committed cases in {self.corpus_dir}"
        )
        lines.append(self.smoke_line())
        return "\n".join(lines)


def run(
    quick: bool = False,
    seed: int = 0,
    count: int | None = None,
    budget: int | None = None,
    hierarchies: dict | None = None,
    corpus_dir: str | pathlib.Path | None = None,
    executor: SweepExecutor | None = None,
) -> ExtFuzzResult:
    """Run one differential fuzz campaign and check it against the corpus.

    ``budget`` is the per-program dynamic reference cap
    (:attr:`FuzzConfig.max_refs`); quick mode trims the program count and
    the hierarchy set, not the checks -- every case still runs every
    differential pair.
    """
    if count is None:
        count = QUICK_COUNT if quick else DEFAULT_COUNT
    if budget is None:
        budget = QUICK_BUDGET if quick else DEFAULT_BUDGET
    if budget < 1:
        raise ReproError(f"budget must be >= 1, got {budget}")
    if hierarchies is None:
        hierarchies = (
            {k: FUZZ_HIERARCHIES[k] for k in QUICK_HIERARCHY_NAMES}
            if quick
            else dict(FUZZ_HIERARCHIES)
        )
    corpus_dir = pathlib.Path(corpus_dir) if corpus_dir else default_corpus_dir()
    corpus = load_corpus(corpus_dir)

    report = run_campaign(
        seed=seed,
        count=count,
        config=FuzzConfig(max_refs=budget),
        hierarchies=hierarchies,
        executor=executor,
        known_seeds=corpus_known_seeds(corpus),
    )
    return ExtFuzzResult(
        report=report, corpus_cases=len(corpus), corpus_dir=corpus_dir
    )
