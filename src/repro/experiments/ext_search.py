"""Extension: heuristic padding vs. empirically searched-optimal padding.

The paper's central claim is that its *compile-time* heuristics land
close to the best achievable locality.  The figures only ever apply the
heuristics; this experiment measures the remaining gap.  For each Table 1
kernel on the Section 6.1 hierarchy:

* the **heuristic** point is MULTILVLPAD (Figure 9's "L1&L2 Opt"
  version), scored by the weighted miss-cost objective;
* the **searched** point is the best configuration an
  :class:`~repro.search.tuner.Autotuner` finds in the inter-variable pad
  space around the same base layout -- exhaustive when the space fits
  the budget, coordinate descent (seeded with the heuristic pads)
  otherwise.

Because the heuristic pads are merged into the search grid and seed the
search, the searched objective can never be *worse*; the interesting
number is the relative gap.  A small gap on the resonant kernels is the
reproduction's first genuinely new result: empirical evidence, not just
simulation of the recipe, that the cheap heuristics are near-optimal.

Candidate batches run through the shared sweep executor, so ``--workers``
parallelizes each search round and ``REPRO_CACHE_DIR`` lets repeated runs
replay mostly from the result store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import HierarchyConfig, ultrasparc_i
from repro.experiments.fig9_pad import INTRA_PAD_FIRST, QUICK_SIZES
from repro.kernels.registry import get_kernel
from repro.layout.layout import DataLayout
from repro.search.objective import Objective, miss_cost_objective
from repro.search.report import SearchReport
from repro.search.space import SearchSpace, pad_space
from repro.search.tuner import Autotuner
from repro.transforms.intrapad import intra_pad
from repro.transforms.pad import multilvl_pad
from repro.util.tabulate import format_table

__all__ = [
    "run",
    "build_space",
    "ExtSearchResult",
    "KernelSearchRow",
    "DEFAULT_PROGRAMS",
    "DEFAULT_BUDGET",
    "QUICK_BUDGET",
]

# The Table 1 scientific kernels (faithful models); IRR's irregular
# gathers are padding-insensitive by construction, so it is left out.
DEFAULT_PROGRAMS = ["adi32", "dot", "erle64", "expl", "jacobi", "linpackd", "shal"]

DEFAULT_BUDGET = 64  # simulated evaluations per kernel
QUICK_BUDGET = 24


@dataclass(frozen=True)
class KernelSearchRow:
    """One kernel's heuristic-vs-searched comparison."""

    program: str
    dimensions: int
    space_size: int
    heuristic_objective: float
    searched_objective: float
    report: SearchReport

    @property
    def gap_pct(self) -> float:
        """Relative improvement of search over the heuristic (>= 0)."""
        if self.heuristic_objective <= 0:
            return 0.0
        return (
            100.0
            * (self.heuristic_objective - self.searched_objective)
            / self.heuristic_objective
        )


@dataclass(frozen=True)
class ExtSearchResult:
    """All kernels' search outcomes plus aggregate evaluation statistics."""

    hierarchy: HierarchyConfig
    objective: str
    rows: tuple[KernelSearchRow, ...]

    @property
    def total_evaluations(self) -> int:
        return sum(r.report.evaluations for r in self.rows)

    @property
    def total_store_hits(self) -> int:
        return sum(r.report.store_hits for r in self.rows)

    @property
    def store_hit_rate(self) -> float:
        total = self.total_evaluations
        return self.total_store_hits / total if total else 0.0

    def row(self, program: str) -> KernelSearchRow:
        for r in self.rows:
            if r.program == program:
                return r
        raise KeyError(f"no search row for {program!r}")

    def format(self) -> str:
        """The heuristic-vs-searched table plus the aggregate stats line."""
        table = format_table(
            ["program", "dims", "space", "strategy", "evals",
             "heuristic", "searched", "gap %"],
            [
                [
                    r.program,
                    r.dimensions,
                    r.space_size,
                    r.report.strategy,
                    r.report.evaluations,
                    r.heuristic_objective,
                    r.searched_objective,
                    r.gap_pct,
                ]
                for r in self.rows
            ],
            title=(
                "Search extension: MULTILVLPAD vs. empirically best pads "
                f"({self.objective} objective, lower is better)"
            ),
        )
        stats = (
            f"[search] evaluations: {self.total_evaluations}, "
            f"store hits: {self.total_store_hits} "
            f"({100.0 * self.store_hit_rate:.0f}%)"
        )
        return table + "\n" + stats


def build_space(
    name: str,
    quick: bool = False,
    hierarchy: HierarchyConfig | None = None,
    max_lines: int = 8,
):
    """(kernel, space, heuristic config) for one program's pad search.

    The space is built around the sequential base layout (after the
    Section 6.1 intra-padding for ADI32/ERLE64); the MULTILVLPAD pads are
    merged into the grid so the heuristic is an exact point of the space.
    """
    hierarchy = hierarchy or ultrasparc_i()
    kernel = get_kernel(name)
    n = QUICK_SIZES.get(name) if quick else None
    program = kernel.program(n)
    if name in INTRA_PAD_FIRST:
        program = intra_pad(
            program, hierarchy.l1.size, hierarchy.l1.line_size, hierarchy=hierarchy
        )
    base = DataLayout.sequential(program)
    heuristic = multilvl_pad(program, base, hierarchy)
    searched = base.order[1:]
    heuristic_config = tuple(
        heuristic.pads[heuristic.index_of(a)] for a in searched
    )
    space = pad_space(
        program, base, hierarchy,
        kernel=kernel,
        max_lines=max_lines,
        include=dict(zip(searched, heuristic_config)),
        name=f"pad[{name}]",
    )
    return kernel, space, heuristic_config


def _pick_strategy(space: SearchSpace, budget: int | None, override: str | None) -> str:
    if override is not None:
        return override
    if budget is None or space.size <= budget:
        return "exhaustive"
    return "coordinate"


def run(
    quick: bool = False,
    programs: list[str] | None = None,
    hierarchy: HierarchyConfig | None = None,
    budget: int | None = None,
    seed: int = 0,
    strategy: str | None = None,
    objective: Objective | None = None,
    max_lines: int = 8,
    workers: int | None = None,
    store=None,
    executor=None,
) -> ExtSearchResult:
    """Search each kernel's pad space; compare against MULTILVLPAD.

    ``budget`` caps simulated evaluations *per kernel* (defaults to
    :data:`DEFAULT_BUDGET`, :data:`QUICK_BUDGET` under ``quick``);
    ``strategy`` forces one strategy for every kernel instead of the
    size-based exhaustive/coordinate choice.
    """
    hierarchy = hierarchy or ultrasparc_i()
    programs = programs or DEFAULT_PROGRAMS
    if budget is None:
        budget = QUICK_BUDGET if quick else DEFAULT_BUDGET
    objective = objective if objective is not None else miss_cost_objective()
    tuner = Autotuner(executor=executor, workers=workers, store=store)
    rows = []
    for name in programs:
        _, space, heuristic_config = build_space(
            name, quick=quick, hierarchy=hierarchy, max_lines=max_lines
        )
        report = tuner.search(
            space,
            strategy=_pick_strategy(space, budget, strategy),
            objective=objective,
            budget=budget,
            seed=seed,
            baseline=heuristic_config,
        )
        rows.append(
            KernelSearchRow(
                program=name,
                dimensions=len(space.dimensions),
                space_size=space.size,
                heuristic_objective=report.baseline_objective,
                searched_objective=report.best_objective,
                report=report,
            )
        )
    return ExtSearchResult(
        hierarchy=hierarchy, objective=objective.name, rows=tuple(rows)
    )
