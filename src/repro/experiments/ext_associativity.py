"""Extension: the paper's associativity claim, measured.

Section 1: "Our experience indicates that simply treating k-way
associative caches as direct-mapped for locality optimizations achieves
nearly all the benefits of explicitly considering higher associativity."

This experiment pads for the *direct-mapped* model (PAD as usual) and then
evaluates the same layouts on 2-way and 4-way LRU hierarchies of identical
capacity.  Two observations support the claim when reproduced:

1. padding chosen for a direct-mapped cache still removes most misses on
   the associative caches (resonant layouts overwhelm any LRU);
2. the residual miss rate after direct-mapped-targeted padding is already
   close to the associative caches' floor, leaving little for an
   associativity-aware algorithm to gain.

CLI verb: ``assoc_claim`` (the old ``associativity`` verb remains as a
deprecated alias).  Companion experiment: :mod:`~repro.experiments.ext_assoc`
(CLI verb ``ext_assoc``) measures the same claim from the other side --
instead of checking that direct-mapped-targeted padding still *works* on
k-way caches, it searches the k-way-aware pad space empirically and
reports how much headroom the direct-mapped simplification leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig, HierarchyConfig, ultrasparc_i
from repro.exec.jobs import SimJob
from repro.experiments.common import run_sweep
from repro.kernels.registry import get_kernel
from repro.layout.layout import DataLayout
from repro.transforms.pad import pad
from repro.util.tabulate import format_table

__all__ = ["run", "build_jobs", "AssocResult", "assoc_hierarchy"]

DEFAULT_PROGRAMS = ["dot", "expl", "jacobi", "su2cor"]
QUICK_SIZES = {"dot": 16384, "expl": 192, "jacobi": 192, "su2cor": 128}


def assoc_hierarchy(associativity: int) -> HierarchyConfig:
    """The Section 6.1 hierarchy with k-way LRU at both levels."""
    base = ultrasparc_i()
    return HierarchyConfig(
        levels=tuple(
            CacheConfig(
                size=c.size, line_size=c.line_size,
                associativity=associativity, name=c.name,
                hit_cycles=c.hit_cycles,
            )
            for c in base
        ),
        memory_cycles=base.memory_cycles,
    )


@dataclass(frozen=True)
class AssocResult:
    """Miss rates of each program per (layout version, associativity)."""

    # program -> {(version, assoc): l1_miss_rate}
    rates: dict[str, dict[tuple[str, int], float]]

    def format(self) -> str:
        """Render the comparison table."""
        rows = []
        for prog, r in self.rates.items():
            rows.append(
                [
                    prog,
                    100 * r[("orig", 1)], 100 * r[("orig", 2)],
                    100 * r[("orig", 4)],
                    100 * r[("padded", 1)], 100 * r[("padded", 2)],
                    100 * r[("padded", 4)],
                ]
            )
        return format_table(
            ["program",
             "orig 1-way%", "orig 2-way%", "orig 4-way%",
             "PAD 1-way%", "PAD 2-way%", "PAD 4-way%"],
            rows,
            title=(
                "Associativity extension: L1 miss rates of direct-mapped-"
                "targeted PAD on k-way caches"
            ),
        )

    def headroom(self, program: str) -> float:
        """How much a 4-way cache still improves on the padded
        direct-mapped result -- the most an associativity-aware padding
        algorithm could possibly recover (percentage points)."""
        r = self.rates[program]
        return 100 * (r[("padded", 1)] - r[("padded", 4)])


def build_jobs(
    quick: bool = False,
    programs: list[str] | None = None,
) -> list[SimJob]:
    """Each (program, version, associativity) cell, tagged accordingly."""
    programs = programs or DEFAULT_PROGRAMS
    dm = ultrasparc_i()
    jobs: list[SimJob] = []
    for name in programs:
        kernel = get_kernel(name)
        n = QUICK_SIZES.get(name) if quick else None
        program = kernel.program(n)
        seq = DataLayout.sequential(program)
        padded = pad(program, seq, dm.l1.size, dm.l1.line_size)
        for assoc in (1, 2, 4):
            hier = dm if assoc == 1 else assoc_hierarchy(assoc)
            for version, layout in [("orig", seq), ("padded", padded)]:
                jobs.append(
                    SimJob.for_kernel(
                        kernel, program, layout, hier,
                        tag=(name, version, assoc),
                    )
                )
    return jobs


def run(
    quick: bool = False,
    programs: list[str] | None = None,
    workers: int | None = None,
    store=None,
    executor=None,
) -> AssocResult:
    """Measure direct-mapped-targeted PAD on 1/2/4-way hierarchies."""
    jobs = build_jobs(quick, programs)
    sims = run_sweep(jobs, executor=executor, workers=workers, store=store)
    rates: dict[str, dict[tuple[str, int], float]] = {}
    for job, result in zip(jobs, sims):
        name, version, assoc = job.tag
        rates.setdefault(name, {})[(version, assoc)] = result.miss_rate("L1")
    return AssocResult(rates=rates)
