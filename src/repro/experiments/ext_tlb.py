"""Extension: TLB behaviour of the tiling choices (related work, [19]).

Mitchell, Carter, Ferrante and Högstedt -- the one related work the paper
credits with multi-level awareness -- showed that considering cache *and
TLB* together changes the best tile.  A TLB is just another cache level
(page-granular lines, a few dozen entries), so the simulator covers it
for free: this experiment measures TLB miss rates of the Figure 13 tile
choices.

The mechanism: an L1-sized W x H tile of a column-major array touches W
different columns, i.e. up to W distinct pages per tile pass.  Tall,
narrow tiles are TLB-friendly; wide tiles blow the TLB even when they fit
the cache -- the compromise Mitchell et al. formalize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig, HierarchyConfig, ultrasparc_i
from repro.exec.jobs import SimJob
from repro.experiments.common import run_sweep
from repro.experiments.fig13_tiling import TILE_VERSIONS, tile_for_version
from repro.kernels import matmul
from repro.layout.layout import DataLayout
from repro.util.tabulate import format_table

__all__ = ["run", "build_jobs", "TLBResult", "tlb_config"]


def tlb_config(entries: int = 64, page_size: int = 8192) -> CacheConfig:
    """A direct-mapped TLB modeled as a page-granular cache.

    (The UltraSparc I data TLB held 64 entries of 8 KB pages.)
    """
    return CacheConfig(
        size=entries * page_size, line_size=page_size, name="TLB"
    )


@dataclass(frozen=True)
class TLBResult:
    """TLB miss-rate series per tile version."""

    # version -> list of (n, tile_w, tile_h, tlb_miss_rate)
    series: dict[str, list[tuple[int, int, int, float]]]

    def format(self) -> str:
        """Render the TLB miss-rate series."""
        sizes = [row[0] for row in next(iter(self.series.values()))]
        rows = []
        for i, n in enumerate(sizes):
            row = [n]
            for v in self.series:
                row.append(100 * self.series[v][i][3])
            rows.append(row)
        return format_table(
            ["N"] + [f"{v} TLB miss%" for v in self.series],
            rows,
            floatfmt=".3f",
            title="TLB extension: miss rates of the Figure 13 tile choices",
        )

    def rate(self, version: str, n: int) -> float:
        """TLB miss rate of one version at one matrix size."""
        for row in self.series[version]:
            if row[0] == n:
                return row[3]
        raise KeyError(f"no size {n} in series {version!r}")


def build_jobs(
    quick: bool = False,
    sizes: list[int] | None = None,
    versions: tuple[str, ...] = ("Orig", "L1", "L2"),
    entries: int = 64,
    page_size: int = 8192,
) -> list[SimJob]:
    """Each (size, tile version) against the one-level TLB "hierarchy".

    A TLB is just another cache level, so the generic simulator (and
    therefore the sweep executor and result store) covers it directly.
    """
    if sizes is None:
        sizes = [128, 192] if quick else [128, 224, 320, 400]
    hier = ultrasparc_i()
    tlb_hier = HierarchyConfig(levels=(tlb_config(entries, page_size),))
    jobs: list[SimJob] = []
    for n in sizes:
        for version in versions:
            shape = tile_for_version(version, n, hier)
            if shape is None:
                program = matmul.build(n)
                w = h = 0
            else:
                program = matmul.build_tiled(n, shape.width, shape.height)
                w, h = shape.width, shape.height
            jobs.append(
                SimJob(
                    program=program,
                    layout=DataLayout.sequential(program),
                    hierarchy=tlb_hier,
                    tag=(n, version, w, h),
                )
            )
    return jobs


def run(
    quick: bool = False,
    sizes: list[int] | None = None,
    versions: tuple[str, ...] = ("Orig", "L1", "L2"),
    entries: int = 64,
    page_size: int = 8192,
    workers: int | None = None,
    store=None,
    executor=None,
) -> TLBResult:
    jobs = build_jobs(quick, sizes, versions, entries, page_size)
    sims = run_sweep(jobs, executor=executor, workers=workers, store=store)
    series: dict[str, list[tuple[int, int, int, float]]] = {v: [] for v in versions}
    for job, result in zip(jobs, sims):
        n, version, w, h = job.tag
        series[version].append((n, w, h, result.miss_rate("TLB")))
    return TLBResult(series=series)
