"""Extension: TLB behaviour of the tiling choices (related work, [19]).

Mitchell, Carter, Ferrante and Högstedt -- the one related work the paper
credits with multi-level awareness -- showed that considering cache *and
TLB* together changes the best tile.  A TLB is just another cache level
(page-granular lines, a few dozen entries), so the simulator covers it
for free: this experiment measures TLB miss rates of the Figure 13 tile
choices.

The mechanism: an L1-sized W x H tile of a column-major array touches W
different columns, i.e. up to W distinct pages per tile pass.  Tall,
narrow tiles are TLB-friendly; wide tiles blow the TLB even when they fit
the cache -- the compromise Mitchell et al. formalize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig, ultrasparc_i
from repro.cache.streaming import StreamingDirectCache
from repro.experiments.fig13_tiling import TILE_VERSIONS, tile_for_version
from repro.kernels import matmul
from repro.layout.layout import DataLayout
from repro.trace.generator import program_trace_chunks
from repro.util.tabulate import format_table

__all__ = ["run", "TLBResult", "tlb_config"]


def tlb_config(entries: int = 64, page_size: int = 8192) -> CacheConfig:
    """A direct-mapped TLB modeled as a page-granular cache.

    (The UltraSparc I data TLB held 64 entries of 8 KB pages.)
    """
    return CacheConfig(
        size=entries * page_size, line_size=page_size, name="TLB"
    )


@dataclass(frozen=True)
class TLBResult:
    """TLB miss-rate series per tile version."""

    # version -> list of (n, tile_w, tile_h, tlb_miss_rate)
    series: dict[str, list[tuple[int, int, int, float]]]

    def format(self) -> str:
        """Render the TLB miss-rate series."""
        sizes = [row[0] for row in next(iter(self.series.values()))]
        rows = []
        for i, n in enumerate(sizes):
            row = [n]
            for v in self.series:
                row.append(100 * self.series[v][i][3])
            rows.append(row)
        return format_table(
            ["N"] + [f"{v} TLB miss%" for v in self.series],
            rows,
            floatfmt=".3f",
            title="TLB extension: miss rates of the Figure 13 tile choices",
        )

    def rate(self, version: str, n: int) -> float:
        """TLB miss rate of one version at one matrix size."""
        for row in self.series[version]:
            if row[0] == n:
                return row[3]
        raise KeyError(f"no size {n} in series {version!r}")


def run(
    quick: bool = False,
    sizes: list[int] | None = None,
    versions: tuple[str, ...] = ("Orig", "L1", "L2"),
    entries: int = 64,
    page_size: int = 8192,
) -> TLBResult:
    if sizes is None:
        sizes = [128, 192] if quick else [128, 224, 320, 400]
    hier = ultrasparc_i()
    tlb = tlb_config(entries, page_size)
    series: dict[str, list[tuple[int, int, int, float]]] = {v: [] for v in versions}
    for n in sizes:
        for version in versions:
            shape = tile_for_version(version, n, hier)
            if shape is None:
                program = matmul.build(n)
                w = h = 0
            else:
                program = matmul.build_tiled(n, shape.width, shape.height)
                w, h = shape.width, shape.height
            layout = DataLayout.sequential(program)
            sim = StreamingDirectCache(tlb.size, tlb.line_size)
            total = 0
            for chunk in program_trace_chunks(program, layout):
                sim.feed(chunk)
                total += chunk.size
            series[version].append((n, w, h, sim.misses / total))
    return TLBResult(series=series)
