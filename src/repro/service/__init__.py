"""Tuning-as-a-service: a long-running layout/tile-tuning server.

The :mod:`repro.service` package turns the library's tuning pipeline
(:func:`repro.driver.optimize` + the :mod:`repro.search` autotuner over
the :mod:`repro.exec` executor and its persistent result store) into a
long-running network service:

* :mod:`~repro.service.protocol` -- the JSON wire format: program IR and
  hierarchy codecs, request parsing with defaults, and the
  content-addressed **tuning key** that collapses semantically identical
  requests (key order, defaulted fields, preset-vs-explicit hierarchies)
  onto one computation;
* :mod:`~repro.service.pipeline` -- one tuning request end to end:
  heuristic optimization, optional empirical pad search, final
  evaluation, all through a shared :class:`~repro.exec.executor.SweepExecutor`;
* :mod:`~repro.service.planner` -- the persistent response store and the
  request planner that decides warm (store) vs cold (compute);
* :mod:`~repro.service.queue` -- bounded, cost-ordered admission with
  explicit 429/503 backpressure;
* :mod:`~repro.service.server` -- the asyncio HTTP front end
  (``POST /v1/tune``, ``GET /v1/jobs/<id>``, ``GET /metrics``,
  ``GET /healthz``) with single-flight dedup of identical in-flight
  requests and graceful drain on shutdown;
* :mod:`~repro.service.client` -- a small blocking client for scripts,
  load tests, and CI.

Start a server with ``python -m repro.service`` (or the experiments
CLI's ``serve`` verb); see ``docs/service.md``.
"""

from repro.service.client import TuningClient
from repro.service.pipeline import run_tuning
from repro.service.planner import RequestPlanner, TuningStore
from repro.service.protocol import (
    SERVICE_SCHEMA,
    ProtocolError,
    TuningRequest,
    hierarchy_from_json,
    hierarchy_to_json,
    parse_request,
    program_from_json,
    program_to_json,
    request_key,
)
from repro.service.queue import ServiceDraining, ServiceSaturated, TuningQueue
from repro.service.server import ServiceConfig, TuningService, serve

__all__ = [
    "SERVICE_SCHEMA",
    "ProtocolError",
    "TuningRequest",
    "parse_request",
    "request_key",
    "program_to_json",
    "program_from_json",
    "hierarchy_to_json",
    "hierarchy_from_json",
    "run_tuning",
    "TuningStore",
    "RequestPlanner",
    "TuningQueue",
    "ServiceSaturated",
    "ServiceDraining",
    "ServiceConfig",
    "TuningService",
    "serve",
    "TuningClient",
]
