"""One tuning request, end to end, through a shared executor.

:func:`run_tuning` is the CPU-bound heart of the service: the paper's
heuristic pipeline (:func:`repro.driver.optimize`), then an optional
empirical pad search around the heuristic layout (seeded with it, so the
recommendation is never worse), then one final evaluation of the chosen
layout -- every simulation flowing through the caller's
:class:`~repro.exec.executor.SweepExecutor`, whose tiered backends and
persistent result store do the heavy lifting: symbolic/model tiers
answer what they can exactly, the ``"predict"`` search strategy spends
the simulation budget only on analytically top-ranked candidates, and
anything simulated once (by any request, any process) is served from the
store thereafter.

The function is synchronous and thread-safe with respect to *distinct*
executors: the server runs it in a thread pool, one executor per worker
thread, all sharing one store directory.
"""

from __future__ import annotations

import time

from repro.driver import optimize
from repro.exec.executor import SweepExecutor
from repro.exec.jobs import SimJob
from repro.obs.tracer import get_tracer
from repro.search.space import pad_space
from repro.search.tuner import Autotuner
from repro.service.protocol import SERVICE_SCHEMA, TuningRequest

__all__ = ["run_tuning", "run_tuning_traced"]


def run_tuning_traced(req: TuningRequest, executor: SweepExecutor,
                      trace_id: str | None = None,
                      parent_span: int | None = None,
                      fn=None) -> dict:
    """:func:`run_tuning` under the admitting request's trace context.

    Runs in a pool thread with no live spans of its own; the scope
    re-parents everything the pipeline records (``service.tune``,
    ``exec.sweep``, ``exec.job``, simulator chunk spans) under the HTTP
    request's reserved root span and stamps the ``trace_id`` into their
    args -- that is what makes ``report --trace-id`` able to reconstruct
    one request end to end.

    ``fn`` lets the server pass its own (patchable) ``run_tuning``
    reference; the scope wraps whatever actually runs.
    """
    tracer = get_tracer()
    ctx = {"trace_id": trace_id} if trace_id is not None else {}
    with tracer.scope(parent_id=parent_span, **ctx):
        return (fn or run_tuning)(req, executor)


def run_tuning(req: TuningRequest, executor: SweepExecutor) -> dict:
    """Tune one request; returns the JSON-able response payload.

    The payload carries the recommended layout (array order, pads,
    padded shapes), the evaluated per-level miss rates and cycle
    estimate for it, the driver's decision log, the search summary when
    one ran, and provenance: how many jobs the request cost and which
    tier answered each (store hits vs symbolic vs simulated).
    """
    t0 = time.time()
    tracer = get_tracer()
    mark = executor.mark()
    kern = None
    if req.kernel is not None:
        from repro.kernels.registry import get_kernel

        kern = get_kernel(req.kernel)

    with tracer.span("service.tune", cat="service",
                     program=req.program.name, strategy=req.strategy,
                     search=req.search):
        program, layout, report = optimize(
            req.program, req.hierarchy, strategy=req.strategy
        )

        search_summary = None
        searched = layout.order[1:]
        if req.search != "none" and searched:
            heuristic = tuple(
                layout.pads[layout.index_of(a)] for a in searched
            )
            space = pad_space(
                program, layout, req.hierarchy,
                kernel=kern,
                max_lines=req.max_lines,
                include=dict(zip(searched, heuristic)),
                name=f"pad[{program.name}:{req.strategy}]",
            )
            tuner = Autotuner(executor=executor)
            sr = tuner.search(
                space,
                strategy=req.search,
                budget=req.budget,
                seed=req.seed,
                baseline=heuristic,
            )
            layout = layout.with_pads(dict(zip(searched, sr.best_config)))
            search_summary = {
                "strategy": sr.strategy,
                "space": sr.space,
                "evaluations": sr.evaluations,
                "baseline_objective": sr.baseline_objective,
                "best_objective": sr.best_objective,
                "gap_pct": sr.gap_pct,
                "stopped": sr.stopped,
            }
            report.log(
                f"search({sr.strategy}, budget={req.budget}): objective "
                f"{sr.baseline_objective:.6g} -> {sr.best_objective:.6g} "
                f"in {sr.evaluations} evaluations"
            )
        elif req.search != "none":
            report.log("search skipped: single-array layout has no pad space")

        # Final evaluation of the recommended layout.  When the search
        # already simulated this exact point it replays from the store.
        if kern is not None:
            job = SimJob.for_kernel(kern, program, layout, req.hierarchy)
        else:
            job = SimJob(program=program, layout=layout, hierarchy=req.hierarchy)
        result = executor.run([job])[0]

    stats = executor.cumulative_stats(mark)
    shapes = {a.name: list(a.shape) for a in program.arrays}
    return {
        "schema": SERVICE_SCHEMA,
        "program": req.program.name,
        "request": {
            "strategy": req.strategy,
            "search": req.search,
            "budget": req.budget,
            "max_lines": req.max_lines,
            "seed": req.seed,
        },
        "recommendation": {
            "order": list(layout.order),
            "pads": {a: layout.pads[layout.index_of(a)] for a in layout.order},
            "shapes": shapes,
        },
        "evaluation": {
            "total_refs": result.total_refs,
            "levels": [
                {
                    "name": lv.name,
                    "accesses": lv.accesses,
                    "misses": lv.misses,
                    "miss_rate": result.miss_rate(lv.name),
                }
                for lv in result.levels
            ],
            "cycles": result.cycles(req.hierarchy),
        },
        "decisions": list(report.decisions),
        "search": search_summary,
        "provenance": {
            "jobs": stats.jobs,
            "store_hits": stats.cache_hits,
            "symbolic": stats.symbolic_jobs,
            "model": stats.model_jobs,
            "simulated": stats.simulated_jobs,
            "sim_seconds": stats.sim_seconds,
            "wall_seconds": stats.wall_seconds,
        },
        "seconds": time.time() - t0,
    }
