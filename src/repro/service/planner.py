"""Request planning: canonical keys, the response store, warm-vs-cold.

The planner sits between the HTTP front end and the tuning pipeline.
It owns two decisions:

* **identity** -- every request is parsed and reduced to its
  content-addressed tuning key (:func:`repro.service.protocol.request_key`),
  so textually different but semantically identical requests are the
  same unit of work;
* **temperature** -- a key whose response is already in the persistent
  :class:`TuningStore` is *warm* and answered without touching the
  queue; everything else is cold work for the pipeline.

:class:`TuningStore` mirrors the executor's
:class:`~repro.exec.store.ResultStore` discipline one level up: loose
JSON files sharded by key prefix, write-temp-then-rename atomicity (so
service restarts and concurrent instances sharing a directory are
safe), and a hot in-memory tier for repeat lookups.  It deliberately
stores whole *responses*: a warm hit skips not just simulation but the
entire optimization + search pipeline.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from repro.service.protocol import (
    SERVICE_SCHEMA,
    TuningRequest,
    parse_request,
    request_key,
)

__all__ = ["TuningStore", "RequestPlanner"]

TUNINGS_DIRNAME = "tunings"


class TuningStore:
    """Content-addressed persistence of full tuning responses."""

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._hot: dict[str, dict] = {}

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored response for ``key``, or None (counts hit/miss)."""
        payload = self._hot.get(key)
        if payload is None:
            try:
                payload = json.loads(self.path_for(key).read_text())
            except (OSError, ValueError):
                payload = None
            if payload is not None and payload.get("schema") != SERVICE_SCHEMA:
                payload = None  # orphaned by a schema bump
            if payload is not None:
                self._hot[key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return dict(payload)

    def put(self, key: str, payload: dict) -> None:
        """Persist one response atomically (temp file + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(payload, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._hot[key] = dict(payload)
        self.puts += 1

    def __contains__(self, key: str) -> bool:
        return key in self._hot or self.path_for(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return (
            f"TuningStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, puts={self.puts})"
        )


class RequestPlanner:
    """Parse requests into keyed work and decide warm vs cold."""

    def __init__(self, store: TuningStore):
        self.store = store

    def plan(self, payload) -> tuple[str, TuningRequest]:
        """Canonicalize one request payload; raises ProtocolError on junk."""
        req = parse_request(payload)
        return request_key(req), req

    def lookup(self, key: str) -> dict | None:
        """The stored response when the key is warm, else None."""
        return self.store.get(key)

    def complete(self, key: str, payload: dict) -> None:
        """Record a computed response so future requests are warm."""
        self.store.put(key, payload)
