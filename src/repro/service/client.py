"""A small blocking client for the tuning service.

For scripts, load tests, and CI: plain :mod:`http.client`, JSON in and
out, no dependencies.  Every method returns ``(status, payload)`` so
callers can assert on backpressure statuses (429/503) as easily as on
success; :meth:`TuningClient.tune_ok` raises instead, for the common
"just give me the answer" path.

Also usable as a module CLI::

    python -m repro.service.client --port 8077 healthz
    python -m repro.service.client --port 8077 tune request.json
    python -m repro.service.client --port 8077 job <key>
    python -m repro.service.client --port 8077 metrics
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time

from repro.errors import ReproError

__all__ = ["TuningClient", "ServiceClientError", "main"]


class ServiceClientError(ReproError):
    """The service could not be reached or answered with an error."""


class TuningClient:
    """Blocking JSON client bound to one server address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8077,
                 timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> tuple[int, dict | str]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            ctype = response.getheader("Content-Type", "")
            if ctype.startswith("text/plain"):
                # e.g. the Prometheus exposition from /metrics?format=...
                return response.status, raw.decode("utf-8")
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {"error": f"non-JSON response: {raw[:200]!r}"}
            return response.status, decoded
        except OSError as exc:
            raise ServiceClientError(
                f"cannot reach tuning service at "
                f"{self.host}:{self.port}: {exc}"
            ) from None
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------------

    def tune(self, request: dict, wait: bool = True) -> tuple[int, dict]:
        """POST one tuning request; 202 + job id when ``wait`` is False."""
        suffix = "" if wait else "?wait=0"
        return self._request("POST", f"/v1/tune{suffix}", body=request)

    def tune_ok(self, request: dict) -> dict:
        """Tune and return the response payload, raising on any non-200."""
        status, payload = self.tune(request, wait=True)
        if status != 200:
            raise ServiceClientError(
                f"tune failed with HTTP {status}: "
                f"{payload.get('error', payload)}"
            )
        return payload

    def job(self, key: str) -> tuple[int, dict]:
        return self._request("GET", f"/v1/jobs/{key}")

    def metrics(self, fmt: str = "json") -> dict | str:
        """The metrics snapshot: a dict, or the Prometheus text when
        ``fmt="prometheus"``."""
        suffix = "" if fmt == "json" else f"?format={fmt}"
        status, payload = self._request("GET", f"/metrics{suffix}")
        if status != 200:
            raise ServiceClientError(f"/metrics answered HTTP {status}")
        return payload

    def healthz(self) -> tuple[int, dict]:
        return self._request("GET", "/healthz")

    def wait_ready(self, timeout: float = 15.0) -> bool:
        """Poll /healthz until the server answers (for CI and tests)."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            try:
                status, _ = self.healthz()
                if status == 200:
                    return True
            except ServiceClientError:
                pass
            time.sleep(0.1)
        return False


def main(argv: list[str] | None = None) -> int:
    """Module CLI; prints the JSON response, exit code 0 on HTTP success."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="Talk to a running repro tuning service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077)
    parser.add_argument("--timeout", type=float, default=120.0)
    sub = parser.add_subparsers(dest="verb", required=True)
    tune = sub.add_parser("tune", help="POST a tuning request")
    tune.add_argument("request", help="path to a JSON request file, or '-'")
    tune.add_argument("--no-wait", action="store_true",
                      help="return the job id immediately (202)")
    job = sub.add_parser("job", help="poll one job by key")
    job.add_argument("key")
    metrics = sub.add_parser("metrics", help="dump the metrics snapshot")
    metrics.add_argument("--format", choices=["json", "prometheus"],
                         default="json", dest="fmt",
                         help="snapshot encoding (default json)")
    sub.add_parser("healthz", help="liveness check")
    args = parser.parse_args(argv)

    client = TuningClient(host=args.host, port=args.port, timeout=args.timeout)
    try:
        if args.verb == "tune":
            raw = (sys.stdin.read() if args.request == "-"
                   else open(args.request).read())
            status, payload = client.tune(json.loads(raw),
                                          wait=not args.no_wait)
        elif args.verb == "job":
            status, payload = client.job(args.key)
        elif args.verb == "metrics":
            status, payload = 200, client.metrics(fmt=args.fmt)
        else:
            status, payload = client.healthz()
    except (ServiceClientError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if isinstance(payload, str):
        print(payload, end="")
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if status in (200, 202) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
