"""``python -m repro.service`` -- run the tuning server.

Also reachable as ``repro-experiments serve ...`` (the experiments CLI
forwards its ``serve`` verb here).  The server runs until SIGTERM or
SIGINT, drains admitted work, and exits 0 -- the contract the CI
service-smoke job asserts.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.exec.backends import BACKENDS
from repro.experiments.__main__ import default_cache_dir
from repro.service.server import ServiceConfig, serve

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the long-running layout/tile-tuning service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077,
                        help="listen port (0 picks a free one)")
    parser.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="shared result-store directory (simulation results and "
             "tuned responses; default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-sim)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=2, metavar="N",
        help="tuning requests computed in parallel (default 2)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=8, metavar="N",
        help="max queued+running cold requests before 429 (default 8)",
    )
    parser.add_argument(
        "--sim-workers", type=int, default=1, metavar="N",
        help="simulation worker processes per tuning worker (default 1)",
    )
    parser.add_argument("--backend", choices=list(BACKENDS), default="auto",
                        help="executor tier for evaluations (default auto)")
    parser.add_argument(
        "--drain-timeout", type=float, default=60.0, metavar="S",
        help="seconds to wait for admitted work on shutdown (default 60)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH", dest="trace",
        help="record request/pipeline/simulator spans and timeline "
             "counter tracks; written to PATH on shutdown",
    )
    parser.add_argument(
        "--trace-format", choices=["jsonl", "chrome"], default="jsonl",
        help="trace file format (default jsonl; chrome loads in Perfetto)",
    )
    args = parser.parse_args(argv)
    if args.concurrency < 1:
        parser.error(f"--concurrency must be >= 1, got {args.concurrency}")
    if args.queue_limit < 1:
        parser.error(f"--queue-limit must be >= 1, got {args.queue_limit}")
    if args.sim_workers < 1:
        parser.error(f"--sim-workers must be >= 1, got {args.sim_workers}")

    config = ServiceConfig(
        store_dir=str(args.store_dir or default_cache_dir()),
        host=args.host,
        port=args.port,
        concurrency=args.concurrency,
        queue_limit=args.queue_limit,
        sim_workers=args.sim_workers,
        backend=args.backend,
        drain_timeout=args.drain_timeout,
        trace_path=args.trace,
        trace_format=args.trace_format,
    )
    return asyncio.run(serve(config))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
