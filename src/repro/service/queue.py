"""Bounded, cost-ordered admission of cold tuning work.

The server admits a cold request only when there is room: the queue
depth (queued + running) is capped, and an over-capacity or draining
server refuses *explicitly* -- :class:`ServiceSaturated` maps to HTTP
429 and :class:`ServiceDraining` to 503 -- rather than letting latency
grow without bound.  Admitted work drains cheapest-first: each request
is priced with :func:`repro.exec.cost.estimate_job_refs` on its
un-optimized program (scaled by the search budget, since a search
multiplies the simulation count), so a queue holding one huge sweep and
several small kernel requests answers the small ones first.  That is
the service-latency complement of the executor's own longest-first
dispatch inside a batch: across requests, shortest-job-first minimizes
mean wait; within one request's batch, longest-first minimizes
makespan.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.exec.cost import estimate_job_refs
from repro.exec.jobs import SimJob
from repro.layout.layout import DataLayout
from repro.service.protocol import TuningRequest

__all__ = ["ServiceSaturated", "ServiceDraining", "TuningQueue", "estimate_cost"]


class ServiceSaturated(ReproError):
    """The admission queue is full; retry later (HTTP 429)."""

    status = 429


class ServiceDraining(ReproError):
    """The server is shutting down and accepts no new work (HTTP 503)."""

    status = 503


def estimate_cost(req: TuningRequest) -> float:
    """Cheap relative price of one request, for shortest-job-first order.

    One simulation's cost scales with the reference count of the
    program; a search multiplies that by (roughly) the evaluation
    budget.  Precision does not matter -- only the ordering of queued
    requests does.
    """
    job = SimJob(
        program=req.program,
        layout=DataLayout.sequential(req.program),
        hierarchy=req.hierarchy,
        kernel=req.kernel,
    )
    evals = 1 + (req.budget if req.search != "none" else 0)
    return float(estimate_job_refs(job)) * evals


@dataclass(order=True)
class _Admitted:
    """One queued unit of work, ordered by (cost, arrival).

    ``trace_id``/``parent_span``/``admitted_ns`` carry the admitting
    HTTP request's trace context across the queue, so the worker can
    record the queue wait and run the pipeline under the request's root
    span -- the cross-process half of one connected trace tree.
    """

    cost: float
    seq: int
    key: str = field(compare=False)
    request: TuningRequest = field(compare=False)
    future: Any = field(compare=False)
    trace_id: str | None = field(compare=False, default=None)
    parent_span: int | None = field(compare=False, default=None)
    admitted_ns: int = field(compare=False, default=0)


class TuningQueue:
    """A depth-bounded priority queue of admitted cold requests.

    ``depth`` counts queued *plus* running work, so the bound covers the
    whole pipeline backlog, not just the waiting room.  Admission is
    synchronous (the event loop is single-threaded); draining is
    cooperative via :meth:`get`/:meth:`done`.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ReproError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = itertools.count()
        self.depth = 0
        self.draining = False

    def admit(self, key: str, request: TuningRequest, future,
              trace_id: str | None = None,
              parent_span: int | None = None) -> None:
        """Enqueue cold work or refuse with an explicit status."""
        if self.draining:
            raise ServiceDraining("server is draining; no new work accepted")
        if self.depth >= self.limit:
            raise ServiceSaturated(
                f"tuning queue is full ({self.depth}/{self.limit}); retry later"
            )
        self.depth += 1
        self._queue.put_nowait(
            _Admitted(
                cost=estimate_cost(request),
                seq=next(self._seq),
                key=key,
                request=request,
                future=future,
                trace_id=trace_id,
                parent_span=parent_span,
                admitted_ns=time.time_ns(),
            )
        )

    async def get(self) -> _Admitted | None:
        """Next cheapest admitted item, or None when told to stop."""
        item = await self._queue.get()
        return None if item.key == "" else item

    def done(self) -> None:
        """A worker finished (successfully or not) one admitted item."""
        self.depth -= 1

    def stop(self, workers: int) -> None:
        """Wake every worker with a stop sentinel (drains after real work)."""
        self.draining = True
        for _ in range(workers):
            self._queue.put_nowait(
                _Admitted(cost=float("inf"), seq=next(self._seq),
                          key="", request=None, future=None)
            )
