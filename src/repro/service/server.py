"""The asyncio HTTP front end of the tuning service.

One :class:`TuningService` owns the whole request path:

* ``POST /v1/tune`` -- canonicalize the JSON body to its tuning key,
  then the cheapest sufficient answer wins: a **warm** key replays the
  stored response (``served: "store"``); a key already being computed
  joins that computation (**single-flight**, ``served: "inflight"``) --
  never a second pipeline run for the same question; only a genuinely
  **cold** key is admitted to the bounded queue (429 when full, 503
  when draining) and computed (``served: "computed"``).  ``?wait=0``
  returns 202 immediately with the job id (the tuning key) to poll.
* ``GET /v1/jobs/<id>`` -- the lifecycle of one key: queued / running /
  done / error, with the response payload once done.
* ``GET /metrics`` -- the live process-wide metrics snapshot plus a
  service section (queue depth, in-flight count, per-outcome request
  counters); the CI smoke job asserts warm requests through the
  ``service.requests.store`` counter here.
* ``GET /healthz`` -- liveness + readiness ("ok" until draining).

Tuning work is CPU-bound, so the event loop never computes: each of
``concurrency`` async workers owns a dedicated
:class:`~repro.exec.executor.SweepExecutor` (all sharing one result
store directory -- safe, see the store's concurrency contract) and runs
the pipeline in a thread pool, pulling admitted requests cheapest-first
from the :class:`~repro.service.queue.TuningQueue`.

The HTTP layer is deliberately minimal stdlib asyncio: HTTP/1.1,
``Connection: close``, JSON in/out.  It is an internal tool surface,
not a general web server.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
import urllib.parse
import uuid
from dataclasses import dataclass, field
from concurrent.futures import ThreadPoolExecutor

from repro.exec.executor import SweepExecutor
from repro.exec.store import ResultStore
from repro.obs.metrics import get_metrics
from repro.obs.prometheus import format_prometheus
from repro.obs.tracer import get_tracer, start_tracing
from repro.service.pipeline import run_tuning, run_tuning_traced
from repro.service.planner import RequestPlanner, TuningStore, TUNINGS_DIRNAME
from repro.service.protocol import ProtocolError
from repro.service.queue import ServiceDraining, ServiceSaturated, TuningQueue

__all__ = ["ServiceConfig", "TuningService", "serve"]

MAX_BODY_BYTES = 4 * 1024 * 1024
_READ_TIMEOUT = 30.0

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServiceConfig:
    """Everything one server instance needs to know."""

    store_dir: str
    host: str = "127.0.0.1"
    port: int = 8077
    concurrency: int = 2       # tuning workers (each its own executor)
    queue_limit: int = 8       # max queued+running cold requests
    sim_workers: int = 1       # simulation processes per executor
    backend: str = "auto"
    drain_timeout: float = 60.0
    trace_path: str | None = None   # write a trace file on shutdown
    trace_format: str = "jsonl"     # "jsonl" | "chrome"

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.sim_workers < 1:
            raise ValueError(f"sim_workers must be >= 1, got {self.sim_workers}")


@dataclass
class _JobState:
    """Lifecycle record of one tuning key."""

    status: str                      # queued | running | done | error
    queued_at: float
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result: dict | None = field(default=None, repr=False)

    def to_json(self, key: str) -> dict:
        out = {"job": key, "status": self.status, "queued_at": self.queued_at}
        if self.started_at is not None:
            out["started_at"] = self.started_at
        if self.finished_at is not None:
            out["finished_at"] = self.finished_at
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["result"] = self.result
        return out


class TuningService:
    """The long-running tuning server (see module docstring)."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.planner = RequestPlanner(
            TuningStore(f"{config.store_dir}/{TUNINGS_DIRNAME}")
        )
        self.queue = TuningQueue(limit=config.queue_limit)
        self.jobs: dict[str, _JobState] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._metrics = get_metrics()
        self._pool = ThreadPoolExecutor(
            max_workers=config.concurrency, thread_name_prefix="tune"
        )
        self._executors: list[SweepExecutor] = []
        self._workers: list[asyncio.Task] = []
        self._server: asyncio.base_events.Server | None = None
        self._started = time.time()
        self._draining = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and spin up the tuning workers."""
        for _ in range(self.config.concurrency):
            executor = SweepExecutor(
                workers=self.config.sim_workers,
                store=ResultStore(self.config.store_dir),
                backend=self.config.backend,
            )
            self._executors.append(executor)
            self._workers.append(asyncio.ensure_future(self._worker(executor)))
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host, port=self.config.port
        )

    @property
    def port(self) -> int:
        """The bound port (useful when configured with port 0)."""
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "service not started"
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish admitted work, close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.queue.stop(workers=len(self._workers))
        if self._workers:
            done, pending = await asyncio.wait(
                self._workers, timeout=self.config.drain_timeout
            )
            for task in pending:
                task.cancel()
        # Unblock any handler still awaiting a future that will never
        # resolve (its worker was cancelled mid-drain).
        for key, fut in list(self._inflight.items()):
            if not fut.done():
                fut.set_result({"error": "server shut down", "job": key})
        self._pool.shutdown(wait=True)
        for executor in self._executors:
            executor.close()

    # -- tuning workers ------------------------------------------------------

    async def _worker(self, executor: SweepExecutor) -> None:
        loop = asyncio.get_event_loop()
        while True:
            item = await self.queue.get()
            if item is None:
                return
            state = self.jobs[item.key]
            state.status = "running"
            state.started_at = time.time()
            self._gauges()
            tracer = get_tracer()
            if tracer.enabled and item.trace_id is not None:
                # The wait is over exactly now; the span is synthesized
                # (no awaits inside the scope -- the event loop thread's
                # span stack must not leak across tasks).
                with tracer.scope(parent_id=item.parent_span,
                                  trace_id=item.trace_id):
                    tracer.add_span(
                        "service.queue_wait", cat="service",
                        start_ns=item.admitted_ns,
                        dur_ns=max(0, time.time_ns() - item.admitted_ns),
                        key=item.key[:12],
                    )
            try:
                # ``run_tuning`` is resolved here (not at import) so tests
                # that patch this module's attribute still intercept it.
                payload = await loop.run_in_executor(
                    self._pool, run_tuning_traced, item.request, executor,
                    item.trace_id, item.parent_span, run_tuning,
                )
                payload["key"] = item.key
                self.planner.complete(item.key, payload)
                state.status = "done"
                state.result = payload
                self._metrics.counter("service.requests.computed").inc()
                self._metrics.histogram("service.cold_seconds").observe(
                    time.time() - state.queued_at
                )
                outcome = dict(payload)
            except Exception as exc:  # pipeline bug or bad interaction
                state.status = "error"
                state.error = f"{type(exc).__name__}: {exc}"
                self._metrics.counter("service.errors").inc()
                outcome = {"error": state.error, "job": item.key}
            finally:
                state.finished_at = time.time()
                self.queue.done()
                self._inflight.pop(item.key, None)
                self._gauges()
            if not item.future.done():
                item.future.set_result(outcome)

    def _gauges(self) -> None:
        self._metrics.gauge("service.queue_depth").set(self.queue.depth)
        self._metrics.gauge("service.inflight").set(len(self._inflight))

    # -- request handling ----------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except asyncio.TimeoutError:
            status, payload = 400, {"error": "request read timed out"}
        except Exception as exc:
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        if isinstance(payload, str):
            # Prometheus text exposition (or any other plain-text body).
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to salvage
        finally:
            writer.close()

    async def _handle_request(self, reader) -> tuple[int, dict]:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=_READ_TIMEOUT
        )
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=_READ_TIMEOUT)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        if length > MAX_BODY_BYTES:
            return 413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=_READ_TIMEOUT
            )
        parsed = urllib.parse.urlsplit(target)
        query = urllib.parse.parse_qs(parsed.query)
        return await self._route(method, parsed.path, query, body)

    async def _route(self, method: str, path: str, query: dict,
                     body: bytes) -> tuple[int, dict]:
        self._metrics.counter("service.http_requests").inc()
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "draining" if self._draining else "ok",
                "uptime_s": time.time() - self._started,
                "inflight": len(self._inflight),
            }
        if path == "/metrics" and method == "GET":
            fmt = query.get("format", ["json"])[0]
            if fmt == "prometheus":
                return 200, self._prometheus_text()
            if fmt != "json":
                return 400, {"error": f"unknown metrics format {fmt!r} "
                                      "(json or prometheus)"}
            snap = self._metrics.snapshot()
            snap["service"] = self._service_section()
            return 200, snap
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._job_status(path[len("/v1/jobs/"):])
        if path == "/v1/tune":
            if method != "POST":
                return 405, {"error": "POST a tuning request to /v1/tune"}
            try:
                payload = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                return 400, {"error": f"body is not valid JSON: {exc}"}
            wait = query.get("wait", ["1"])[0] not in ("0", "false", "no")
            return await self._tune(payload, wait)
        return 404, {"error": f"no route for {method} {path}"}

    def _prometheus_text(self) -> str:
        """The Prometheus exposition: registry metrics plus scrape-time
        service gauges (uptime, drain state, queue bound, store size)."""
        snap = self._metrics.snapshot()
        gauges = snap.setdefault("gauges", {})
        section = self._service_section()
        gauges["service.uptime_seconds"] = section["uptime_s"]
        gauges["service.draining"] = 1 if section["draining"] else 0
        gauges["service.queue_depth"] = section["queue_depth"]
        gauges["service.queue_limit"] = section["queue_limit"]
        gauges["service.inflight"] = section["inflight"]
        gauges["service.tuning_store.entries"] = (
            section["tuning_store"]["entries"]
        )
        return format_prometheus(snap)

    def _service_section(self) -> dict:
        by_status: dict[str, int] = {}
        for state in self.jobs.values():
            by_status[state.status] = by_status.get(state.status, 0) + 1
        return {
            "uptime_s": time.time() - self._started,
            "draining": self._draining,
            "queue_depth": self.queue.depth,
            "queue_limit": self.queue.limit,
            "inflight": len(self._inflight),
            "jobs": by_status,
            "tuning_store": {
                "entries": len(self.planner.store),
                "hits": self.planner.store.hits,
                "misses": self.planner.store.misses,
                "puts": self.planner.store.puts,
            },
        }

    def _job_status(self, key: str) -> tuple[int, dict]:
        state = self.jobs.get(key)
        if state is not None:
            return 200, state.to_json(key)
        stored = self.planner.lookup(key)
        if stored is not None:
            return 200, {"job": key, "status": "done", "result": stored}
        return 404, {"error": f"unknown job {key!r}"}

    def _finish_request_span(self, trace_id, root_id, start_ns, key,
                             served, status) -> None:
        """Record the ``http.request`` root span under its reserved id.

        Children (queue wait, pipeline, simulator spans) already
        parented under ``root_id`` while the request ran; the root
        itself can only be recorded now, when its duration is known.
        """
        tracer = get_tracer()
        if not tracer.enabled or root_id is None:
            return
        tracer.add_span(
            "http.request", cat="service",
            start_ns=start_ns,
            dur_ns=max(0, time.time_ns() - start_ns),
            span_id=root_id,
            trace_id=trace_id,
            path="/v1/tune",
            key=key[:12],
            served=served,
            status=status,
        )

    async def _tune(self, payload, wait: bool) -> tuple[int, dict]:
        try:
            key, request = self.planner.plan(payload)
        except ProtocolError as exc:
            self._metrics.counter("service.requests.rejected").inc()
            return 400, {"error": str(exc)}

        tracer = get_tracer()
        trace_id = root_id = None
        start_ns = 0
        if tracer.enabled:
            # Mint this request's trace context: an id that will stamp
            # every span it causes, and a reserved root span id its
            # children parent under across threads and processes.
            trace_id = uuid.uuid4().hex[:16]
            root_id = tracer.new_span_id()
            start_ns = time.time_ns()

        t0 = time.time()
        stored = self.planner.lookup(key)
        if stored is not None:
            self._metrics.counter("service.requests.store").inc()
            self._metrics.histogram("service.warm_seconds").observe(
                time.time() - t0
            )
            self._finish_request_span(trace_id, root_id, start_ns, key,
                                      "store", 200)
            extra = {"trace_id": trace_id} if trace_id else {}
            return 200, {**stored, "served": "store", **extra}

        fut = self._inflight.get(key)
        if fut is None:
            try:
                if self._draining:
                    raise ServiceDraining("server is draining")
                fut = asyncio.get_event_loop().create_future()
                self.queue.admit(key, request, fut,
                                 trace_id=trace_id, parent_span=root_id)
            except (ServiceSaturated, ServiceDraining) as exc:
                self._metrics.counter(
                    f"service.requests.rejected_{exc.status}"
                ).inc()
                self._finish_request_span(trace_id, root_id, start_ns, key,
                                          "rejected", exc.status)
                return exc.status, {
                    "error": str(exc),
                    "queue_depth": self.queue.depth,
                    "queue_limit": self.queue.limit,
                }
            self._inflight[key] = fut
            self.jobs[key] = _JobState(status="queued", queued_at=t0)
            self._metrics.counter("service.requests.admitted").inc()
            self._gauges()
            served = "computed"
        else:
            # Single-flight: identical request already being computed.
            self._metrics.counter("service.requests.joined").inc()
            served = "inflight"

        if not wait:
            self._finish_request_span(trace_id, root_id, start_ns, key,
                                      "accepted", 202)
            extra = {"trace_id": trace_id} if trace_id else {}
            return 202, {"job": key, "status": self.jobs[key].status, **extra}
        outcome = await fut
        if "error" in outcome:
            self._finish_request_span(trace_id, root_id, start_ns, key,
                                      "error", 500)
            return 500, outcome
        self._finish_request_span(trace_id, root_id, start_ns, key,
                                  served, 200)
        extra = {"trace_id": trace_id} if trace_id else {}
        return 200, {**outcome, "served": served, **extra}


async def serve(config: ServiceConfig) -> int:
    """Run a server until SIGTERM/SIGINT; returns the process exit code."""
    if config.trace_path is not None:
        start_tracing()
    service = TuningService(config)
    await service.start()
    print(
        f"[service] listening on {config.host}:{service.port} "
        f"store={config.store_dir} concurrency={config.concurrency} "
        f"queue_limit={config.queue_limit} backend={config.backend}",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-unix event loop; rely on KeyboardInterrupt
    await stop.wait()
    print("[service] draining...", flush=True)
    await service.shutdown()
    if config.trace_path is not None:
        tracer = get_tracer()
        metrics = get_metrics().snapshot()
        if config.trace_format == "chrome":
            tracer.write_chrome(config.trace_path, metrics=metrics)
        else:
            tracer.write_jsonl(config.trace_path, metrics=metrics)
        print(
            f"[service] trace: {len(tracer.spans())} spans, "
            f"{len(tracer.counters())} counter samples -> {config.trace_path}",
            flush=True,
        )
    print("[service] shutdown complete", flush=True)
    return 0
