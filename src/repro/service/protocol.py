"""The service wire format: JSON <-> IR codecs and canonical tuning keys.

A tuning request is a JSON object naming *what* to tune (a registry
kernel or an inline program IR), *for which machine* (a hierarchy preset
or explicit cache levels), and *how hard* (heuristic strategy, search
strategy, budget).  :func:`parse_request` validates it into a
:class:`TuningRequest` of real library objects, applying the documented
defaults; :func:`request_key` hashes the *parsed* request through the
same :func:`repro.exec.hashing.canonical` lowering the result store
uses.

Because the key is computed after parsing, every cosmetic difference
collapses: JSON key order (hashing sorts keys), omitted-vs-explicit
default fields (defaults are applied first), a preset hierarchy name vs
the equivalent explicit level list (both parse to the same
:class:`~repro.cache.config.HierarchyConfig`), and program/loop labels
(excluded by ``canonical``).  Two clients asking the same question in
different spellings therefore share one computation and one stored
answer -- the service's single-flight and warm-store behaviour both hang
off this key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig, HierarchyConfig, alpha_21164, ultrasparc_i
from repro.driver import STRATEGIES
from repro.errors import ConfigError, IRError, ReproError
from repro.exec.hashing import SCHEMA_VERSION, canonical, digest
from repro.ir.affine import AffineExpr
from repro.ir.arrays import ArrayDecl
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.program import Program
from repro.ir.refs import ArrayRef

__all__ = [
    "SERVICE_SCHEMA",
    "SEARCH_STRATEGIES",
    "HIERARCHY_PRESETS",
    "ProtocolError",
    "TuningRequest",
    "parse_request",
    "request_key",
    "program_to_json",
    "program_from_json",
    "hierarchy_to_json",
    "hierarchy_from_json",
]

# Version of the service request/response wire format.  Bump when the
# request semantics change incompatibly; it is part of the tuning key,
# so old stored responses are orphaned rather than mis-served.
SERVICE_SCHEMA = 1

SEARCH_STRATEGIES = ("none", "coordinate", "random", "exhaustive", "predict")

HIERARCHY_PRESETS = {
    "ultrasparc_i": ultrasparc_i,
    "alpha_21164": alpha_21164,
}

_REQUEST_FIELDS = {
    "kernel", "n", "program", "hierarchy",
    "strategy", "search", "budget", "max_lines", "seed",
}

_DEFAULT_BUDGET = 16
_DEFAULT_MAX_LINES = 4


class ProtocolError(ReproError):
    """A malformed or semantically invalid service request/response."""


# -- affine expressions ------------------------------------------------------
#
# Wire forms accepted for one subscript / loop bound:
#   7                      -> the constant 7
#   "i"                    -> the variable i
#   {"terms": {"i": 2}, "const": 1}   -> 2*i + 1

def _affine_from_json(obj, where: str) -> AffineExpr:
    if isinstance(obj, bool):
        raise ProtocolError(f"{where}: expected an affine expression, got a bool")
    if isinstance(obj, int):
        return AffineExpr(constant=obj)
    if isinstance(obj, str):
        if not obj:
            raise ProtocolError(f"{where}: empty variable name")
        return AffineExpr({obj: 1})
    if isinstance(obj, dict):
        unknown = set(obj) - {"terms", "const"}
        if unknown:
            raise ProtocolError(
                f"{where}: unknown affine fields {sorted(unknown)}"
            )
        terms = obj.get("terms", {})
        if not isinstance(terms, dict):
            raise ProtocolError(f"{where}: 'terms' must be an object")
        try:
            return AffineExpr(
                {str(v): int(c) for v, c in terms.items()},
                constant=int(obj.get("const", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"{where}: {exc}") from None
    raise ProtocolError(
        f"{where}: expected int, variable name, or {{terms, const}} object"
    )


def _affine_to_json(e: AffineExpr):
    terms = dict(e.terms)
    if not terms:
        return e.constant
    if len(terms) == 1 and e.constant == 0:
        ((v, c),) = terms.items()
        if c == 1:
            return v
    out: dict = {"terms": terms}
    if e.constant:
        out["const"] = e.constant
    return out


# -- program IR --------------------------------------------------------------

def _require(obj: dict, field: str, where: str):
    if field not in obj:
        raise ProtocolError(f"{where}: missing required field {field!r}")
    return obj[field]


def _check_fields(obj, allowed: set, where: str) -> dict:
    if not isinstance(obj, dict):
        raise ProtocolError(f"{where}: expected an object")
    unknown = set(obj) - allowed
    if unknown:
        raise ProtocolError(f"{where}: unknown fields {sorted(unknown)}")
    return obj


def program_from_json(obj: dict) -> Program:
    """Decode an inline program IR; raises :class:`ProtocolError`."""
    _check_fields(obj, {"name", "arrays", "nests"}, "program")
    name = obj.get("name", "request")
    arrays = _require(obj, "arrays", "program")
    nests = _require(obj, "nests", "program")
    if not isinstance(arrays, list) or not isinstance(nests, list):
        raise ProtocolError("program: 'arrays' and 'nests' must be lists")
    decls = []
    for k, a in enumerate(arrays):
        where = f"program.arrays[{k}]"
        _check_fields(a, {"name", "shape", "element_size"}, where)
        try:
            decls.append(ArrayDecl(
                name=str(_require(a, "name", where)),
                shape=tuple(int(d) for d in _require(a, "shape", where)),
                element_size=int(a.get("element_size", 8)),
            ))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"{where}: {exc}") from None
    built = []
    for k, n in enumerate(nests):
        where = f"program.nests[{k}]"
        _check_fields(n, {"loops", "body", "label"}, where)
        loops = []
        for j, lp in enumerate(_require(n, "loops", where)):
            lw = f"{where}.loops[{j}]"
            _check_fields(
                lp,
                {"var", "lower", "upper", "step", "extra_uppers", "extra_lowers"},
                lw,
            )
            try:
                loops.append(Loop(
                    var=str(_require(lp, "var", lw)),
                    lower=_affine_from_json(_require(lp, "lower", lw), lw),
                    upper=_affine_from_json(_require(lp, "upper", lw), lw),
                    step=int(lp.get("step", 1)),
                    extra_uppers=tuple(
                        _affine_from_json(e, lw) for e in lp.get("extra_uppers", [])
                    ),
                    extra_lowers=tuple(
                        _affine_from_json(e, lw) for e in lp.get("extra_lowers", [])
                    ),
                ))
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"{lw}: {exc}") from None
        body = []
        for j, st in enumerate(_require(n, "body", where)):
            sw = f"{where}.body[{j}]"
            _check_fields(st, {"refs", "flops", "label"}, sw)
            refs = []
            for r in _require(st, "refs", sw):
                _check_fields(r, {"array", "subscripts", "write"}, sw)
                refs.append(ArrayRef(
                    array=str(_require(r, "array", sw)),
                    subscripts=tuple(
                        _affine_from_json(s, sw)
                        for s in _require(r, "subscripts", sw)
                    ),
                    is_write=bool(r.get("write", False)),
                ))
            body.append(Statement(
                refs=tuple(refs),
                flops=int(st.get("flops", 0)),
                label=str(st.get("label", "")),
            ))
        built.append(LoopNest(
            loops=tuple(loops), body=tuple(body), label=str(n.get("label", ""))
        ))
    try:
        return Program(name=str(name), arrays=tuple(decls), nests=tuple(built))
    except (IRError, ValueError) as exc:
        raise ProtocolError(f"program: {exc}") from None


def program_to_json(program: Program) -> dict:
    """Encode a program as the wire IR (inverse of :func:`program_from_json`)."""
    return {
        "name": program.name,
        "arrays": [
            {"name": a.name, "shape": list(a.shape), "element_size": a.element_size}
            for a in program.arrays
        ],
        "nests": [
            {
                "loops": [
                    {
                        "var": lp.var,
                        "lower": _affine_to_json(lp.lower),
                        "upper": _affine_to_json(lp.upper),
                        **({"step": lp.step} if lp.step != 1 else {}),
                        **({"extra_uppers":
                            [_affine_to_json(e) for e in lp.extra_uppers]}
                           if lp.extra_uppers else {}),
                        **({"extra_lowers":
                            [_affine_to_json(e) for e in lp.extra_lowers]}
                           if lp.extra_lowers else {}),
                    }
                    for lp in n.loops
                ],
                "body": [
                    {
                        "refs": [
                            {
                                "array": r.array,
                                "subscripts":
                                    [_affine_to_json(s) for s in r.subscripts],
                                **({"write": True} if r.is_write else {}),
                            }
                            for r in st.refs
                        ],
                        **({"flops": st.flops} if st.flops else {}),
                    }
                    for st in n.body
                ],
                **({"label": n.label} if n.label else {}),
            }
            for n in program.nests
        ],
    }


# -- hierarchies -------------------------------------------------------------

def hierarchy_from_json(obj) -> HierarchyConfig:
    """Decode a hierarchy: a preset name or an explicit level list."""
    if isinstance(obj, str):
        preset = HIERARCHY_PRESETS.get(obj)
        if preset is None:
            raise ProtocolError(
                f"unknown hierarchy preset {obj!r}; "
                f"available: {', '.join(sorted(HIERARCHY_PRESETS))}"
            )
        return preset()
    _check_fields(obj, {"levels", "memory_cycles"}, "hierarchy")
    levels = _require(obj, "levels", "hierarchy")
    if not isinstance(levels, list) or not levels:
        raise ProtocolError("hierarchy: 'levels' must be a non-empty list")
    configs = []
    for k, lv in enumerate(levels):
        where = f"hierarchy.levels[{k}]"
        _check_fields(
            lv, {"size", "line_size", "associativity", "name", "hit_cycles"}, where
        )
        try:
            configs.append(CacheConfig(
                size=int(_require(lv, "size", where)),
                line_size=int(_require(lv, "line_size", where)),
                associativity=int(lv.get("associativity", 1)),
                name=str(lv.get("name", f"L{k + 1}")),
                hit_cycles=float(lv.get("hit_cycles", 1.0)),
            ))
        except (ConfigError, TypeError, ValueError) as exc:
            raise ProtocolError(f"{where}: {exc}") from None
    try:
        return HierarchyConfig(
            levels=tuple(configs),
            memory_cycles=float(obj.get("memory_cycles", 50.0)),
        )
    except (ConfigError, TypeError, ValueError) as exc:
        raise ProtocolError(f"hierarchy: {exc}") from None


def hierarchy_to_json(hierarchy: HierarchyConfig) -> dict:
    """Encode a hierarchy as an explicit level list."""
    return {
        "levels": [
            {
                "size": lv.size,
                "line_size": lv.line_size,
                "associativity": lv.associativity,
                "name": lv.name,
                "hit_cycles": lv.hit_cycles,
            }
            for lv in hierarchy.levels
        ],
        "memory_cycles": hierarchy.memory_cycles,
    }


# -- requests ----------------------------------------------------------------

@dataclass(frozen=True)
class TuningRequest:
    """One parsed, validated tuning request.

    ``kernel`` carries the registry name only when that kernel has a
    custom trace hook (the irregular-mesh gathers); for every other
    kernel the generic program trace is identical, so the field is None
    and requests for "kernel jacobi at n=64" and the equivalent inline
    IR share a tuning key.
    """

    program: Program
    hierarchy: HierarchyConfig
    strategy: str
    search: str
    budget: int
    max_lines: int
    seed: int
    kernel: str | None = None


def parse_request(payload) -> TuningRequest:
    """Validate a request payload and apply defaults.

    Defaults: ``hierarchy`` = ``"ultrasparc_i"``; ``strategy`` =
    ``"L1&L2"`` when the hierarchy has a second level, else ``"L1"``;
    ``search`` = ``"coordinate"``; ``budget`` = 16; ``max_lines`` = 4;
    ``seed`` = 0.  Raises :class:`ProtocolError` with a pointed message
    on anything malformed (the server turns that into a 400).
    """
    _check_fields(payload, _REQUEST_FIELDS, "request")
    has_kernel = "kernel" in payload
    has_program = "program" in payload
    if has_kernel == has_program:
        raise ProtocolError(
            "request: provide exactly one of 'kernel' or 'program'"
        )
    kernel_name = None
    if has_kernel:
        from repro.kernels.registry import get_kernel

        try:
            kern = get_kernel(str(payload["kernel"]))
        except ReproError as exc:
            raise ProtocolError(f"request: {exc}") from None
        n = payload.get("n")
        try:
            program = kern.program(None if n is None else int(n))
        except (ReproError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"request: cannot build kernel {kern.name!r}"
                f" at n={n!r}: {exc}"
            ) from None
        if kern.custom_trace is not None:
            kernel_name = kern.name
    else:
        if "n" in payload:
            raise ProtocolError("request: 'n' only applies to 'kernel' requests")
        program = program_from_json(payload["program"])
    hierarchy = hierarchy_from_json(payload.get("hierarchy", "ultrasparc_i"))

    default_strategy = "L1&L2" if len(hierarchy) > 1 else "L1"
    strategy = str(payload.get("strategy", default_strategy))
    if strategy not in STRATEGIES:
        raise ProtocolError(
            f"request: unknown strategy {strategy!r}; "
            f"choose from {', '.join(STRATEGIES)}"
        )
    if strategy == "L1&L2" and len(hierarchy) < 2:
        raise ProtocolError(
            "request: strategy 'L1&L2' needs a hierarchy with an L2 cache"
        )
    search = str(payload.get("search", "coordinate"))
    if search not in SEARCH_STRATEGIES:
        raise ProtocolError(
            f"request: unknown search strategy {search!r}; "
            f"choose from {', '.join(SEARCH_STRATEGIES)}"
        )
    try:
        budget = int(payload.get("budget", _DEFAULT_BUDGET))
        max_lines = int(payload.get("max_lines", _DEFAULT_MAX_LINES))
        seed = int(payload.get("seed", 0))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"request: {exc}") from None
    if budget < 1:
        raise ProtocolError(f"request: budget must be >= 1, got {budget}")
    if max_lines < 1:
        raise ProtocolError(f"request: max_lines must be >= 1, got {max_lines}")
    return TuningRequest(
        program=program,
        hierarchy=hierarchy,
        strategy=strategy,
        search=search,
        budget=budget,
        max_lines=max_lines,
        seed=seed,
        kernel=kernel_name,
    )


def request_key(req: TuningRequest) -> str:
    """The content-addressed identity of one tuning request.

    Hashed over the *parsed* request, through the executor's canonical
    lowering -- so labels, field order, defaulted fields, and
    preset-vs-explicit hierarchy spellings cannot split the key.  The
    search knobs only participate when a search actually runs: with
    ``search == "none"`` the budget/max_lines/seed cannot affect the
    answer, so they are excluded and any spelling of "no search" shares
    one key.
    """
    params: list = ["params", req.strategy, req.search]
    if req.search != "none":
        params += [req.budget, req.max_lines, req.seed]
    return digest([
        "tune",
        SERVICE_SCHEMA,
        SCHEMA_VERSION,
        canonical(req.program),
        canonical(req.hierarchy),
        ["trace", req.kernel],
        params,
    ])
