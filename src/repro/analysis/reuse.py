"""Reuse classification per Wolf & Lam (cited as [29] in the paper).

Reuse is *temporal* (same location) or *spatial* (same cache line), and
*self* (one reference) or *group* (between uniformly generated
references).  Classification is per (reference, loop) pair: a loop
carries self-temporal reuse for a reference when the reference's address
does not depend on that loop's variable, and self-spatial reuse when
consecutive iterations move the address by less than a line.

The innermost-locality score built on top is the standard memory-order
cost model used to choose loop permutations (McKinley, Carr & Tseng [18]):
it is cache-size independent, which is the paper's Section 2 argument for
why permutation need not know about multiple cache levels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.ir.refs import ArrayRef

__all__ = [
    "ReuseKind",
    "RefReuse",
    "classify_ref",
    "classify_nest",
    "innermost_locality_score",
]


class ReuseKind(enum.Enum):
    """How a reference behaves with respect to one loop."""

    TEMPORAL = "temporal"  # address invariant in the loop
    SPATIAL = "spatial"  # address moves by < line_size per iteration
    NONE = "none"  # address strides by >= line_size per iteration


@dataclass(frozen=True)
class RefReuse:
    """Self-reuse classification of one reference against every loop."""

    ref: ArrayRef
    per_loop: tuple[tuple[str, ReuseKind], ...]

    def kind(self, loop_var: str) -> ReuseKind:
        for var_name, kind in self.per_loop:
            if var_name == loop_var:
                return kind
        raise KeyError(f"loop {loop_var!r} not in classification")


def classify_ref(
    program: Program,
    nest: LoopNest,
    ref: ArrayRef,
    line_size: int,
) -> RefReuse:
    """Classify ``ref``'s self reuse with respect to each loop of the nest."""
    decl = program.decl(ref.array)
    off = ref.offset_expr(decl)
    per_loop = []
    for lp in nest.loops:
        stride = off.coeff(lp.var) * lp.step
        if stride == 0:
            kind = ReuseKind.TEMPORAL
        elif abs(stride) < line_size:
            kind = ReuseKind.SPATIAL
        else:
            kind = ReuseKind.NONE
        per_loop.append((lp.var, kind))
    return RefReuse(ref=ref, per_loop=tuple(per_loop))


def classify_nest(
    program: Program, nest: LoopNest, line_size: int
) -> list[RefReuse]:
    """Classification of every reference of the nest (statement order)."""
    return [classify_ref(program, nest, r, line_size) for r in nest.refs]


def innermost_locality_score(
    program: Program,
    nest: LoopNest,
    candidate_var: str,
    line_size: int,
) -> float:
    """Locality earned if ``candidate_var`` were the innermost loop.

    Temporal reuse scores a full reused access per iteration; spatial
    reuse scores the fraction of a line re-touched per iteration
    (``1 - |stride|/line``); no reuse scores zero.  Loop permutation picks
    the order that places the highest-scoring loop innermost -- note the
    score depends on the line size but on *no* cache size, so any level's
    line size yields the same ranking for these codes (Section 2.1).
    """
    total = 0.0
    for ref in nest.refs:
        decl = program.decl(ref.array)
        stride = ref.offset_expr(decl).coeff(candidate_var)
        for lp in nest.loops:
            if lp.var == candidate_var:
                stride *= lp.step
                break
        stride = abs(stride)
        if stride == 0:
            total += 1.0
        elif stride < line_size:
            total += 1.0 - stride / line_size
    return total
