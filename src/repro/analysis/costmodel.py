"""Analytic (compile-time) miss estimation and miss-cost weighting.

This is the "simple cache model" the paper says guides optimization
choices: it predicts, per nest, how many references fault at each cache
level, combining self-reuse classification with the group-reuse diagram
("the compiler can predict relative cache miss rates fairly accurately by
analyzing group reuse", Section 6.4).  Transformations use these estimates
to decide; the simulator measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reuse import ReuseKind, classify_ref
from repro.cache.config import HierarchyConfig
from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.ir.refs import ArrayRef
from repro.layout.layout import DataLayout

__all__ = ["MissCostModel", "NestMissEstimate", "estimate_nest_misses"]


@dataclass(frozen=True)
class MissCostModel:
    """Per-level miss penalties derived from a hierarchy's cycle costs.

    ``l1_miss_cost`` is what an L1 miss that hits L2 costs; ``l2_miss_cost``
    what a reference going to memory costs (both beyond the L1 hit cost
    every reference pays).  Fusion profitability compares reuse gains
    "scaled by the cost of cache misses at that level" (Section 4).
    """

    l1_miss_cost: float
    l2_miss_cost: float

    @classmethod
    def from_hierarchy(cls, hierarchy: HierarchyConfig) -> "MissCostModel":
        return cls(
            l1_miss_cost=hierarchy.miss_cycles(0),
            l2_miss_cost=hierarchy.miss_cycles(len(hierarchy) - 1),
        )

    def weighted(self, l1_misses: float, l2_misses: float) -> float:
        """Total penalty cycles for the given miss counts."""
        return l1_misses * self.l1_miss_cost + l2_misses * self.l2_miss_cost


@dataclass(frozen=True)
class NestMissEstimate:
    """Analytic per-nest prediction."""

    iterations: int
    refs_per_iteration: int
    l1_misses: float
    l2_misses: float

    @property
    def total_refs(self) -> int:
        return self.iterations * self.refs_per_iteration

    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.total_refs if self.total_refs else 0.0

    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.total_refs if self.total_refs else 0.0


def _self_miss_fraction(
    program: Program, nest: LoopNest, ref: ArrayRef, line_size: int
) -> float:
    """Fraction of iterations on which ``ref`` faults from self reuse alone.

    Innermost-loop behaviour dominates: temporal -> ~0, spatial -> one
    miss per line's worth of iterations, none -> every iteration.
    """
    reuse = classify_ref(program, nest, ref, line_size)
    inner = nest.loops[-1].var
    kind = reuse.kind(inner)
    if kind is ReuseKind.TEMPORAL:
        return 0.0
    decl = program.decl(ref.array)
    stride = abs(ref.offset_expr(decl).coeff(inner) * nest.loops[-1].step)
    if kind is ReuseKind.SPATIAL:
        return stride / line_size
    return 1.0


def estimate_nest_misses(
    program: Program,
    layout: DataLayout,
    nest: LoopNest,
    hierarchy: HierarchyConfig,
) -> NestMissEstimate:
    """Predict L1 and L2 (to-memory) misses for one nest.

    Group reuse: a trailing reference whose arc is exploited on a level's
    diagram is charged nothing at that level.  Leading references and
    unexploited trailing references pay their self-reuse fraction.
    Identical duplicated references are charged once (the second hits L1
    or a register, Section 4).
    """
    from repro.layout.diagram import CacheDiagram  # lazy: avoids import cycle

    l1 = hierarchy.l1
    l2 = hierarchy.levels[1] if len(hierarchy) > 1 else None
    diag1 = CacheDiagram(program, layout, nest, l1.size, l1.line_size)
    exploited1 = diag1.trailing_refs_exploited()
    if l2 is not None:
        diag2 = CacheDiagram(program, layout, nest, l2.size, l2.line_size)
        exploited2 = diag2.trailing_refs_exploited()
    else:
        exploited2 = set()

    iters = nest.iterations()
    l1_misses = 0.0
    l2_misses = 0.0
    for dot in diag1.dots:
        ref = dot.ref
        if ref in exploited1:
            continue  # satisfied by L1 group reuse
        frac1 = _self_miss_fraction(program, nest, ref, l1.line_size)
        l1_misses += frac1 * iters
        if l2 is None:
            continue
        if ref in exploited2:
            continue  # faults to L2 but not beyond
        frac2 = _self_miss_fraction(program, nest, ref, l2.line_size)
        l2_misses += frac2 * iters
    return NestMissEstimate(
        iterations=iters,
        refs_per_iteration=nest.refs_per_iteration,
        l1_misses=l1_misses,
        l2_misses=l2_misses,
    )
