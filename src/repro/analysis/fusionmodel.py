"""Loop-fusion accounting (paper Sections 4 and 6.4).

For each nest, every *unique* reference is charged to one memory-hierarchy
level per iteration:

* the leading reference of each uniformly generated class (and every
  isolated reference) accesses **main memory** -- array sizes are assumed
  to exceed the L2 cache and capacity prevents inter-nest reuse;
* a trailing reference whose group-reuse arc is exploited on the L1
  layout diagram hits the **L1 cache**;
* a trailing reference whose arc is lost on L1 accesses the **L2 cache**
  -- the paper assumes L2MAXPAD has been applied, "so that all group reuse
  not exploited on the L1 cache was assumed to be preserved on the L2";
* duplicated identical references (which fusion creates) are charged only
  once -- "the second will access the L1 cache or a register".

Walking this model over the paper's Figure 2/6 example reproduces its
numbers exactly: 5 memory + 2 L2 references before fusion, 3 memory +
3 L2 after (see ``tests/analysis/test_fusionmodel.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.costmodel import MissCostModel
from repro.analysis.groups import uniform_classes
from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.layout.layout import DataLayout

__all__ = ["FusionAccounting", "account_nests", "fusion_delta", "fusion_profitable"]


@dataclass(frozen=True)
class FusionAccounting:
    """Per-iteration reference counts by satisfying level."""

    l1_refs: int
    l2_refs: int
    memory_refs: int

    @property
    def total(self) -> int:
        return self.l1_refs + self.l2_refs + self.memory_refs

    def cost(self, model: MissCostModel) -> float:
        """Penalty cycles per iteration under a miss-cost model.

        An L2 reference pays one L1 miss; a memory reference pays an L1
        miss and an L2 miss.
        """
        return model.weighted(
            l1_misses=self.l2_refs + self.memory_refs,
            l2_misses=self.memory_refs,
        )

    def __add__(self, other: "FusionAccounting") -> "FusionAccounting":
        return FusionAccounting(
            self.l1_refs + other.l1_refs,
            self.l2_refs + other.l2_refs,
            self.memory_refs + other.memory_refs,
        )


def account_nest(
    program: Program, layout: DataLayout, nest: LoopNest, l1_size: int, l1_line: int
) -> FusionAccounting:
    """Classify one nest's unique references against the L1 diagram."""
    from repro.layout.diagram import CacheDiagram  # lazy: avoids import cycle

    diagram = CacheDiagram(program, layout, nest, l1_size, l1_line)
    exploited = diagram.trailing_refs_exploited()
    l1 = l2 = mem = 0
    for cls in uniform_classes(program, nest):
        # Leading-most reference accesses memory (fresh data every iteration).
        mem += 1
        for ref in cls.refs[:-1]:
            if ref in exploited:
                l1 += 1
            else:
                l2 += 1
    return FusionAccounting(l1_refs=l1, l2_refs=l2, memory_refs=mem)


def account_nests(
    program: Program,
    layout: DataLayout,
    nests: Sequence[LoopNest],
    l1_size: int,
    l1_line: int,
) -> FusionAccounting:
    """Sum of :func:`account_nest` over several nests."""
    total = FusionAccounting(0, 0, 0)
    for nest in nests:
        total = total + account_nest(program, layout, nest, l1_size, l1_line)
    return total


@dataclass(frozen=True)
class FusionDelta:
    """Change caused by fusing (fused minus original), per iteration."""

    l2_refs: int
    memory_refs: int

    def cost_change(self, model: MissCostModel) -> float:
        return model.weighted(
            l1_misses=self.l2_refs + self.memory_refs,
            l2_misses=self.memory_refs,
        )


def fusion_delta(
    original_program: Program,
    original_layout: DataLayout,
    original_nests: Sequence[LoopNest],
    fused_program: Program,
    fused_layout: DataLayout,
    fused_nest: LoopNest,
    l1_size: int,
    l1_line: int,
) -> FusionDelta:
    """Δ(L2 refs) and Δ(memory refs) from fusing ``original_nests``.

    Each version is accounted under its *own* layout, since the paper
    re-runs GROUPPAD after fusion (Figure 7).
    """
    before = account_nests(
        original_program, original_layout, original_nests, l1_size, l1_line
    )
    after = account_nest(fused_program, fused_layout, fused_nest, l1_size, l1_line)
    return FusionDelta(
        l2_refs=after.l2_refs - before.l2_refs,
        memory_refs=after.memory_refs - before.memory_refs,
    )


def fusion_profitable(delta: FusionDelta, model: MissCostModel) -> bool:
    """Is fusion predicted to pay off?

    Fusion wins when the weighted cost change is negative: the L2/memory
    savings (scaled by the much larger L2 miss cost) outweigh any group
    reuse lost on the L1 cache (Section 4: "fusion will generally be
    profitable if it enables the compiler to exploit more L2 reuse").
    """
    return delta.cost_change(model) < 0.0
