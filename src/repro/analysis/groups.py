"""Uniformly generated reference classes and group-reuse arcs.

Two references participate in group reuse only when they are *uniformly
generated* (same array, subscripts differing by constants), following
Gannon et al. and Wolf & Lam.  Within one class, sorting references by
their constant byte offset orders them along memory; each *consecutive*
pair forms a reuse **arc** -- the leading reference (larger offset)
touches data that the trailing reference re-touches some iterations later.
These arcs are precisely the arcs drawn in the paper's layout diagrams
(Figures 3, 4, 5, 7), and "number of arcs exploited" is the objective
GROUPPAD maximizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.ir.refs import ArrayRef

__all__ = ["UniformClass", "ReuseArc", "uniform_classes", "reuse_arcs"]


@dataclass(frozen=True)
class UniformClass:
    """One equivalence class of uniformly generated references.

    ``refs`` are unique references sorted by increasing ``offsets`` (byte
    offset of each ref relative to the class minimum, so ``offsets[0] == 0``).
    ``multiplicity`` counts how many times each unique reference appears
    textually in the nest -- after fusion a nest can contain the same
    reference twice ("dots may represent two identical references"), and
    only the first occurrence can fault.
    """

    array: str
    refs: tuple[ArrayRef, ...]
    offsets: tuple[int, ...]
    multiplicity: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.refs:
            raise AnalysisError("empty uniform class")
        if len(self.refs) != len(self.offsets) or len(self.refs) != len(self.multiplicity):
            raise AnalysisError("class fields must have equal length")
        if list(self.offsets) != sorted(self.offsets):
            raise AnalysisError("class offsets must be sorted ascending")
        if self.offsets[0] != 0:
            raise AnalysisError("class offsets must be relative to the minimum")

    @property
    def span_bytes(self) -> int:
        """Distance from the lowest to the highest reference of the class."""
        return self.offsets[-1] - self.offsets[0]


@dataclass(frozen=True)
class ReuseArc:
    """A group-reuse arc between two consecutive refs of a uniform class.

    ``trailing`` re-touches the data that ``leading`` accessed
    ``distance_bytes`` earlier in memory (leading has the larger constant
    subscripts).  On a cache of size C the arc is *exploitable* only when
    ``distance_bytes`` < C and no other reference position falls strictly
    under the arc -- :mod:`repro.layout.diagram` performs that test.
    """

    array: str
    trailing: ArrayRef
    leading: ArrayRef
    distance_bytes: int

    def __post_init__(self) -> None:
        if self.distance_bytes <= 0:
            raise AnalysisError(
                f"arc distance must be positive, got {self.distance_bytes}"
            )


def _dedupe(refs) -> tuple[list[ArrayRef], list[int]]:
    """Unique references (ignoring read/write flag) with multiplicities."""
    uniq: list[ArrayRef] = []
    counts: list[int] = []
    for r in refs:
        key = ArrayRef(r.array, r.subscripts, is_write=False)
        for i, u in enumerate(uniq):
            if u.array == key.array and u.subscripts == key.subscripts:
                counts[i] += 1
                break
        else:
            uniq.append(key)
            counts.append(1)
    return uniq, counts


def uniform_classes(program: Program, nest: LoopNest) -> list[UniformClass]:
    """Partition a nest's references into uniformly generated classes.

    References are deduplicated first; classes are returned ordered by
    array name and then by the position of their first reference.
    """
    uniq, counts = _dedupe(nest.refs)
    assigned = [False] * len(uniq)
    classes: list[UniformClass] = []
    for i, ref in enumerate(uniq):
        if assigned[i]:
            continue
        decl = program.decl(ref.array)
        members = [(ref, counts[i])]
        assigned[i] = True
        for j in range(i + 1, len(uniq)):
            if not assigned[j] and ref.is_uniformly_generated_with(uniq[j]):
                members.append((uniq[j], counts[j]))
                assigned[j] = True
        # Order members by byte offset of their constant part.
        base_off = members[0][0].offset_expr(decl)
        keyed = []
        for r, mult in members:
            delta = r.offset_expr(decl) - base_off
            if not delta.is_constant:
                raise AnalysisError(
                    f"references {members[0][0]!r} and {r!r} are uniformly "
                    f"generated but have non-constant delta {delta!r}"
                )
            keyed.append((delta.constant, r, mult))
        keyed.sort(key=lambda t: t[0])
        lo = keyed[0][0]
        classes.append(
            UniformClass(
                array=ref.array,
                refs=tuple(r for _, r, _ in keyed),
                offsets=tuple(off - lo for off, _, _ in keyed),
                multiplicity=tuple(m for _, _, m in keyed),
            )
        )
    return classes


def reuse_arcs(program: Program, nest: LoopNest) -> list[ReuseArc]:
    """All group-reuse arcs of a nest (consecutive pairs in each class).

    Pairs with zero distance never appear: identical references are
    deduplicated into multiplicities instead.
    """
    arcs: list[ReuseArc] = []
    for cls in uniform_classes(program, nest):
        for (r1, o1), (r2, o2) in zip(
            zip(cls.refs, cls.offsets), zip(cls.refs[1:], cls.offsets[1:])
        ):
            arcs.append(
                ReuseArc(
                    array=cls.array,
                    trailing=r1,
                    leading=r2,
                    distance_bytes=o2 - o1,
                )
            )
    return arcs
