"""Working-set (footprint) estimates.

Used by fusion (capacity check: "we assume no reuse between nests due to
capacity constraints"), by GROUPPAD (how many columns fit in the cache),
and by tiling profitability.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.affine import AffineExpr
from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.ir.ranges import affine_interval, loop_var_ranges

__all__ = [
    "nest_footprint_bytes",
    "columns_in_cache",
    "ref_span_bytes",
    "ref_lines_lower_bound",
]


def ref_span_bytes(program: Program, nest: LoopNest, array: str) -> int:
    """Bytes of ``array`` spanned by the nest's references to it.

    Interval width of the reference offsets over the iteration space plus
    one element -- an upper bound on the data touched in that array.
    """
    decl = program.decl(array)
    ranges = loop_var_ranges(nest)
    lo, hi = None, None
    for ref in nest.refs:
        if ref.array != array:
            continue
        rlo, rhi = affine_interval(ref.offset_expr(decl), ranges)
        lo = rlo if lo is None else min(lo, rlo)
        hi = rhi if hi is None else max(hi, rhi)
    if lo is None:
        return 0
    return (hi - lo) + decl.element_size


def nest_footprint_bytes(program: Program, nest: LoopNest) -> int:
    """Total bytes touched by a nest (sum of per-array spans)."""
    return sum(ref_span_bytes(program, nest, a) for a in nest.arrays_used())


def ref_lines_lower_bound(
    nest: LoopNest, offset_expr: AffineExpr, line_size: int
) -> int:
    """A provable lower bound on the distinct cache lines one reference
    touches over its iteration space.

    Used by :mod:`repro.symbolic` as a capacity pre-filter: when the bound
    already exceeds a level's ``num_lines``, some set must receive more
    lines than it has ways (pigeonhole), so the no-eviction exactness
    condition cannot hold and the full footprint enumeration is skipped.

    The bound composes per-loop arithmetic progressions smallest stride
    first, tracking two invariants of the accumulated offset set: its
    byte ``span`` and an upper bound ``gap`` on the largest distance
    between consecutive offsets.  A stride larger than the current span
    shifts the set into byte-disjoint copies (each holding the current
    line count, adjacent copies sharing at most one boundary line); and
    whenever ``gap <= line_size`` no aligned line inside the window can
    be skipped, so ``span // line_size - 1`` lines are certainly touched.
    Loops with symbolic (triangular) bounds contribute nothing -- they
    can only grow the footprint, so dropping them keeps the bound a true
    lower bound.
    """
    pairs = []  # (trip, |stride|) of rectangular loops the address varies in
    for lp in nest.loops:
        coeff = offset_expr.coeff(lp.var)
        if coeff == 0 or not lp.is_rectangular:
            continue
        try:
            trip = lp.trip_count()
        except IRError:  # pragma: no cover - is_rectangular guards this
            continue
        if trip > 1:
            pairs.append((trip, abs(coeff * lp.step)))
    pairs.sort(key=lambda p: p[1])
    lines = 1
    span = 0
    gap = 0
    for trip, stride in pairs:
        if stride > span:
            # Disjoint copies of the inner set: each holds >= `lines`
            # lines, adjacent copies can share at most one line.
            lines = trip * lines - (trip - 1)
            gap = max(gap, stride - span)
        else:
            # Interleaved copies: consecutive-offset gaps stay within
            # max(previous gap, stride).
            gap = max(gap, stride)
        span += stride * (trip - 1)
        if gap <= line_size:
            lines = max(lines, span // line_size - 1)
    return max(1, lines)


def columns_in_cache(program: Program, array: str, cache_size: int) -> float:
    """How many columns of ``array`` a cache of ``cache_size`` bytes holds.

    The quantity the paper uses to explain Figure 11: the 16K L1 "can hold
    only 3 to 8 columns, depending on problem size".
    """
    col = program.decl(array).column_size_bytes
    return cache_size / col
