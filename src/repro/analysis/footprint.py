"""Working-set (footprint) estimates.

Used by fusion (capacity check: "we assume no reuse between nests due to
capacity constraints"), by GROUPPAD (how many columns fit in the cache),
and by tiling profitability.
"""

from __future__ import annotations

from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.ir.ranges import affine_interval, loop_var_ranges

__all__ = ["nest_footprint_bytes", "columns_in_cache", "ref_span_bytes"]


def ref_span_bytes(program: Program, nest: LoopNest, array: str) -> int:
    """Bytes of ``array`` spanned by the nest's references to it.

    Interval width of the reference offsets over the iteration space plus
    one element -- an upper bound on the data touched in that array.
    """
    decl = program.decl(array)
    ranges = loop_var_ranges(nest)
    lo, hi = None, None
    for ref in nest.refs:
        if ref.array != array:
            continue
        rlo, rhi = affine_interval(ref.offset_expr(decl), ranges)
        lo = rlo if lo is None else min(lo, rlo)
        hi = rhi if hi is None else max(hi, rhi)
    if lo is None:
        return 0
    return (hi - lo) + decl.element_size


def nest_footprint_bytes(program: Program, nest: LoopNest) -> int:
    """Total bytes touched by a nest (sum of per-array spans)."""
    return sum(ref_span_bytes(program, nest, a) for a in nest.arrays_used())


def columns_in_cache(program: Program, array: str, cache_size: int) -> float:
    """How many columns of ``array`` a cache of ``cache_size`` bytes holds.

    The quantity the paper uses to explain Figure 11: the 16K L1 "can hold
    only 3 to 8 columns, depending on problem size".
    """
    col = program.decl(array).column_size_bytes
    return cache_size / col
