"""Data-dependence analysis for uniformly generated references.

The transformations' legality questions reduce to *distance vectors*: for
a pair of same-array references with at least one write, the per-loop
iteration distance at which the two touch the same element.  For the
paper's reference shape (each subscript one loop variable plus a
constant) a component is an exact integer; a loop the subscripts do not
mention leaves that component *unconstrained* (the classical ``*``
direction: a reference invariant in a loop touches the same element at
every iteration of it).  Anything else is unanalyzable and treated
conservatively.

Legality tests enumerate the ``*`` components over sign patterns
(lexicographic order only sees signs): a permutation is legal iff no
instantiation that is forward (lex-positive) in the original order
becomes backward (lex-negative) after permuting -- Wolf & Lam's test
[30].
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import AnalysisError
from repro.ir.loops import LoopNest
from repro.ir.refs import ArrayRef

__all__ = [
    "Dependence",
    "distance_vector",
    "nest_dependences",
    "permutation_legal",
    "reversal_legal",
]

Star = None  # unconstrained component marker in distance tuples


@dataclass(frozen=True)
class Dependence:
    """One (unordered) dependence between two references of a nest.

    ``distance`` maps each loop (outermost first) to an exact integer or
    ``None`` for unconstrained (``*``): the sink touches the source's
    element when their iteration vectors differ by any instantiation of
    the tuple.
    """

    ref_a: ArrayRef
    ref_b: ArrayRef
    distance: tuple[Optional[int], ...]
    kind: str  # "flow/anti" | "output" | "input-free" (never emitted)

    def instantiations(self):
        """Sign-pattern instantiations of the ``*`` components."""
        options = [(-1, 0, 1) if d is None else (d,) for d in self.distance]
        return itertools.product(*options)

    @property
    def is_exact(self) -> bool:
        return all(d is not None for d in self.distance)

    def carrying_level(self) -> Optional[int]:
        """Outermost loop carrying the dependence when exact; None for
        loop-independent or inexact distances."""
        if not self.is_exact:
            return None
        for i, d in enumerate(self.distance):
            if d != 0:
                return i
        return None


def distance_vector(
    ref_a: ArrayRef, ref_b: ArrayRef, loop_vars: Sequence[str]
) -> Optional[tuple]:
    """Distance tuple with ``ref_b(I + d) == ref_a(I)`` elementwise.

    Components are ints, or ``None`` for loops the subscripts never
    mention (unconstrained).  Returns ``()`` when the references provably
    never touch the same element (different constant planes), and
    ``None`` when the pair is unanalyzable (transposed/scaled subscripts).
    """
    if ref_a.array != ref_b.array or ref_a.rank != ref_b.rank:
        return None
    shift: dict[str, int] = {}
    for sa, sb in zip(ref_a.subscripts, ref_b.subscripts):
        va, vb = sa.variables, sb.variables
        if va != vb or len(va) > 1:
            return None
        if not va:
            if sa.constant != sb.constant:
                return ()  # disjoint planes: no dependence at all
            continue
        v = va[0]
        if v not in loop_vars or sa.coeff(v) != 1 or sb.coeff(v) != 1:
            return None
        delta = sa.constant - sb.constant
        if v in shift and shift[v] != delta:
            return ()  # contradictory requirements: never equal
        shift[v] = delta
    return tuple(shift.get(v, Star) for v in loop_vars)


def nest_dependences(nest: LoopNest) -> list[Dependence]:
    """All dependence relations among the nest's references.

    Considers unordered pairs with at least one write (including a
    reference with itself when it writes and is loop-invariant somewhere).
    Unanalyzable pairs raise :class:`AnalysisError`; catch it to be
    conservative.
    """
    loop_vars = nest.loop_vars
    refs = list(nest.refs)
    out: list[Dependence] = []
    for i, ra in enumerate(refs):
        for rb in refs[i:]:
            if ra.array != rb.array:
                continue
            if not (ra.is_write or rb.is_write):
                continue
            d = distance_vector(ra, rb, loop_vars)
            if d is None:
                raise AnalysisError(
                    f"cannot analyze dependence between {ra!r} and {rb!r}"
                )
            if d == ():
                continue  # provably independent
            if ra is rb and all(x == 0 for x in d):
                continue  # a ref against itself at the same iteration only
            kind = "output" if (ra.is_write and rb.is_write) else "flow/anti"
            # Normalize exact distances to source->sink (lex-positive);
            # tuples with '*' components keep both directions implicitly.
            src, snk = ra, rb
            if all(x is not None for x in d) and _lex_sign(d) < 0:
                src, snk = rb, ra
                d = tuple(-x for x in d)
            out.append(Dependence(ref_a=src, ref_b=snk, distance=d, kind=kind))
    return out


def _lex_sign(v: Sequence[int]) -> int:
    for x in v:
        if x > 0:
            return 1
        if x < 0:
            return -1
    return 0


def permutation_legal(nest: LoopNest, order: Sequence[str]) -> bool:
    """Is permuting the nest's loops to ``order`` dependence-legal?

    Illegal iff some instantiation of some dependence runs forward in the
    original order but backward after permutation.  Unanalyzable nests
    answer False (conservative).
    """
    order = tuple(order)
    if sorted(order) != sorted(nest.loop_vars):
        raise AnalysisError(f"{order} is not a permutation of {nest.loop_vars}")
    try:
        deps = nest_dependences(nest)
    except AnalysisError:
        return False
    index = [nest.loop_vars.index(v) for v in order]
    for dep in deps:
        for inst in dep.instantiations():
            # The dependence is unordered: the executed (forward) pair is
            # inst when lex-positive, its negation when lex-negative.
            sign = _lex_sign(inst)
            if sign == 0:
                continue  # loop-independent: statement order preserved
            forward = inst if sign > 0 else tuple(-x for x in inst)
            permuted = tuple(forward[i] for i in index)
            if _lex_sign(permuted) < 0:
                return False
    return True


def reversal_legal(nest: LoopNest, loop_var: str) -> bool:
    """Is reversing one loop dependence-legal?

    Illegal iff some forward instantiation's order flips when the
    component at that loop is negated.
    """
    if loop_var not in nest.loop_vars:
        raise AnalysisError(f"no loop {loop_var!r} in nest")
    level = nest.loop_vars.index(loop_var)
    try:
        deps = nest_dependences(nest)
    except AnalysisError:
        return False
    for dep in deps:
        for inst in dep.instantiations():
            sign = _lex_sign(inst)
            if sign == 0:
                continue
            forward = inst if sign > 0 else tuple(-x for x in inst)
            flipped = tuple(
                -x if i == level else x for i, x in enumerate(forward)
            )
            if _lex_sign(flipped) < 0:
                return False
    return True
