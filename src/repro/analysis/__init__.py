"""Locality analyses: reuse classification, group reuse, cost models.

These are the "compiler side" models -- what the paper's transformations
use to make decisions.  The cache simulator (:mod:`repro.cache`) is the
"evaluation side"; keeping them separate mirrors the paper's methodology,
where compile-time reuse analysis predicts what the simulator then
measures (Section 6.4 checks exactly that correspondence).
"""

from repro.analysis.groups import ReuseArc, UniformClass, uniform_classes, reuse_arcs
from repro.analysis.reuse import (
    ReuseKind,
    RefReuse,
    classify_ref,
    classify_nest,
    innermost_locality_score,
)
from repro.analysis.dependence import (
    Dependence,
    distance_vector,
    nest_dependences,
    permutation_legal,
    reversal_legal,
)
from repro.analysis.footprint import nest_footprint_bytes, columns_in_cache
from repro.analysis.costmodel import MissCostModel, estimate_nest_misses
from repro.analysis.fusionmodel import (
    FusionAccounting,
    account_nests,
    fusion_delta,
    fusion_profitable,
)

__all__ = [
    "ReuseArc",
    "UniformClass",
    "uniform_classes",
    "reuse_arcs",
    "ReuseKind",
    "RefReuse",
    "classify_ref",
    "classify_nest",
    "innermost_locality_score",
    "nest_footprint_bytes",
    "columns_in_cache",
    "Dependence",
    "distance_vector",
    "nest_dependences",
    "permutation_legal",
    "reversal_legal",
    "MissCostModel",
    "estimate_nest_misses",
    "FusionAccounting",
    "account_nests",
    "fusion_delta",
    "fusion_profitable",
]
