"""Structural trace regression diffs: ``repro-experiments diff``.

The benchmark trend gate compares throughput numbers; it can say a run
got slower but not *where*.  This module compares two trace files span
by span: spans aggregate by name on each side (same rollup as the
``report`` verb), align by name, and every self-time increase beyond
the thresholds becomes a warn/fail finding naming the exact span that
regressed -- ``exec.job`` grew but ``store.get`` didn't is a very
different investigation than the reverse.

Alongside span timings, the embedded metrics snapshots diff two ways:

* **work counters** (``exec.jobs``, ``sim.refs``, ...) are *structural*
  -- on a deterministic workload they must match exactly, so any drift
  is reported at warn level regardless of size (a job-count change is a
  workload change, not noise);
* **timing counters/histograms** (anything carrying ``seconds``) use
  the same percentage thresholds as span self-times.

Noise discipline: a span regression must clear *both* the percentage
threshold and ``min_self_s`` of absolute growth, so a 0.1ms span tripling
does not fail CI.  Diffing a trace against itself reports zero deltas by
construction -- CI pins this as the gate's own sanity check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .report import aggregate_spans, load_trace_doc

__all__ = ["SpanDelta", "CounterDelta", "TraceDiff", "diff_traces",
           "WARN_PCT", "FAIL_PCT", "MIN_SELF_S"]

WARN_PCT = 10.0
FAIL_PCT = 30.0
#: Absolute self-time growth a span must show before percentages count.
MIN_SELF_S = 0.010


def _status(pct: float, warn_pct: float, fail_pct: float) -> str:
    if pct >= fail_pct:
        return "fail"
    if pct >= warn_pct:
        return "warn"
    return "ok"


@dataclass(frozen=True)
class SpanDelta:
    """One span name's self-time movement between base and fresh."""

    name: str
    base_self_s: float
    fresh_self_s: float
    base_count: int
    fresh_count: int
    status: str  # ok | warn | fail

    @property
    def delta_s(self) -> float:
        return self.fresh_self_s - self.base_self_s

    @property
    def pct(self) -> float:
        if self.base_self_s <= 0:
            return 0.0 if self.fresh_self_s <= 0 else float("inf")
        return 100.0 * self.delta_s / self.base_self_s


@dataclass(frozen=True)
class CounterDelta:
    """One metrics counter's movement between base and fresh."""

    name: str
    base: float
    fresh: float
    kind: str  # work | timing
    status: str

    @property
    def delta(self) -> float:
        return self.fresh - self.base


@dataclass(frozen=True)
class TraceDiff:
    """Everything that moved between two traces, plus the verdict."""

    base_path: str
    fresh_path: str
    spans: list = field(default_factory=list)
    counters: list = field(default_factory=list)
    warn_pct: float = WARN_PCT
    fail_pct: float = FAIL_PCT

    @property
    def status(self) -> str:
        statuses = {d.status for d in self.spans} | {d.status for d in self.counters}
        if "fail" in statuses:
            return "fail"
        if "warn" in statuses:
            return "warn"
        return "ok"

    @property
    def regressions(self) -> list:
        return [d for d in list(self.spans) + list(self.counters)
                if d.status != "ok"]

    def format(self, top: int = 12) -> str:
        lines = [f"trace diff: {self.fresh_path} vs {self.base_path} "
                 f"(warn >= {self.warn_pct:.0f}%, fail >= {self.fail_pct:.0f}%)"]
        moved = [d for d in self.spans if d.status != "ok" or abs(d.delta_s) >= MIN_SELF_S]
        moved.sort(key=lambda d: -abs(d.delta_s))
        for d in moved[:top]:
            pct = f"{d.pct:+.0f}%" if d.pct != float("inf") else "new"
            lines.append(
                f"  [{d.status}] span {d.name}: self {d.base_self_s:.4f}s -> "
                f"{d.fresh_self_s:.4f}s ({pct}, x{d.base_count}->x{d.fresh_count})"
            )
        for d in self.counters:
            if d.status == "ok":
                continue
            lines.append(
                f"  [{d.status}] {d.kind} counter {d.name}: "
                f"{d.base:g} -> {d.fresh:g}"
            )
        n_reg = len(self.regressions)
        lines.append(
            f"trace diff status: {self.status} "
            f"({n_reg} regression(s), {len(self.spans)} span names, "
            f"{len(self.counters)} counters compared)"
        )
        return "\n".join(lines)


def _self_times(path) -> tuple[dict, dict]:
    doc = load_trace_doc(path)
    spans = [s for s in doc.spans if s.get("type") == "span"]
    aggs = aggregate_spans(spans)
    return {a.name: a for a in aggs}, doc.metrics


def diff_traces(base_path, fresh_path, warn_pct: float = WARN_PCT,
                fail_pct: float = FAIL_PCT,
                min_self_s: float = MIN_SELF_S) -> TraceDiff:
    """Compare two trace files; only *increases* regress (getting faster
    is never a finding)."""
    base_aggs, base_metrics = _self_times(base_path)
    fresh_aggs, fresh_metrics = _self_times(fresh_path)

    span_deltas = []
    for name in sorted(set(base_aggs) | set(fresh_aggs)):
        b = base_aggs.get(name)
        f = fresh_aggs.get(name)
        base_s = b.self_s if b else 0.0
        fresh_s = f.self_s if f else 0.0
        delta = fresh_s - base_s
        status = "ok"
        if delta >= min_self_s:
            if base_s <= 0:
                # a brand-new span consuming real time is worth a look,
                # but absent a baseline there is no percentage to gate on
                status = "warn"
            else:
                status = _status(100.0 * delta / base_s, warn_pct, fail_pct)
        span_deltas.append(SpanDelta(
            name=name,
            base_self_s=base_s,
            fresh_self_s=fresh_s,
            base_count=b.count if b else 0,
            fresh_count=f.count if f else 0,
            status=status,
        ))

    counter_deltas = []
    base_c = base_metrics.get("counters", {})
    fresh_c = fresh_metrics.get("counters", {})
    for name in sorted(set(base_c) | set(fresh_c)):
        bv = float(base_c.get(name, 0))
        fv = float(fresh_c.get(name, 0))
        if bv == fv:
            continue
        timing = "seconds" in name
        if timing:
            delta = fv - bv
            if delta <= 0 or delta < min_self_s:
                status = "ok"
            elif bv <= 0:
                status = "warn"
            else:
                status = _status(100.0 * delta / bv, warn_pct, fail_pct)
        else:
            # work counters must match on a deterministic workload; any
            # drift is a workload change, flagged independent of size
            status = "warn"
        counter_deltas.append(CounterDelta(
            name=name, base=bv, fresh=fv,
            kind="timing" if timing else "work", status=status,
        ))

    return TraceDiff(
        base_path=str(base_path),
        fresh_path=str(fresh_path),
        spans=span_deltas,
        counters=counter_deltas,
        warn_pct=warn_pct,
        fail_pct=fail_pct,
    )
