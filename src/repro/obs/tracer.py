"""Structured tracing: nested spans with negligible disabled overhead.

One experiment run produces thousands of simulations across sweep rounds,
search loops, and worker processes; a flat wall-clock number cannot say
*where* the time went.  The tracer records a tree of **spans** -- named,
timed regions with typed attributes -- plus instant **events**, and
exports them as JSON lines or as the Chrome trace-event format that
``chrome://tracing`` and Perfetto load directly.

Design constraints, in order:

* **Disabled is free.**  The process-wide default is a
  :class:`NullTracer` whose ``span()`` returns one shared no-op context
  manager; hot paths guard attribute construction behind
  ``tracer.enabled``, so an untraced run pays one global read and one
  boolean test per instrumentation site.
* **Zero dependencies.**  Standard library only; one small module.
* **Cross-process composable.**  Sweep jobs execute in worker processes
  where no tracer lives; workers report wall-clock ``(start_ns,
  duration)`` pairs back and the parent *synthesizes* their spans via
  :meth:`Tracer.add_span`, tagging each with the worker pid so per-worker
  lanes appear in a trace viewer.

Timestamps are ``time.time_ns()`` epoch nanoseconds (comparable across
processes on one machine); durations are measured with
``time.perf_counter_ns()`` where the span is live, so they do not inherit
wall-clock adjustments.

Beyond spans the tracer records two more shapes:

* **counter samples** (:class:`CounterSample`) -- timestamped numeric
  series that export as Chrome/Perfetto **counter tracks** (``ph: "C"``),
  so a value over time (a per-level miss rate, a queue depth) renders as
  a curve next to the span lanes; :mod:`repro.obs.timeline` feeds these.
* **open spans** -- a span whose thread never reached ``__exit__``
  (a SIGTERM'd worker, a crashed pipeline) is still exported, without a
  duration, so post-mortem traces show what was in flight.

Cross-process/cross-thread *causality* is threaded with trace contexts:
:meth:`Tracer.scope` re-establishes a parent span id (reserved up front
with :meth:`Tracer.new_span_id`) plus ambient attributes -- typically a
``trace_id`` -- in another thread, so everything recorded inside the
scope parents under the original request and carries its id.  The
tuning service uses exactly this to stitch an HTTP request to the queue
wait, pipeline, and simulator spans it caused.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "CounterSample",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "start_tracing",
    "stop_tracing",
]


@dataclass(frozen=True)
class Span:
    """One completed span (``dur_ns`` set) or instant event (``dur_ns`` None)."""

    name: str
    cat: str
    start_ns: int  # epoch nanoseconds (time.time_ns)
    dur_ns: int | None
    pid: int
    tid: int
    span_id: int
    parent_id: int | None
    args: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Span duration in seconds (0.0 for instant events)."""
        return (self.dur_ns or 0) / 1e9

    def to_json(self) -> dict:
        """The JSONL encoding (``type`` distinguishes spans from events)."""
        out = {
            "type": "span" if self.dur_ns is not None else "event",
            "name": self.name,
            "cat": self.cat,
            "start_ns": self.start_ns,
            "pid": self.pid,
            "tid": self.tid,
            "id": self.span_id,
            "parent": self.parent_id,
        }
        if self.dur_ns is not None:
            out["dur_ns"] = self.dur_ns
        if self.args:
            out["args"] = self.args
        return out

    def to_chrome(self) -> dict:
        """The Chrome trace-event encoding (``ph`` X complete / i instant)."""
        event = {
            "name": self.name,
            "cat": self.cat or "repro",
            "pid": self.pid,
            "tid": self.tid,
            "ts": self.start_ns / 1000.0,  # microseconds
            "args": {**self.args, "id": self.span_id, "parent": self.parent_id},
        }
        if self.dur_ns is not None:
            event["ph"] = "X"
            event["dur"] = self.dur_ns / 1000.0
        else:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        return event


@dataclass(frozen=True)
class CounterSample:
    """One timestamped sample of one (or several parallel) numeric series.

    ``values`` maps series name to number; a Chrome counter event renders
    every key as one series within the ``name`` track, so related series
    (hits and misses of one level) can share a track while unrelated
    scales (a miss *rate*) get their own.
    """

    name: str
    ts_ns: int  # epoch nanoseconds (time.time_ns)
    pid: int
    tid: int
    values: dict = field(default_factory=dict)
    cat: str = ""

    def to_json(self) -> dict:
        return {
            "type": "counter",
            "name": self.name,
            "cat": self.cat,
            "ts_ns": self.ts_ns,
            "pid": self.pid,
            "tid": self.tid,
            "values": self.values,
        }

    def to_chrome(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat or "repro",
            "ph": "C",
            "pid": self.pid,
            "tid": self.tid,
            "ts": self.ts_ns / 1000.0,  # microseconds
            "args": dict(self.values),
        }


class _ActiveSpan:
    """Context manager for one live span; exposes ``set()`` for late attrs."""

    __slots__ = ("_tracer", "name", "cat", "args", "span_id", "parent_id",
                 "_start_ns", "_t0", "_tid")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.span_id = tracer._next_id()
        self.parent_id: int | None = None
        self._start_ns = 0
        self._t0 = 0
        self._tid = 0

    def set(self, **attrs) -> "_ActiveSpan":
        """Attach attributes discovered while the span is running."""
        self.args.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._start_ns = time.time_ns()
        self._t0 = time.perf_counter_ns()
        self._tid = threading.get_ident()
        self._tracer._open_enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur_ns = time.perf_counter_ns() - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self._tracer._open_exit(self)
        self._tracer._record(
            Span(
                name=self.name,
                cat=self.cat,
                start_ns=self._start_ns,
                dur_ns=dur_ns,
                pid=os.getpid(),
                tid=threading.get_ident(),
                span_id=self.span_id,
                parent_id=self.parent_id,
                args=self._tracer._merged_args(self.args),
            )
        )


class _TraceScope:
    """Re-establishes a parent span id + ambient attrs in this thread.

    Entering pushes ``parent_id`` (if any) onto the thread's span stack
    -- without recording a span of its own -- and merges ``ctx`` into
    the thread's ambient attributes, which :meth:`Tracer._merged_args`
    folds into every span/event recorded while the scope is live.  The
    canonical use is handing one request's ``(parent span, trace_id)``
    from an event loop into a worker thread.
    """

    __slots__ = ("_tracer", "_parent_id", "_ctx", "_pushed", "_prev_ctx")

    def __init__(self, tracer: "Tracer", parent_id: int | None, ctx: dict):
        self._tracer = tracer
        self._parent_id = parent_id
        self._ctx = ctx
        self._pushed = False
        self._prev_ctx: dict | None = None

    def __enter__(self) -> "_TraceScope":
        if self._parent_id is not None:
            self._tracer._stack().append(self._parent_id)
            self._pushed = True
        local = self._tracer._local
        self._prev_ctx = getattr(local, "ctx", None)
        merged = dict(self._prev_ctx) if self._prev_ctx else {}
        merged.update(self._ctx)
        local.ctx = merged
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._pushed:
            stack = self._tracer._stack()
            if stack and stack[-1] == self._parent_id:
                stack.pop()
        self._tracer._local.ctx = self._prev_ctx


class Tracer:
    """Collects spans and events; thread-safe; export via ``write_*``."""

    enabled = True

    def __init__(self):
        self._spans: list[Span] = []
        self._counters: list[CounterSample] = []
        self._open: dict[int, _ActiveSpan] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- internals ---------------------------------------------------------
    def _next_id(self) -> int:
        return next(self._ids)

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def _merged_args(self, args: dict) -> dict:
        """Fold this thread's ambient context (scope attrs) into ``args``."""
        ctx = getattr(self._local, "ctx", None)
        if not ctx:
            return args
        merged = dict(ctx)
        merged.update(args)
        return merged

    def _open_enter(self, active: "_ActiveSpan") -> None:
        with self._lock:
            self._open[active.span_id] = active

    def _open_exit(self, active: "_ActiveSpan") -> None:
        with self._lock:
            self._open.pop(active.span_id, None)

    # -- recording API -----------------------------------------------------
    def span(self, name: str, cat: str = "", **attrs) -> _ActiveSpan:
        """Context manager timing a nested region::

            with tracer.span("exec.sweep", cat="exec", jobs=12) as sp:
                ...
                sp.set(hits=3)
        """
        return _ActiveSpan(self, name, cat, attrs)

    def event(self, name: str, cat: str = "", **attrs) -> None:
        """Record an instant event under the current span."""
        stack = self._stack()
        self._record(
            Span(
                name=name,
                cat=cat,
                start_ns=time.time_ns(),
                dur_ns=None,
                pid=os.getpid(),
                tid=threading.get_ident(),
                span_id=self._next_id(),
                parent_id=stack[-1] if stack else None,
                args=self._merged_args(attrs),
            )
        )

    def counter(
        self,
        name: str,
        ts_ns: int | None = None,
        cat: str = "",
        pid: int | None = None,
        tid: int | None = None,
        **values,
    ) -> None:
        """Record one sample on the ``name`` counter track.

        Keyword ``values`` are the series within the track.  Pass
        ``ts_ns``/``pid``/``tid`` to replay samples observed in a worker
        process (mirrors :meth:`add_span`); omitted they default to now
        and the calling thread.
        """
        sample = CounterSample(
            name=name,
            ts_ns=ts_ns if ts_ns is not None else time.time_ns(),
            pid=pid if pid is not None else os.getpid(),
            tid=tid if tid is not None else threading.get_ident(),
            values=values,
            cat=cat,
        )
        with self._lock:
            self._counters.append(sample)

    def add_span(
        self,
        name: str,
        start_ns: int,
        dur_ns: int,
        cat: str = "",
        pid: int | None = None,
        tid: int | None = None,
        span_id: int | None = None,
        **attrs,
    ) -> int:
        """Synthesize a completed span observed elsewhere (worker processes).

        The span parents under the caller's *current* span, so pool jobs
        nest below the sweep that dispatched them even though they ran in
        another process; pass the worker's pid as ``tid`` to give each
        worker its own lane in trace viewers.  Returns the new span's id
        so callers can link later events back to it (the executor keeps
        the id of every ``exec.job`` span, and the autotuner's
        ``search.best`` events carry it as ``exec_span`` -- a served
        recommendation's trace walks back to the simulation that
        produced it).

        Passing ``span_id`` records the span under an id previously
        reserved with :meth:`new_span_id` -- the way a request's *root*
        span is recorded after its children already parented under it.
        """
        stack = self._stack()
        if span_id is None:
            span_id = self._next_id()
        self._record(
            Span(
                name=name,
                cat=cat,
                start_ns=start_ns,
                dur_ns=dur_ns,
                pid=pid if pid is not None else os.getpid(),
                tid=tid if tid is not None else threading.get_ident(),
                span_id=span_id,
                parent_id=stack[-1] if stack else None,
                args=self._merged_args(attrs),
            )
        )
        return span_id

    def new_span_id(self) -> int:
        """Reserve a span id without recording anything yet.

        Children can parent under the reserved id (via :meth:`scope`)
        before the owning span is recorded with
        ``add_span(span_id=reserved)`` -- required when the parent's
        duration is only known after its children ran (an HTTP request
        span closed at response time).
        """
        return self._next_id()

    def scope(self, parent_id: int | None = None, **ctx) -> _TraceScope:
        """Context manager re-establishing trace context in this thread.

        While entered, spans/events recorded in this thread parent under
        ``parent_id`` (when the thread has no deeper live span) and carry
        the ``ctx`` attributes (e.g. ``trace_id="..."``) merged into
        their args.  Scopes nest; inner scopes shadow outer keys.
        """
        return _TraceScope(self, parent_id, ctx)

    def current_span_id(self) -> int | None:
        """The innermost live span's id in this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- reading & export --------------------------------------------------
    def spans(self) -> list[Span]:
        """Everything recorded so far (copy; spans and events)."""
        with self._lock:
            return list(self._spans)

    def counters(self) -> list[CounterSample]:
        """All counter samples recorded so far (copy)."""
        with self._lock:
            return list(self._counters)

    def open_spans(self) -> list[Span]:
        """Spans entered but never exited, frozen at their start time.

        Each is exported without a duration so post-mortem traces (a
        SIGTERM'd service, a crashed worker) still show what was in
        flight when the process wrote its trace.
        """
        with self._lock:
            live = list(self._open.values())
        return [
            Span(
                name=a.name,
                cat=a.cat,
                start_ns=a._start_ns,
                dur_ns=None,
                pid=os.getpid(),
                tid=a._tid,
                span_id=a.span_id,
                parent_id=a.parent_id,
                args=dict(a.args),
            )
            for a in live
        ]

    def write_jsonl(self, path, metrics: dict | None = None) -> None:
        """One JSON object per line; a final ``type: metrics`` line when
        a metrics snapshot is supplied."""
        dumps = json.dumps
        with open(path, "w") as f:
            for span in self.spans():
                f.write(dumps(span.to_json(), separators=(",", ":")) + "\n")
            for sample in self.counters():
                f.write(dumps(sample.to_json(), separators=(",", ":")) + "\n")
            for span in self.open_spans():
                row = span.to_json()
                row["type"] = "span"
                row["open"] = True
                f.write(dumps(row, separators=(",", ":")) + "\n")
            if metrics:
                f.write(
                    dumps({"type": "metrics", "metrics": metrics},
                          separators=(",", ":")) + "\n"
                )

    def write_chrome(self, path, metrics: dict | None = None) -> None:
        """Chrome trace-event JSON (load in ``chrome://tracing`` / Perfetto).

        Counter samples become ``ph: "C"`` counter tracks; open spans
        become unmatched ``ph: "B"`` begin events, which viewers render
        as running to the end of the trace.  The metrics snapshot rides
        along under a top-level ``metrics`` key, which viewers ignore.
        """
        events = [s.to_chrome() for s in self.spans()]
        events.extend(c.to_chrome() for c in self.counters())
        for span in self.open_spans():
            ev = span.to_chrome()
            ev["ph"] = "B"
            ev.pop("s", None)
            events.append(ev)
        doc: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
        if metrics:
            doc["metrics"] = metrics
        with open(path, "w") as f:
            json.dump(doc, f)

    def write(self, path, format: str = "jsonl", metrics: dict | None = None) -> None:
        """Dispatch on ``format`` ("jsonl" or "chrome")."""
        if format == "jsonl":
            self.write_jsonl(path, metrics=metrics)
        elif format == "chrome":
            self.write_chrome(path, metrics=metrics)
        else:
            raise ValueError(f"unknown trace format {format!r}")


class _NullSpan:
    """The shared do-nothing span: ``with`` works, ``set()`` works."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _NullScope:
    """The shared do-nothing trace scope."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SCOPE = _NullScope()


class NullTracer:
    """The disabled tracer: every call is a no-op returning shared objects.

    ``span()`` hands back one process-wide singleton, so a disabled
    instrumentation site allocates nothing and writes nothing -- the
    property the ``<2%`` overhead guard in ``benchmarks/test_bench_obs.py``
    pins down.
    """

    enabled = False

    def span(self, name: str, cat: str = "", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, cat: str = "", **attrs) -> None:
        return None

    def add_span(self, *args, **kwargs) -> None:
        return None  # no span exists, so there is no id to link to

    def counter(self, name: str, **kwargs) -> None:
        return None

    def new_span_id(self) -> None:
        return None  # nothing to reserve against

    def scope(self, parent_id=None, **ctx) -> _NullScope:
        return _NULL_SCOPE

    def current_span_id(self) -> None:
        return None

    def spans(self) -> list[Span]:
        return []

    def counters(self) -> list[CounterSample]:
        return []

    def open_spans(self) -> list[Span]:
        return []


NULL_TRACER = NullTracer()

_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide tracer (the no-op :data:`NULL_TRACER` by default)."""
    return _tracer


def set_tracer(tracer: Tracer | NullTracer) -> None:
    """Install a process-wide tracer (pass :data:`NULL_TRACER` to disable)."""
    global _tracer
    _tracer = tracer


def start_tracing() -> Tracer:
    """Install and return a fresh recording :class:`Tracer`."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def stop_tracing() -> Tracer | NullTracer:
    """Restore the no-op default; returns the tracer that was active."""
    global _tracer
    previous = _tracer
    _tracer = NULL_TRACER
    return previous
