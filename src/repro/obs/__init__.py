"""repro.obs -- unified tracing and metrics across the whole stack.

The observability layer the executor, simulators, search, model, and
experiment harnesses all report through:

* :mod:`repro.obs.tracer` -- nested spans with monotonic timestamps,
  process/thread ids and typed attributes; a process-wide registry whose
  default is a true no-op; JSON-lines and Chrome trace-event export
  (open in ``chrome://tracing`` or https://ui.perfetto.dev);
* :mod:`repro.obs.metrics` -- counters / gauges / histograms unifying
  the previously siloed stats (refs simulated, per-level hit/miss
  totals, store hit rate, search evaluations, predictor scores);
* :mod:`repro.obs.report` -- the ``repro-experiments report`` summary:
  top spans by self-time, store hit rate, sims per second.

Quick use::

    from repro.obs import start_tracing, get_metrics

    tracer = start_tracing()
    ...  # run any sweep / search / experiment
    tracer.write("out.json", format="chrome",
                 metrics=get_metrics().snapshot())

See ``docs/observability.md`` for the full tour.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    best_of,
    diff_counters,
    format_exec_line,
    get_metrics,
    reset_metrics,
    set_metrics,
)
from repro.obs.report import aggregate_spans, format_report, load_trace
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    start_tracing,
    stop_tracing,
)

__all__ = [
    # tracer
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "start_tracing",
    "stop_tracing",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
    "diff_counters",
    "best_of",
    "format_exec_line",
    # report
    "load_trace",
    "aggregate_spans",
    "format_report",
]
