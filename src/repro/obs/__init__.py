"""repro.obs -- unified tracing and metrics across the whole stack.

The observability layer the executor, simulators, search, model,
service, and experiment harnesses all report through:

* :mod:`repro.obs.tracer` -- nested spans with monotonic timestamps,
  process/thread ids and typed attributes; counter samples that export
  as Perfetto counter tracks; open-span capture for post-mortem traces;
  trace-context scopes for cross-thread/cross-process causality; a
  process-wide registry whose default is a true no-op; JSON-lines and
  Chrome trace-event export (open in ``chrome://tracing`` or
  https://ui.perfetto.dev);
* :mod:`repro.obs.metrics` -- counters / gauges / histograms (with
  reservoir p50/p95/p99) unifying the previously siloed stats (refs
  simulated, per-level hit/miss totals, store hit rate, search
  evaluations, predictor scores);
* :mod:`repro.obs.timeline` -- windowed per-level (accesses, misses)
  telemetry: phase behaviour within one kernel, summing bit-exactly to
  the untimed totals, rendered as miss-rate-over-time counter tracks;
* :mod:`repro.obs.prometheus` -- Prometheus text exposition of a
  metrics snapshot (the service's ``/metrics?format=prometheus``);
* :mod:`repro.obs.report` -- the ``repro-experiments report`` summary:
  top spans by self-time, store hit rate, sims per second, histogram
  percentiles, counter-track coverage, and per-request causal trees;
* :mod:`repro.obs.diff` -- structural trace regression diffs (the
  ``repro-experiments diff`` verb and the second CI trend gate).

Quick use::

    from repro.obs import start_tracing, get_metrics

    tracer = start_tracing()
    ...  # run any sweep / search / experiment
    tracer.write("out.json", format="chrome",
                 metrics=get_metrics().snapshot())

See ``docs/observability.md`` for the full tour.
"""

from repro.obs.diff import TraceDiff, diff_traces
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    best_of,
    diff_counters,
    format_exec_line,
    get_metrics,
    reset_metrics,
    set_metrics,
)
from repro.obs.prometheus import format_prometheus
from repro.obs.report import (
    TraceDoc,
    aggregate_spans,
    format_report,
    format_trace_tree,
    load_trace,
    load_trace_doc,
)
from repro.obs.timeline import (
    Timeline,
    emit_counter_tracks,
    get_timeline_window,
    set_timeline_window,
)
from repro.obs.tracer import (
    NULL_TRACER,
    CounterSample,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    start_tracing,
    stop_tracing,
)

__all__ = [
    # tracer
    "Span",
    "CounterSample",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "start_tracing",
    "stop_tracing",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
    "diff_counters",
    "best_of",
    "format_exec_line",
    # timeline
    "Timeline",
    "emit_counter_tracks",
    "get_timeline_window",
    "set_timeline_window",
    # prometheus
    "format_prometheus",
    # report
    "TraceDoc",
    "load_trace",
    "load_trace_doc",
    "aggregate_spans",
    "format_report",
    "format_trace_tree",
    # diff
    "TraceDiff",
    "diff_traces",
]
