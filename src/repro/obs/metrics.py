"""The metrics registry: counters, gauges, histograms, snapshots.

Before this module each layer kept its own ad-hoc stats --
:class:`~repro.exec.executor.ExecStats` records in the executor,
``hits``/``misses``/``puts`` on the result store, trajectory tuples in
search reports, wall-clock dicts in the timing experiment.  The registry
is the one place those numbers now also flow into, so a whole-run
snapshot can answer "how many references were simulated, at what store
hit rate, at how many sims per second" without stitching per-layer
objects together.

Metrics are **always on**: an increment is one attribute add on a cached
object, far below noise at the chunk/job granularity the hot paths use.
Instrument rates (per-reference, per-access) by incrementing once per
*chunk* with the chunk's count, never inside a reference loop.

Like every per-process singleton here, the registry does not see updates
made inside pool worker processes; the executor aggregates worker results
into the parent registry, so sweep metrics are complete either way.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
    "diff_counters",
    "best_of",
    "format_exec_line",
]


class Counter:
    """A monotonically increasing number (int or float)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n=1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, v) -> None:
        self.value = v


class Histogram:
    """A streaming summary: count, total, min, max, and percentiles.

    Percentiles come from a bounded reservoir (Vitter's algorithm R,
    seeded per-instance so one process's snapshots are reproducible):
    the first :data:`RESERVOIR_SIZE` observations are kept exactly, later
    ones replace a random slot with probability ``size/count``.  At the
    scale the registry sees (thousands of chunk timings per run) the
    reservoir is usually exact; beyond it the quantile error is the
    standard sampling error, which is fine for a p95 on a latency line.
    """

    RESERVOIR_SIZE = 2048

    __slots__ = ("count", "total", "vmin", "vmax", "_sample", "_rng")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self._sample: list[float] = []
        self._rng = random.Random(0xC0FFEE)

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v
        if len(self._sample) < self.RESERVOIR_SIZE:
            self._sample.append(v)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.RESERVOIR_SIZE:
                self._sample[slot] = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile over the reservoir (0.0 when empty)."""
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        rank = max(0, min(len(ordered) - 1,
                          int(round(pct / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        ordered = sorted(self._sample)
        n = len(ordered)

        def rank(pct: float) -> float:
            return ordered[max(0, min(n - 1, int(round(pct / 100.0 * (n - 1)))))]

        return {
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
            "p50": rank(50),
            "p95": rank(95),
            "p99": rank(99),
        }


class MetricsRegistry:
    """Named metrics, created on first use, snapshot-able as plain JSON.

    Lookup is a plain dict ``get`` on the hot path; the lock is only
    taken to create a metric the first time its name appears.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get_or_create(self, table: dict, name: str, factory: Callable):
        metric = table.get(name)
        if metric is None:
            with self._lock:
                metric = table.setdefault(name, factory())
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(self._histograms, name, Histogram)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able copy: ``{"counters": {...}, "gauges": {...},
        "histograms": {name: {count, total, min, max, mean}}}``.

        Empty sections are omitted, so an untouched registry snapshots
        to ``{}`` (and e.g. benchmark recording skips it cleanly).
        """
        out: dict[str, Any] = {}
        if self._counters:
            out["counters"] = {k: c.value for k, c in sorted(self._counters.items())}
        if self._gauges:
            out["gauges"] = {k: g.value for k, g in sorted(self._gauges.items())}
        if self._histograms:
            out["histograms"] = {
                k: h.summary() for k, h in sorted(self._histograms.items())
            }
        return out

    def reset(self) -> None:
        """Drop every metric (tests, or between unrelated runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry every instrumented layer writes to."""
    return _metrics


def set_metrics(registry: MetricsRegistry) -> None:
    """Replace the process-wide registry (tests, isolated sessions)."""
    global _metrics
    _metrics = registry


def reset_metrics() -> MetricsRegistry:
    """Install a fresh empty registry and return it."""
    registry = MetricsRegistry()
    set_metrics(registry)
    return registry


def diff_counters(before: dict, after: dict) -> dict:
    """Counter deltas between two :meth:`MetricsRegistry.snapshot` calls.

    Used by the experiments CLI to render a per-experiment ``[exec]``
    line from the global registry: snapshot before, snapshot after,
    subtract.
    """
    b = before.get("counters", {})
    a = after.get("counters", {})
    return {k: v - b.get(k, 0) for k, v in a.items() if v != b.get(k, 0)}


def best_of(fn: Callable[[], Any], repeats: int = 3, name: str | None = None,
            registry: MetricsRegistry | None = None) -> float:
    """Best-of-N wall-clock seconds for ``fn`` (the timing idiom shared by
    the wall-clock experiment and the overhead guards).

    Every repeat is observed into the ``name`` histogram when given, so
    the min/mean/max spread survives into metrics snapshots; the return
    value is the minimum (the conventional noise-resistant estimate).
    """
    hist = None
    if name is not None:
        hist = (registry or get_metrics()).histogram(name)
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if hist is not None:
            hist.observe(elapsed)
        if elapsed < best:
            best = elapsed
    return best


def format_exec_line(
    jobs: int,
    cache_hits: int,
    pooled: int,
    workers: int,
    sim_seconds: float,
    wall_seconds: float,
    symbolic: int = 0,
) -> str:
    """The ``[exec]`` observability line (one format, two producers).

    Both :meth:`repro.exec.executor.ExecStats.format` and the CLI's
    metrics-driven rendering call this, so the line cannot drift between
    the in-object and the registry views.  The format is pinned by CI
    greps (``cached (100%)``); change it deliberately or not at all.
    ``symbolic`` counts jobs the symbolic tier served; its part appears
    only when nonzero, so runs without that tier render byte-identically
    to before it existed.
    """
    misses = jobs - cache_hits - symbolic
    hit_rate = cache_hits / jobs if jobs else 0.0
    parts = [
        f"{jobs} jobs",
        f"{cache_hits} cached ({100.0 * hit_rate:.0f}%)",
    ]
    if symbolic:
        parts.append(f"{symbolic} symbolic")
    parts += [
        f"{misses} simulated"
        + (f" ({pooled} in pool, workers={workers})" if pooled else ""),
        f"sim {sim_seconds:.2f}s",
        f"wall {wall_seconds:.2f}s",
    ]
    return ", ".join(parts)
