"""Windowed per-level cache telemetry: phase behaviour within one run.

Per-run totals (``ExecStats``, ``CacheStats``) say *how many* misses a
kernel took; they cannot say *when*.  The paper's phenomena are temporal
-- a cold-start burst, a conflict storm in the middle third of ERLE's
sweep, the periodic capacity spills of a tiled nest -- and competitors
like recursive cache-oblivious schedules differ from L1-targeted tiling
only *mid-stream*.  The :class:`Timeline` buckets the reference stream
into fixed windows (in references, not wall time, so two runs of the
same kernel align bucket-for-bucket) and accumulates per-cache-level
``(accesses, misses)`` pairs per window.

Exactness is the design anchor: windows partition the stream, every
recorded slice lands in exactly one window, and nothing is ever dropped
-- so the column sums equal the untimed run's per-level totals
bit-for-bit (a hypothesis property pins this for arbitrary window sizes
and chunk splits).  When a long run would exceed ``capacity`` rows the
timeline **coalesces**: adjacent rows merge pairwise and the window
doubles, preserving the sums while bounding memory -- resolution
degrades gracefully instead of the tail falling off a ring buffer.

Rows are plain lists (picklable), so worker processes ship their
timelines back with the result payload and the parent replays them as
Perfetto **counter tracks** (:func:`emit_counter_tracks`): one
miss-rate-over-time curve per level, rendered alongside the span lanes
of the same trace.
"""

from __future__ import annotations

import time

from .tracer import get_tracer

__all__ = [
    "DEFAULT_WINDOW_REFS",
    "Timeline",
    "emit_counter_tracks",
    "get_timeline_window",
    "set_timeline_window",
]

#: Default window width in L1 references.  Small enough that the quick
#: kernels (48^2 grids, ~10^5-10^6 refs) produce tens of windows, large
#: enough that full-size runs coalesce only a few times.
DEFAULT_WINDOW_REFS = 65536

_window_refs: int = DEFAULT_WINDOW_REFS


def set_timeline_window(refs: int) -> None:
    """Set the process-wide default window (refs per bucket); 0 keeps
    timelines off even under tracing (the CLI's ``--timeline-window 0``)."""
    global _window_refs
    _window_refs = max(0, int(refs))


def get_timeline_window() -> int:
    """The process-wide default window width in refs (0 = disabled)."""
    return _window_refs


class Timeline:
    """Per-window ``(accesses, misses)`` accumulation for ``levels``.

    Rows are ``[start_ref, end_ref, end_ns, [[acc, miss], ...]]`` -- one
    inner pair per cache level, in hierarchy order.  ``record()`` slices
    must be contiguous and must not straddle a window boundary (the
    streaming simulators split their chunks accordingly, reading
    :attr:`window_refs` before every chunk since coalescing may widen
    it mid-run).
    """

    __slots__ = ("levels", "window_refs", "capacity", "_rows")

    def __init__(self, levels: tuple[str, ...], window_refs: int = DEFAULT_WINDOW_REFS,
                 capacity: int = 1024):
        if window_refs <= 0:
            raise ValueError(f"window_refs must be positive, got {window_refs}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.levels = tuple(levels)
        self.window_refs = int(window_refs)
        self.capacity = int(capacity)
        self._rows: list[list] = []

    def record(self, start_ref: int, end_ref: int,
               counts: list[tuple[int, int]], end_ns: int | None = None) -> None:
        """Accumulate one contiguous slice ``[start_ref, end_ref)``.

        ``counts[i]`` is ``(accesses, misses)`` at level ``i`` during the
        slice.  Slices within one window merge into one row.
        """
        if end_ref <= start_ref:
            return
        if end_ns is None:
            end_ns = time.time_ns()
        rows = self._rows
        if rows and start_ref // self.window_refs == rows[-1][0] // self.window_refs:
            last = rows[-1]
            last[1] = end_ref
            last[2] = end_ns
            pairs = last[3]
            for i, (acc, miss) in enumerate(counts):
                pairs[i][0] += acc
                pairs[i][1] += miss
        else:
            rows.append([start_ref, end_ref, end_ns,
                         [[acc, miss] for acc, miss in counts]])
            if len(rows) > self.capacity:
                self._coalesce()

    def _coalesce(self) -> None:
        """Merge adjacent row pairs and double the window -- sums are
        preserved exactly, resolution halves."""
        rows = self._rows
        merged: list[list] = []
        for i in range(0, len(rows), 2):
            if i + 1 < len(rows):
                a, b = rows[i], rows[i + 1]
                pairs = [[pa[0] + pb[0], pa[1] + pb[1]]
                         for pa, pb in zip(a[3], b[3])]
                merged.append([a[0], b[1], b[2], pairs])
            else:
                merged.append(rows[i])
        self._rows = merged
        self.window_refs *= 2

    def rows(self) -> list[list]:
        """The row list (copied; plain lists, picklable across processes)."""
        return [[r[0], r[1], r[2], [list(p) for p in r[3]]] for r in self._rows]

    def totals(self) -> list[tuple[int, int]]:
        """Per-level ``(accesses, misses)`` summed over every window --
        bit-equal to the untimed run's totals by construction."""
        sums = [[0, 0] for _ in self.levels]
        for row in self._rows:
            for i, (acc, miss) in enumerate(row[3]):
                sums[i][0] += acc
                sums[i][1] += miss
        return [(a, m) for a, m in sums]


def emit_counter_tracks(levels: tuple[str, ...], rows: list[list],
                        tracer=None, pid: int | None = None,
                        tid: int | None = None, prefix: str = "timeline") -> int:
    """Replay timeline ``rows`` as counter samples on the active tracer.

    Emits two tracks per level: ``<prefix>.<level>.miss_rate`` (the
    phase curve) and ``<prefix>.<level>.refs`` (accesses + misses per
    window, the denominators).  ``pid``/``tid`` attribute the track to
    the worker that simulated the job (mirrors ``Tracer.add_span``).
    Returns the number of samples emitted.
    """
    if tracer is None:
        tracer = get_tracer()
    if not tracer.enabled or not rows:
        return 0
    emitted = 0
    for row in rows:
        ts_ns = row[2]
        for name, (acc, miss) in zip(levels, row[3]):
            rate = miss / acc if acc else 0.0
            tracer.counter(f"{prefix}.{name}.miss_rate", ts_ns=ts_ns,
                           cat="timeline", pid=pid, tid=tid, miss_rate=rate)
            tracer.counter(f"{prefix}.{name}.refs", ts_ns=ts_ns,
                           cat="timeline", pid=pid, tid=tid,
                           accesses=acc, misses=miss)
            emitted += 2
    return emitted
