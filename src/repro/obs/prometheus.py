"""Prometheus text exposition (format 0.0.4) over a metrics snapshot.

The service's ``/metrics`` endpoint serves JSON for humans and the test
harness; real scrapers speak the Prometheus text format.  This module
maps the registry's three metric kinds onto the standard types with no
new dependencies:

===========  ==================  =========================================
registry     Prometheus type     exposition
===========  ==================  =========================================
Counter      ``counter``         ``name_total value``
Gauge        ``gauge``           ``name value``
Histogram    ``summary``         ``name{quantile="0.5|0.95|0.99"}`` plus
                                 ``name_sum``, ``name_count``, and
                                 ``name_min``/``name_max`` gauges
===========  ==================  =========================================

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): dots and dashes become underscores, so
``service.requests.computed`` scrapes as
``service_requests_computed_total``.  Sanitization can collide two
registry names onto one exposition name; the first (sorted) name wins
and the duplicate is dropped rather than emitted twice, which scrapers
would reject.
"""

from __future__ import annotations

import re

__all__ = ["format_prometheus", "sanitize_metric_name"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def sanitize_metric_name(name: str) -> str:
    """Rewrite a registry name into the Prometheus metric-name grammar."""
    out = _NAME_OK.sub("_", name)
    if not out or not (out[0].isalpha() or out[0] in "_:"):
        out = "_" + out
    return out


def _fmt(value) -> str:
    """Render a sample value: integers stay integral, floats use repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def format_prometheus(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as exposition text.

    Output is deterministic (sorted by exposition name) and ends with a
    trailing newline, as the format requires.
    """
    lines: list[str] = []
    seen: set[str] = set()

    def claim(name: str) -> bool:
        if name in seen:
            return False
        seen.add(name)
        return True

    for raw, value in sorted(snapshot.get("counters", {}).items()):
        name = sanitize_metric_name(raw) + "_total"
        if not claim(name):
            continue
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(value)}")

    for raw, value in sorted(snapshot.get("gauges", {}).items()):
        name = sanitize_metric_name(raw)
        if not claim(name):
            continue
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(value)}")

    for raw, summary in sorted(snapshot.get("histograms", {}).items()):
        name = sanitize_metric_name(raw)
        if not claim(name):
            continue
        lines.append(f"# TYPE {name} summary")
        for quantile, key in _QUANTILES:
            if key in summary:
                lines.append(
                    f'{name}{{quantile="{quantile}"}} {_fmt(summary[key])}')
        lines.append(f"{name}_sum {_fmt(summary.get('total', 0.0))}")
        lines.append(f"{name}_count {_fmt(summary.get('count', 0))}")
        for part in ("min", "max"):
            if part in summary:
                part_name = f"{name}_{part}"
                if claim(part_name):
                    lines.append(f"# TYPE {part_name} gauge")
                    lines.append(f"{part_name} {_fmt(summary[part])}")

    return "\n".join(lines) + "\n" if lines else ""
