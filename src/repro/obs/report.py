"""Trace-file analysis: the ``repro-experiments report`` summary.

Reads a trace produced by ``--trace`` (either format), aggregates spans
by name, and prints the questions a perf investigation starts from:

* **top spans by self-time** -- time inside a span minus time inside its
  direct children, so a sweep that spends everything in its jobs shows
  near-zero self-time and the jobs themselves surface;
* **store behaviour** -- hit rate of the result store across the run;
* **throughput** -- references simulated per second of simulation time,
  and worker utilization (summed job time over wall x workers), plus the
  pool's dispatch behaviour: jobs that ran in workers, steals
  (out-of-order completions, the signature of dynamic load balancing),
  and the queue-depth profile sampled at each completion;
* **latency spread** -- p50/p95/p99 for the recorded histograms, from
  the snapshot's reservoir percentiles;
* **timeline coverage** -- how many counter-track samples the trace
  carries, so a missing phase curve is visible from the summary alone.

Spans without an end timestamp -- a SIGTERM'd service's in-flight
request, a crashed worker -- are **tolerated**: they aggregate with zero
duration and the report appends one warning line naming them, instead of
the pre-PR-10 behaviour of silently skewing self-time or raising.

:func:`format_trace_tree` renders one request's causal tree: every span
and event carrying the requested ``trace_id`` (or every root when no id
is given), indented by parentage, across process and thread boundaries.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.util.tabulate import format_table

__all__ = [
    "SpanAgg",
    "TraceDoc",
    "load_trace",
    "load_trace_doc",
    "aggregate_spans",
    "format_report",
    "format_trace_tree",
]


@dataclass(frozen=True)
class SpanAgg:
    """All spans of one name, rolled up."""

    name: str
    count: int
    total_s: float
    self_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass(frozen=True)
class TraceDoc:
    """One parsed trace file: spans (+events), counter samples, metrics.

    ``spans`` rows are the JSONL span shape regardless of the on-disk
    format; open spans carry ``"open": True`` and no ``dur_ns``.
    ``counters`` rows are the JSONL counter shape (``name``, ``ts_ns``,
    ``pid``, ``tid``, ``values``).
    """

    spans: list = field(default_factory=list)
    counters: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def open_spans(self) -> list[dict]:
        return [s for s in self.spans
                if s.get("type") == "span"
                and (s.get("open") or s.get("dur_ns") is None)]


def _chrome_to_doc(doc: dict) -> TraceDoc:
    spans: list[dict] = []
    counters: list[dict] = []
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "C":
            counters.append(
                {
                    "type": "counter",
                    "name": ev.get("name", "?"),
                    "cat": ev.get("cat", ""),
                    "ts_ns": int(ev.get("ts", 0.0) * 1000),
                    "pid": ev.get("pid"),
                    "tid": ev.get("tid"),
                    "values": dict(ev.get("args") or {}),
                }
            )
            continue
        if ph not in ("X", "B", "i"):
            continue
        args = dict(ev.get("args") or {})
        row = {
            "type": "span" if ph in ("X", "B") else "event",
            "name": ev.get("name", "?"),
            "cat": ev.get("cat", ""),
            "start_ns": int(ev.get("ts", 0.0) * 1000),
            "pid": ev.get("pid"),
            "tid": ev.get("tid"),
            "id": args.pop("id", None),
            "parent": args.pop("parent", None),
            "args": args,
        }
        if ph == "X":
            row["dur_ns"] = int(ev.get("dur", 0.0) * 1000)
        elif ph == "B":
            row["open"] = True
        spans.append(row)
    return TraceDoc(spans=spans, counters=counters,
                    metrics=doc.get("metrics") or {})


def load_trace_doc(path) -> TraceDoc:
    """Parse a JSONL or Chrome trace file into one :class:`TraceDoc`.

    Raises ``ValueError`` on unrecognizable content.
    """
    path = pathlib.Path(path)
    text = path.read_text()
    # A chrome trace is one JSON document; JSONL is one document per line,
    # so whole-text parsing fails on it (unless it has exactly one line --
    # then the traceEvents check below tells them apart).
    doc = None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        pass
    if isinstance(doc, dict) and "traceEvents" in doc:
        return _chrome_to_doc(doc)
    spans: list[dict] = []
    counters: list[dict] = []
    metrics: dict = {}
    for i, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{i + 1}: not JSON lines ({exc})") from None
        kind = row.get("type")
        if kind == "metrics":
            metrics = row.get("metrics") or {}
        elif kind == "counter":
            counters.append(row)
        elif kind in ("span", "event"):
            spans.append(row)
    return TraceDoc(spans=spans, counters=counters, metrics=metrics)


def load_trace(path) -> tuple[list[dict], dict]:
    """(span records, metrics snapshot) -- the pre-PR-10 surface, kept
    for callers that only need spans; completed spans only."""
    doc = load_trace_doc(path)
    spans = [s for s in doc.spans
             if s.get("type") == "span" and s.get("dur_ns") is not None]
    return spans, doc.metrics


def aggregate_spans(spans: list[dict]) -> list[SpanAgg]:
    """Per-name rollups, sorted by self-time descending.

    Spans with a missing/None ``dur_ns`` (open spans from a drained or
    crashed process) contribute a count but zero time -- the caller is
    expected to surface them separately (see :func:`format_report`).
    """
    child_time: dict = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0) + (span.get("dur_ns") or 0)
    totals: dict[str, list[float]] = {}
    for span in spans:
        dur = span.get("dur_ns") or 0
        self_ns = max(0, dur - child_time.get(span.get("id"), 0))
        agg = totals.setdefault(span["name"], [0, 0.0, 0.0])
        agg[0] += 1
        agg[1] += dur / 1e9
        agg[2] += self_ns / 1e9
    rows = [
        SpanAgg(name=name, count=int(c), total_s=t, self_s=s)
        for name, (c, t, s) in totals.items()
    ]
    rows.sort(key=lambda r: (-r.self_s, r.name))
    return rows


def _derived_lines(metrics: dict) -> list[str]:
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    lines = []
    jobs = counters.get("exec.jobs", 0)
    hits = counters.get("exec.store_hits", 0)
    if jobs:
        lines.append(
            f"store hit rate: {hits}/{jobs} ({100.0 * hits / jobs:.0f}%)"
        )
    refs = counters.get("sim.refs", 0)
    sim_s = counters.get("exec.sim_seconds", 0.0)
    if refs and sim_s:
        lines.append(
            f"simulated refs: {refs:,} at {refs / sim_s / 1e6:.2f} M refs/s "
            f"(sim {sim_s:.2f}s)"
        )
    wall_s = counters.get("exec.wall_seconds", 0.0)
    workers = gauges.get("exec.workers", 1) or 1
    if wall_s and sim_s:
        util = sim_s / (wall_s * workers)
        lines.append(
            f"worker utilization: {100.0 * util:.0f}% "
            f"(sim {sim_s:.2f}s / wall {wall_s:.2f}s x {workers} workers)"
        )
    pooled = counters.get("exec.pool_jobs", 0)
    if pooled:
        steals = counters.get("exec.steals", 0)
        depth = (metrics.get("histograms", {}) or {}).get("exec.queue_depth")
        depth_s = ""
        if depth and depth.get("count"):
            depth_s = (
                f", queue depth peak {depth['max']:.0f} "
                f"mean {depth['mean']:.1f}"
            )
        lines.append(
            f"pool dispatch: {pooled} jobs, {steals} steals "
            f"(out-of-order completions){depth_s}"
        )
    evals = counters.get("search.evals", 0)
    if evals:
        memo = counters.get("search.memo_hits", 0)
        lines.append(f"search evaluations: {evals} simulated, {memo} memoized")
    preds = counters.get("model.predictions", 0)
    if preds:
        sims = counters.get("exec.simulated", 0)
        ratio = f" ({preds / sims:.0f}x the simulations)" if sims else ""
        lines.append(f"analytic predictions: {preds}{ratio}")
    for name, hist in sorted((metrics.get("histograms", {}) or {}).items()):
        if not hist.get("count") or "p50" not in hist:
            continue
        lines.append(
            f"{name}: n={hist['count']} "
            f"p50={hist['p50']:.4g} p95={hist['p95']:.4g} p99={hist['p99']:.4g}"
        )
    return lines


def _counter_lines(counter_rows: list[dict]) -> list[str]:
    """One summary line per counter track (samples + last value)."""
    tracks: dict[str, list[dict]] = {}
    for row in counter_rows:
        tracks.setdefault(row.get("name", "?"), []).append(row)
    lines = []
    for name in sorted(tracks):
        rows = sorted(tracks[name], key=lambda r: r.get("ts_ns", 0))
        last = rows[-1].get("values") or {}
        last_s = " ".join(f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                          for k, v in sorted(last.items()))
        lines.append(f"counter {name}: {len(rows)} samples, last {last_s}")
    return lines


def format_report(path, top: int = 12) -> str:
    """The human summary of one trace file."""
    doc = load_trace_doc(path)
    spans = [s for s in doc.spans if s.get("type") == "span"]
    if not spans and not doc.counters:
        return f"{path}: trace contains no spans"
    aggs = aggregate_spans(spans)
    table = format_table(
        ["span", "count", "total s", "self s", "mean s"],
        [[a.name, a.count, a.total_s, a.self_s, a.mean_s] for a in aggs[:top]],
        floatfmt=".4f",
        title=f"Top spans by self-time ({len(spans)} spans in {path})",
    )
    lines = _derived_lines(doc.metrics)
    lines.extend(_counter_lines(doc.counters))
    open_spans = [s for s in spans if s.get("dur_ns") is None]
    if open_spans:
        names = sorted({s.get("name", "?") for s in open_spans})
        shown = ", ".join(names[:6]) + (", ..." if len(names) > 6 else "")
        lines.append(
            f"warning: {len(open_spans)} open span(s) never completed "
            f"({shown}) -- counted with zero duration"
        )
    if lines:
        return table + "\n" + "\n".join(f"[obs] {line}" for line in lines)
    return table


def _span_line(span: dict) -> str:
    dur = span.get("dur_ns")
    if span.get("type") == "event":
        timing = "event"
    elif dur is None:
        timing = "OPEN"
    else:
        timing = f"{dur / 1e9:.4f}s"
    where = f"pid={span.get('pid')} tid={span.get('tid')}"
    args = span.get("args") or {}
    hide = {"trace_id"}
    arg_s = " ".join(f"{k}={args[k]}" for k in sorted(args) if k not in hide)
    return f"{span.get('name', '?')} [{timing}] ({where})" + (
        f" {arg_s}" if arg_s else "")


def format_trace_tree(path, trace_id: str | None = None) -> str:
    """Render the causal tree of one request (or the whole trace).

    With ``trace_id``, only spans/events whose args carry that id are
    shown (plus any ancestors needed to root them); this is how one
    ``serve`` request is followed across the event loop, the queue, the
    pipeline thread, and the simulator -- the tree ignores pid/tid
    boundaries and follows ``parent`` links only.
    """
    doc = load_trace_doc(path)
    spans = [s for s in doc.spans if s.get("id") is not None]
    if trace_id is not None:
        keep = {s["id"] for s in spans
                if (s.get("args") or {}).get("trace_id") == trace_id}
        if not keep:
            return f"{path}: no spans carry trace_id={trace_id}"
        by_id = {s["id"]: s for s in spans}
        # pull in ancestors so the matched spans still root properly
        frontier = list(keep)
        while frontier:
            parent = by_id.get(frontier.pop(), {}).get("parent")
            if parent is not None and parent in by_id and parent not in keep:
                keep.add(parent)
                frontier.append(parent)
        spans = [s for s in spans if s["id"] in keep]
    if not spans:
        return f"{path}: trace contains no spans"
    ids = {s["id"] for s in spans}
    children: dict = {}
    roots = []
    for s in spans:
        parent = s.get("parent")
        if parent in ids:
            children.setdefault(parent, []).append(s)
        else:
            roots.append(s)
    order = (lambda s: (s.get("start_ns") or 0, s.get("id") or 0))
    lines = []
    if trace_id is not None:
        lines.append(f"trace {trace_id} ({len(spans)} spans in {path})")

    def walk(span: dict, depth: int) -> None:
        lines.append("  " * depth + _span_line(span))
        for child in sorted(children.get(span["id"], []), key=order):
            walk(child, depth + 1)

    for root in sorted(roots, key=order):
        walk(root, 0 if trace_id is None else 1)
    return "\n".join(lines)
