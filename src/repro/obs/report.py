"""Trace-file analysis: the ``repro-experiments report`` summary.

Reads a trace produced by ``--trace`` (either format), aggregates spans
by name, and prints the questions a perf investigation starts from:

* **top spans by self-time** -- time inside a span minus time inside its
  direct children, so a sweep that spends everything in its jobs shows
  near-zero self-time and the jobs themselves surface;
* **store behaviour** -- hit rate of the result store across the run;
* **throughput** -- references simulated per second of simulation time,
  and worker utilization (summed job time over wall x workers), plus the
  pool's dispatch behaviour: jobs that ran in workers, steals
  (out-of-order completions, the signature of dynamic load balancing),
  and the queue-depth profile sampled at each completion.

The derived lines prefer the metrics snapshot embedded in the trace
(written by the CLI at exit); spans alone still produce the table.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.util.tabulate import format_table

__all__ = ["SpanAgg", "load_trace", "aggregate_spans", "format_report"]


@dataclass(frozen=True)
class SpanAgg:
    """All spans of one name, rolled up."""

    name: str
    count: int
    total_s: float
    self_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def load_trace(path) -> tuple[list[dict], dict]:
    """(span records, metrics snapshot) from a JSONL or Chrome trace file.

    Chrome complete events are mapped back to the JSONL span shape
    (``start_ns``/``dur_ns``/``parent``), so the aggregation below is
    format-agnostic.  Raises ``ValueError`` on unrecognizable content.
    """
    path = pathlib.Path(path)
    text = path.read_text()
    # A chrome trace is one JSON document; JSONL is one document per line,
    # so whole-text parsing fails on it (unless it has exactly one line --
    # then the traceEvents check below tells them apart).
    doc = None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        pass
    if isinstance(doc, dict) and "traceEvents" in doc:
        events = doc["traceEvents"]
        spans = []
        for ev in events:
            if ev.get("ph") != "X":
                continue
            args = dict(ev.get("args") or {})
            spans.append(
                {
                    "type": "span",
                    "name": ev.get("name", "?"),
                    "cat": ev.get("cat", ""),
                    "start_ns": int(ev.get("ts", 0.0) * 1000),
                    "dur_ns": int(ev.get("dur", 0.0) * 1000),
                    "pid": ev.get("pid"),
                    "tid": ev.get("tid"),
                    "id": args.pop("id", None),
                    "parent": args.pop("parent", None),
                    "args": args,
                }
            )
        return spans, doc.get("metrics") or {}
    spans, metrics = [], {}
    for i, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{i + 1}: not JSON lines ({exc})") from None
        if row.get("type") == "metrics":
            metrics = row.get("metrics") or {}
        elif row.get("type") == "span":
            spans.append(row)
    return spans, metrics


def aggregate_spans(spans: list[dict]) -> list[SpanAgg]:
    """Per-name rollups, sorted by self-time descending."""
    child_time: dict = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0) + (span.get("dur_ns") or 0)
    totals: dict[str, list[float]] = {}
    for span in spans:
        dur = span.get("dur_ns") or 0
        self_ns = max(0, dur - child_time.get(span.get("id"), 0))
        agg = totals.setdefault(span["name"], [0, 0.0, 0.0])
        agg[0] += 1
        agg[1] += dur / 1e9
        agg[2] += self_ns / 1e9
    rows = [
        SpanAgg(name=name, count=int(c), total_s=t, self_s=s)
        for name, (c, t, s) in totals.items()
    ]
    rows.sort(key=lambda r: (-r.self_s, r.name))
    return rows


def _derived_lines(metrics: dict) -> list[str]:
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    lines = []
    jobs = counters.get("exec.jobs", 0)
    hits = counters.get("exec.store_hits", 0)
    if jobs:
        lines.append(
            f"store hit rate: {hits}/{jobs} ({100.0 * hits / jobs:.0f}%)"
        )
    refs = counters.get("sim.refs", 0)
    sim_s = counters.get("exec.sim_seconds", 0.0)
    if refs and sim_s:
        lines.append(
            f"simulated refs: {refs:,} at {refs / sim_s / 1e6:.2f} M refs/s "
            f"(sim {sim_s:.2f}s)"
        )
    wall_s = counters.get("exec.wall_seconds", 0.0)
    workers = gauges.get("exec.workers", 1) or 1
    if wall_s and sim_s:
        util = sim_s / (wall_s * workers)
        lines.append(
            f"worker utilization: {100.0 * util:.0f}% "
            f"(sim {sim_s:.2f}s / wall {wall_s:.2f}s x {workers} workers)"
        )
    pooled = counters.get("exec.pool_jobs", 0)
    if pooled:
        steals = counters.get("exec.steals", 0)
        depth = (metrics.get("histograms", {}) or {}).get("exec.queue_depth")
        depth_s = ""
        if depth and depth.get("count"):
            depth_s = (
                f", queue depth peak {depth['max']:.0f} "
                f"mean {depth['mean']:.1f}"
            )
        lines.append(
            f"pool dispatch: {pooled} jobs, {steals} steals "
            f"(out-of-order completions){depth_s}"
        )
    evals = counters.get("search.evals", 0)
    if evals:
        memo = counters.get("search.memo_hits", 0)
        lines.append(f"search evaluations: {evals} simulated, {memo} memoized")
    preds = counters.get("model.predictions", 0)
    if preds:
        sims = counters.get("exec.simulated", 0)
        ratio = f" ({preds / sims:.0f}x the simulations)" if sims else ""
        lines.append(f"analytic predictions: {preds}{ratio}")
    return lines


def format_report(path, top: int = 12) -> str:
    """The human summary of one trace file."""
    spans, metrics = load_trace(path)
    if not spans:
        return f"{path}: trace contains no spans"
    aggs = aggregate_spans(spans)
    table = format_table(
        ["span", "count", "total s", "self s", "mean s"],
        [[a.name, a.count, a.total_s, a.self_s, a.mean_s] for a in aggs[:top]],
        floatfmt=".4f",
        title=f"Top spans by self-time ({len(spans)} spans in {path})",
    )
    lines = _derived_lines(metrics)
    if lines:
        return table + "\n" + "\n".join(f"[obs] {line}" for line in lines)
    return table
