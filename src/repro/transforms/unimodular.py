"""Unimodular loop transformations: reversal, interchange, skewing.

With permutation (:mod:`repro.transforms.permute`) these span the
unimodular framework of Wolf & Lam [29, 30], which the paper cites as the
class of transformations that "do not need to target multi-level caches".
They are provided for completeness and for composing tiling of skewed
stencils.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.affine import AffineExpr, var
from repro.ir.loops import Loop, LoopNest
from repro.transforms.permute import permute_nest

__all__ = ["reverse_loop", "interchange", "skew"]


def reverse_loop(nest: LoopNest, loop_var: str) -> LoopNest:
    """Reverse the iteration direction of one loop.

    Only rectangular loops (constant bounds) can be reversed, and no other
    loop's bounds may depend on the reversed variable's direction (bounds
    depending on its *value* are fine: the value set is unchanged).
    """
    loops = []
    found = False
    for lp in nest.loops:
        if lp.var == loop_var:
            loops.append(lp.reversed())
            found = True
        else:
            loops.append(lp)
    if not found:
        raise TransformError(f"no loop named {loop_var!r} in nest")
    return LoopNest(tuple(loops), nest.body, nest.label)


def interchange(nest: LoopNest, var_a: str, var_b: str) -> LoopNest:
    """Swap two loops (a special case of permutation)."""
    if var_a == var_b:
        return nest
    order = list(nest.loop_vars)
    try:
        ia, ib = order.index(var_a), order.index(var_b)
    except ValueError as exc:
        raise TransformError(f"unknown loop in interchange: {exc}") from None
    order[ia], order[ib] = order[ib], order[ia]
    return permute_nest(nest, order)


def skew(nest: LoopNest, outer_var: str, inner_var: str, factor: int) -> LoopNest:
    """Skew ``inner_var`` by ``factor * outer_var``.

    The new inner index runs over ``inner + factor*outer``; body references
    substitute ``inner -> inner - factor*outer``.  Skewing preserves the
    iteration set (unimodular with determinant 1) and makes wavefront
    permutations legal for stencils.
    """
    vars_ = nest.loop_vars
    if outer_var not in vars_ or inner_var not in vars_:
        raise TransformError(f"unknown loops in skew: {outer_var}, {inner_var}")
    if vars_.index(outer_var) >= vars_.index(inner_var):
        raise TransformError(
            f"skew requires {outer_var!r} to enclose {inner_var!r}"
        )
    if factor == 0:
        return nest

    loops = []
    for lp in nest.loops:
        if lp.var != inner_var:
            loops.append(lp)
            continue
        if lp.extra_uppers:
            raise TransformError("cannot skew a loop with min-style bounds")
        shift = var(outer_var) * factor
        loops.append(
            Loop(lp.var, lp.lower + shift, lp.upper + shift, lp.step)
        )
    replacement: AffineExpr = var(inner_var) - var(outer_var) * factor
    body = tuple(st.substitute(inner_var, replacement) for st in nest.body)
    return LoopNest(tuple(loops), body, nest.label)
