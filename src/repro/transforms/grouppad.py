"""GROUPPAD: padding that preserves group-temporal reuse (Section 3.2).

GROUPPAD inserts larger pads than PAD so the layout both avoids severe
conflicts and keeps group-reuse arcs exploitable on the cache: it
"considers for each variable a limited number of positions relative to
other variables, counts for each position the number of references
successfully exploiting group reuse at the L1 cache, and selects the
position maximizing this value."

The multi-level recursion (Section 3.2.2): after placing variables for the
L1 cache, later phases re-run the search for each lower level using *only
pads that are multiples of the previous level's cache size* -- adding
``m * S1`` to a base address changes nothing modulo S1, so the L1 layout
(conflicts and exploited arcs alike) is preserved exactly while group
reuse is re-optimized for the larger cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.groups import reuse_arcs
from repro.cache.config import HierarchyConfig
from repro.errors import TransformError
from repro.ir.program import Program
from repro.ir.ranges import canonical_env
from repro.layout.layout import DataLayout
from repro.transforms.pad import _has_conflict, _pair_deltas

__all__ = ["grouppad", "grouppad_recursive"]


@dataclass(frozen=True)
class _NestInfo:
    """Layout-independent geometry of one nest at its canonical iteration."""

    dots: tuple[tuple[str, int], ...]  # (array, offset-within-array)
    arcs: tuple[tuple[str, int, int], ...]  # (array, trailing offset, span)


def _nest_infos(program: Program) -> list[_NestInfo]:
    infos = []
    for nest in program.nests:
        env = canonical_env(nest)
        dots: list[tuple[str, int]] = []
        seen: set[tuple] = set()
        rel_of: dict[tuple, int] = {}
        for ref in nest.refs:
            key = (ref.array, ref.subscripts)
            if key in seen:
                continue
            seen.add(key)
            rel = int(ref.offset_expr(program.decl(ref.array)).evaluate(env))
            rel_of[key] = rel
            dots.append((ref.array, rel))
        arcs = []
        for arc in reuse_arcs(program, nest):
            trail_rel = rel_of[(arc.array, arc.trailing.subscripts)]
            arcs.append((arc.array, trail_rel, arc.distance_bytes))
        infos.append(_NestInfo(dots=tuple(dots), arcs=tuple(arcs)))
    return infos


def _exploited_count(
    infos: list[_NestInfo],
    bases: dict[str, int],
    subset: set[str],
    cache_size: int,
    line_size: int,
) -> int:
    """Exploited group-*temporal* arcs over all nests (``subset`` arrays).

    Mirrors :meth:`repro.layout.diagram.CacheDiagram._arc_exploited` for a
    foreign dot under the arc or within one line of its endpoints.  Arcs
    shorter than a cache line are group-*spatial* reuse -- exploited under
    any layout -- so they are excluded from the objective; counting them
    would let cheap same-line arcs outvote the column arcs GROUPPAD
    exists to preserve.
    """
    count = 0
    for info in infos:
        positions = [
            ((bases[arr] + rel) % cache_size, arr, rel)
            for arr, rel in info.dots
            if arr in subset
        ]
        for arr, trail_rel, span in info.arcs:
            if arr not in subset or span < line_size:
                continue
            if span + line_size > cache_size:
                continue
            trail_pos = (bases[arr] + trail_rel) % cache_size
            ok = True
            for pos, parr, prel in positions:
                if parr == arr and prel in (trail_rel, trail_rel + span):
                    continue  # the arc's own endpoints
                rel = (pos - trail_pos) % cache_size
                if rel < span + line_size or rel > cache_size - line_size:
                    ok = False
                    break
            if ok:
                count += 1
    return count


def grouppad(
    program: Program,
    layout: DataLayout,
    cache_size: int,
    line_size: int,
    granularity: int | None = None,
    avoid_conflicts: bool = True,
    refine_passes: int = 1,
) -> DataLayout:
    """Apply GROUPPAD for one cache level.

    Each variable tries pads of ``0, g, 2g, ...`` up to one full cache
    (``g`` defaults to the line size); the pad maximizing the exploited
    group-reuse count among already-placed variables wins, with severe
    conflicts disqualifying a position (unless no conflict-free position
    exists) and smaller pads breaking ties.

    After the greedy placement, ``refine_passes`` rounds of coordinate
    descent re-choose each variable's pad with *all* other variables
    placed -- the greedy order can trap early variables in positions that
    block later arcs, and one refinement pass recovers most of that.
    """
    if granularity is None:
        granularity = line_size
    if granularity <= 0 or cache_size % granularity != 0:
        raise TransformError(
            f"granularity {granularity} must divide cache size {cache_size}"
        )
    infos = _nest_infos(program)
    deltas = _pair_deltas(program)
    all_names = set(layout.order)

    def best_pad_for(
        current: DataLayout, name: str, others: set[str], base_pad: int
    ) -> int:
        best_pad = base_pad
        best_key: tuple | None = None
        for k in range(cache_size // granularity):
            candidate = current.with_pad(name, base_pad + k * granularity)
            bases = candidate.bases()
            conflict = avoid_conflicts and _has_conflict(
                bases, name, sorted(others), deltas, [cache_size], line_size
            )
            score = _exploited_count(
                infos, bases, others | {name}, cache_size, line_size
            )
            key = (0 if conflict else 1, score, -k)
            if best_key is None or key > best_key:
                best_key = key
                best_pad = base_pad + k * granularity
        return best_pad

    out = layout
    placed: list[str] = []
    for name in layout.order:
        if placed:
            base_pad = out.pads[out.index_of(name)]
            out = out.with_pad(
                name, best_pad_for(out, name, set(placed), base_pad)
            )
        placed.append(name)

    for _ in range(max(0, refine_passes)):
        changed = False
        for name in layout.order[1:]:
            idx = out.index_of(name)
            current_pad = out.pads[idx]
            base_pad = current_pad % granularity  # keep residue, search ring
            new_pad = best_pad_for(out, name, all_names - {name}, base_pad)
            if new_pad != current_pad:
                out = out.with_pad(name, new_pad)
                changed = True
        if not changed:
            break
    return out


def grouppad_recursive(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
) -> DataLayout:
    """Multi-level GROUPPAD (Section 3.2.2).

    Phase 1 runs :func:`grouppad` for the L1 cache; each later phase
    re-optimizes group reuse for the next cache level using pads that are
    multiples of the previous level's size, preserving all earlier layouts.
    """
    levels = hierarchy.levels
    out = grouppad(program, layout, levels[0].size, levels[0].line_size)
    infos = _nest_infos(program)
    for prev, cfg in zip(levels, levels[1:]):
        step = prev.size
        placed: list[str] = []
        for name in out.order:
            if placed:
                base_pad = out.pads[out.index_of(name)]
                best_pad = base_pad
                best_score = -1
                for m in range(cfg.size // step):
                    candidate = out.with_pad(name, base_pad + m * step)
                    score = _exploited_count(
                        infos, candidate.bases(), set(placed) | {name},
                        cfg.size, cfg.line_size,
                    )
                    if score > best_score:
                        best_score = score
                        best_pad = base_pad + m * step
                out = out.with_pad(name, best_pad)
            placed.append(name)
    return out
