"""Loop unrolling / unroll-and-jam.

The paper's Figure 13 footnote: "if we unroll the loop by hand and apply
scalar replacement, we achieve 60 MFLOPS" (vs ~38 tiled) -- register-level
work the cache model cannot see until the replicated references are
deduplicated.  :func:`unroll` replicates the body ``factor`` times with
the loop variable shifted, and composing it with
:func:`repro.transforms.contraction.scalar_replace` reproduces the
footnote's effect in the reference stream (fewer references per flop).
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.program import Program  # noqa: F401  (signature documentation)

__all__ = ["unroll"]


def unroll(nest: LoopNest, loop_var: str, factor: int) -> LoopNest:
    """Unroll one unit-step loop by ``factor``.

    The loop's trip count must be a multiple of ``factor`` (remainder
    loops would make the nest imperfect, which the IR does not model);
    bounds must be constant.  Body statements are replicated in unroll
    order -- iteration ``v`` runs copies for ``v, v+1, ..., v+factor-1``
    back to back, exactly like hand-unrolled source.
    """
    if factor <= 0:
        raise TransformError(f"unroll factor must be positive, got {factor}")
    if factor == 1:
        return nest
    loops = []
    target = None
    for lp in nest.loops:
        if lp.var == loop_var:
            target = lp
            if not lp.is_rectangular or lp.step != 1:
                raise TransformError(
                    f"unroll requires a rectangular unit-step loop, "
                    f"got {lp.var!r}"
                )
            if lp.extra_uppers or lp.extra_lowers:
                raise TransformError(
                    f"cannot unroll loop {lp.var!r} with min/max bounds"
                )
            trip = lp.trip_count()
            if trip % factor != 0:
                raise TransformError(
                    f"trip count {trip} of loop {lp.var!r} is not a "
                    f"multiple of the unroll factor {factor}"
                )
            loops.append(Loop(lp.var, lp.lower, lp.upper, step=factor))
        else:
            loops.append(lp)
    if target is None:
        raise TransformError(f"no loop named {loop_var!r} in nest")

    from repro.ir.affine import var as _var

    body: list[Statement] = []
    for c in range(factor):
        for st in nest.body:
            body.append(st.substitute(loop_var, _var(loop_var) + c))
    return LoopNest(tuple(loops), tuple(body), nest.label)
