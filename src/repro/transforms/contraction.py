"""Scalar replacement and array contraction.

Two register/storage optimizations the paper leans on:

* **Scalar replacement** -- the paper's Figure 13 footnote measures that
  unrolling plus scalar replacement lifts their matmul from ~38 to ~60
  MFLOPS, and Section 4 observes that after fusion "the second [identical
  reference] will access the L1 cache or a register".
  :func:`scalar_replace` models the register half: within one statement,
  and optionally across a whole iteration's statements, repeated identical
  references after the first are removed from the reference stream (they
  would be register hits, invisible to the cache).

* **Array contraction** -- cited as a goal of loop fusion [9]: when a
  fused nest both writes and reads an array only at the *same* iteration,
  the array can shrink to a scalar.  :func:`contract_array` performs the
  legality check and rewrites the program with a one-element array, which
  shrinks the data footprint (and the layout) accordingly.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.arrays import ArrayDecl
from repro.ir.loops import LoopNest, Statement
from repro.ir.program import Program
from repro.ir.refs import ArrayRef

__all__ = ["scalar_replace", "contract_array", "contractible_arrays"]


def scalar_replace(
    nest: LoopNest,
    across_statements: bool = True,
    sink_stores: bool = False,
) -> LoopNest:
    """Drop repeated identical references within an iteration.

    The first occurrence of each (array, subscripts) pair stays in the
    trace; later occurrences are register hits and disappear.  With
    ``across_statements=False`` only repetitions inside a single statement
    are removed.  Stores are kept by default; ``sink_stores=True``
    additionally keeps only the *last* store to each location (the value
    lives in a register between, as after unroll-and-jam of a reduction).
    """
    seen: set[tuple] = set()
    new_body: list[Statement] = []
    for st in nest.body:
        if not across_statements:
            seen = set()
        kept: list[ArrayRef] = []
        for ref in st.refs:
            key = (ref.array, ref.subscripts, ref.is_write)
            if ref.is_write:
                kept.append(ref)
                # A store makes the value register-resident for later reads.
                seen.add((ref.array, ref.subscripts, False))
                continue
            if key in seen:
                continue
            seen.add(key)
            kept.append(ref)
        if kept:
            new_body.append(Statement(tuple(kept), st.flops, st.label))
    if not new_body:
        raise TransformError("scalar replacement removed every reference")

    if sink_stores:
        # Keep only the final store to each location, scanning backwards.
        final: set[tuple] = set()
        sunk: list[Statement] = []
        for st in reversed(new_body):
            kept = []
            for ref in reversed(st.refs):
                if ref.is_write:
                    key = (ref.array, ref.subscripts)
                    if key in final:
                        continue
                    final.add(key)
                kept.append(ref)
            if kept:
                sunk.append(Statement(tuple(reversed(kept)), st.flops, st.label))
        new_body = list(reversed(sunk))
        if not new_body:
            raise TransformError("scalar replacement removed every reference")
    return LoopNest(nest.loops, tuple(new_body), nest.label)


def contractible_arrays(program: Program) -> tuple[str, ...]:
    """Arrays that are only ever accessed at one subscript pattern per
    nest, written before read (or never read), and not live across nests.

    Conservative: an array qualifies when (a) every nest that touches it
    first writes it and only then reads the *same* subscripts, and (b) no
    nest reads it without writing it first (no inter-nest liveness).
    """
    names = []
    for decl in program.arrays:
        ok = True
        touched = False
        for nest in program.nests:
            refs = [r for r in nest.refs if r.array == decl.name]
            if not refs:
                continue
            touched = True
            written: set[tuple] = set()
            for ref in refs:
                if ref.is_write:
                    written.add(ref.subscripts)
                elif ref.subscripts not in written:
                    ok = False  # read before any same-iteration write
                    break
            if not ok:
                break
        if ok and touched:
            names.append(decl.name)
    return tuple(names)


def contract_array(program: Program, name: str, check: str = "strict") -> Program:
    """Contract ``name`` to a single element (a register-like temporary).

    Every reference to the array is rewritten to subscript (1, 1, ...).
    ``check="strict"`` requires the array to be in
    :func:`contractible_arrays`; ``check="none"`` contracts regardless
    (useful for what-if footprint studies).
    """
    if check not in ("strict", "none"):
        raise TransformError(f"unknown check mode {check!r}")
    decl = program.decl(name)
    if check == "strict" and name not in contractible_arrays(program):
        raise TransformError(
            f"array {name!r} is not contractible: it is read before being "
            f"written in some nest (value is live across iterations)"
        )
    new_decl = ArrayDecl(name, (1,) * decl.rank, decl.element_size)
    arrays = [new_decl if a.name == name else a for a in program.arrays]

    def rewrite(ref: ArrayRef) -> ArrayRef:
        if ref.array != name:
            return ref
        from repro.ir.affine import const

        return ArrayRef(name, tuple(const(1) for _ in ref.subscripts), ref.is_write)

    nests = []
    for nest in program.nests:
        body = tuple(
            Statement(tuple(rewrite(r) for r in st.refs), st.flops, st.label)
            for st in nest.body
        )
        nests.append(LoopNest(nest.loops, body, nest.label))
    return Program(program.name, tuple(arrays), tuple(nests))
