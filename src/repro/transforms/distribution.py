"""Loop distribution (fission): the inverse of fusion.

The paper cites distribution alongside fusion as a locality tool [18]:
splitting a nest with many statements into several nests shrinks each
loop's working set, which can recover group reuse on a small L1 cache --
precisely the reverse of the Figure 7 tradeoff.  Distribution here splits
a perfect nest's statement list into consecutive groups, each becoming its
own nest with the same loop headers.

Legality mirrors fusion's: distributing statements S1 | S2 is safe when no
data flows *backward* (S2's instance at iteration I writing something S1
reads at a later iteration), since distribution runs all of S1's instances
before any of S2's.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TransformError
from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.transforms.fusion import fusion_dependence_ok

__all__ = ["distribute_nest", "can_distribute"]


def _split_nest(nest: LoopNest, groups: Sequence[Sequence[int]]) -> list[LoopNest]:
    flat = [i for g in groups for i in g]
    if sorted(flat) != list(range(len(nest.body))):
        raise TransformError(
            f"groups {groups} must partition statements 0..{len(nest.body) - 1} in order"
        )
    if flat != sorted(flat):
        raise TransformError("distribution may not reorder statements")
    out = []
    for gi, group in enumerate(groups):
        body = tuple(nest.body[i] for i in group)
        out.append(LoopNest(nest.loops, body, f"{nest.label}/{gi}"))
    return out


def can_distribute(
    program: Program, nest: LoopNest, groups: Sequence[Sequence[int]]
) -> bool:
    """Is the split legal?  Checks every adjacent pair of resulting nests
    with the same conservative dependence test fusion uses (distribution
    of nests A|B is legal iff fusing them back would be)."""
    try:
        parts = _split_nest(nest, groups)
    except TransformError:
        return False
    for a, b in zip(parts, parts[1:]):
        if not fusion_dependence_ok(program, a, b):
            return False
    return True


def distribute_nest(
    program: Program,
    nest_index: int,
    groups: Sequence[Sequence[int]] | None = None,
    check: str = "strict",
) -> Program:
    """Split ``nests[nest_index]`` into one nest per statement group.

    ``groups`` lists statement indices per resulting nest, in order
    (default: one nest per statement -- maximal distribution).
    ``check="strict"`` verifies legality; ``check="none"`` splits anyway.
    """
    if check not in ("strict", "none"):
        raise TransformError(f"unknown check mode {check!r}")
    nest = program.nests[nest_index]
    if groups is None:
        groups = [[i] for i in range(len(nest.body))]
    parts = _split_nest(nest, groups)
    if check == "strict":
        for a, b in zip(parts, parts[1:]):
            if not fusion_dependence_ok(program, a, b):
                raise TransformError(
                    f"distributing {nest.label!r} at group boundary "
                    f"{a.label!r}|{b.label!r} would reverse a dependence; "
                    f"pass check='none' to split anyway"
                )
    nests = list(program.nests)
    nests[nest_index : nest_index + 1] = parts
    return program.with_nests(nests)
