"""Array transpose: the data-layout transformation of Figure 1.

Transposing an array permutes its dimensions and rewrites every reference
to it, so a column-traversing reference becomes row-traversing.  As the
paper notes (Section 2.2), this "benefits multiple levels of cache
simultaneously" -- no cache parameter appears below.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TransformError
from repro.ir.arrays import ArrayDecl
from repro.ir.loops import LoopNest, Statement
from repro.ir.program import Program
from repro.ir.refs import ArrayRef

__all__ = ["transpose_array"]


def transpose_array(
    program: Program, name: str, perm: Sequence[int] | None = None
) -> Program:
    """Transpose array ``name`` by dimension permutation ``perm``.

    ``perm[k]`` names the old dimension that becomes new dimension ``k``
    (default: reverse all dimensions, the 2-D transpose).  Every reference
    to the array in every nest is rewritten consistently, so program
    semantics are preserved while the memory layout changes.
    """
    decl = program.decl(name)
    if perm is None:
        perm = tuple(reversed(range(decl.rank)))
    perm = tuple(perm)
    if sorted(perm) != list(range(decl.rank)):
        raise TransformError(
            f"perm {perm} is not a permutation of 0..{decl.rank - 1}"
        )

    new_decl = ArrayDecl(
        name, tuple(decl.shape[p] for p in perm), decl.element_size
    )
    arrays = [new_decl if a.name == name else a for a in program.arrays]

    def rewrite_ref(ref: ArrayRef) -> ArrayRef:
        if ref.array != name:
            return ref
        return ArrayRef(
            name, tuple(ref.subscripts[p] for p in perm), ref.is_write
        )

    nests = []
    for nest in program.nests:
        body = tuple(
            Statement(tuple(rewrite_ref(r) for r in st.refs), st.flops, st.label)
            for st in nest.body
        )
        nests.append(LoopNest(nest.loops, body, nest.label))
    return Program(program.name, tuple(arrays), tuple(nests))
