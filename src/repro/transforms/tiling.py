"""Strip-mining and tiling (Section 5, Figure 8).

Tiling = strip-mine the chosen loops, then permute the strip ("tile
controlling") loops outward.  Strip-mining introduces the IR's min-style
upper bounds (``do I = II, min(II + H - 1, N)``), so arbitrary tile sizes
work without requiring the tile to divide the trip count.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TransformError
from repro.ir.affine import var
from repro.ir.loops import Loop, LoopNest
from repro.transforms.permute import permute_nest

__all__ = ["strip_mine", "tile_nest"]


def strip_mine(
    nest: LoopNest,
    loop_var: str,
    tile_size: int,
    outer_name: str | None = None,
) -> LoopNest:
    """Split one unit-step loop into a tile loop and an element loop.

    ``do v = lo, hi`` becomes ``do vv = lo, hi, T`` / ``do v = vv,
    min(vv+T-1, hi)``, with ``vv`` placed immediately outside ``v`` (use
    :func:`permute_nest` afterwards to hoist it).  The body is untouched.
    """
    if tile_size <= 0:
        raise TransformError(f"tile size must be positive, got {tile_size}")
    outer_name = outer_name or (loop_var + loop_var)
    if outer_name in nest.loop_vars:
        raise TransformError(f"strip-mine name {outer_name!r} already in use")

    loops: list[Loop] = []
    found = False
    for lp in nest.loops:
        if lp.var != loop_var:
            loops.append(lp)
            continue
        found = True
        if lp.step != 1:
            raise TransformError(
                f"strip-mining requires unit step, loop {loop_var} has {lp.step}"
            )
        tile_loop = Loop(
            outer_name, lp.lower, lp.upper, step=tile_size,
            extra_uppers=lp.extra_uppers,
        )
        elem_loop = Loop(
            loop_var,
            var(outer_name),
            var(outer_name) + (tile_size - 1),
            step=1,
            extra_uppers=lp.uppers,
        )
        loops.extend([tile_loop, elem_loop])
    if not found:
        raise TransformError(f"no loop named {loop_var!r} in nest")
    return LoopNest(tuple(loops), nest.body, nest.label)


def tile_nest(
    nest: LoopNest,
    tiles: Sequence[tuple[str, int]],
    order: Sequence[str] | None = None,
    names: dict[str, str] | None = None,
) -> LoopNest:
    """Tile several loops and arrange the resulting nest.

    ``tiles`` lists (loop_var, tile_size) pairs; each loop is strip-mined
    (tile loop named via ``names`` or by doubling the variable).  ``order``
    is the final loop order over both tile and element variables; when
    omitted, all tile loops are hoisted outermost in ``tiles`` order,
    followed by the remaining loops in their original order -- which for
    matrix multiply with ``tiles=[("k", W), ("i", H)]`` reproduces
    Figure 8's ``KK, II, J, K, I``.
    """
    names = names or {}
    out = nest
    tile_vars: list[str] = []
    for lv, size in tiles:
        outer = names.get(lv, lv + lv)
        out = strip_mine(out, lv, size, outer)
        tile_vars.append(outer)
    if order is None:
        rest = [v for v in out.loop_vars if v not in tile_vars]
        order = tile_vars + rest
    return permute_nest(out, order)
