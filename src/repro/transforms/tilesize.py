"""Tile-size selection avoiding self-interference (Section 5).

A W x H tile of a column-major array places its W column chunks at cache
positions ``k * column_bytes mod C``; the tile has no self-interference
exactly when every circular gap between those positions is at least the
chunk size ``H * element_size``.  :func:`max_conflict_free_height` computes
the largest such H for a given W -- the Euclidean-remainder structure of
the positions is what the euc/eucPad algorithms of Rivera & Tseng (CC '99)
exploit; searching W directly gives the same non-conflicting shapes.

The paper's tiling lemma falls out of the same arithmetic: positions that
are pairwise >= H*e apart modulo S1 are pairwise >= H*e apart modulo any
multiple of S1, so "tiles with no L1 self-interference conflict misses
will also have no L2 conflicts" (tested property).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransformError

__all__ = ["TileShape", "max_conflict_free_height", "select_tile"]


@dataclass(frozen=True)
class TileShape:
    """A W (columns) x H (rows) tile."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise TransformError(f"degenerate tile {self.width}x{self.height}")

    @property
    def elements(self) -> int:
        return self.width * self.height

    def footprint_bytes(self, element_size: int) -> int:
        return self.elements * element_size


def max_conflict_free_height(
    column_bytes: int,
    cache_bytes: int,
    width: int,
    element_size: int,
    line_size: int = 32,
) -> int:
    """Largest tile height (rows) with no self-interference on this cache.

    Column chunks must not merely avoid byte overlap: two chunks whose
    footprints touch the same *cache line* still evict each other, so each
    circular gap between column positions must cover the chunk plus one
    line of slack.  0 means no height works (two columns of the tile map
    to the same position); ``width == 1`` trivially allows the whole cache.
    """
    if column_bytes <= 0 or cache_bytes <= 0 or width <= 0 or element_size <= 0:
        raise TransformError("all tile-selection parameters must be positive")
    if width == 1:
        return cache_bytes // element_size
    positions = sorted({(k * column_bytes) % cache_bytes for k in range(width)})
    if len(positions) < width:
        return 0  # two columns coincide: any H >= 1 self-interferes
    gaps = [b - a for a, b in zip(positions, positions[1:])]
    gaps.append(cache_bytes - positions[-1] + positions[0])
    return max(0, (min(gaps) - line_size)) // element_size


def select_tile(
    column_bytes: int,
    element_size: int,
    rows: int,
    cols: int,
    capacity_bytes: int,
    interference_cache_bytes: int | None = None,
    line_size: int = 32,
) -> TileShape:
    """Pick the largest self-interference-free tile within a capacity budget.

    ``capacity_bytes`` is the cache (or fraction) the tile should fill --
    L1-sized, 2xL1, 4xL1 or L2-sized in the paper's Figure 13 study.
    ``interference_cache_bytes`` is the cache on which self-interference is
    avoided (defaults to ``capacity_bytes``).

    The objective is the paper's own miss model (Section 5): B and C cause
    misses proportional to ``1/(2H) + 1/(2W)``, so among conflict-free
    candidates within the capacity budget the selector minimizes that
    fraction (larger area breaks ties).  This also steers away from
    degenerate thin tiles that a pure max-area objective would pick.
    """
    if interference_cache_bytes is None:
        interference_cache_bytes = capacity_bytes
    if capacity_bytes <= 0:
        raise TransformError("capacity_bytes must be positive")
    max_w = min(cols, max(1, capacity_bytes // element_size))
    best: TileShape | None = None
    best_key: tuple | None = None
    for width in range(1, max_w + 1):
        h_free = max_conflict_free_height(
            column_bytes, interference_cache_bytes, width, element_size, line_size
        )
        height = min(h_free, capacity_bytes // (element_size * width), rows)
        if height < 1:
            continue
        shape = TileShape(width=width, height=height)
        miss_fraction = 0.5 / height + 0.5 / width
        key = (-miss_fraction, shape.elements)
        if best_key is None or key > best_key:
            best, best_key = shape, key
    if best is None:
        raise TransformError(
            f"no conflict-free tile exists for column={column_bytes}B on a "
            f"{interference_cache_bytes}B cache"
        )
    return best
