"""Loop permutation with the memory-order cost model.

Loop permutation reorders a nest's loops to bring reuse closer in time
(Figure 1).  Legality here is structural: a loop may only move inward past
loops its bounds do not depend on.  (The paper's codes are fully
permutable stencils; general dependence testing is out of scope and
permutation of the modeled kernels never reverses a dependence.)

:func:`best_permutation` implements the standard "memory order" heuristic
cited as [18]: evaluate each loop's locality if placed innermost and put
the best one there.  The score uses only the line size -- Section 2.1's
argument for why permutation is insensitive to the number of cache levels.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reuse import innermost_locality_score
from repro.errors import TransformError
from repro.ir.loops import LoopNest
from repro.ir.program import Program

__all__ = ["permute_nest", "best_permutation", "memory_order"]


def permute_nest(
    nest: LoopNest, order: Sequence[str], check_dependences: bool = False
) -> LoopNest:
    """Reorder the nest's loops to ``order`` (outermost first).

    Raises :class:`TransformError` when ``order`` is not a permutation of
    the nest's loop variables or when a bound would reference a variable
    that is no longer enclosing.  With ``check_dependences=True`` the
    direction-vector legality test also runs
    (:func:`repro.analysis.dependence.permutation_legal`), rejecting
    permutations that reverse a dependence; it is off by default because
    tiling's strip-loops and the paper's fully-permutable stencils do not
    need it.
    """
    order = tuple(order)
    if check_dependences:
        from repro.analysis.dependence import permutation_legal

        if not permutation_legal(nest, order):
            raise TransformError(
                f"permutation {order} reverses a dependence of nest "
                f"{nest.label!r} (or the nest is unanalyzable)"
            )
    if sorted(order) != sorted(nest.loop_vars):
        raise TransformError(
            f"{order} is not a permutation of loops {nest.loop_vars}"
        )
    by_var = {lp.var: lp for lp in nest.loops}
    new_loops = tuple(by_var[v] for v in order)
    seen: set[str] = set()
    for lp in new_loops:
        for bound in lp.all_bounds:
            for v in bound.variables:
                if v not in seen:
                    raise TransformError(
                        f"cannot permute: bound of loop {lp.var} depends on "
                        f"{v!r}, which would no longer be an outer loop"
                    )
        seen.add(lp.var)
    return LoopNest(new_loops, nest.body, nest.label)


def best_permutation(
    program: Program,
    nest: LoopNest,
    line_size: int,
) -> LoopNest:
    """Memory order: place the most locality-carrying legal loop innermost.

    Scores every loop with :func:`innermost_locality_score`; loops that
    other loops' bounds depend on cannot move innermost.  Remaining loops
    keep their relative order.  Returns the nest unchanged when the
    innermost loop is already optimal.
    """
    candidates = []
    for lp in nest.loops:
        if any(
            other.var != lp.var
            and any(b.depends_on(lp.var) for b in other.all_bounds)
            for other in nest.loops
        ):
            continue  # some bound depends on lp; it must stay outside
        candidates.append(lp.var)
    if not candidates:
        return nest
    scored = sorted(
        candidates,
        key=lambda v: (
            innermost_locality_score(program, nest, v, line_size),
            v == nest.loops[-1].var,  # prefer current innermost on ties
        ),
        reverse=True,
    )
    best = scored[0]
    if best == nest.loops[-1].var:
        return nest
    order = [v for v in nest.loop_vars if v != best] + [best]
    return permute_nest(nest, order)


def memory_order(
    program: Program,
    nest: LoopNest,
    line_size: int,
) -> LoopNest:
    """Full memory-order permutation: rank *every* loop by locality.

    Sorts loops so the most locality-carrying one is innermost, the next
    one second-innermost, and so on -- McKinley/Carr/Tseng's "memory
    order" [18] in full, where :func:`best_permutation` only places the
    innermost.  When the ideal order is structurally illegal (a bound
    depends on a loop that would move inside it) the offending loop is
    hoisted just far enough out, preserving the rest of the ranking.
    """
    ranked = sorted(
        nest.loop_vars,
        key=lambda v: innermost_locality_score(program, nest, v, line_size),
    )  # worst (outermost) first
    order: list[str] = []
    for v in ranked:
        order.append(v)
    # Repair legality: every loop whose bounds mention v must come after v.
    by_var = {lp.var: lp for lp in nest.loops}
    changed = True
    while changed:
        changed = False
        for i, v in enumerate(order):
            deps = {
                w
                for b in by_var[v].all_bounds
                for w in b.variables
                if w in by_var
            }
            for w in deps:
                j = order.index(w)
                if j > i:  # bound var w must enclose v
                    order.pop(j)
                    order.insert(i, w)
                    changed = True
                    break
            if changed:
                break
    return permute_nest(nest, order)
