"""PAD and MULTILVLPAD: inter-variable padding against severe conflicts.

PAD (Rivera & Tseng, PLDI '98; paper Section 3.1.1) walks the variables in
layout order and, for each one, increments its base address one cache line
at a time until no reference to it maps within one line of a reference to
any already-placed variable, in any loop nest.  "In practice, PAD requires
only a few cache lines of padding per variable."

MULTILVLPAD (Section 3.1.2) is PAD run against a single *virtual* cache:
size S1 (the smallest cache) with line size Lmax (the largest line at any
level).  Because each cache size divides the next, two references kept at
least Lmax apart modulo S1 stay at least that far apart modulo every k*S1
-- severe conflicts are avoided at all levels with one pass.

Only reference pairs whose address difference is iteration-invariant
(uniformly generated pairs, which is all the paper's programs contain) can
conflict on *every* iteration; pairs with varying deltas cannot be fixed
by padding and are ignored, as in PAD.
"""

from __future__ import annotations

from repro.cache.config import HierarchyConfig
from repro.errors import TransformError
from repro.ir.program import Program
from repro.layout.layout import DataLayout
from repro.util.mathutil import circular_distance

__all__ = ["pad", "multilvl_pad", "pad_explicit_levels"]


def _pair_deltas(program: Program) -> dict[tuple[str, str], set[int]]:
    """Constant parts of inter-variable reference deltas, per array pair.

    For every nest and every pair of references to different arrays whose
    offset difference is iteration-invariant, record that constant.  The
    cache distance of such a pair under any layout is
    ``(base_a - base_b + delta) mod C`` -- only the bases change while PAD
    searches, so this table is computed once.
    """
    deltas: dict[tuple[str, str], set[int]] = {}
    for nest in program.nests:
        uniq: dict[tuple, object] = {}
        for ref in nest.refs:
            key = (ref.array, ref.subscripts)
            if key not in uniq:
                uniq[key] = ref.offset_expr(program.decl(ref.array))
        items = list(uniq.items())
        for i, ((arr_a, _), off_a) in enumerate(items):
            for (arr_b, _), off_b in items[i + 1 :]:
                if arr_a == arr_b:
                    continue
                diff = off_a - off_b
                if diff.is_constant:
                    pair = (arr_a, arr_b) if arr_a < arr_b else (arr_b, arr_a)
                    d = diff.constant if arr_a < arr_b else -diff.constant
                    deltas.setdefault(pair, set()).add(d)
    return deltas


def _has_conflict(
    bases: dict[str, int],
    candidate: str,
    placed: list[str],
    deltas: dict[tuple[str, str], set[int]],
    cache_sizes: list[int],
    line_size: int,
) -> bool:
    for other in placed:
        pair = (candidate, other) if candidate < other else (other, candidate)
        consts = deltas.get(pair)
        if not consts:
            continue
        base_delta = bases[pair[0]] - bases[pair[1]]
        for d in consts:
            total = base_delta + d
            for size in cache_sizes:
                if circular_distance(total % size, 0, size) < line_size:
                    return True
    return False


def _pad_against(
    program: Program,
    layout: DataLayout,
    cache_sizes: list[int],
    line_size: int,
    max_lines_per_var: int | None = None,
) -> DataLayout:
    if line_size <= 0:
        raise TransformError(f"line size must be positive, got {line_size}")
    for size in cache_sizes:
        if size <= 0 or size % line_size != 0:
            raise TransformError(
                f"cache size {size} must be a positive multiple of line {line_size}"
            )
    limit = max_lines_per_var
    if limit is None:
        # Beyond a full cache of lines no new relative positions exist.
        limit = max(cache_sizes) // line_size

    deltas = _pair_deltas(program)
    out = layout
    placed: list[str] = []
    for name in layout.order:
        if placed:
            tries = 0
            while _has_conflict(
                out.bases(), name, placed, deltas, cache_sizes, line_size
            ):
                tries += 1
                if tries > limit:
                    raise TransformError(
                        f"PAD could not free {name!r} of severe conflicts within "
                        f"{limit} lines of padding"
                    )
                out = out.add_pad(name, line_size)
        placed.append(name)
    return out


def pad(
    program: Program,
    layout: DataLayout,
    cache_size: int,
    line_size: int,
    max_lines_per_var: int | None = None,
) -> DataLayout:
    """Apply PAD for a single cache level; returns the padded layout."""
    return _pad_against(program, layout, [cache_size], line_size, max_lines_per_var)


def multilvl_pad(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
    max_lines_per_var: int | None = None,
) -> DataLayout:
    """MULTILVLPAD: one PAD pass against the (S1, Lmax) virtual cache."""
    cfg = hierarchy.multilevel_pad_config()
    return pad(program, layout, cfg.size, cfg.line_size, max_lines_per_var)


def pad_explicit_levels(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
    max_lines_per_var: int | None = None,
) -> DataLayout:
    """The direct generalization: test conflicts at *every* level.

    Section 3.1.2's first variant ("base addresses are tested for conflicts
    with respect to all cache levels instead of just one cache").  Uses the
    largest line size as the separation unit so one increment step is valid
    for every level.
    """
    sizes = [cfg.size for cfg in hierarchy]
    return _pad_against(
        program, layout, sizes, hierarchy.max_line_size, max_lines_per_var
    )
