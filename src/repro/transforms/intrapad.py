"""Intra-variable (array-column) padding.

Pads the *leading dimension* of an array so that references to the same
variable stop colliding on the cache -- the Section 6.1 preprocessing step
"intra-variable (array column) padding is first performed in ADI32 and
ERLE64 to avoid severe conflicts between references to the same variable"
[20].

The conflicts to remove are exactly the constant byte deltas between the
program's uniformly generated same-array reference pairs: for ERLE64's
``X(i,j,k)`` vs ``X(i,j,k-1)`` that delta is one (j,k)-plane = 32 KB, an
exact multiple of the 16 KB L1 cache.  Because every such delta is a known
function of the leading extent (strides are ``elem, lead*elem,
lead*n2*elem, ...``), the transform recomputes the deltas for each
candidate extent and grows the leading dimension until none lands within a
cache line of a multiple of any targeted cache size.
"""

from __future__ import annotations

from repro.cache.config import HierarchyConfig
from repro.errors import TransformError
from repro.ir.arrays import ArrayDecl
from repro.ir.program import Program
from repro.util.mathutil import circular_distance

__all__ = ["intra_pad", "same_array_subscript_diffs"]


def same_array_subscript_diffs(
    program: Program, array: str
) -> set[tuple[int, ...]]:
    """Constant per-dimension subscript differences between uniformly
    generated same-array reference pairs (the zero tuple excluded)."""
    decl = program.decl(array)
    diffs: set[tuple[int, ...]] = set()
    for nest in program.nests:
        refs = [r for r in nest.refs if r.array == array]
        for i, ra in enumerate(refs):
            for rb in refs[i + 1 :]:
                if not ra.is_uniformly_generated_with(rb):
                    continue
                d = tuple(
                    (sa - sb).constant
                    for sa, sb in zip(ra.subscripts, rb.subscripts)
                )
                if any(d):
                    diffs.add(d)
                    diffs.add(tuple(-x for x in d))
    return diffs


def _delta_bytes(diff: tuple[int, ...], shape: tuple[int, ...], elem: int) -> int:
    stride = elem
    total = 0
    for d, extent in zip(diff, shape):
        total += d * stride
        stride *= extent
    return total


def intra_pad(
    program: Program,
    cache_size: int,
    line_size: int,
    arrays: tuple[str, ...] | None = None,
    hierarchy: HierarchyConfig | None = None,
    max_extra_rows: int = 512,
) -> Program:
    """Grow leading dimensions until same-variable conflicts disappear.

    Returns a new :class:`Program` with enlarged declarations; existing
    subscripts remain valid because extents only grow.  Pass ``hierarchy``
    to clear every cache level at once; otherwise only the single
    ``(cache_size, line_size)`` level is targeted.  Any
    :class:`~repro.layout.DataLayout` built from the old program must be
    rebuilt, since array sizes changed.
    """
    if hierarchy is not None:
        levels = [(cfg.size, cfg.line_size) for cfg in hierarchy]
    else:
        levels = [(cache_size, line_size)]

    new_decls: list[ArrayDecl] = []
    for decl in program.arrays:
        if (arrays is not None and decl.name not in arrays) or decl.rank < 2:
            new_decls.append(decl)
            continue
        diffs = same_array_subscript_diffs(program, decl.name)
        if not diffs:
            new_decls.append(decl)
            continue
        step = max(1, min(l for _, l in levels) // decl.element_size)
        extra = 0

        def _is_conflict(diff, shape) -> bool:
            """References less than a line apart *in memory* share that
            line legitimately (group-spatial reuse) -- only pairs at least
            a line apart can ping-pong."""
            delta = _delta_bytes(diff, shape, decl.element_size)
            return any(
                abs(delta) >= line
                and circular_distance(delta % size, 0, size) < line
                for size, line in levels
            )

        while True:
            shape = (decl.shape[0] + extra,) + decl.shape[1:]
            conflict = any(_is_conflict(diff, shape) for diff in diffs)
            if not conflict:
                break
            extra += step
            if extra > max_extra_rows:
                raise TransformError(
                    f"intra_pad: no non-resonant leading dimension for "
                    f"{decl.name} within {max_extra_rows} extra rows"
                )
        new_decls.append(
            ArrayDecl(decl.name, (decl.shape[0] + extra,) + decl.shape[1:],
                      decl.element_size)
        )
    return program.with_arrays(new_decls)
