"""Program transformations: the paper's optimization algorithms.

Data-layout transformations (Section 3):

* :func:`pad` -- PAD: eliminate severe conflict misses on one cache level;
* :func:`multilvl_pad` -- MULTILVLPAD: PAD against the virtual
  (S1, Lmax) cache, covering every level by modular arithmetic;
* :func:`pad_explicit_levels` -- the "generalizes easily" variant that
  tests every level explicitly;
* :func:`grouppad` -- GROUPPAD: choose base positions maximizing exploited
  group reuse on the L1 cache;
* :func:`grouppad_recursive` -- the multi-level recursion (pads at level
  k restricted to multiples of the level-(k-1) cache size);
* :func:`maxpad` / :func:`l2maxpad` -- maximal separation on one cache /
  on the L2 cache with S1-multiple pads that preserve the L1 layout;
* :func:`intra_pad` -- intra-variable (column) padding;
* :func:`transpose_array` -- array transpose (Figure 1).

Loop transformations (Sections 2, 4, 5):

* :func:`permute_nest` / :func:`best_permutation` -- loop permutation;
* :func:`reverse_loop`, :func:`interchange`, :func:`skew` -- unimodular;
* :func:`fuse_nests` / :func:`fuse_all` -- loop fusion;
* :func:`strip_mine`, :func:`tile_nest` -- tiling;
* :mod:`repro.transforms.tilesize` -- self-interference-free tile-size
  selection (euc-style), L1/kxL1/L2 targeting.
"""

from repro.transforms.pad import pad, multilvl_pad, pad_explicit_levels
from repro.transforms.grouppad import grouppad, grouppad_recursive
from repro.transforms.maxpad import maxpad, l2maxpad
from repro.transforms.intrapad import intra_pad
from repro.transforms.transpose import transpose_array
from repro.transforms.permute import best_permutation, memory_order, permute_nest
from repro.transforms.unimodular import interchange, reverse_loop, skew
from repro.transforms.fusion import can_fuse, fuse_all, fuse_nests
from repro.transforms.distribution import can_distribute, distribute_nest
from repro.transforms.contraction import contract_array, contractible_arrays, scalar_replace
from repro.transforms.unroll import unroll
from repro.transforms.timetile import block_columns_for_cache, time_tile
from repro.transforms.tiling import strip_mine, tile_nest
from repro.transforms.tilesize import (
    TileShape,
    max_conflict_free_height,
    select_tile,
)

__all__ = [
    "pad",
    "multilvl_pad",
    "pad_explicit_levels",
    "grouppad",
    "grouppad_recursive",
    "maxpad",
    "l2maxpad",
    "intra_pad",
    "transpose_array",
    "permute_nest",
    "best_permutation",
    "memory_order",
    "reverse_loop",
    "interchange",
    "skew",
    "can_fuse",
    "fuse_nests",
    "fuse_all",
    "can_distribute",
    "distribute_nest",
    "contract_array",
    "contractible_arrays",
    "scalar_replace",
    "unroll",
    "time_tile",
    "block_columns_for_cache",
    "strip_mine",
    "tile_nest",
    "TileShape",
    "max_conflict_free_height",
    "select_tile",
]
