"""MAXPAD and L2MAXPAD: maximal separation of variables on a cache.

MAXPAD (Rivera & Tseng, ICS '98) spaces the k optimized variables as far
apart as possible on the cache -- position ``i * C/k`` for the i-th
variable -- so that arcs of group reuse have the most room before another
variable's references intrude.  When array columns are a small fraction of
the cache this preserves *all* group reuse at that level (Figure 5).

L2MAXPAD (Section 3.2.2) applies the same idea to the L2 cache after
GROUPPAD has fixed the L1 layout: target positions are computed on the L2
cache, then each pad is rounded to the nearest multiple of S1, so base
addresses are unchanged modulo S1 and the L1 layout -- conflicts and
exploited arcs alike -- is preserved exactly.
"""

from __future__ import annotations

from repro.cache.config import HierarchyConfig
from repro.errors import TransformError
from repro.ir.program import Program
from repro.layout.layout import DataLayout

__all__ = ["maxpad", "l2maxpad"]


def _targets(cache_size: int, count: int) -> list[int]:
    """Evenly spread cache positions for ``count`` variables."""
    return [(i * cache_size) // count for i in range(count)]


def maxpad(
    program: Program,
    layout: DataLayout,
    cache_size: int,
    pad_multiple: int = 1,
) -> DataLayout:
    """Separate variables maximally on a cache of ``cache_size`` bytes.

    Each variable's pad is the smallest non-negative amount (restricted to
    multiples of ``pad_multiple``) that brings its base address closest to
    its evenly-spaced target position modulo the cache.  With
    ``pad_multiple == 1`` targets are hit exactly; with ``pad_multiple ==
    S1`` (see :func:`l2maxpad`) they are hit to within S1/2, "rounding pads
    to the nearest S1 multiple after determining the approximate position".
    """
    if cache_size <= 0:
        raise TransformError("cache_size must be positive")
    if pad_multiple <= 0 or cache_size % pad_multiple != 0:
        raise TransformError(
            f"pad_multiple {pad_multiple} must divide cache size {cache_size}"
        )
    names = list(layout.order)
    targets = _targets(cache_size, len(names))
    out = layout
    for name, target in zip(names, targets):
        base = out.base(name)
        # Smallest k >= 0 minimizing circular distance of
        # (base + k*pad_multiple) mod cache_size to target: solve directly.
        need = (target - base) % cache_size
        k_exact, rem = divmod(need, pad_multiple)
        k = k_exact if rem <= pad_multiple // 2 else k_exact + 1
        out = out.add_pad(name, k * pad_multiple)
    return out


def l2maxpad(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
) -> DataLayout:
    """MAXPAD on the L2 cache with pads in multiples of the L1 size.

    Preserves the given (GROUPPAD) layout on the L1 cache: every base
    address is unchanged modulo S1 (tested property), while variables are
    spread across the much larger L2 cache so the group reuse the L1 cache
    is too small to keep is exploited one level down.
    """
    if len(hierarchy) < 2:
        raise TransformError("l2maxpad requires a hierarchy with an L2 cache")
    return maxpad(
        program,
        layout,
        cache_size=hierarchy.l2.size,
        pad_multiple=hierarchy.l1.size,
    )
