"""Time-step (temporal) tiling -- Song & Li's technique, Section 5's exception.

The paper's one case where tiling should *not* target the L1 cache:
when "multiple loop nests enclosed in a single time-step loop" are tiled
so tiles overlap time steps, "the large amount of data that must be held
in cache spans many loop nests [so] the L1 cache is unlikely to be
sufficiently large ... the tiling algorithm targets the L2 cache,
completely bypassing the L1 cache."

:func:`time_tile` implements skewed time blocking for a nest of shape
``(t, j, inner...)``: the space dimension is blocked with width ``block``
and each block slides by ``skew`` columns per time step, so dependences
that travel at most ``skew`` columns per step stay inside the block
ordering.  The result is a perfect nest

    do jj = lo_j - skew*(T-1) - (block-1), hi_j, block
      do t = t_lo, t_hi
        do j = max(lo_j, jj + skew*(t - t_lo)),
               min(hi_j, jj + skew*(t - t_lo) + block - 1)
          ...

expressible with the IR's min/max bounds; every (t, j) iteration runs
exactly once (each length-``block`` window holds exactly one point of the
``jj`` grid).
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.affine import var
from repro.ir.loops import Loop, LoopNest

__all__ = ["time_tile", "block_columns_for_cache"]


def block_columns_for_cache(
    cache_bytes: int,
    column_bytes: int,
    time_steps: int,
    skew: int = 1,
    arrays: int = 1,
) -> int:
    """Largest block width whose sliding working set fits the cache.

    A block of B columns skewed over T steps touches ``B + skew*T``
    columns per array; returns the largest positive B, or 0 when even
    B = 1 does not fit -- the paper's argument for why the L1 cache is
    "unlikely to be sufficiently large" here.
    """
    if min(cache_bytes, column_bytes, time_steps, arrays) <= 0 or skew < 0:
        raise TransformError("all parameters must be positive (skew >= 0)")
    budget_cols = cache_bytes // (column_bytes * arrays)
    return max(0, budget_cols - skew * time_steps)


def time_tile(
    nest: LoopNest,
    time_var: str,
    space_var: str,
    block: int,
    skew: int = 1,
    block_var: str | None = None,
) -> LoopNest:
    """Skewed time blocking of a ``(time, space, ...)`` nest.

    Requires ``time_var`` to be the outermost loop and ``space_var`` the
    next one, both rectangular with unit step.  Legality (not checked
    against the body: the IR carries no dependence semantics) requires
    ``skew`` to cover the farthest column a value can flow per time step
    -- 1 for a three-point stencil.
    """
    if block <= 0:
        raise TransformError(f"block must be positive, got {block}")
    if skew < 0:
        raise TransformError(f"skew must be non-negative, got {skew}")
    if nest.depth < 2 or nest.loops[0].var != time_var or nest.loops[1].var != space_var:
        raise TransformError(
            f"time_tile expects loops ({time_var}, {space_var}, ...) outermost; "
            f"got {nest.loop_vars}"
        )
    t_loop, j_loop = nest.loops[0], nest.loops[1]
    for lp in (t_loop, j_loop):
        if not lp.is_rectangular or lp.step != 1 or lp.extra_uppers or lp.extra_lowers:
            raise TransformError(
                f"time_tile requires rectangular unit-step {lp.var!r}"
            )
    block_var = block_var or (space_var + space_var)
    if block_var in nest.loop_vars:
        raise TransformError(f"block variable {block_var!r} already in use")

    t_lo, t_hi = t_loop.lower.constant, t_loop.upper.constant
    j_lo, j_hi = j_loop.lower.constant, j_loop.upper.constant
    total_skew = skew * (t_hi - t_lo)

    jj = var(block_var)
    shift = jj + skew * (var(time_var) - t_lo)
    blocked = Loop(
        block_var,
        lower=j_lo - total_skew - (block - 1),
        upper=j_hi,
        step=block,
    )
    new_j = Loop(
        space_var,
        lower=shift,
        upper=shift + (block - 1),
        step=1,
        extra_uppers=(j_loop.upper,),
        extra_lowers=(j_loop.lower,),
    )
    loops = (blocked, t_loop) + (new_j,) + nest.loops[2:]
    return LoopNest(loops, nest.body, nest.label + "+timetile")
