"""Loop fusion (Section 4).

Fusion merges two adjacent, header-compatible nests into one nest running
both bodies.  It improves temporal locality (a value loaded by the first
body can be re-touched by the second in the same iteration) at the risk of
severe conflicts -- "applying inter-variable padding using the PAD
algorithm after loop fusion is important" -- and of losing group reuse on
the small L1 cache (the tradeoff quantified by
:mod:`repro.analysis.fusionmodel`).

Legality: by default a conservative dependence test rejects fusions that
would reorder a write against another access of the same location
(e.g. the Figure 2 pair, where nest 2 reads ``B(i,j+1)`` that nest 1 has
already rewritten).  The paper fuses that example anyway to study the
*locality* consequences; pass ``check="none"`` to do the same.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.ir.refs import ArrayRef

__all__ = ["can_fuse", "fuse_nests", "fuse_all", "fusion_dependence_ok"]


def _header_rename(nest_a: LoopNest, nest_b: LoopNest) -> dict[str, str] | None:
    """Mapping from nest_b's loop vars to nest_a's, or None if incompatible."""
    if nest_a.depth != nest_b.depth:
        return None
    mapping: dict[str, str] = {}
    for la, lb in zip(nest_a.loops, nest_b.loops):
        mapping[lb.var] = la.var
    for la, lb in zip(nest_a.loops, nest_b.loops):
        if lb.step != la.step or len(lb.extra_uppers) != len(la.extra_uppers):
            return None
        if lb.lower.rename(mapping) != la.lower:
            return None
        if lb.upper.rename(mapping) != la.upper:
            return None
        for ea, eb in zip(la.extra_uppers, lb.extra_uppers):
            if eb.rename(mapping) != ea:
                return None
    return mapping


def can_fuse(nest_a: LoopNest, nest_b: LoopNest) -> bool:
    """Are the two nests header-compatible (same bounds and steps)?"""
    return _header_rename(nest_a, nest_b) is not None


def _iteration_distance(
    ref_a: ArrayRef, ref_b: ArrayRef, loop_vars: tuple[str, ...]
) -> tuple[int, ...] | None:
    """Per-loop iteration distance d with ``ref_b(I + d) == ref_a(I)``.

    Requires each subscript to be a single loop variable (coefficient 1)
    plus a constant, the paper's reference shape; returns None otherwise,
    which callers treat as "unknown".
    """
    if ref_a.array != ref_b.array or ref_a.rank != ref_b.rank:
        return None
    dist = {v: 0 for v in loop_vars}
    for sa, sb in zip(ref_a.subscripts, ref_b.subscripts):
        va, vb = sa.variables, sb.variables
        if va != vb or len(va) > 1:
            return None
        if not va:
            if sa.constant != sb.constant:
                return None  # constant subscripts touching different planes
            continue
        v = va[0]
        if sa.coeff(v) != 1 or sb.coeff(v) != 1 or v not in dist:
            return None
        dist[v] += sa.constant - sb.constant
    return tuple(dist[v] for v in loop_vars)


def fusion_dependence_ok(
    program: Program, nest_a: LoopNest, nest_b: LoopNest
) -> bool:
    """Conservative legality: no dependence reversed by fusing a before b.

    In the original program every instance of ``nest_a`` runs before every
    instance of ``nest_b``.  After fusion, iteration I of nest_b's body
    runs before iterations > I of nest_a's body, which is illegal exactly
    when some same-location pair (one of them a write) has nest_b touching
    the location at a lexicographically *earlier* iteration than nest_a.
    Unanalyzable pairs count as illegal.
    """
    mapping = _header_rename(nest_a, nest_b)
    if mapping is None:
        return False
    loop_vars = nest_a.loop_vars
    for sa in nest_a.body:
        for ra in sa.refs:
            for sb in nest_b.body:
                for rb_orig in sb.refs:
                    rb = rb_orig.rename(mapping)
                    if ra.array != rb.array:
                        continue
                    if not (ra.is_write or rb_orig.is_write):
                        continue
                    d = _iteration_distance(ra, rb, loop_vars)
                    if d is None:
                        if ra.is_uniformly_generated_with(rb):
                            return False
                        # Different planes of the array: no overlap.
                        continue
                    # nest_b touches ra's location at iteration I + d; a
                    # negative (lexicographic) d reverses the dependence.
                    for component in d:
                        if component > 0:
                            break
                        if component < 0:
                            return False
    return True


def fuse_nests(
    program: Program,
    index_a: int,
    index_b: int,
    check: str = "strict",
    label: str | None = None,
) -> Program:
    """Fuse ``nests[index_b]`` into ``nests[index_a]`` (must be adjacent).

    ``check="strict"`` runs :func:`fusion_dependence_ok` and raises on
    failure; ``check="none"`` fuses unconditionally (the paper's usage for
    its locality study).
    """
    if check not in ("strict", "none"):
        raise TransformError(f"unknown check mode {check!r}")
    if index_b != index_a + 1:
        raise TransformError(
            f"only adjacent nests can fuse, got {index_a} and {index_b}"
        )
    nest_a, nest_b = program.nests[index_a], program.nests[index_b]
    mapping = _header_rename(nest_a, nest_b)
    if mapping is None:
        raise TransformError(
            f"nests {nest_a.label!r} and {nest_b.label!r} have incompatible headers"
        )
    if check == "strict" and not fusion_dependence_ok(program, nest_a, nest_b):
        raise TransformError(
            f"fusing {nest_a.label!r} and {nest_b.label!r} would reverse a "
            f"dependence; pass check='none' to fuse for locality study anyway"
        )
    body = nest_a.body + tuple(st.rename(mapping) for st in nest_b.body)
    fused = LoopNest(
        nest_a.loops, body, label or f"{nest_a.label}+{nest_b.label}"
    )
    nests = list(program.nests)
    nests[index_a] = fused
    del nests[index_b]
    return program.with_nests(nests)


def fuse_all(program: Program, check: str = "strict") -> Program:
    """Greedily fuse adjacent compatible nests left to right."""
    out = program
    i = 0
    while i + 1 < len(out.nests):
        a, b = out.nests[i], out.nests[i + 1]
        legal = can_fuse(a, b) and (
            check == "none" or fusion_dependence_ok(out, a, b)
        )
        if legal:
            out = fuse_nests(out, i, i + 1, check=check)
        else:
            i += 1
    return out
