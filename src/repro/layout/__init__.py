"""Data layout: array base addresses, pads, conflicts, and cache diagrams.

Mirrors the paper's experimental setup (Section 6.1): every optimized
variable becomes a field of one large global structure, so the compiler
controls base addresses by ordering fields and inserting pad variables.
:class:`DataLayout` is that structure; the padding transformations in
:mod:`repro.transforms` produce new layouts, and
:mod:`repro.layout.diagram` reproduces the paper's dots-and-arcs cache
diagrams (Figures 3, 4, 5, 7) that drive GROUPPAD and the fusion model.
"""

from repro.layout.layout import DataLayout
from repro.layout.conflicts import (
    ConflictReport,
    delta_interval,
    interval_conflicts_with_cache,
    nest_severe_conflicts,
    program_severe_conflicts,
)
from repro.layout.diagram import Arc, CacheDiagram, Dot

__all__ = [
    "DataLayout",
    "ConflictReport",
    "CacheDiagram",
    "Dot",
    "Arc",
    "delta_interval",
    "interval_conflicts_with_cache",
    "nest_severe_conflicts",
    "program_severe_conflicts",
]
