"""The global data layout: variable order and inter-variable pads.

A layout assigns every array a byte base address.  Addresses are derived
from (a) the order of variables in the global structure and (b) a pad
inserted *before* each variable, exactly the mechanism the paper's SUIF
passes use ("reordering fields in the structure and inserting pad
variables").  Layouts are immutable; transformations return new ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import LayoutError
from repro.ir.program import Program

__all__ = ["DataLayout"]


@dataclass(frozen=True)
class DataLayout:
    """Byte base addresses for a program's arrays.

    ``order`` is the sequence of array names in memory; ``pads`` maps each
    name to the pad (in bytes) inserted immediately before it; ``sizes``
    records each array's extent in bytes.  Base addresses follow from the
    three together.
    """

    order: tuple[str, ...]
    pads: tuple[int, ...]
    sizes: tuple[int, ...]
    origin: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "order", tuple(self.order))
        object.__setattr__(self, "pads", tuple(int(p) for p in self.pads))
        object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))
        if len({*self.order}) != len(self.order):
            raise LayoutError(f"duplicate array in layout order {self.order}")
        if not (len(self.order) == len(self.pads) == len(self.sizes)):
            raise LayoutError("order, pads and sizes must have equal length")
        if any(p < 0 for p in self.pads):
            raise LayoutError(f"negative pad in {self.pads}")
        if any(s <= 0 for s in self.sizes):
            raise LayoutError(f"non-positive array size in {self.sizes}")
        if self.origin < 0:
            raise LayoutError("origin must be non-negative")

    # -- construction -------------------------------------------------------
    @classmethod
    def sequential(
        cls,
        program: Program,
        alignment: int = 8,
        origin: int = 0,
    ) -> "DataLayout":
        """Arrays contiguous in declaration order (the "original" layout).

        ``alignment`` pads each array's start to a multiple of that many
        bytes, as a Fortran compiler would align COMMON block members.
        """
        if alignment <= 0:
            raise LayoutError("alignment must be positive")
        order, pads, sizes = [], [], []
        addr = origin
        for decl in program.arrays:
            pad = (-addr) % alignment
            order.append(decl.name)
            pads.append(pad)
            sizes.append(decl.size_bytes)
            addr += pad + decl.size_bytes
        return cls(tuple(order), tuple(pads), tuple(sizes), origin)

    # -- queries ------------------------------------------------------------
    def index_of(self, name: str) -> int:
        try:
            return self.order.index(name)
        except ValueError:
            raise LayoutError(f"array {name!r} not in layout") from None

    def base(self, name: str) -> int:
        """Byte base address of array ``name``."""
        idx = self.index_of(name)
        addr = self.origin
        for i in range(idx + 1):
            addr += self.pads[i]
            if i < idx:
                addr += self.sizes[i]
        return addr

    def bases(self) -> dict[str, int]:
        """All base addresses, keyed by array name."""
        out: dict[str, int] = {}
        addr = self.origin
        for name, pad, size in zip(self.order, self.pads, self.sizes):
            addr += pad
            out[name] = addr
            addr += size
        return out

    @property
    def total_bytes(self) -> int:
        """Total extent of the layout including pads."""
        return sum(self.pads) + sum(self.sizes)

    @property
    def total_padding(self) -> int:
        return sum(self.pads)

    def end(self, name: str) -> int:
        return self.base(name) + self.sizes[self.index_of(name)]

    # -- rewriting ------------------------------------------------------------
    def with_pad(self, name: str, pad: int) -> "DataLayout":
        """Set the pad before ``name`` (replacing, not adding)."""
        if pad < 0:
            raise LayoutError(f"pad for {name} must be non-negative, got {pad}")
        idx = self.index_of(name)
        pads = list(self.pads)
        pads[idx] = pad
        return DataLayout(self.order, tuple(pads), self.sizes, self.origin)

    def add_pad(self, name: str, extra: int) -> "DataLayout":
        """Increase the pad before ``name`` by ``extra`` bytes."""
        idx = self.index_of(name)
        return self.with_pad(name, self.pads[idx] + extra)

    def with_pads(self, pads: Mapping[str, int]) -> "DataLayout":
        out = self
        for name, pad in pads.items():
            out = out.with_pad(name, pad)
        return out

    def reordered(self, order: Iterable[str]) -> "DataLayout":
        """Same arrays/pads in a new field order (pads travel with arrays)."""
        order = tuple(order)
        if sorted(order) != sorted(self.order):
            raise LayoutError(
                f"reorder {order} is not a permutation of {self.order}"
            )
        idx = [self.index_of(n) for n in order]
        return DataLayout(
            order,
            tuple(self.pads[i] for i in idx),
            tuple(self.sizes[i] for i in idx),
            self.origin,
        )

    def with_resized(self, name: str, size_bytes: int) -> "DataLayout":
        """Replace an array's extent (used by intra-variable padding)."""
        if size_bytes <= 0:
            raise LayoutError("size must be positive")
        idx = self.index_of(name)
        sizes = list(self.sizes)
        sizes[idx] = size_bytes
        return DataLayout(self.order, self.pads, tuple(sizes), self.origin)

    def describe(self) -> str:
        """Human-readable base-address map."""
        lines = ["offset     pad  size      array"]
        bases = self.bases()
        for name, pad, size in zip(self.order, self.pads, self.sizes):
            lines.append(f"{bases[name]:>9}  {pad:>4}  {size:>8}  {name}")
        return "\n".join(lines)
