"""Severe (ping-pong) conflict detection between array references.

Two references conflict severely on a direct-mapped cache when they map
within one cache line of each other, so they evict each other on every
iteration (paper Section 3).  For uniformly generated reference pairs the
cache distance is iteration-invariant, so the test is exact modular
arithmetic; for pairs whose address difference varies across iterations we
fall back to a conservative interval test (does any iteration bring them
within a line, modulo the cache size?).

Only the *constant-delta* conflicts are fixable by inter-variable padding;
the report keeps the two kinds separate so PAD does not chase conflicts it
cannot eliminate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.ir.ranges import affine_interval, loop_var_ranges
from repro.ir.refs import ArrayRef
from repro.layout.layout import DataLayout
from repro.util.mathutil import circular_distance

__all__ = [
    "ConflictReport",
    "delta_interval",
    "interval_conflicts_with_cache",
    "nest_severe_conflicts",
    "program_severe_conflicts",
]


@dataclass(frozen=True)
class ConflictPair:
    """One severely conflicting reference pair inside one nest."""

    nest_label: str
    ref_a: ArrayRef
    ref_b: ArrayRef
    fixable: bool  # constant address delta => padding can separate them


@dataclass(frozen=True)
class ConflictReport:
    """All severe conflicts found for a (program, layout, cache) triple."""

    cache_size: int
    line_size: int
    pairs: tuple[ConflictPair, ...]

    @property
    def count(self) -> int:
        return len(self.pairs)

    @property
    def fixable(self) -> tuple[ConflictPair, ...]:
        return tuple(p for p in self.pairs if p.fixable)

    @property
    def is_clean(self) -> bool:
        return not self.pairs

    def __bool__(self) -> bool:
        return bool(self.pairs)


def delta_interval(
    program: Program,
    layout: DataLayout,
    nest: LoopNest,
    ref_a: ArrayRef,
    ref_b: ArrayRef,
) -> tuple[int, int]:
    """(min, max) of ``address(ref_a) - address(ref_b)`` over the nest."""
    expr = (
        ref_a.offset_expr(program.decl(ref_a.array))
        - ref_b.offset_expr(program.decl(ref_b.array))
        + (layout.base(ref_a.array) - layout.base(ref_b.array))
    )
    return affine_interval(expr, loop_var_ranges(nest))


def interval_conflicts_with_cache(
    dmin: int, dmax: int, cache_size: int, line_size: int
) -> bool:
    """Does some delta in [dmin, dmax] land within a line of a cache-size multiple?

    Exact for constant deltas (dmin == dmax); conservative otherwise
    (assumes the delta can take any value in the interval).
    """
    if dmin == dmax:
        return circular_distance(dmin % cache_size, 0, cache_size) < line_size
    # A conflict exists iff [dmin-(L-1), dmax+(L-1)] contains k*C.
    lo = dmin - (line_size - 1)
    hi = dmax + (line_size - 1)
    return hi // cache_size >= -((-lo) // cache_size)


def _unique_refs(nest: LoopNest) -> list[ArrayRef]:
    seen: list[ArrayRef] = []
    for r in nest.refs:
        key = ArrayRef(r.array, r.subscripts, is_write=False)
        if not any(u.array == key.array and u.subscripts == key.subscripts for u in seen):
            seen.append(key)
    return seen


def nest_severe_conflicts(
    program: Program,
    layout: DataLayout,
    nest: LoopNest,
    cache_size: int,
    line_size: int,
) -> list[ConflictPair]:
    """Severely conflicting pairs of references to *different* arrays.

    Intra-array conflicts are the business of intra-variable padding
    (:mod:`repro.transforms.intrapad`), not inter-variable padding, so
    same-array pairs are excluded here -- matching PAD's scope.
    """
    refs = _unique_refs(nest)
    ranges = loop_var_ranges(nest)
    pairs: list[ConflictPair] = []
    for i, ra in enumerate(refs):
        decl_a = program.decl(ra.array)
        off_a = ra.offset_expr(decl_a) + layout.base(ra.array)
        for rb in refs[i + 1 :]:
            if rb.array == ra.array:
                continue
            decl_b = program.decl(rb.array)
            expr = off_a - (rb.offset_expr(decl_b) + layout.base(rb.array))
            dmin, dmax = affine_interval(expr, ranges)
            if interval_conflicts_with_cache(dmin, dmax, cache_size, line_size):
                pairs.append(
                    ConflictPair(
                        nest_label=nest.label,
                        ref_a=ra,
                        ref_b=rb,
                        fixable=(dmin == dmax),
                    )
                )
    return pairs


def program_severe_conflicts(
    program: Program,
    layout: DataLayout,
    cache_size: int,
    line_size: int,
) -> ConflictReport:
    """Severe conflicts across all nests of the program."""
    pairs: list[ConflictPair] = []
    for nest in program.nests:
        pairs.extend(
            nest_severe_conflicts(program, layout, nest, cache_size, line_size)
        )
    return ConflictReport(cache_size=cache_size, line_size=line_size, pairs=tuple(pairs))
