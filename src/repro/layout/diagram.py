"""Cache-layout diagrams: the paper's dots-and-arcs model (Figures 3-5, 7).

A diagram places every (deduplicated) reference of a nest at its position
modulo the cache size, evaluated at a canonical iteration.  Group-reuse
arcs connect consecutive uniformly generated references; an arc is
**exploited** when (a) its memory span is smaller than the cache and (b)
no other reference's dot lies strictly under it.

Why the "no dot under the arc" rule works: all references advance through
memory at the same rate, so data touched by the leading reference at cache
position ``x`` waits ``d`` bytes of sweep (the arc length) until the
trailing reference re-touches it.  Any reference currently positioned
inside the open interval ``(x - d, x)`` reaches ``x`` sooner than the
trailing reference and evicts the line first.  This is exactly the visual
criterion described with Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.groups import ReuseArc, reuse_arcs
from repro.errors import AnalysisError
from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.ir.ranges import canonical_env
from repro.ir.refs import ArrayRef
from repro.layout.layout import DataLayout

__all__ = ["Dot", "Arc", "CacheDiagram"]


@dataclass(frozen=True)
class Dot:
    """One reference's position on the cache ring."""

    ref: ArrayRef
    position: int
    multiplicity: int = 1


@dataclass(frozen=True)
class Arc:
    """A group-reuse arc drawn on the diagram."""

    reuse: ReuseArc
    trail_pos: int
    lead_pos: int
    exploited: bool


class CacheDiagram:
    """Dots-and-arcs picture of one nest on one cache level."""

    def __init__(
        self,
        program: Program,
        layout: DataLayout,
        nest: LoopNest,
        cache_size: int,
        line_size: int = 1,
    ):
        if cache_size <= 0:
            raise AnalysisError("cache_size must be positive")
        self.program = program
        self.layout = layout
        self.nest = nest
        self.cache_size = cache_size
        self.line_size = line_size
        self._build()

    def _position(self, ref: ArrayRef, env: dict[str, int]) -> int:
        decl = self.program.decl(ref.array)
        addr = self.layout.base(ref.array) + int(ref.offset_expr(decl).evaluate(env))
        return addr % self.cache_size

    def _build(self) -> None:
        env = canonical_env(self.nest)
        # Deduplicated dots with multiplicities.
        uniq: list[tuple[ArrayRef, int]] = []
        for r in self.nest.refs:
            key = ArrayRef(r.array, r.subscripts, is_write=False)
            for i, (u, m) in enumerate(uniq):
                if u.array == key.array and u.subscripts == key.subscripts:
                    uniq[i] = (u, m + 1)
                    break
            else:
                uniq.append((key, 1))
        self.dots: tuple[Dot, ...] = tuple(
            Dot(ref=r, position=self._position(r, env), multiplicity=m)
            for r, m in uniq
        )
        self.arcs: tuple[Arc, ...] = tuple(
            self._place_arc(a, env) for a in reuse_arcs(self.program, self.nest)
        )

    def _place_arc(self, arc: ReuseArc, env: dict[str, int]) -> Arc:
        trail = self._position(arc.trailing, env)
        lead = self._position(arc.leading, env)
        return Arc(
            reuse=arc,
            trail_pos=trail,
            lead_pos=lead,
            exploited=self._arc_exploited(arc, trail),
        )

    def _arc_exploited(self, arc: ReuseArc, trail_pos: int) -> bool:
        """No foreign dot may fall under the arc *or within one line of its
        endpoints* -- a dot superimposed on an endpoint is a severe conflict
        that flushes the reused data just as surely (Section 3.1.1: severe
        conflicts "would be illustrated by superimposing dots")."""
        d = arc.distance_bytes
        line = self.line_size
        if d < line:
            # Group-*spatial* reuse: both references ride the same cache
            # line, so the reuse survives any layout (and any level).
            return True
        if d + line > self.cache_size:
            return False  # the sweep itself flushes the data before reuse
        for dot in self.dots:
            # Skip the arc's own endpoints.
            if dot.ref.subscripts in (arc.trailing.subscripts, arc.leading.subscripts) and (
                dot.ref.array == arc.array
            ):
                continue
            rel = (dot.position - trail_pos) % self.cache_size
            if rel < d + line or rel > self.cache_size - line:
                return False
        return True

    # -- summary metrics ---------------------------------------------------
    @property
    def exploited_arcs(self) -> tuple[Arc, ...]:
        return tuple(a for a in self.arcs if a.exploited)

    @property
    def exploited_count(self) -> int:
        return len(self.exploited_arcs)

    @property
    def arc_count(self) -> int:
        return len(self.arcs)

    def trailing_refs_exploited(self) -> set[ArrayRef]:
        """Trailing references whose group reuse is exploited on this cache."""
        return {a.reuse.trailing for a in self.arcs if a.exploited}

    # -- rendering -----------------------------------------------------------
    def render_ascii(self, width: int = 72) -> str:
        """ASCII rendition: one box per nest, dots labeled by array name.

        Matches the visual idiom of the paper's figures well enough to be
        read the same way (arcs listed below the box with their status).
        """
        scale = self.cache_size / width
        row = ["-"] * width
        for dot in self.dots:
            col = min(width - 1, int(dot.position / scale))
            label = dot.ref.array[0]
            row[col] = label if row[col] == "-" else "*"
        lines = ["[" + "".join(row) + "]  (cache size %d)" % self.cache_size]
        for arc in self.arcs:
            status = "exploited" if arc.exploited else "LOST"
            lines.append(
                f"  arc {arc.reuse.trailing!r} <- {arc.reuse.leading!r} "
                f"span={arc.reuse.distance_bytes}B: {status}"
            )
        return "\n".join(lines)
