"""SVG rendering of cache-layout diagrams (publication-style Figures 3-5).

:func:`diagram_svg` draws one :class:`~repro.layout.diagram.CacheDiagram`
as the paper draws them: a box representing the cache, a dot per
reference at its cache position, and an arc per group-reuse pair --
solid when exploited, dashed red when lost.  Pure string generation, no
dependencies; the output parses as standalone SVG.
"""

from __future__ import annotations

import html

from repro.layout.diagram import CacheDiagram

__all__ = ["diagram_svg", "diagrams_svg"]

_PALETTE = [
    "#1f6f8b", "#c05640", "#5f7a3d", "#7b5aa6", "#b08a2e",
    "#3a7f7b", "#a6527a", "#546a8c", "#8a6f4d",
]


def _color(name: str, assigned: dict[str, str]) -> str:
    if name not in assigned:
        assigned[name] = _PALETTE[len(assigned) % len(_PALETTE)]
    return assigned[name]


def diagram_svg(
    diagram: CacheDiagram,
    width: int = 640,
    title: str | None = None,
) -> str:
    """One diagram as a standalone ``<svg>`` string."""
    box_h = 44
    arc_h = 52
    legend_h = 22
    height = arc_h + box_h + legend_h + 18
    scale = (width - 20) / diagram.cache_size
    x0, y_box = 10, arc_h + 6

    colors: dict[str, str] = {}
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="11">'
    ]
    if title:
        parts.append(
            f'<title>{html.escape(title)}</title>'
        )
    # The cache box.
    parts.append(
        f'<rect x="{x0}" y="{y_box}" width="{width - 20}" height="{box_h}" '
        f'fill="none" stroke="#444" stroke-width="1.2"/>'
    )
    # Arcs (drawn first, under the dots).
    for arc in diagram.arcs:
        x1 = x0 + arc.trail_pos * scale
        x2 = x0 + arc.lead_pos * scale
        if x2 < x1:  # wrapped arc: draw to the box edge suggestively
            x2 = width - 10
        mid = (x1 + x2) / 2
        lift = min(arc_h - 6, 10 + abs(x2 - x1) / 8)
        style = (
            'stroke="#2d7a2d" stroke-width="1.4"'
            if arc.exploited
            else 'stroke="#b03030" stroke-width="1.2" stroke-dasharray="4 3"'
        )
        parts.append(
            f'<path d="M {x1:.1f} {y_box} Q {mid:.1f} {y_box - lift:.1f} '
            f'{x2:.1f} {y_box}" fill="none" {style}/>'
        )
    # Dots with array labels.
    for dot in diagram.dots:
        cx = x0 + dot.position * scale
        c = _color(dot.ref.array, colors)
        parts.append(
            f'<circle cx="{cx:.1f}" cy="{y_box + box_h / 2:.1f}" r="4" '
            f'fill="{c}"/>'
        )
        if dot.multiplicity > 1:
            parts.append(
                f'<text x="{cx + 5:.1f}" y="{y_box + box_h / 2 - 6:.1f}" '
                f'fill="{c}">x{dot.multiplicity}</text>'
            )
    # Legend.
    lx = x0
    ly = y_box + box_h + 16
    for name, c in colors.items():
        parts.append(f'<circle cx="{lx + 4}" cy="{ly - 4}" r="4" fill="{c}"/>')
        parts.append(
            f'<text x="{lx + 12}" y="{ly}">{html.escape(name)}</text>'
        )
        lx += 14 + 8 * (len(name) + 1)
    parts.append(
        f'<text x="{width - 10}" y="{ly}" text-anchor="end" fill="#666">'
        f'{diagram.exploited_count}/{diagram.arc_count} arcs exploited, '
        f'cache {diagram.cache_size} B</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def diagrams_svg(
    program,
    layout,
    cache_size: int,
    line_size: int,
    width: int = 640,
) -> str:
    """All of a program's nests stacked into one SVG document."""
    blocks = []
    y = 0
    inner_parts = []
    for nest in program.nests:
        d = CacheDiagram(program, layout, nest, cache_size, line_size)
        svg = diagram_svg(d, width=width, title=nest.label)
        # Strip the outer tag and translate.
        body = svg[svg.index(">") + 1 : svg.rindex("</svg>")]
        inner_parts.append(f'<g transform="translate(0 {y})">{body}</g>')
        y += 140
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{y}" font-family="monospace" font-size="11">'
        + "".join(inner_parts)
        + "</svg>"
    )
