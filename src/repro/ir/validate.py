"""Static program validation.

Checks an IR program without generating a single address:

* **subscript bounds** -- every reference's per-dimension subscript range
  (by interval analysis over the loop ranges) must stay within the
  declaration; catches off-by-one stencil bounds at build time instead of
  deep inside a 20-million-reference trace;
* **dead arrays** -- declared but never referenced (usually a kernel
  modeling mistake);
* **write-only arrays** -- stored to but never read anywhere (legal, but
  worth a warning: the paper's programs always consume what they produce
  somewhere);
* **empty loops** -- a nest whose static trip count is zero.

``validate_program`` returns the findings; ``check_program`` raises on
errors (bounds violations) and ignores warnings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError
from repro.ir.program import Program
from repro.ir.ranges import affine_interval, loop_var_ranges

__all__ = ["Finding", "validate_program", "check_program"]


@dataclass(frozen=True)
class Finding:
    """One validation result."""

    severity: str  # "error" | "warning"
    where: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.where}: {self.message}"


def validate_program(program: Program) -> list[Finding]:
    """All findings for the program, errors first."""
    findings: list[Finding] = []

    referenced: set[str] = set()
    read: set[str] = set()

    for nest in program.nests:
        where = f"{program.name}/{nest.label or nest.loop_vars}"
        try:
            ranges = loop_var_ranges(nest)
        except IRError as exc:
            findings.append(Finding("error", where, f"unrangeable bounds: {exc}"))
            continue
        if nest.is_rectangular and nest.iterations() == 0:
            findings.append(Finding("warning", where, "loop nest never executes"))
        for st in nest.body:
            for ref in st.refs:
                referenced.add(ref.array)
                if not ref.is_write:
                    read.add(ref.array)
                decl = program.decl(ref.array)
                for dim, (sub, extent) in enumerate(
                    zip(ref.subscripts, decl.shape)
                ):
                    lo, hi = affine_interval(sub, ranges)
                    if lo < 1 or hi > extent:
                        findings.append(
                            Finding(
                                "error",
                                where,
                                f"{ref!r} dim {dim + 1} spans {lo}..{hi}, "
                                f"declared 1..{extent}",
                            )
                        )

    for decl in program.arrays:
        if decl.name not in referenced:
            findings.append(
                Finding("warning", program.name, f"array {decl.name} is never referenced")
            )
        elif decl.name not in read:
            findings.append(
                Finding(
                    "warning",
                    program.name,
                    f"array {decl.name} is written but never read",
                )
            )

    findings.sort(key=lambda f: (f.severity != "error", f.where))
    return findings


def check_program(program: Program) -> None:
    """Raise :class:`IRError` listing every bounds error (warnings pass)."""
    errors = [f for f in validate_program(program) if f.severity == "error"]
    if errors:
        raise IRError(
            "program validation failed:\n" + "\n".join(str(f) for f in errors)
        )
