"""Affine expressions over loop index variables.

Every subscript and loop bound in the IR is an :class:`AffineExpr`:
``c0 + c1*i + c2*j + ...`` with integer coefficients.  Affine expressions
support exact evaluation (scalar or vectorized over NumPy index grids) and
substitution, which is how transformations such as strip-mining and fusion
rewrite subscripts without symbolic algebra packages.
"""

from __future__ import annotations

from typing import Mapping, Union

import numpy as np

from repro.errors import IRError

__all__ = ["AffineExpr", "var", "const"]

ExprLike = Union["AffineExpr", int]


class AffineExpr:
    """Immutable integer-affine expression ``const + sum(coeff[v] * v)``."""

    __slots__ = ("_terms", "_const", "_hash")

    def __init__(self, terms: Mapping[str, int] | None = None, constant: int = 0):
        clean = {}
        for name, coeff in (terms or {}).items():
            if not isinstance(name, str) or not name:
                raise IRError(f"variable names must be non-empty strings, got {name!r}")
            coeff = int(coeff)
            if coeff != 0:
                clean[name] = coeff
        self._terms: tuple[tuple[str, int], ...] = tuple(sorted(clean.items()))
        self._const = int(constant)
        self._hash = hash((self._terms, self._const))

    # -- construction -----------------------------------------------------
    @staticmethod
    def wrap(value: ExprLike) -> "AffineExpr":
        """Coerce an int into a constant expression (AffineExprs pass through)."""
        if isinstance(value, AffineExpr):
            return value
        if isinstance(value, (int, np.integer)):
            return AffineExpr(constant=int(value))
        raise IRError(f"cannot interpret {value!r} as an affine expression")

    # -- inspection -------------------------------------------------------
    @property
    def constant(self) -> int:
        return self._const

    @property
    def terms(self) -> dict[str, int]:
        """Variable -> coefficient mapping (zero coefficients omitted)."""
        return dict(self._terms)

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self._terms)

    def coeff(self, name: str) -> int:
        """Coefficient of variable ``name`` (0 if absent)."""
        for n, c in self._terms:
            if n == name:
                return c
        return 0

    @property
    def is_constant(self) -> bool:
        return not self._terms

    def depends_on(self, name: str) -> bool:
        return self.coeff(name) != 0

    # -- algebra ----------------------------------------------------------
    def __add__(self, other: ExprLike) -> "AffineExpr":
        other = AffineExpr.wrap(other)
        terms = dict(self._terms)
        for n, c in other._terms:
            terms[n] = terms.get(n, 0) + c
        return AffineExpr(terms, self._const + other._const)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr({n: -c for n, c in self._terms}, -self._const)

    def __sub__(self, other: ExprLike) -> "AffineExpr":
        return self + (-AffineExpr.wrap(other))

    def __rsub__(self, other: ExprLike) -> "AffineExpr":
        return AffineExpr.wrap(other) + (-self)

    def __mul__(self, k: int) -> "AffineExpr":
        if isinstance(k, AffineExpr):
            if k.is_constant:
                k = k.constant
            else:
                raise IRError("product of two non-constant affine expressions")
        k = int(k)
        return AffineExpr({n: c * k for n, c in self._terms}, self._const * k)

    __rmul__ = __mul__

    # -- evaluation / substitution ---------------------------------------
    def evaluate(self, env: Mapping[str, Union[int, np.ndarray]]):
        """Evaluate given values (ints or broadcastable arrays) for all variables.

        Raises :class:`IRError` if a variable is missing from ``env``.
        """
        result: Union[int, np.ndarray] = self._const
        for name, coeff in self._terms:
            if name not in env:
                raise IRError(f"no value provided for variable {name!r} in {self}")
            result = result + coeff * env[name]
        return result

    def substitute(self, name: str, replacement: ExprLike) -> "AffineExpr":
        """Replace variable ``name`` with another affine expression."""
        c = self.coeff(name)
        if c == 0:
            return self
        rest = AffineExpr(
            {n: k for n, k in self._terms if n != name}, self._const
        )
        return rest + AffineExpr.wrap(replacement) * c

    def rename(self, mapping: Mapping[str, str]) -> "AffineExpr":
        """Rename variables, e.g. ``{"i": "ii"}``.  Renames must not collide."""
        terms: dict[str, int] = {}
        for n, c in self._terms:
            new = mapping.get(n, n)
            if new in terms:
                raise IRError(f"rename collision on {new!r} in {self}")
            terms[new] = c
        return AffineExpr(terms, self._const)

    # -- dunder plumbing ---------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, np.integer)):
            other = AffineExpr.wrap(int(other))
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self._terms == other._terms and self._const == other._const

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for n, c in self._terms:
            if c == 1:
                parts.append(n)
            elif c == -1:
                parts.append(f"-{n}")
            else:
                parts.append(f"{c}*{n}")
        if self._const or not parts:
            parts.append(str(self._const))
        out = " + ".join(parts)
        return out.replace("+ -", "- ")


def var(name: str) -> AffineExpr:
    """The affine expression consisting of a single variable."""
    return AffineExpr({name: 1})


def const(value: int) -> AffineExpr:
    """A constant affine expression."""
    return AffineExpr(constant=value)
