"""Loop-nest intermediate representation.

A tiny "mini-Fortran" IR sufficient to express the paper's programs:
column-major arrays, perfect loop nests with affine bounds, and statements
whose operands are array references with affine subscripts.  The IR is the
object that every transformation in :mod:`repro.transforms` rewrites, that
:mod:`repro.analysis` reasons about, and that :mod:`repro.trace` lowers to
address traces for the cache simulator.
"""

from repro.ir.affine import AffineExpr, const, var
from repro.ir.arrays import ArrayDecl
from repro.ir.refs import ArrayRef
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.program import Program
from repro.ir.builder import ProgramBuilder

__all__ = [
    "AffineExpr",
    "ArrayDecl",
    "ArrayRef",
    "Loop",
    "LoopNest",
    "Statement",
    "Program",
    "ProgramBuilder",
    "var",
    "const",
]
