"""Array declarations with Fortran (column-major, 1-based) semantics.

The paper's programs are Fortran, so arrays here are column-major: the
*first* subscript is the fastest-varying in memory, and the "column size"
(first-dimension extent times the element size) is the quantity all the
padding arguments are phrased in.  Subscripts are 1-based as in Fortran.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError

__all__ = ["ArrayDecl"]


@dataclass(frozen=True)
class ArrayDecl:
    """Declaration of one array variable.

    Parameters
    ----------
    name:
        Variable name, unique within a program.
    shape:
        Extent of each dimension, first dimension contiguous (column-major).
    element_size:
        Bytes per element; 8 for REAL*8 (the default), 4 for REAL*4.
    """

    name: str
    shape: tuple[int, ...]
    element_size: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise IRError("array name must be non-empty")
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        if not self.shape:
            raise IRError(f"array {self.name}: needs at least one dimension")
        if any(s <= 0 for s in self.shape):
            raise IRError(f"array {self.name}: non-positive extent in {self.shape}")
        if self.element_size <= 0:
            raise IRError(f"array {self.name}: element_size must be positive")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def size_bytes(self) -> int:
        return self.num_elements * self.element_size

    @property
    def strides_bytes(self) -> tuple[int, ...]:
        """Column-major byte stride of each dimension."""
        strides = []
        s = self.element_size
        for extent in self.shape:
            strides.append(s)
            s *= extent
        return tuple(strides)

    @property
    def column_size_bytes(self) -> int:
        """Bytes in one column (first-dimension extent * element size).

        For a 1-D array this is simply the whole array.  This is the
        quantity the paper compares against cache sizes throughout
        Section 3 ("the cache size is slightly more than double the common
        column size").
        """
        return self.shape[0] * self.element_size

    def element_offset(self, subscripts: tuple[int, ...]) -> int:
        """Byte offset of a concrete (1-based) subscript tuple from the base."""
        if len(subscripts) != self.rank:
            raise IRError(
                f"array {self.name} has rank {self.rank}, got {len(subscripts)} subscripts"
            )
        off = 0
        for idx, extent, stride in zip(subscripts, self.shape, self.strides_bytes):
            if not (1 <= idx <= extent):
                raise IRError(
                    f"array {self.name}: subscript {idx} out of bounds 1..{extent}"
                )
            off += (idx - 1) * stride
        return off
