"""Loops, statements, and perfect loop nests.

A :class:`LoopNest` is a perfect nest -- loops from outermost to innermost
wrapping a straight-line body of :class:`Statement` objects.  That covers
every program in the paper (Figures 1, 2, 6, 8); imperfect constructs such
as LINPACKD's pivot search are modeled as adjacent nests (see
``repro.kernels``).  Loop bounds are affine in *enclosing* loop variables,
which is what triangular nests (Gaussian elimination) and tiled nests
(``min`` bounds are pre-clipped by the tiling transform) need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError
from repro.ir.affine import AffineExpr
from repro.ir.refs import ArrayRef

__all__ = ["Loop", "Statement", "LoopNest"]


@dataclass(frozen=True)
class Loop:
    """A DO loop: ``do var = lower, upper, step`` (inclusive bounds).

    ``extra_uppers`` holds additional upper bounds (effective upper is
    ``min(upper, *extra_uppers)``) -- tiling introduces these
    (``do I = II, min(II+H-1, N)``, Figure 8).  ``extra_lowers`` is the
    symmetric ``max(lower, *extra_lowers)`` form that skewed time-step
    tiling needs (Song & Li [25], Section 5's exception).  They are the
    only non-affine constructs the IR needs.
    """

    var: str
    lower: AffineExpr
    upper: AffineExpr
    step: int = 1
    extra_uppers: tuple[AffineExpr, ...] = ()
    extra_lowers: tuple[AffineExpr, ...] = ()

    def __post_init__(self) -> None:
        if not self.var:
            raise IRError("loop variable must be named")
        object.__setattr__(self, "lower", AffineExpr.wrap(self.lower))
        object.__setattr__(self, "upper", AffineExpr.wrap(self.upper))
        object.__setattr__(
            self, "extra_uppers", tuple(AffineExpr.wrap(e) for e in self.extra_uppers)
        )
        object.__setattr__(
            self, "extra_lowers", tuple(AffineExpr.wrap(e) for e in self.extra_lowers)
        )
        if self.step == 0:
            raise IRError(f"loop {self.var}: step must be non-zero")
        for bound in self.all_bounds:
            if bound.depends_on(self.var):
                raise IRError(
                    f"loop {self.var}: bounds may not reference the loop variable"
                )
        if (self.extra_uppers or self.extra_lowers) and self.step < 0:
            raise IRError(
                f"loop {self.var}: min/max-style bounds require a positive step"
            )

    @property
    def all_bounds(self) -> tuple[AffineExpr, ...]:
        return (self.lower, self.upper) + self.extra_uppers + self.extra_lowers

    @property
    def uppers(self) -> tuple[AffineExpr, ...]:
        return (self.upper,) + self.extra_uppers

    @property
    def lowers(self) -> tuple[AffineExpr, ...]:
        return (self.lower,) + self.extra_lowers

    @property
    def is_rectangular(self) -> bool:
        """True when every bound is a compile-time constant."""
        return all(b.is_constant for b in self.all_bounds)

    def effective_upper(self, env) -> int:
        """Evaluate ``min(upper, *extra_uppers)`` at concrete outer indices."""
        return min(int(u.evaluate(env)) for u in self.uppers)

    def effective_lower(self, env) -> int:
        """Evaluate ``max(lower, *extra_lowers)`` at concrete outer indices."""
        return max(int(l.evaluate(env)) for l in self.lowers)

    def concrete_trip(self, env) -> tuple[int, int]:
        """``(first value, trip count)`` at concrete outer indices.

        The loop's value set is the arithmetic progression
        ``first + step*j`` for ``j in range(count)`` -- exactly the
        values the trace generator walks, so footprint enumeration and
        trace generation cannot disagree on which indices execute.
        """
        lo = self.effective_lower(env)
        hi = self.effective_upper(env)
        count = (hi - lo) // self.step + 1 if (hi - lo) * self.step >= 0 else 0
        return lo, max(0, count)

    def trip_count(self) -> int:
        """Iteration count for constant bounds (raises otherwise)."""
        if not self.is_rectangular:
            raise IRError(f"loop {self.var} has symbolic bounds")
        lo = max(l.constant for l in self.lowers)
        hi = min(u.constant for u in self.uppers)
        if self.step > 0:
            return max(0, (hi - lo) // self.step + 1) if hi >= lo else 0
        return max(0, (lo - hi) // (-self.step) + 1) if lo >= hi else 0

    def reversed(self) -> "Loop":
        """The same iteration set walked in the opposite order."""
        if not self.is_rectangular:
            raise IRError(f"cannot reverse loop {self.var} with symbolic bounds")
        if self.extra_uppers or self.extra_lowers:
            raise IRError(f"cannot reverse loop {self.var} with min/max bounds")
        lo, st = self.lower.constant, self.step
        count = self.trip_count()
        last = lo + (count - 1) * st if count else lo
        return Loop(self.var, AffineExpr.wrap(last), AffineExpr.wrap(lo), -st)

    def __repr__(self) -> str:
        s = f", {self.step}" if self.step != 1 else ""
        return f"do {self.var} = {self.lower!r}, {self.upper!r}{s}"


@dataclass(frozen=True)
class Statement:
    """One assignment: ordered reads followed by an optional write.

    ``refs`` lists *all* memory operands in the order the generated code
    touches them (reads in textual order, then the store); that order is
    exactly the order addresses enter the simulated trace.  ``flops``
    counts floating-point operations for the MFLOPS model; ``label`` is
    for diagnostics.
    """

    refs: tuple[ArrayRef, ...]
    flops: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "refs", tuple(self.refs))
        if not self.refs:
            raise IRError("statement must reference at least one array")
        for r in self.refs:
            if not isinstance(r, ArrayRef):
                raise IRError(f"statement operand {r!r} is not an ArrayRef")
        if self.flops < 0:
            raise IRError("flops must be non-negative")
        writes = [r for r in self.refs if r.is_write]
        if len(writes) > 1:
            raise IRError("statement may have at most one store")

    @property
    def reads(self) -> tuple[ArrayRef, ...]:
        return tuple(r for r in self.refs if not r.is_write)

    @property
    def write(self) -> ArrayRef | None:
        for r in self.refs:
            if r.is_write:
                return r
        return None

    def substitute(self, name: str, replacement) -> "Statement":
        return Statement(
            tuple(r.substitute(name, replacement) for r in self.refs),
            self.flops,
            self.label,
        )

    def rename(self, mapping) -> "Statement":
        return Statement(
            tuple(r.rename(mapping) for r in self.refs), self.flops, self.label
        )


@dataclass(frozen=True)
class LoopNest:
    """A perfect loop nest: ``loops`` outermost-first around ``body``."""

    loops: tuple[Loop, ...]
    body: tuple[Statement, ...]
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "loops", tuple(self.loops))
        object.__setattr__(self, "body", tuple(self.body))
        if not self.loops:
            raise IRError("nest needs at least one loop")
        if not self.body:
            raise IRError("nest needs at least one statement")
        seen: set[str] = set()
        for lp in self.loops:
            if lp.var in seen:
                raise IRError(f"duplicate loop variable {lp.var!r} in nest")
            seen.add(lp.var)
        # Bounds may reference only *outer* loop variables.
        outer: set[str] = set()
        for lp in self.loops:
            for bound in lp.all_bounds:
                for v in bound.variables:
                    if v not in outer:
                        raise IRError(
                            f"loop {lp.var}: bound uses {v!r}, which is not an "
                            f"enclosing loop variable"
                        )
            outer.add(lp.var)
        for st in self.body:
            for ref in st.refs:
                for v in ref.variables:
                    if v not in seen:
                        raise IRError(
                            f"reference {ref!r} uses unknown loop variable {v!r}"
                        )

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def loop_vars(self) -> tuple[str, ...]:
        return tuple(lp.var for lp in self.loops)

    @property
    def refs(self) -> tuple[ArrayRef, ...]:
        """All references in statement order."""
        out: list[ArrayRef] = []
        for st in self.body:
            out.extend(st.refs)
        return tuple(out)

    @property
    def refs_per_iteration(self) -> int:
        return sum(len(st.refs) for st in self.body)

    @property
    def flops_per_iteration(self) -> int:
        return sum(st.flops for st in self.body)

    @property
    def is_rectangular(self) -> bool:
        return all(lp.is_rectangular for lp in self.loops)

    def concrete_from(self, level: int) -> bool:
        """True when the sub-nest from ``level`` inward is rectangular once
        outer indices are fixed.

        Holds when no bound from ``level`` inward references a loop
        variable at or inside ``level`` -- the condition both the trace
        generator and the symbolic footprint enumeration need before they
        may treat the remaining loops as an independent product space.
        """
        inner_vars = {lp.var for lp in self.loops[level:]}
        return not any(
            v in inner_vars
            for lp in self.loops[level:]
            for bound in lp.all_bounds
            for v in bound.variables
        )

    def iterations(self) -> int:
        """Total iteration count.

        Rectangular nests multiply trip counts; nests with symbolic bounds
        (triangular) are counted by walking the loops whose bounds others
        depend on in Python and multiplying out the rest -- exact, and
        cheap because only outer loops carry dependences in practice.
        """
        if self.is_rectangular:
            n = 1
            for lp in self.loops:
                n *= lp.trip_count()
            return n

        def count(level: int, env: dict[str, int]) -> int:
            if level == self.depth:
                return 1
            remaining = self.loops[level:]
            inner_vars = {lp.var for lp in remaining}
            concrete = all(
                not any(v in inner_vars for v in b.variables)
                for lp in remaining
                for b in lp.all_bounds
            )
            if concrete:
                total = 1
                for lp in remaining:
                    lo = lp.effective_lower(env)
                    hi = lp.effective_upper(env)
                    span = (hi - lo) // lp.step + 1 if (hi - lo) * lp.step >= 0 else 0
                    total *= max(0, span)
                return total
            lp = self.loops[level]
            lo = lp.effective_lower(env)
            hi = lp.effective_upper(env)
            total = 0
            for value in range(lo, hi + (1 if lp.step > 0 else -1), lp.step):
                child = dict(env)
                child[lp.var] = value
                total += count(level + 1, child)
            return total

        return count(0, {})

    def arrays_used(self) -> tuple[str, ...]:
        return tuple(sorted({r.array for r in self.refs}))

    def innermost(self) -> Loop:
        return self.loops[-1]

    def with_loops(self, loops: tuple[Loop, ...]) -> "LoopNest":
        return LoopNest(loops, self.body, self.label)

    def with_body(self, body: tuple[Statement, ...]) -> "LoopNest":
        return LoopNest(self.loops, body, self.label)
