"""Array references: an array name plus affine subscripts.

A reference like ``A(i, j+1)`` is ``ArrayRef("A", (var("i"), var("j")+1))``.
Given the owning :class:`~repro.ir.arrays.ArrayDecl`, a reference lowers to
a single affine expression for its byte offset from the array base --
the form both the trace generator and the padding analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import IRError
from repro.ir.affine import AffineExpr
from repro.ir.arrays import ArrayDecl

__all__ = ["ArrayRef"]


@dataclass(frozen=True)
class ArrayRef:
    """One textual array reference.

    ``is_write`` records whether this operand is stored to; the cache model
    treats loads and stores identically (as the paper's simulations do) but
    semantic checks and the NumPy executor need the distinction.
    """

    array: str
    subscripts: tuple[AffineExpr, ...]
    is_write: bool = False

    def __post_init__(self) -> None:
        if not self.array:
            raise IRError("reference needs an array name")
        subs = tuple(AffineExpr.wrap(s) for s in self.subscripts)
        if not subs:
            raise IRError(f"reference to {self.array} needs at least one subscript")
        object.__setattr__(self, "subscripts", subs)

    @property
    def rank(self) -> int:
        return len(self.subscripts)

    @property
    def variables(self) -> tuple[str, ...]:
        """All loop variables appearing in any subscript (sorted, unique)."""
        seen: set[str] = set()
        for s in self.subscripts:
            seen.update(s.variables)
        return tuple(sorted(seen))

    def offset_expr(self, decl: ArrayDecl) -> AffineExpr:
        """Byte offset from the array base as an affine expression.

        Uses Fortran 1-based column-major addressing:
        ``sum_k (subscript_k - 1) * stride_k``.
        """
        if decl.name != self.array:
            raise IRError(f"declaration is for {decl.name!r}, reference is to {self.array!r}")
        if decl.rank != self.rank:
            raise IRError(
                f"array {self.array} has rank {decl.rank}, reference has {self.rank}"
            )
        off = AffineExpr()
        for sub, stride in zip(self.subscripts, decl.strides_bytes):
            off = off + (sub - 1) * stride
        return off

    def substitute(self, name: str, replacement) -> "ArrayRef":
        """Rewrite every subscript, replacing loop variable ``name``."""
        return ArrayRef(
            self.array,
            tuple(s.substitute(name, replacement) for s in self.subscripts),
            self.is_write,
        )

    def rename(self, mapping) -> "ArrayRef":
        return ArrayRef(
            self.array,
            tuple(s.rename(mapping) for s in self.subscripts),
            self.is_write,
        )

    def same_array(self, other: "ArrayRef") -> bool:
        return self.array == other.array

    def is_uniformly_generated_with(self, other: "ArrayRef") -> bool:
        """True when both refs address the same array with subscripts that
        differ only by constants (Gannon et al.'s *uniformly generated*
        references).  Group reuse is only tracked between such pairs."""
        if not self.same_array(other) or self.rank != other.rank:
            return False
        return all(
            (a - b).is_constant for a, b in zip(self.subscripts, other.subscripts)
        )

    def __repr__(self) -> str:
        subs = ",".join(repr(s) for s in self.subscripts)
        tag = "W" if self.is_write else "R"
        return f"{self.array}({subs})[{tag}]"


def as_refs(items: Sequence[ArrayRef]) -> tuple[ArrayRef, ...]:
    """Validate and freeze a sequence of references."""
    out = tuple(items)
    for r in out:
        if not isinstance(r, ArrayRef):
            raise IRError(f"expected ArrayRef, got {type(r).__name__}")
    return out
