"""A small DSL for constructing IR programs readably.

Example -- the paper's Figure 2 program::

    b = ProgramBuilder("fig2", n=64)
    A, B, C = (b.array(x, (64, 64)) for x in "ABC")
    i, j = b.vars("i", "j")
    b.nest(
        [b.loop(j, 2, 63), b.loop(i, 1, 64)],
        [
            b.assign(A[i, j], reads=[A[i, j + 1]], flops=1),
            b.assign(B[i, j], reads=[B[i, j + 1]], flops=1),
            b.assign(C[i, j], reads=[C[i, j + 1]], flops=1),
        ],
    )
    prog = b.build()
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.errors import IRError
from repro.ir.affine import AffineExpr, var
from repro.ir.arrays import ArrayDecl
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.program import Program
from repro.ir.refs import ArrayRef

__all__ = ["ArrayHandle", "ProgramBuilder"]

Subscript = Union[AffineExpr, int]


class ArrayHandle:
    """Indexing sugar: ``A[i, j+1]`` builds an :class:`ArrayRef` (a read)."""

    def __init__(self, decl: ArrayDecl):
        self.decl = decl

    @property
    def name(self) -> str:
        return self.decl.name

    def __getitem__(self, subscripts) -> ArrayRef:
        if not isinstance(subscripts, tuple):
            subscripts = (subscripts,)
        if len(subscripts) != self.decl.rank:
            raise IRError(
                f"array {self.name} has rank {self.decl.rank}, "
                f"got {len(subscripts)} subscripts"
            )
        return ArrayRef(
            self.name, tuple(AffineExpr.wrap(s) for s in subscripts), is_write=False
        )

    def __repr__(self) -> str:
        return f"ArrayHandle({self.decl!r})"


class ProgramBuilder:
    """Accumulates arrays and nests, then :meth:`build`\\ s a :class:`Program`."""

    def __init__(self, name: str):
        self._name = name
        self._arrays: list[ArrayDecl] = []
        self._nests: list[LoopNest] = []

    # -- declarations -------------------------------------------------------
    def array(
        self, name: str, shape: Sequence[int], element_size: int = 8
    ) -> ArrayHandle:
        """Declare a column-major array and return an indexable handle."""
        decl = ArrayDecl(name, tuple(shape), element_size)
        if any(a.name == name for a in self._arrays):
            raise IRError(f"array {name!r} already declared")
        self._arrays.append(decl)
        return ArrayHandle(decl)

    @staticmethod
    def vars(*names: str) -> tuple[AffineExpr, ...]:
        """Fresh loop-variable expressions: ``i, j = b.vars("i", "j")``."""
        return tuple(var(n) for n in names)

    # -- statements -----------------------------------------------------------
    @staticmethod
    def assign(
        target: ArrayRef,
        reads: Iterable[ArrayRef] = (),
        flops: int = 0,
        label: str = "",
    ) -> Statement:
        """``target = f(reads...)``: reads in order, then the store."""
        w = ArrayRef(target.array, target.subscripts, is_write=True)
        return Statement(tuple(reads) + (w,), flops=flops, label=label)

    @staticmethod
    def use(reads: Iterable[ArrayRef], flops: int = 0, label: str = "") -> Statement:
        """A statement with loads only (e.g. reduction into a scalar)."""
        return Statement(tuple(reads), flops=flops, label=label)

    # -- loops ----------------------------------------------------------------
    @staticmethod
    def loop(index: Union[AffineExpr, str], lower, upper, step: int = 1) -> Loop:
        """``do index = lower, upper, step``; index may be a var() or name."""
        if isinstance(index, AffineExpr):
            names = index.variables
            if len(names) != 1 or index.coeff(names[0]) != 1 or index.constant != 0:
                raise IRError(f"loop index must be a bare variable, got {index!r}")
            name = names[0]
        else:
            name = index
        return Loop(name, AffineExpr.wrap(lower), AffineExpr.wrap(upper), step)

    def nest(
        self,
        loops: Sequence[Loop],
        body: Sequence[Statement],
        label: str = "",
    ) -> LoopNest:
        """Append a perfect nest (outermost loop first) to the program."""
        n = LoopNest(tuple(loops), tuple(body), label or f"nest{len(self._nests)}")
        self._nests.append(n)
        return n

    # -- finish -----------------------------------------------------------------
    def build(self) -> Program:
        return Program(self._name, tuple(self._arrays), tuple(self._nests))
