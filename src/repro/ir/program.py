"""Whole programs: declared arrays plus an ordered list of loop nests.

Matching the paper's SUIF setup (Section 6.1), all optimized variables live
in one global address space whose base addresses a
:class:`~repro.layout.DataLayout` controls; the :class:`Program` itself is
layout-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import IRError
from repro.ir.arrays import ArrayDecl
from repro.ir.loops import LoopNest
from repro.ir.refs import ArrayRef

__all__ = ["Program"]


@dataclass(frozen=True)
class Program:
    """An ordered sequence of loop nests over a set of declared arrays."""

    name: str
    arrays: tuple[ArrayDecl, ...]
    nests: tuple[LoopNest, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise IRError("program needs a name")
        object.__setattr__(self, "arrays", tuple(self.arrays))
        object.__setattr__(self, "nests", tuple(self.nests))
        names = [a.name for a in self.arrays]
        if len(set(names)) != len(names):
            raise IRError(f"duplicate array declarations in program {self.name}")
        decls = {a.name: a for a in self.arrays}
        for nest in self.nests:
            for ref in nest.refs:
                decl = decls.get(ref.array)
                if decl is None:
                    raise IRError(
                        f"program {self.name}: reference to undeclared array {ref.array!r}"
                    )
                if decl.rank != ref.rank:
                    raise IRError(
                        f"program {self.name}: {ref!r} has rank {ref.rank}, "
                        f"array declared rank {decl.rank}"
                    )

    # -- lookups -----------------------------------------------------------
    def decl(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"program {self.name}: no array named {name!r}")

    @property
    def array_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.arrays)

    def refs(self) -> Iterable[ArrayRef]:
        for nest in self.nests:
            yield from nest.refs

    def total_refs(self) -> int:
        """Total dynamic reference count (rectangular nests only)."""
        return sum(n.iterations() * n.refs_per_iteration for n in self.nests)

    def total_flops(self) -> int:
        return sum(n.iterations() * n.flops_per_iteration for n in self.nests)

    def total_data_bytes(self) -> int:
        return sum(a.size_bytes for a in self.arrays)

    # -- rewriting -----------------------------------------------------------
    def with_nests(self, nests: Iterable[LoopNest]) -> "Program":
        return Program(self.name, self.arrays, tuple(nests))

    def with_arrays(self, arrays: Iterable[ArrayDecl]) -> "Program":
        return Program(self.name, tuple(arrays), self.nests)

    def replace_nest(self, index: int, nest: LoopNest) -> "Program":
        nests = list(self.nests)
        nests[index] = nest
        return self.with_nests(nests)

    def renamed(self, name: str) -> "Program":
        return Program(name, self.arrays, self.nests)
