"""Interval evaluation of affine expressions over a nest's index ranges.

Conflict detection and footprint analysis need the *range* an affine
expression can take over a nest's iteration space.  For affine bounds this
is exact interval arithmetic: evaluate each loop's bounds over the ranges
of its enclosing loops, then propagate.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.affine import AffineExpr
from repro.ir.loops import LoopNest

__all__ = ["affine_interval", "loop_var_ranges", "canonical_env"]


def affine_interval(
    expr: AffineExpr, ranges: dict[str, tuple[int, int]]
) -> tuple[int, int]:
    """Tight (lo, hi) bounds of ``expr`` over independent variable ranges.

    Exact when variables are independent (coefficients contribute their
    extreme values separately); for loop nests with correlated bounds it is
    a sound over-approximation.
    """
    lo = hi = expr.constant
    for name, coeff in expr.terms.items():
        if name not in ranges:
            raise IRError(f"no range known for variable {name!r} in {expr!r}")
        vlo, vhi = ranges[name]
        if vlo > vhi:
            raise IRError(f"empty range for {name!r}: ({vlo}, {vhi})")
        if coeff >= 0:
            lo += coeff * vlo
            hi += coeff * vhi
        else:
            lo += coeff * vhi
            hi += coeff * vlo
    return lo, hi


def loop_var_ranges(nest: LoopNest) -> dict[str, tuple[int, int]]:
    """(min, max) value of each loop variable over the whole nest.

    Handles symbolic bounds (triangular nests) by interval-evaluating each
    bound over the enclosing variables' ranges.  Empty loops yield the
    degenerate range of their lower bound.
    """
    ranges: dict[str, tuple[int, int]] = {}
    for lp in nest.loops:
        lower_ivs = [affine_interval(l, ranges) for l in lp.lowers]
        lo_lo = max(iv[0] for iv in lower_ivs)
        lo_hi = max(iv[1] for iv in lower_ivs)
        upper_ivs = [affine_interval(u, ranges) for u in lp.uppers]
        hi_lo = min(iv[0] for iv in upper_ivs)
        hi_hi = min(iv[1] for iv in upper_ivs)
        if lp.step > 0:
            vmin, vmax = lo_lo, max(hi_hi, lo_lo)
        else:
            vmin, vmax = min(hi_lo, lo_hi), lo_hi
        ranges[lp.var] = (vmin, vmax)
    return ranges


def canonical_env(nest: LoopNest) -> dict[str, int]:
    """A representative iteration point: every loop at its first iteration.

    Used to place reference dots in cache-layout diagrams -- relative
    positions of uniformly generated references are iteration-invariant,
    so any common iteration serves.
    """
    env: dict[str, int] = {}
    for lp in nest.loops:
        env[lp.var] = lp.effective_lower(env)
    return env
