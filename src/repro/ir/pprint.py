"""Fortran-style pretty printing of IR programs.

Renders a :class:`~repro.ir.program.Program` as DO-loop pseudocode close
to the paper's figures, for documentation, debugging, and golden tests::

    real A(512,512), B(512,512)
    do j = 2, 511
      do i = 2, 511
        A(i,j) = f(B(i-1,j), B(i+1,j), B(i,j-1), B(i,j+1))   ! 4 flops
"""

from __future__ import annotations

from repro.ir.affine import AffineExpr
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.program import Program
from repro.ir.refs import ArrayRef

__all__ = ["format_program", "format_nest"]


def _expr(e: AffineExpr) -> str:
    return repr(e)


def _ref(r: ArrayRef) -> str:
    return f"{r.array}({','.join(_expr(s) for s in r.subscripts)})"


def _loop_header(lp: Loop) -> str:
    lower = _expr(lp.lower)
    if lp.extra_lowers:
        lower = "max(" + ", ".join(
            _expr(b) for b in lp.lowers
        ) + ")"
    upper = _expr(lp.upper)
    if lp.extra_uppers:
        upper = "min(" + ", ".join(
            _expr(b) for b in lp.uppers
        ) + ")"
    step = f", {lp.step}" if lp.step != 1 else ""
    return f"do {lp.var} = {lower}, {upper}{step}"


def _statement(st: Statement) -> str:
    write = st.write
    reads = ", ".join(_ref(r) for r in st.reads)
    if write is not None:
        body = f"{_ref(write)} = f({reads})" if reads else f"{_ref(write)} = ..."
    else:
        body = f"... = f({reads})"
    note = []
    if st.flops:
        note.append(f"{st.flops} flops")
    if st.label:
        note.append(st.label)
    return body + (f"   ! {', '.join(note)}" if note else "")


def format_nest(nest: LoopNest, indent: str = "") -> str:
    """One nest as indented DO loops."""
    lines = []
    pad = indent
    for lp in nest.loops:
        lines.append(pad + _loop_header(lp))
        pad += "  "
    for st in nest.body:
        lines.append(pad + _statement(st))
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Whole program: declarations then nests, separated by blank lines."""
    decls = []
    for a in program.arrays:
        dims = ",".join(str(s) for s in a.shape)
        kind = "real" if a.element_size == 8 else f"integer*{a.element_size}"
        decls.append(f"{kind} {a.name}({dims})")
    blocks = ["\n".join(decls)]
    for nest in program.nests:
        header = f"! {nest.label}" if nest.label else ""
        body = format_nest(nest)
        blocks.append((header + "\n" + body) if header else body)
    return "\n\n".join(blocks)
