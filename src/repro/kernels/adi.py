"""ADI32: 2-D ADI integration fragment (Livermore loop 8), Table 1.

Alternating-direction-implicit sweeps over 3-D arrays of extent ``n``
(default 32, so each array is 32 KB = twice the 16 KB L1 cache, making all
base addresses coincide on the cache).  The ``k``/``k-1`` plane references
are 8 KB apart -- and ``k``/``k-2`` references a full 16 KB apart, the
intra-variable severe conflict that Section 6.1 removes with column
padding before running PAD.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

__all__ = ["build"]

DEFAULT_N = 32


def build(n: int = DEFAULT_N) -> Program:
    """ADI integration over three (n, n, n) arrays: two directional sweeps."""
    b = ProgramBuilder(f"adi{n}")
    U = b.array("U", (n, n, n))
    A = b.array("A", (n, n, n))
    Bc = b.array("B", (n, n, n))
    i, j, k = b.vars("i", "j", "k")

    # Sweep along k (third dimension): solve tridiagonal systems forward.
    b.nest(
        [b.loop(k, 3, n), b.loop(j, 1, n), b.loop(i, 1, n)],
        [
            b.assign(
                U[i, j, k],
                reads=[U[i, j, k - 1], U[i, j, k - 2], A[i, j, k], Bc[i, j, k]],
                flops=4,
                label="k-sweep",
            )
        ],
        label="adi-k-forward",
    )
    # Sweep along j (second dimension).
    b.nest(
        [b.loop(k, 1, n), b.loop(j, 3, n), b.loop(i, 1, n)],
        [
            b.assign(
                U[i, j, k],
                reads=[U[i, j - 1, k], U[i, j - 2, k], A[i, j, k], Bc[i, j, k]],
                flops=4,
                label="j-sweep",
            )
        ],
        label="adi-j-forward",
    )
    return b.build()
