"""The paper's test programs (Table 1) as IR models.

Each kernel module exposes ``build(n=...) -> Program`` producing the
loop-nest IR of that program at a given problem size, with default sizes
matching Table 1's names (ADI32 -> 32, EXPL512 -> 512, ...).  The registry
(:mod:`repro.kernels.registry`) indexes them all with Table 1 metadata.

The eight scientific kernels are modeled directly from their well-known
sources (Livermore loops, LINPACK); the NAS and SPEC95 applications are
synthetic stand-ins that reproduce each program's *array-conflict
structure* -- see DESIGN.md, Substitutions, for why that is the property
the paper's experiments exercise.
"""

from repro.kernels.registry import KERNELS, Kernel, get_kernel, kernel_names

__all__ = ["KERNELS", "Kernel", "get_kernel", "kernel_names"]
