"""Executable NumPy versions of the kernels, running on padded layouts.

The paper's timing experiments run real code whose arrays sit at the base
addresses the padding transformations chose.  We reproduce that by
allocating one flat float64 pool of the layout's total extent and handing
each kernel *views* into it at the padded offsets (column-major, as the
declarations say) -- so a padded layout changes real memory addresses, and
wall-clock timings respond to cache behaviour exactly as far as
CPython+NumPy lets them (see DESIGN.md, Substitutions: interpreter
overhead swamps most of the effect; the cycle model is the primary
series).

These implementations are also the semantic ground truth for
transformation tests: tiled matmul must equal untiled matmul bit-for-bit,
transposed-layout runs must equal originals, and so on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.ir.program import Program
from repro.layout.layout import DataLayout

__all__ = [
    "allocate_pool",
    "run_dot",
    "run_jacobi",
    "run_matmul",
    "run_matmul_tiled",
    "run_stencil_sweep",
]


def allocate_pool(
    program: Program, layout: DataLayout, fill: float | None = None
) -> dict[str, np.ndarray]:
    """One flat buffer with each array a Fortran-order view at its base.

    Requires every base address to be 8-byte aligned (true of all layouts
    produced by the padding transformations, whose pads are multiples of a
    cache line).  ``fill`` seeds every element; None leaves zeros.
    """
    total = layout.total_bytes
    if total % 8 != 0:
        total += 8 - total % 8
    pool = np.zeros(total // 8, dtype=np.float64)
    if fill is not None:
        pool[:] = fill
    views: dict[str, np.ndarray] = {}
    bases = layout.bases()
    for decl in program.arrays:
        base = bases[decl.name]
        if base % 8 != 0:
            raise ReproError(
                f"array {decl.name} base {base} is not 8-byte aligned; "
                f"numeric kernels need aligned layouts"
            )
        if decl.element_size != 8:
            # Integer arrays (IRR's edge lists) are not touched by the
            # float kernels; give them a float view of the right extent.
            count = -(-decl.size_bytes // 8)
        else:
            count = decl.num_elements
        flat = pool[base // 8 : base // 8 + count]
        if decl.element_size == 8:
            views[decl.name] = flat.reshape(decl.shape, order="F")
        else:
            views[decl.name] = flat
    return views


def run_dot(x: np.ndarray, z: np.ndarray, repeats: int = 1) -> float:
    """Livermore 3: q += Z(k) * X(k)."""
    q = 0.0
    for _ in range(repeats):
        q += float(np.dot(z, x))
    return q


def run_jacobi(a: np.ndarray, b: np.ndarray, steps: int = 1) -> float:
    """Five-point Jacobi sweep + copy-back; returns the final residual."""
    resid = 0.0
    for _ in range(steps):
        a[1:-1, 1:-1] = 0.25 * (
            b[:-2, 1:-1] + b[2:, 1:-1] + b[1:-1, :-2] + b[1:-1, 2:]
        )
        resid = float(np.abs(a[1:-1, 1:-1] - b[1:-1, 1:-1]).sum())
        b[1:-1, 1:-1] = a[1:-1, 1:-1]
    return resid


def run_matmul(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """Untiled i-j-k multiply accumulated into C (loop over K in Python,
    vectorized over I -- the J/K/I order of the IR model)."""
    n = a.shape[0]
    for j in range(n):
        cj = c[:, j]
        bj = b[:, j]
        for k in range(n):
            cj += a[:, k] * bj[k]


def run_matmul_tiled(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, tile_w: int, tile_h: int
) -> None:
    """Figure 8 tiling: KK by W, II by H, then J / K / I."""
    n = a.shape[0]
    for kk in range(0, n, tile_w):
        k_hi = min(kk + tile_w, n)
        for ii in range(0, n, tile_h):
            i_hi = min(ii + tile_h, n)
            a_tile = a[ii:i_hi, kk:k_hi]
            for j in range(n):
                cj = c[ii:i_hi, j]
                bj = b[kk:k_hi, j]
                cj += a_tile @ bj


def run_stencil_sweep(
    dst: np.ndarray, src: np.ndarray, steps: int = 1
) -> None:
    """Generic +-1-column stencil used by the timing harness for the
    stand-in programs: dst(i,j) = mean of src's j-1/j/j+1 columns."""
    for _ in range(steps):
        dst[:, 1:-1] = (src[:, :-2] + src[:, 1:-1] + src[:, 2:]) / 3.0
