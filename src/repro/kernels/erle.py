"""ERLE64: 3-D tridiagonal solver, Table 1.

Sweeps of a tridiagonal (Thomas-algorithm-style) solve along each
dimension of 64^3 arrays.  Each array is 2 MB; a (j, k) plane is 32 KB --
an exact multiple of the 16 KB L1 cache -- so ``k``/``k-1`` plane
references to the *same* array collide severely: the second program that
needs intra-variable padding before PAD (Section 6.1).
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

__all__ = ["build"]

DEFAULT_N = 64


def build(n: int = DEFAULT_N) -> Program:
    """Forward elimination + back substitution along k, then a j sweep."""
    b = ProgramBuilder(f"erle{n}")
    X = b.array("X", (n, n, n))
    A = b.array("A", (n, n, n))
    C = b.array("C", (n, n, n))
    i, j, k = b.vars("i", "j", "k")

    b.nest(
        [b.loop(k, 2, n), b.loop(j, 1, n), b.loop(i, 1, n)],
        [
            b.assign(
                X[i, j, k],
                reads=[X[i, j, k - 1], A[i, j, k], C[i, j, k]],
                flops=3,
                label="forward",
            )
        ],
        label="erle-forward-k",
    )
    b.nest(
        [b.loop(k, 2, n), b.loop(j, 1, n), b.loop(i, 1, n)],
        [
            b.assign(
                X[i, j, n + 1 - k],
                reads=[X[i, j, n + 2 - k], C[i, j, n + 1 - k]],
                flops=2,
                label="backward",
            )
        ],
        label="erle-backward-k",
    )
    b.nest(
        [b.loop(k, 1, n), b.loop(j, 2, n), b.loop(i, 1, n)],
        [
            b.assign(
                X[i, j, k],
                reads=[X[i, j - 1, k], A[i, j, k]],
                flops=2,
                label="j-sweep",
            )
        ],
        label="erle-forward-j",
    )
    return b.build()
