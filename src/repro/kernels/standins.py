"""Synthetic stand-ins for the NAS and SPEC95 applications of Table 1.

The real applications are thousands of lines of Fortran we cannot ship;
what the paper's padding experiments exercise is each program's
*array-conflict structure*: how many same-sized column-major arrays are
traversed together, with what column offsets, and whether the array sizes
are resonant with the cache sizes (base addresses coinciding modulo 16 KB
/ 512 KB).  Each stand-in reproduces that structure at a representative
problem size -- resonant sizes for the programs Figure 9 shows improving
(applu, appsp, su2cor, turb3d, mgrid, fftpde, hydro2d), non-resonant ones
for the programs that do not (buk, cgm, embar, apsi, fpppp, wave5).
See DESIGN.md, Substitutions.

``swim`` and ``tomcatv`` get fuller models (multiple sweeps, several
same-array column arcs) because Figure 10's GROUPPAD study depends on
their group-reuse structure.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program
from repro.kernels import shal as _shal

__all__ = [
    "build_appbt", "build_applu", "build_appsp", "build_buk", "build_cgm",
    "build_embar", "build_fftpde", "build_mgrid",
    "build_apsi", "build_fpppp", "build_hydro2d", "build_su2cor",
    "build_swim", "build_tomcatv", "build_turb3d", "build_wave5",
]


def _stencil_program(
    name: str,
    n: int,
    array_names: list[str],
    nests: int = 2,
    column_arc: bool = True,
) -> Program:
    """A generic multi-array 2-D sweep: each statement writes one array
    from its neighbours in the list, with a same-array column arc when
    ``column_arc`` (the group-reuse carrier GROUPPAD works on)."""
    b = ProgramBuilder(name)
    handles = [b.array(a, (n, n)) for a in array_names]
    i, j = b.vars("i", "j")
    for nest_idx in range(nests):
        stmts = []
        for s, h in enumerate(handles):
            src = handles[(s + 1 + nest_idx) % len(handles)]
            reads = [src[i, j]]
            if column_arc:
                reads.append(h[i, j + 1])
            stmts.append(b.assign(h[i, j], reads=reads, flops=2, label=h.name))
        b.nest(
            [b.loop(j, 2, n - 1), b.loop(i, 1, n)],
            stmts,
            label=f"{name}-sweep{nest_idx}",
        )
    return b.build()


def _sweep3d_program(name: str, n: int, array_names: list[str]) -> Program:
    """3-D seven-point-style sweep over (n, n, n) arrays."""
    b = ProgramBuilder(name)
    handles = [b.array(a, (n, n, n)) for a in array_names]
    i, j, k = b.vars("i", "j", "k")
    u, rest = handles[0], handles[1:]
    reads = [u[i - 1, j, k], u[i + 1, j, k], u[i, j - 1, k], u[i, j + 1, k],
             u[i, j, k - 1], u[i, j, k + 1]]
    stmts = [b.assign(rest[0][i, j, k], reads=reads, flops=7, label="stencil")]
    for h in rest[1:]:
        stmts.append(
            b.assign(h[i, j, k], reads=[u[i, j, k], h[i, j, k]], flops=2,
                     label=h.name)
        )
    b.nest(
        [b.loop(k, 2, n - 1), b.loop(j, 2, n - 1), b.loop(i, 2, n - 1)],
        stmts,
        label=f"{name}-sweep",
    )
    return b.build()


def _vector_program(name: str, n: int, array_names: list[str]) -> Program:
    """1-D streaming vector operations (BLAS-1 style)."""
    b = ProgramBuilder(name)
    handles = [b.array(a, (n,)) for a in array_names]
    (i,) = b.vars("i")
    stmts = []
    for s, h in enumerate(handles[:-1]):
        stmts.append(
            b.assign(
                h[i], reads=[handles[s + 1][i], h[i]], flops=2, label=h.name
            )
        )
    b.nest([b.loop(i, 1, n)], stmts, label=f"{name}-axpy")
    return b.build()


# ---------------------------------------------------------------- NAS ----

def build_appbt(n: int = 160) -> Program:
    """Block-tridiagonal PDE solver: five solution arrays, non-resonant n."""
    return _stencil_program("appbt", n, ["U1", "U2", "U3", "U4", "U5"], nests=3)


def build_applu(n: int = 192) -> Program:
    """Parabolic/elliptic PDE solver: resonant n (192^2*8 = 18 L1 caches)."""
    return _stencil_program("applu", n, ["U1", "U2", "U3", "U4", "U5"], nests=3)


def build_appsp(n: int = 128) -> Program:
    """Scalar-pentadiagonal solver: resonant n = 128."""
    return _stencil_program("appsp", n, ["V1", "V2", "V3", "V4", "V5"], nests=3)


def build_buk(n: int = 150_000) -> Program:
    """Integer bucket sort: streaming int sweeps, nothing to pad."""
    b = ProgramBuilder("buk")
    key = b.array("KEY", (n,), element_size=4)
    rank = b.array("RANK", (n,), element_size=4)
    (i,) = b.vars("i")
    b.nest([b.loop(i, 1, n)], [b.use(reads=[key[i]], flops=0, label="count")],
           label="buk-count")
    b.nest([b.loop(i, 1, n)],
           [b.assign(rank[i], reads=[key[i]], flops=0, label="rank")],
           label="buk-rank")
    return b.build()


def build_cgm(n: int = 15_000) -> Program:
    """Sparse conjugate gradient: BLAS-1 vector core, non-resonant length."""
    return _vector_program("cgm", n, ["X", "P", "Q", "R", "ZZ"])


def build_embar(n: int = 60_000) -> Program:
    """Monte Carlo: one streaming Gaussian-pairs buffer, conflict-free."""
    return _vector_program("embar", n, ["XX", "QQ"])


def build_fftpde(n: int = 64) -> Program:
    """3-D FFT: butterfly strides of n/2 over resonant (n,n,n) re/im arrays."""
    b = ProgramBuilder("fftpde")
    re = b.array("RE", (n, n, n))
    im = b.array("IM", (n, n, n))
    i, j, k = b.vars("i", "j", "k")
    h = n // 2
    b.nest(
        [b.loop(k, 1, n), b.loop(j, 1, n), b.loop(i, 1, h)],
        [
            b.assign(re[i, j, k], reads=[re[i, j, k], re[i + h, j, k],
                                         im[i + h, j, k]], flops=4,
                     label="bfly-re"),
            b.assign(im[i, j, k], reads=[im[i, j, k], im[i + h, j, k],
                                         re[i + h, j, k]], flops=4,
                     label="bfly-im"),
        ],
        label="fft-dim1",
    )
    b.nest(
        [b.loop(k, 1, n), b.loop(j, 1, h), b.loop(i, 1, n)],
        [
            b.assign(re[i, j, k], reads=[re[i, j, k], re[i, j + h, k],
                                         im[i, j + h, k]], flops=4,
                     label="bfly-re2"),
            b.assign(im[i, j, k], reads=[im[i, j, k], im[i, j + h, k],
                                         re[i, j + h, k]], flops=4,
                     label="bfly-im2"),
        ],
        label="fft-dim2",
    )
    return b.build()


def build_mgrid(n: int = 64) -> Program:
    """Multigrid smoother: 3-D stencil over resonant 64^3 arrays."""
    return _sweep3d_program("mgrid", n, ["U", "V", "R"])


# --------------------------------------------------------------- SPEC ----

def build_apsi(n: int = 111) -> Program:
    """Air-pollution model: many arrays, deliberately non-resonant size."""
    return _stencil_program(
        "apsi", n, ["T", "Q", "W", "UX", "VY", "WZ"], nests=2
    )


def build_fpppp(n: int = 90) -> Program:
    """Electron integrals: compute-bound, small working set, 1-D sweeps.

    n = 90 keeps the F arrays off every cache-size residue (96 would put
    F1 and F3 exactly one L1 cache apart) -- FPPPP is one of the paper's
    nothing-to-fix programs.
    """
    return _vector_program("fpppp", n * n, ["F1", "F2", "F3"])


def build_hydro2d(n: int = 256) -> Program:
    """Navier-Stokes hydrodynamics: EXPL-like, resonant 256^2 arrays."""
    return _stencil_program(
        "hydro2d", n, ["RO", "EN", "MU", "MV", "ZP", "ZQ"], nests=3
    )


def build_su2cor(n: int = 256) -> Program:
    """Quantum physics: 256^2*8 = 512 KB arrays, resonant on both caches."""
    return _stencil_program("su2cor", n, ["G1", "G2", "G3", "G4"], nests=2)


def build_swim(n: int = 513) -> Program:
    """Vector shallow water: the SHAL structure at SPEC's grid size."""
    return _shal.build(n).renamed("swim")


def build_tomcatv(n: int = 513) -> Program:
    """Mesh generation: X/Y coordinate meshes plus residual/workspace
    arrays, with the j-1/j/j+1 column arcs GROUPPAD needs (Figure 10)."""
    b = ProgramBuilder("tomcatv")
    X = b.array("X", (n, n))
    Y = b.array("Y", (n, n))
    RX = b.array("RX", (n, n))
    RY = b.array("RY", (n, n))
    AA = b.array("AA", (n, n))
    DD = b.array("DD", (n, n))
    i, j = b.vars("i", "j")
    b.nest(
        [b.loop(j, 2, n - 1), b.loop(i, 2, n - 1)],
        [
            b.assign(
                RX[i, j],
                reads=[X[i - 1, j], X[i + 1, j], X[i, j - 1], X[i, j + 1],
                       X[i, j]],
                flops=8, label="rx",
            ),
            b.assign(
                RY[i, j],
                reads=[Y[i - 1, j], Y[i + 1, j], Y[i, j - 1], Y[i, j + 1],
                       Y[i, j]],
                flops=8, label="ry",
            ),
            b.assign(
                AA[i, j], reads=[X[i, j + 1], X[i, j - 1], Y[i, j + 1],
                                 Y[i, j - 1]],
                flops=4, label="aa",
            ),
            b.assign(
                DD[i, j], reads=[AA[i, j], DD[i, j - 1]], flops=2, label="dd",
            ),
        ],
        label="tomcatv-residual",
    )
    b.nest(
        [b.loop(j, 2, n - 1), b.loop(i, 2, n - 1)],
        [
            b.assign(X[i, j], reads=[X[i, j], RX[i, j], DD[i, j]], flops=2,
                     label="x-add"),
            b.assign(Y[i, j], reads=[Y[i, j], RY[i, j], DD[i, j]], flops=2,
                     label="y-add"),
        ],
        label="tomcatv-update",
    )
    return b.build()


def build_turb3d(n: int = 64) -> Program:
    """Isotropic turbulence: resonant 64^3 velocity fields plus pressure."""
    return _sweep3d_program("turb3d", n, ["VU", "VV", "VW", "PR"])


def build_wave5(n: int = 123_456) -> Program:
    """Maxwell's equations / particles: long 1-D field sweeps, non-resonant."""
    return _vector_program("wave5", n, ["EX", "EY", "BZ", "PX"])
