"""JACOBI512: 2-D Jacobi relaxation with convergence test, Table 1.

Two (n, n) arrays: the five-point stencil writes A from B, then a second
sweep copies back and accumulates the convergence residual.  At n = 512
both arrays are 2 MB, so A and B coincide on both caches until padded --
the canonical inter-variable ping-pong case.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

__all__ = ["build"]

DEFAULT_N = 512


def build(n: int = DEFAULT_N) -> Program:
    """Five-point stencil sweep + convergence/copy-back over (n, n) grids."""
    b = ProgramBuilder(f"jacobi{n}")
    A = b.array("A", (n, n))
    Bb = b.array("B", (n, n))
    i, j = b.vars("i", "j")
    b.nest(
        [b.loop(j, 2, n - 1), b.loop(i, 2, n - 1)],
        [
            b.assign(
                A[i, j],
                reads=[Bb[i - 1, j], Bb[i + 1, j], Bb[i, j - 1], Bb[i, j + 1]],
                flops=4,
                label="stencil",
            )
        ],
        label="jacobi-sweep",
    )
    b.nest(
        [b.loop(j, 2, n - 1), b.loop(i, 2, n - 1)],
        [
            b.use(reads=[A[i, j], Bb[i, j]], flops=2, label="residual"),
            b.assign(Bb[i, j], reads=[A[i, j]], flops=0, label="copy-back"),
        ],
        label="jacobi-converge",
    )
    return b.build()
