"""A time-iterated stencil: the workload for time-step tiling (Section 5).

``do t / do j / do i: A(i,j) = f(A(i,j-1), A(i,j), A(i,j+1))`` -- a
Gauss-Seidel-style in-place sweep repeated ``t_steps`` times.  Its reuse
*across* time steps is exactly what ordinary (spatial) tiling cannot
capture and Song & Li's time tiling can: a block of columns stays in
cache while all T time steps pass over it.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

__all__ = ["build"]

DEFAULT_N = 512
DEFAULT_T = 8


def build(n: int = DEFAULT_N, t_steps: int = DEFAULT_T) -> Program:
    """``t_steps`` in-place sweeps over an (n, n) grid."""
    b = ProgramBuilder(f"timestep{n}x{t_steps}")
    A = b.array("A", (n, n))
    i, j, t = b.vars("i", "j", "t")
    b.nest(
        [b.loop(t, 1, t_steps), b.loop(j, 2, n - 1), b.loop(i, 1, n)],
        [
            b.assign(
                A[i, j],
                reads=[A[i, j - 1], A[i, j], A[i, j + 1]],
                flops=3,
                label="sweep",
            )
        ],
        label="time-sweeps",
    )
    return b.build()
