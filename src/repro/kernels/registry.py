"""Registry of all test programs with Table 1 metadata.

``KERNELS`` maps each program name to a :class:`Kernel` record carrying the
paper's description and line count (Table 1), the builder, the suite it
belongs to, whether our model is a faithful kernel or a structural
stand-in, and the optional custom trace hook (IRR's irregular gathers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

import numpy as np

from repro.errors import ReproError
from repro.ir.program import Program
from repro.kernels import adi, dot, erle, expl, irr, jacobi, linpackd, matmul, shal, timestep
from repro.kernels import standins as st
from repro.layout.layout import DataLayout

__all__ = ["Kernel", "KERNELS", "get_kernel", "kernel_names"]


@dataclass(frozen=True)
class Kernel:
    """One Table 1 program."""

    name: str
    description: str
    table1_lines: int
    suite: str  # "kernels" | "nas" | "spec95" | "extra"
    build: Callable[..., Program]
    fidelity: str  # "model" (faithful kernel) | "standin" (structural)
    custom_trace: Optional[Callable] = None

    def program(self, n: int | None = None) -> Program:
        """Build the IR at problem size ``n`` (kernel default when None)."""
        return self.build() if n is None else self.build(n)

    def trace_chunks(
        self, program: Program, layout: DataLayout
    ) -> Iterator[np.ndarray]:
        """Address-trace chunks, honoring the custom hook when present."""
        if self.custom_trace is not None:
            return self.custom_trace(program, layout)
        from repro.trace.generator import program_trace_chunks

        return program_trace_chunks(program, layout)


KERNELS: dict[str, Kernel] = {
    k.name: k
    for k in [
        # -------- scientific kernels (Table 1, top block) --------
        Kernel("adi32", "2D ADI Integration Fragment (Liv8)", 63,
               "kernels", adi.build, "model"),
        Kernel("dot", "Vector Dot Product (Liv3)", 32,
               "kernels", dot.build, "model"),
        Kernel("erle64", "3D Tridiagonal Solver", 612,
               "kernels", erle.build, "model"),
        Kernel("expl", "2D Explicit Hydrodynamics (Liv18)", 59,
               "kernels", expl.build, "model"),
        Kernel("irr500k", "Relaxation over Irregular Mesh", 196,
               "kernels", irr.build, "model", custom_trace=irr.trace_chunks),
        Kernel("jacobi", "2D Jacobi with Convergence Test", 52,
               "kernels", jacobi.build, "model"),
        Kernel("linpackd", "Gaussian Elimination w/Pivoting", 795,
               "kernels", linpackd.build, "model"),
        Kernel("shal", "Shallow Water Model", 227,
               "kernels", shal.build, "model"),
        # -------- NAS benchmarks --------
        Kernel("appbt", "Block-Tridiagonal PDE Solver", 4441,
               "nas", st.build_appbt, "standin"),
        Kernel("applu", "Parabolic/Elliptic PDE Solver", 3417,
               "nas", st.build_applu, "standin"),
        Kernel("appsp", "Scalar-Pentadiagonal PDE Solver", 3991,
               "nas", st.build_appsp, "standin"),
        Kernel("buk", "Integer Bucket Sort", 305,
               "nas", st.build_buk, "standin"),
        Kernel("cgm", "Sparse Conjugate Gradient", 855,
               "nas", st.build_cgm, "standin"),
        Kernel("embar", "Monte Carlo", 265,
               "nas", st.build_embar, "standin"),
        Kernel("fftpde", "3D Fast Fourier Transform", 773,
               "nas", st.build_fftpde, "standin"),
        Kernel("mgrid", "Multigrid Solver", 680,
               "nas", st.build_mgrid, "standin"),
        # -------- SPEC95 benchmarks --------
        Kernel("apsi", "Pseudospectral Air Pollution", 7361,
               "spec95", st.build_apsi, "standin"),
        Kernel("fpppp", "2 Electron Integral Derivative", 2784,
               "spec95", st.build_fpppp, "standin"),
        Kernel("hydro2d", "Navier-Stokes", 4292,
               "spec95", st.build_hydro2d, "standin"),
        Kernel("su2cor", "Quantum Physics", 2332,
               "spec95", st.build_su2cor, "standin"),
        Kernel("swim", "Vector Shallow Water Model", 429,
               "spec95", st.build_swim, "standin"),
        Kernel("tomcatv", "Mesh Generation", 190,
               "spec95", st.build_tomcatv, "standin"),
        Kernel("turb3d", "Isotropic Turbulence", 2100,
               "spec95", st.build_turb3d, "standin"),
        Kernel("wave5", "Maxwell's Equations", 7764,
               "spec95", st.build_wave5, "standin"),
        # -------- additional workloads used by the figures --------
        Kernel("matmul", "Tiled Matrix Multiplication (Fig 8/13)", 0,
               "extra", matmul.build, "model"),
        Kernel("timestep", "Time-Iterated Stencil (Song & Li exception)", 0,
               "extra", timestep.build, "model"),
    ]
}


def get_kernel(name: str) -> Kernel:
    """Look up a registered kernel by name (raises ReproError if unknown)."""
    try:
        return KERNELS[name]
    except KeyError:
        raise ReproError(
            f"unknown kernel {name!r}; available: {', '.join(sorted(KERNELS))}"
        ) from None


def kernel_names(suite: str | None = None) -> list[str]:
    """All registered names, optionally filtered by suite."""
    return [k.name for k in KERNELS.values() if suite is None or k.suite == suite]
