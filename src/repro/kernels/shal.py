"""SHAL: shallow water model, Table 1 (the SWIM benchmark's ancestor).

Thirteen (n, n) arrays over three sweeps per step: flux computation
(CU/CV/Z/H), the new-value update (UNEW/VNEW/PNEW reading the fluxes with
+1 offsets in both dimensions), and time smoothing.  This is the richest
group-reuse program in the suite -- nearly every array carries an arc of
one column -- and with n = 512 every array is 2 MB, resonant on both
caches.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

__all__ = ["build"]

DEFAULT_N = 512


def build(n: int = DEFAULT_N) -> Program:
    """Shallow-water step: fluxes, update, time smoothing (13 arrays)."""
    b = ProgramBuilder(f"shal{n}")
    U = b.array("U", (n, n))
    V = b.array("V", (n, n))
    P = b.array("P", (n, n))
    UNEW = b.array("UNEW", (n, n))
    VNEW = b.array("VNEW", (n, n))
    PNEW = b.array("PNEW", (n, n))
    UOLD = b.array("UOLD", (n, n))
    VOLD = b.array("VOLD", (n, n))
    POLD = b.array("POLD", (n, n))
    CU = b.array("CU", (n, n))
    CV = b.array("CV", (n, n))
    Z = b.array("Z", (n, n))
    H = b.array("H", (n, n))
    i, j = b.vars("i", "j")
    loops = lambda: [b.loop(j, 1, n - 1), b.loop(i, 1, n - 1)]  # noqa: E731

    b.nest(
        loops(),
        [
            b.assign(
                CU[i + 1, j], reads=[P[i + 1, j], P[i, j], U[i + 1, j]],
                flops=3, label="cu",
            ),
            b.assign(
                CV[i, j + 1], reads=[P[i, j + 1], P[i, j], V[i, j + 1]],
                flops=3, label="cv",
            ),
            b.assign(
                Z[i + 1, j + 1],
                reads=[
                    V[i + 1, j + 1], V[i, j + 1], U[i + 1, j + 1], U[i + 1, j],
                    P[i, j], P[i + 1, j], P[i, j + 1], P[i + 1, j + 1],
                ],
                flops=9, label="z",
            ),
            b.assign(
                H[i, j],
                reads=[
                    P[i, j], U[i + 1, j], U[i, j], V[i, j + 1], V[i, j],
                ],
                flops=7, label="h",
            ),
        ],
        label="shal-fluxes",
    )
    b.nest(
        loops(),
        [
            b.assign(
                UNEW[i + 1, j],
                reads=[
                    UOLD[i + 1, j],
                    Z[i + 1, j + 1], Z[i + 1, j],
                    CV[i + 1, j + 1], CV[i, j + 1], CV[i, j], CV[i + 1, j],
                    H[i + 1, j], H[i, j],
                ],
                flops=10, label="unew",
            ),
            b.assign(
                VNEW[i, j + 1],
                reads=[
                    VOLD[i, j + 1],
                    Z[i + 1, j + 1], Z[i, j + 1],
                    CU[i + 1, j + 1], CU[i, j + 1], CU[i, j], CU[i + 1, j],
                    H[i, j + 1], H[i, j],
                ],
                flops=10, label="vnew",
            ),
            b.assign(
                PNEW[i, j],
                reads=[
                    POLD[i, j],
                    CU[i + 1, j], CU[i, j], CV[i, j + 1], CV[i, j],
                ],
                flops=5, label="pnew",
            ),
        ],
        label="shal-update",
    )
    b.nest(
        loops(),
        [
            b.assign(
                UOLD[i, j], reads=[U[i, j], UNEW[i, j], UOLD[i, j]],
                flops=4, label="uold",
            ),
            b.assign(
                VOLD[i, j], reads=[V[i, j], VNEW[i, j], VOLD[i, j]],
                flops=4, label="vold",
            ),
            b.assign(
                POLD[i, j], reads=[P[i, j], PNEW[i, j], POLD[i, j]],
                flops=4, label="pold",
            ),
            b.assign(U[i, j], reads=[UNEW[i, j]], flops=0, label="u"),
            b.assign(V[i, j], reads=[VNEW[i, j]], flops=0, label="v"),
            b.assign(P[i, j], reads=[PNEW[i, j]], flops=0, label="p"),
        ],
        label="shal-smooth",
    )
    return b.build()
