"""EXPL: 2-D explicit hydrodynamics (Livermore loop 18), Table 1.

The paper's most padding-sensitive program: nine (n, n) arrays (ZA, ZB,
ZM, ZP, ZQ, ZR, ZU, ZV, ZZ) traversed by three sweeps with +-1 offsets in
both dimensions, modeled directly on the Livermore kernel.  At n = 512
each array is 2 MB -- a multiple of both cache sizes, so all nine base
addresses coincide on both caches until padded -- and a column is n*8
bytes, so the 16 KB L1 holds only 16384/(8n) columns: exactly the
capacity battle Figures 10-12 study over n = 250..700.

``FUSABLE_NESTS`` names the adjacent pair the Figure 12 fusion experiment
merges (the ZU/ZV update and the ZR/ZZ time-advance share four arrays,
so fusion converts leading references into same-iteration re-touches).
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

__all__ = ["build", "FUSABLE_NESTS"]

DEFAULT_N = 512

# (index of first nest, index of second nest) to fuse in Figure 12: the
# pressure and velocity sweeps share ZA, ZB and ZR, so fusion saves their
# leading references (3 memory references per iteration) while the fused
# body's eight column-arcs compete for an L1 cache that holds only
# 16384/(8n) columns -- the tradeoff Figure 12 plots.
FUSABLE_NESTS = (0, 1)


def build(n: int = DEFAULT_N) -> Program:
    """Livermore 18 over nine (n, n) arrays; loops k outer, j inner."""
    b = ProgramBuilder(f"expl{n}")
    za = b.array("ZA", (n, n))
    zb = b.array("ZB", (n, n))
    zm = b.array("ZM", (n, n))
    zp = b.array("ZP", (n, n))
    zq = b.array("ZQ", (n, n))
    zr = b.array("ZR", (n, n))
    zu = b.array("ZU", (n, n))
    zv = b.array("ZV", (n, n))
    zz = b.array("ZZ", (n, n))
    j, k = b.vars("j", "k")
    loops = lambda: [b.loop(k, 2, n - 1), b.loop(j, 2, n - 1)]  # noqa: E731

    b.nest(
        loops(),
        [
            b.assign(
                za[j, k],
                reads=[
                    zp[j - 1, k + 1], zq[j - 1, k + 1],
                    zp[j - 1, k], zq[j - 1, k],
                    zr[j, k], zr[j - 1, k],
                    zm[j - 1, k], zm[j - 1, k + 1],
                ],
                flops=9,
                label="za",
            ),
            b.assign(
                zb[j, k],
                reads=[
                    zp[j - 1, k], zq[j - 1, k],
                    zp[j, k], zq[j, k],
                    zr[j, k], zr[j, k - 1],
                    zm[j, k], zm[j - 1, k],
                ],
                flops=9,
                label="zb",
            ),
        ],
        label="expl-pressure",
    )
    b.nest(
        loops(),
        [
            b.assign(
                zu[j, k],
                reads=[
                    zu[j, k],
                    za[j, k], zz[j, k], zz[j + 1, k],
                    za[j - 1, k], zz[j - 1, k],
                    zb[j, k], zz[j, k - 1],
                    zb[j, k + 1], zz[j, k + 1],
                ],
                flops=16,
                label="zu",
            ),
            b.assign(
                zv[j, k],
                reads=[
                    zv[j, k],
                    za[j, k], zr[j, k], zr[j + 1, k],
                    za[j - 1, k], zr[j - 1, k],
                    zb[j, k], zr[j, k - 1],
                    zb[j, k + 1], zr[j, k + 1],
                ],
                flops=16,
                label="zv",
            ),
        ],
        label="expl-velocity",
    )
    b.nest(
        loops(),
        [
            b.assign(zr[j, k], reads=[zr[j, k], zu[j, k]], flops=2, label="zr"),
            b.assign(zz[j, k], reads=[zz[j, k], zv[j, k]], flops=2, label="zz"),
        ],
        label="expl-advance",
    )
    return b.build()
