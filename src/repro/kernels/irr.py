"""IRR500K: relaxation over an irregular mesh, Table 1.

The real program gathers node values through an edge list -- indirect
subscripts the affine IR cannot express, so this kernel carries a *custom
trace generator* (the registry's ``custom_trace`` hook): a synthetic
random-geometric mesh (fixed seed) produces the edge list, and each
relaxation sweep emits the gather/update access pattern against the
layout's actual base addresses, so padding still moves the trace exactly
as it would the real program.  See DESIGN.md, Substitutions.

The affine part (the node-array update sweep ``X(i) = X(i) + w * Y(i)``)
is ordinary IR, so PAD/GROUPPAD analyze and pad the arrays normally.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program
from repro.layout.layout import DataLayout

__all__ = ["build", "trace_chunks"]

DEFAULT_N = 500_000 // 8  # nodes such that node arrays total ~500 KB each
EDGE_FACTOR = 4
SEED = 19991113  # SC '99 conference date; fixed for reproducibility


def build(n: int = DEFAULT_N) -> Program:
    """Node arrays X, Y plus the int32 edge endpoint arrays EL, ER."""
    b = ProgramBuilder("irr500k" if n == DEFAULT_N else f"irr{n}")
    X = b.array("X", (n,))
    Y = b.array("Y", (n,))
    b.array("EL", (EDGE_FACTOR * n,), element_size=4)
    b.array("ER", (EDGE_FACTOR * n,), element_size=4)
    (i,) = b.vars("i")
    b.nest(
        [b.loop(i, 1, n)],
        [b.assign(X[i], reads=[X[i], Y[i]], flops=2, label="update")],
        label="irr-node-sweep",
    )
    return b.build()


def _edges(n_nodes: int, seed: int = SEED) -> np.ndarray:
    """Synthetic mesh edges: mostly local neighbours plus long-range links,
    the locality profile of a bandwidth-reduced irregular mesh."""
    rng = np.random.default_rng(seed)
    n_edges = EDGE_FACTOR * n_nodes
    src = rng.integers(0, n_nodes, size=n_edges, dtype=np.int64)
    local = rng.integers(1, 32, size=n_edges, dtype=np.int64)
    faraway = rng.integers(0, n_nodes, size=n_edges, dtype=np.int64)
    use_far = rng.random(n_edges) < 0.05
    dst = np.where(use_far, faraway, (src + local) % n_nodes)
    return np.stack([src, dst], axis=1)


def trace_chunks(
    program: Program,
    layout: DataLayout,
    sweeps: int = 2,
    seed: int = SEED,
) -> Iterator[np.ndarray]:
    """Gather sweeps over the edge list, then the affine node sweep.

    Per edge: read both endpoint indices (int32 edge arrays), gather both
    Y endpoint values, read-modify-write X at the source -- five
    references per edge, in that order.
    """
    n_nodes = program.decl("X").shape[0]
    edges = _edges(n_nodes, seed)
    bases = layout.bases()
    n_edges = edges.shape[0]
    for _ in range(sweeps):
        out = np.empty((n_edges, 5), dtype=np.int64)
        eidx = np.arange(n_edges, dtype=np.int64)
        out[:, 0] = bases["EL"] + 4 * eidx
        out[:, 1] = bases["ER"] + 4 * eidx
        out[:, 2] = bases["Y"] + 8 * edges[:, 0]
        out[:, 3] = bases["Y"] + 8 * edges[:, 1]
        out[:, 4] = bases["X"] + 8 * edges[:, 0]
        yield out.reshape(-1)
    from repro.trace.generator import nest_trace_chunks

    yield from nest_trace_chunks(program, layout, program.nests[0])
