"""LINPACKD: Gaussian elimination with pivoting, Table 1.

Right-looking LU factorization -- the classic triangular nest
``do k / do j = k+1, n / do i = k+1, n`` updating ``A(i,j) -= A(i,k) *
A(k,j)`` -- followed by back substitution.  The pivot search itself is a
scalar max-scan we model as a read sweep over the pivot column.  The
symbolic (k-dependent) bounds exercise the IR's triangular-nest path:
the trace generator vectorizes the two inner loops and walks ``k`` in
Python.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

__all__ = ["build"]

DEFAULT_N = 256


def build(n: int = DEFAULT_N) -> Program:
    """LU factorization: pivot scan, trailing update, forward solve."""
    b = ProgramBuilder(f"linpackd{n}")
    A = b.array("A", (n, n))
    Bv = b.array("B", (n,))
    i, j, k = b.vars("i", "j", "k")

    # Pivot search: scan column k below the diagonal.
    b.nest(
        [b.loop(k, 1, n - 1), b.loop(i, k, n)],
        [b.use(reads=[A[i, k]], flops=1, label="pivot-scan")],
        label="lu-pivot",
    )
    # Elimination update (rank-1 trailing submatrix update).
    b.nest(
        [b.loop(k, 1, n - 1), b.loop(j, k + 1, n), b.loop(i, k + 1, n)],
        [
            b.assign(
                A[i, j], reads=[A[i, j], A[i, k], A[k, j]],
                flops=2, label="eliminate",
            )
        ],
        label="lu-update",
    )
    # Forward solve of the right-hand side.
    b.nest(
        [b.loop(k, 1, n - 1), b.loop(i, k + 1, n)],
        [b.assign(Bv[i], reads=[Bv[i], A[i, k], Bv[k]], flops=2, label="fsolve")],
        label="lu-forward",
    )
    return b.build()
