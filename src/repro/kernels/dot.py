"""DOT: vector dot product (Livermore loop 3), Table 1.

``q += Z(k) * X(k)`` over two vectors.  At the default length of 65536
elements each vector is 512 KB: an exact multiple of both the 16 KB L1 and
the 512 KB L2 cache, so the two vectors' corresponding elements map to the
same line at both levels and ping-pong on every iteration until padded.
(This is the program whose Figure 9 improvement the paper attributes
partly to the memory system's handling of outstanding misses once the
vectors are padded apart by the 64-byte L2 line.)
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program

__all__ = ["build"]

DEFAULT_N = 65536


def build(n: int = DEFAULT_N) -> Program:
    """Dot product of two length-``n`` vectors (reads only: scalar result)."""
    b = ProgramBuilder(f"dot{n * 8 // 1024}")
    X = b.array("X", (n,))
    Z = b.array("Z", (n,))
    (k,) = b.vars("k")
    b.nest(
        [b.loop(k, 1, n)],
        [b.use(reads=[Z[k], X[k]], flops=2, label="dot")],
        label="dot-product",
    )
    return b.build()
