"""Matrix multiplication, the tiling study's workload (Section 5, Fig 8/13).

``C(I,J) += A(I,K) * B(K,J)`` with loops J, K, I (I innermost: unit stride
for C and A).  :func:`build_tiled` reproduces Figure 8 exactly: K tiled by
width W, I tiled by height H, tile loops outermost, so ``A(I,K)`` touches
one W x H tile per J iteration.
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.ir.builder import ProgramBuilder
from repro.transforms.tiling import tile_nest

__all__ = ["build", "build_tiled"]

DEFAULT_N = 256


def build(n: int = DEFAULT_N) -> Program:
    """Untiled NxN matrix multiply (J, K, I loop order)."""
    b = ProgramBuilder(f"matmul{n}")
    A = b.array("A", (n, n))
    Bm = b.array("B", (n, n))
    C = b.array("C", (n, n))
    i, j, k = b.vars("i", "j", "k")
    b.nest(
        [b.loop(j, 1, n), b.loop(k, 1, n), b.loop(i, 1, n)],
        [
            b.assign(
                C[i, j], reads=[C[i, j], A[i, k], B_ref(Bm, k, j)],
                flops=2, label="fma",
            )
        ],
        label="matmul",
    )
    return b.build()


def B_ref(handle, k, j):
    """B(K,J) -- isolated so the reference reads like the Fortran source."""
    return handle[k, j]


def build_tiled(n: int, tile_w: int, tile_h: int) -> Program:
    """Figure 8: ``do KK,W / do II,H / do J / do K / do I`` tiled multiply."""
    prog = build(n)
    tiled = tile_nest(
        prog.nests[0],
        tiles=[("k", tile_w), ("i", tile_h)],
        order=["kk", "ii", "j", "k", "i"],
    )
    return prog.with_nests([tiled]).renamed(f"matmul{n}_t{tile_w}x{tile_h}")
