"""repro -- reproduction of Rivera & Tseng, *Locality Optimizations for
Multi-Level Caches* (SC '99).

The package implements, from scratch, every system the paper relies on:

* :mod:`repro.cache` -- a trace-driven multi-level cache simulator
  (vectorized direct-mapped + set-associative LRU);
* :mod:`repro.ir` -- a mini-Fortran loop-nest IR with affine subscripts;
* :mod:`repro.trace` -- lowering IR programs to address traces;
* :mod:`repro.layout` -- base addresses, pads, conflict detection and the
  paper's cache-layout diagrams;
* :mod:`repro.analysis` -- reuse classification, group-reuse arcs, fusion
  accounting, analytic miss models;
* :mod:`repro.transforms` -- PAD / MULTILVLPAD / GROUPPAD / MAXPAD /
  L2MAXPAD padding, loop permutation, fusion, and tiling with
  self-interference-free tile-size selection;
* :mod:`repro.kernels` -- the Table 1 programs as IR + runnable NumPy code;
* :mod:`repro.search` -- empirical autotuning over pad/tile/fusion spaces,
  stress-testing the heuristics against searched-optimal configurations;
* :mod:`repro.model` -- a static, closed-form multi-level miss predictor
  (no trace, no simulation) powering the two-tier predict-then-verify
  search strategy;
* :mod:`repro.obs` -- zero-dependency tracing (nested spans, Chrome
  trace-event export, per-level miss-rate counter tracks over reference
  windows, cross-process request trace trees, trace-vs-trace regression
  diffs) and a metrics registry with percentile summaries and Prometheus
  exposition, instrumented across the executor, simulators, search,
  model, and tuning service;
* :mod:`repro.fuzz` -- seeded random-program generation, a differential
  predictor-vs-simulator-vs-oracle harness, divergence shrinking, and a
  distilled regression corpus;
* :mod:`repro.symbolic` -- trace-free closed-form miss counting, exact
  (bit-for-bit vs. the simulator) in the provable no-eviction regime
  and honestly downgraded elsewhere, behind the executor's tiered
  backend selector;
* :mod:`repro.experiments` -- harnesses regenerating every figure.

Quickstart::

    from repro import ProgramBuilder, DataLayout, simulate_program, ultrasparc_i
    from repro.transforms import pad

    b = ProgramBuilder("example")
    n = 2048
    A, B = b.array("A", (n,)), b.array("B", (n,))
    (i,) = b.vars("i")
    b.nest([b.loop(i, 1, n)], [b.assign(B[i], reads=[A[i]], flops=1)])
    prog = b.build()

    hier = ultrasparc_i()
    original = DataLayout.sequential(prog)
    padded = pad(prog, original, hier.l1.size, hier.l1.line_size)
    for name, layout in [("orig", original), ("pad", padded)]:
        r = simulate_program(prog, layout, hier)
        print(name, r.summary())
"""

from repro.cache import (
    CacheConfig,
    CacheHierarchy,
    HierarchyConfig,
    LevelStats,
    SimulationResult,
    alpha_21164,
    ultrasparc_i,
)
from repro.ir import (
    AffineExpr,
    ArrayDecl,
    ArrayRef,
    Loop,
    LoopNest,
    Program,
    ProgramBuilder,
    Statement,
    const,
    var,
)
from repro.layout import CacheDiagram, DataLayout
from repro.simulate import simulate_nest, simulate_program
from repro.driver import (
    OptimizationReport,
    StrategyOutcome,
    evaluate_strategies,
    optimize,
    optimize_searched,
)
from repro.exec import BACKENDS, ResultStore, SimJob, SweepExecutor
from repro.fuzz import (
    FuzzConfig,
    fuzzed_workloads,
    random_program,
    run_campaign,
    shrink_program,
)
from repro.model import (
    PredictedStats,
    predict_job,
    predict_program,
    spearman,
)
from repro.symbolic import SymbolicStats, analyze_job, classify_job
from repro.obs import (
    MetricsRegistry,
    Timeline,
    TraceDiff,
    Tracer,
    diff_traces,
    format_prometheus,
    get_metrics,
    get_tracer,
    set_timeline_window,
    start_tracing,
    stop_tracing,
)
from repro.search import (
    Autotuner,
    CoordinateDescent,
    ExhaustiveSearch,
    PredictThenVerifyStrategy,
    RandomSearch,
    SearchReport,
    SearchSpace,
    assoc_pad_space,
    fusion_space,
    model_objective,
    pad_space,
    pad_tile_space,
    tile_space,
)
from repro.service import (
    ServiceConfig,
    TuningClient,
    TuningRequest,
    TuningService,
)
from repro.errors import (
    AnalysisError,
    ConfigError,
    IRError,
    LayoutError,
    ReproError,
    SimulationError,
    TransformError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # cache
    "CacheConfig",
    "HierarchyConfig",
    "CacheHierarchy",
    "LevelStats",
    "SimulationResult",
    "ultrasparc_i",
    "alpha_21164",
    # ir
    "AffineExpr",
    "ArrayDecl",
    "ArrayRef",
    "Loop",
    "LoopNest",
    "Statement",
    "Program",
    "ProgramBuilder",
    "var",
    "const",
    # layout & simulation
    "DataLayout",
    "CacheDiagram",
    "simulate_program",
    "simulate_nest",
    "optimize",
    "optimize_searched",
    "evaluate_strategies",
    "OptimizationReport",
    "StrategyOutcome",
    # parallel execution & memoization
    "SimJob",
    "SweepExecutor",
    "ResultStore",
    "BACKENDS",
    # empirical autotuning
    "SearchSpace",
    "pad_space",
    "assoc_pad_space",
    "tile_space",
    "pad_tile_space",
    "fusion_space",
    "ExhaustiveSearch",
    "RandomSearch",
    "CoordinateDescent",
    "PredictThenVerifyStrategy",
    "Autotuner",
    "SearchReport",
    # differential fuzzing
    "FuzzConfig",
    "random_program",
    "fuzzed_workloads",
    "run_campaign",
    "shrink_program",
    # analytic miss prediction
    "PredictedStats",
    "predict_program",
    "predict_job",
    "model_objective",
    "spearman",
    # symbolic (trace-free exact) miss counting
    "SymbolicStats",
    # tuning service
    "ServiceConfig",
    "TuningClient",
    "TuningRequest",
    "TuningService",
    "classify_job",
    "analyze_job",
    # observability
    "Tracer",
    "MetricsRegistry",
    "Timeline",
    "TraceDiff",
    "diff_traces",
    "format_prometheus",
    "get_tracer",
    "get_metrics",
    "set_timeline_window",
    "start_tracing",
    "stop_tracing",
    # errors
    "ReproError",
    "ConfigError",
    "IRError",
    "LayoutError",
    "TransformError",
    "AnalysisError",
    "SimulationError",
]
