"""Trace-free closed-form miss counting.

The symbolic tier computes per-level miss counts for affine loop nests
directly from the IR -- no address trace, no simulator.  Where it can
prove the *no-eviction* property (every set of a level receives at most
as many distinct lines as it has ways) its counts are exact, bit-for-bit
what the LRU simulator reports; everywhere else it degrades gracefully
to the analytic predictor's estimates, with every term carrying an
explicit ``exact`` flag so downstream consumers know which is which.

See ``docs/symbolic.md`` for the term derivation, the exactness rules,
and how the executor's tiered backend selector uses the classification.
"""

from repro.symbolic.engine import (
    LevelClassification,
    analyze_job,
    analyze_program,
    classify_job,
    classify_program,
)
from repro.symbolic.lines import (
    DEFAULT_MAX_OFFSETS,
    DEFAULT_MAX_STEPS,
    distinct_lines,
    distinct_offsets,
    max_set_occupancy,
    ref_distinct_offsets,
    unique_ref_exprs,
)
from repro.symbolic.terms import (
    TERM_KINDS,
    SymbolicLevel,
    SymbolicStats,
    SymbolicTerm,
)

__all__ = [
    "TERM_KINDS",
    "SymbolicTerm",
    "SymbolicLevel",
    "SymbolicStats",
    "LevelClassification",
    "classify_program",
    "classify_job",
    "analyze_program",
    "analyze_job",
    "DEFAULT_MAX_OFFSETS",
    "DEFAULT_MAX_STEPS",
    "unique_ref_exprs",
    "ref_distinct_offsets",
    "distinct_offsets",
    "distinct_lines",
    "max_set_occupancy",
]
