"""The symbolic analysis engine: classify, then count.

Two entry points with a deliberate cost split:

* :func:`classify_program` / :func:`classify_job` decide, per cache
  level, whether the symbolic tier is *authoritative* -- exact,
  bit-for-bit equal to the LRU simulator -- and why not when it is not.
  Classification never touches the analytic predictor and is dominated
  by the footprint enumeration, itself skipped whenever the capacity
  pre-filter (:func:`~repro.analysis.footprint.ref_lines_lower_bound`)
  proves exactness impossible.
* :func:`analyze_program` / :func:`analyze_job` produce the full
  :class:`~repro.symbolic.terms.SymbolicStats`: exact cold terms where
  the classification allows, analytic sweep/conflict terms from
  :mod:`repro.model.predictor` everywhere else.

Exactness rests on the **no-eviction theorem**: if every set of a level
receives at most ``associativity`` distinct lines over the whole run,
LRU never evicts there, so misses are exactly the distinct-line count,
independent of access order.  The property chains down the hierarchy --
level *i+1* sees the miss stream of level *i*, which in the no-eviction
regime is the first touch of each level-*i* line, covering every
level-*i+1* line of the footprint provided line sizes nest evenly.
Hence exactness is a *prefix* over levels, and each level downgrades
with one of the reasons below (surfaced in notes, metrics, and the
``ext_symbolic`` agreement table):

``custom-trace``
    The job uses a kernel trace hook; its addresses are not derivable
    from the affine IR.
``capacity``
    A single reference provably touches more lines than the level holds
    (pigeonhole: some set must receive more lines than its ways).
``budget``
    Footprint enumeration exceeded its offset/step budget.
``line-split``
    The level's line size is not a multiple of the level above's, so
    the first-touch stream need not cover this level's footprint lines.
``interference``
    Some set receives more distinct lines than it has ways; evictions
    occur and order matters.
``inherited``
    A level above is already inexact, so this level's access stream is
    itself approximate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.footprint import ref_lines_lower_bound
from repro.cache.config import HierarchyConfig
from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.layout.layout import DataLayout
from repro.model.predictor import predict_program
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.symbolic.lines import (
    DEFAULT_MAX_OFFSETS,
    DEFAULT_MAX_STEPS,
    distinct_lines,
    distinct_offsets,
    max_set_occupancy,
)
from repro.symbolic.terms import SymbolicLevel, SymbolicStats, SymbolicTerm

__all__ = [
    "LevelClassification",
    "classify_program",
    "classify_job",
    "analyze_program",
    "analyze_job",
]


@dataclass(frozen=True)
class LevelClassification:
    """One level's verdict: is the symbolic count authoritative here?

    ``distinct_lines`` is the exact miss count when ``exact`` (and
    ``None`` otherwise -- a footprint line count is still well-defined
    for inexact levels, but it is *not* the miss count, so it is withheld
    to prevent misuse).  ``reason`` is one of the downgrade reasons in
    the module docstring, empty when exact.
    """

    name: str
    exact: bool
    distinct_lines: int | None = None
    reason: str = ""
    detail: str = ""


def _selected_nests(
    program: Program, nests: tuple[LoopNest, ...] | None
) -> tuple[LoopNest, ...]:
    return tuple(nests) if nests is not None else tuple(program.nests)


def _total_refs(nests: tuple[LoopNest, ...]) -> int:
    return sum(nest.iterations() * nest.refs_per_iteration for nest in nests)


def _capacity_reasons(
    program: Program,
    layout: DataLayout,
    nests: tuple[LoopNest, ...],
    hierarchy: HierarchyConfig,
) -> dict[str, str]:
    """Level name -> detail for levels the pre-filter proves inexact.

    If one reference alone provably touches more lines than a level
    holds, some set receives more lines than it has ways (pigeonhole),
    so the no-eviction condition cannot hold -- without enumerating a
    single offset.  The bound ignores layout bases (it depends only on
    loop strides), which is safe: bases shift offsets, never shrink a
    reference's own line count below the bound.
    """
    out: dict[str, str] = {}
    for cache in hierarchy.levels:
        for nest in nests:
            done = False
            for ref in nest.refs:
                decl = program.decl(ref.array)
                bound = ref_lines_lower_bound(
                    nest, ref.offset_expr(decl), cache.line_size
                )
                if bound > cache.num_lines:
                    out[cache.name] = (
                        f"{ref.array} alone spans >= {bound} lines, "
                        f"{cache.name} holds {cache.num_lines}"
                    )
                    done = True
                    break
            if done:
                break
    return out


def classify_program(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
    nests: tuple[LoopNest, ...] | None = None,
    max_offsets: int = DEFAULT_MAX_OFFSETS,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> tuple[LevelClassification, ...]:
    """Per-level exactness verdicts for a program (or nest subset).

    Cheap by construction: the capacity pre-filter answers the common
    full-size case in microseconds; enumeration runs only when no level
    is ruled out up front, and is itself budgeted.
    """
    selected = _selected_nests(program, nests)
    tracer = get_tracer()
    with tracer.span(
        "symbolic.classify", cat="symbolic", program=program.name
    ) as span:
        capacity = _capacity_reasons(program, layout, selected, hierarchy)
        offsets: np.ndarray | None = None
        enumerated = False
        # Enumerate only if some level might be exact: the capacity
        # verdict for L1 dooms every level below it anyway.
        if hierarchy.levels[0].name not in capacity:
            offsets = distinct_offsets(
                program, layout, selected, max_offsets, max_steps
            )
            enumerated = True

        out: list[LevelClassification] = []
        exact_above = True
        prev_line = None
        for cache in hierarchy.levels:
            if not exact_above:
                out.append(
                    LevelClassification(cache.name, False, reason="inherited")
                )
                continue
            if cache.name in capacity:
                cls = LevelClassification(
                    cache.name, False, reason="capacity", detail=capacity[cache.name]
                )
            elif prev_line is not None and cache.line_size % prev_line != 0:
                cls = LevelClassification(
                    cache.name,
                    False,
                    reason="line-split",
                    detail=f"line {cache.line_size} not a multiple of {prev_line}",
                )
            elif offsets is None:
                cls = LevelClassification(
                    cache.name,
                    False,
                    reason="budget",
                    detail="footprint enumeration exceeded its budget",
                )
            else:
                lines = distinct_lines(offsets, cache.line_size)
                occupancy = max_set_occupancy(lines, cache)
                if occupancy > cache.associativity:
                    cls = LevelClassification(
                        cache.name,
                        False,
                        reason="interference",
                        detail=(
                            f"a set receives {occupancy} lines, "
                            f"{cache.associativity}-way"
                        ),
                    )
                else:
                    cls = LevelClassification(
                        cache.name, True, distinct_lines=int(lines.size)
                    )
            out.append(cls)
            exact_above = cls.exact
            prev_line = cache.line_size
        span.set(
            exact_levels=sum(1 for c in out if c.exact),
            levels=len(out),
            enumerated=enumerated,
        )
    return tuple(out)


def classify_job(
    job,
    max_offsets: int = DEFAULT_MAX_OFFSETS,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> tuple[LevelClassification, ...]:
    """Classify one :class:`~repro.exec.jobs.SimJob`.

    Jobs with a custom kernel trace hook are never exact -- their
    addresses are not a function of the affine IR.
    """
    if job.kernel is not None:
        return tuple(
            LevelClassification(
                cache.name,
                False,
                reason="custom-trace",
                detail=f"kernel {job.kernel!r} uses a custom trace hook",
            )
            for cache in job.hierarchy.levels
        )
    nests = None
    if job.nest_index is not None:
        nests = (job.program.nests[job.nest_index],)
    return classify_program(
        job.program, job.layout, job.hierarchy, nests, max_offsets, max_steps
    )


def _symbolic_levels(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
    nests: tuple[LoopNest, ...],
    classification: tuple[LevelClassification, ...],
) -> tuple[SymbolicLevel, ...]:
    predicted = None  # the analytic model, built only if some level needs it
    levels: list[SymbolicLevel] = []
    for cache, cls in zip(hierarchy.levels, classification):
        if cls.exact:
            levels.append(
                SymbolicLevel(
                    name=cache.name,
                    terms=(
                        SymbolicTerm(
                            "cold",
                            float(cls.distinct_lines),
                            True,
                            f"{cls.distinct_lines} distinct {cache.name} lines, "
                            "no evictions",
                        ),
                    ),
                )
            )
            continue
        if predicted is None:
            predicted = predict_program(program, layout, hierarchy, nests=nests)
        pred = next(p for p in predicted.predictions if p.name == cache.name)
        terms = [
            SymbolicTerm(
                "sweep",
                max(0.0, pred.misses - pred.conflict_misses),
                False,
                "predictor sweep/capacity estimate",
            )
        ]
        if pred.conflict_misses > 0:
            terms.append(
                SymbolicTerm(
                    "conflict",
                    pred.conflict_misses,
                    False,
                    "set-mapping period interference estimate",
                )
            )
        note = cls.reason if not cls.detail else f"{cls.reason}: {cls.detail}"
        levels.append(SymbolicLevel(name=cache.name, terms=tuple(terms), note=note))
    return tuple(levels)


def analyze_program(
    program: Program,
    layout: DataLayout,
    hierarchy: HierarchyConfig,
    nests: tuple[LoopNest, ...] | None = None,
    classification: tuple[LevelClassification, ...] | None = None,
    max_offsets: int = DEFAULT_MAX_OFFSETS,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> SymbolicStats:
    """Full symbolic result: exact cold terms where the classification
    allows, analytic terms elsewhere.

    Pass a precomputed ``classification`` (from :func:`classify_program`
    with identical arguments) to avoid re-enumerating the footprint --
    the executor's auto tier does exactly that.
    """
    start = time.perf_counter()
    selected = _selected_nests(program, nests)
    if classification is None:
        classification = classify_program(
            program, layout, hierarchy, selected, max_offsets, max_steps
        )
    total_refs = _total_refs(selected)
    stats = SymbolicStats(
        total_refs=total_refs,
        levels=_symbolic_levels(
            program, layout, hierarchy, selected, classification
        ),
    )
    metrics = get_metrics()
    metrics.counter("symbolic.analyses").inc()
    metrics.counter("symbolic.refs").inc(total_refs)
    if stats.exact:
        metrics.counter("symbolic.exact").inc()
    else:
        metrics.counter("symbolic.downgrades").inc()
    metrics.histogram("symbolic.analyze_seconds").observe(
        time.perf_counter() - start
    )
    return stats


def analyze_job(
    job,
    classification: tuple[LevelClassification, ...] | None = None,
    max_offsets: int = DEFAULT_MAX_OFFSETS,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> SymbolicStats:
    """Symbolic result for one :class:`~repro.exec.jobs.SimJob` -- the
    trace-free counterpart of ``job.run()``."""
    if classification is None:
        classification = classify_job(job, max_offsets, max_steps)
    nests = None
    if job.nest_index is not None:
        nests = (job.program.nests[job.nest_index],)
    return analyze_program(
        job.program,
        job.layout,
        job.hierarchy,
        nests,
        classification,
        max_offsets,
        max_steps,
    )
