"""Result containers for the symbolic miss-counting tier.

A symbolic analysis decomposes each cache level's miss count into named
*terms*.  Each term carries an explicit ``exact`` flag: ``True`` means the
count is provably bit-for-bit what the reference LRU simulator would
report; ``False`` means the term came from the analytic predictor
(:mod:`repro.model.predictor`) and is an estimate.  A level (and a whole
result) is exact only when every one of its terms is -- the backend
selector in :mod:`repro.exec` serves symbolic results authoritatively
only in that case.

``SymbolicStats`` converts losslessly into the executor's
:class:`~repro.model.predictor.PredictedStats` shape (and from there into
a :class:`~repro.cache.stats.SimulationResult`), so a symbolic result
drops into every existing report, objective, and cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import AnalysisError
from repro.model.predictor import LevelPrediction, PredictedStats

__all__ = ["TERM_KINDS", "SymbolicTerm", "SymbolicLevel", "SymbolicStats"]

#: Allowed values of :attr:`SymbolicTerm.kind`.
#:
#: ``cold``
#:     First-touch misses -- distinct lines entering the level.  The only
#:     kind that can be exact: in the no-eviction regime *every* miss is a
#:     cold miss, so one exact cold term is the whole story.
#: ``sweep``
#:     Capacity/self-interference re-fault estimate from the analytic
#:     predictor (always approximate).
#: ``conflict``
#:     Set-mapping interference estimate via the ``S/k`` mapping-period
#:     machinery of :mod:`repro.model.conflicts` (always approximate).
TERM_KINDS = ("cold", "sweep", "conflict")


@dataclass(frozen=True)
class SymbolicTerm:
    """One named component of a level's miss count."""

    kind: str
    misses: float
    exact: bool
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in TERM_KINDS:
            raise AnalysisError(
                f"unknown symbolic term kind {self.kind!r}; expected one of {TERM_KINDS}"
            )
        if self.misses < 0:
            raise AnalysisError(f"{self.kind} term: misses must be non-negative")
        if self.exact and self.misses != int(self.misses):
            raise AnalysisError(
                f"{self.kind} term: an exact miss count must be an integer, "
                f"got {self.misses}"
            )

    def __repr__(self) -> str:
        tag = "exact" if self.exact else "approx"
        extra = f" ({self.detail})" if self.detail else ""
        return f"<{self.kind} {self.misses:g} {tag}{extra}>"


@dataclass(frozen=True)
class SymbolicLevel:
    """All terms of one cache level, plus a downgrade note when inexact."""

    name: str
    terms: tuple[SymbolicTerm, ...]
    note: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))
        if not self.terms:
            raise AnalysisError(f"level {self.name!r} needs at least one term")

    @property
    def misses(self) -> float:
        return sum(t.misses for t in self.terms)

    @property
    def conflict_misses(self) -> float:
        return sum(t.misses for t in self.terms if t.kind == "conflict")

    @property
    def exact(self) -> bool:
        """True when every term at this level is authoritative."""
        return all(t.exact for t in self.terms)


@dataclass(frozen=True)
class SymbolicStats:
    """Whole-job symbolic result: per-level term decompositions.

    Levels are hierarchy order (L1 first).  Exactness is a *prefix*
    property: a level can only be exact if the level above it is, because
    its access stream is the miss stream of the level above.  The engine
    enforces that; this container merely reports it.
    """

    total_refs: int
    levels: tuple[SymbolicLevel, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(self.levels))
        if self.total_refs < 0:
            raise AnalysisError("total_refs must be non-negative")
        if not self.levels:
            raise AnalysisError("at least one level is required")
        exact_so_far = True
        for lv in self.levels:
            if lv.exact and not exact_so_far:
                raise AnalysisError(
                    f"level {lv.name!r} claims exactness below an inexact level"
                )
            exact_so_far = exact_so_far and lv.exact

    @property
    def exact(self) -> bool:
        """True when every level's every term is authoritative."""
        return all(lv.exact for lv in self.levels)

    def level(self, name: str) -> SymbolicLevel:
        for lv in self.levels:
            if lv.name == name:
                return lv
        raise KeyError(f"no cache level named {name!r}")

    def to_predicted(self) -> PredictedStats:
        """The result in the executor's :class:`PredictedStats` shape.

        Lossless for exact levels: miss counts are integers bounded by
        ``total_refs`` (each level's distinct-line count is at most the
        distinct-line count above it, which is at most the reference
        count), so the rounding/clamping in ``PredictedStats.levels``
        cannot change them.
        """
        return PredictedStats(
            total_refs=self.total_refs,
            predictions=tuple(
                LevelPrediction(
                    name=lv.name,
                    misses=lv.misses,
                    conflict_misses=lv.conflict_misses,
                )
                for lv in self.levels
            ),
        )

    @cached_property
    def result(self):
        """The result as a drop-in :class:`SimulationResult`."""
        return self.to_predicted().result

    def miss_rate(self, name: str) -> float:
        return self.result.miss_rate(name)

    def summary(self) -> str:
        tag = "exact" if self.exact else "approx"
        return f"symbolic[{tag}] " + self.result.summary()
