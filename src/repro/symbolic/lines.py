"""Closed-form footprint enumeration: distinct byte offsets and lines.

The symbolic tier's exactness argument rests on the *no-eviction* regime:
at a level where every set receives no more distinct lines than it has
ways, LRU never evicts, so the level's miss count equals its distinct
line count regardless of access order.  This module computes those
distinct sets -- the absolute byte offsets every reference touches, and
the cache lines they map to -- **without materializing a trace**.

Offsets of one affine reference over a rectangular (sub-)space form a
multi-dimensional arithmetic progression; the distinct values are built
by staged ``np.unique`` over per-loop progressions, smallest stride
first, so intermediate arrays collapse as early as possible.  Loops with
outer-dependent (triangular/min/max) bounds are walked in Python via
:meth:`Loop.concrete_trip` -- the same value sets the trace generator
iterates, so enumeration and simulation cannot disagree on which indices
execute.

Everything is budgeted: enumeration returns ``None`` (caller downgrades
to the approximate tier) rather than burning unbounded time or memory.
"""

from __future__ import annotations

import numpy as np

from repro.cache.config import CacheConfig
from repro.ir.affine import AffineExpr
from repro.ir.loops import LoopNest
from repro.ir.program import Program
from repro.layout.layout import DataLayout

__all__ = [
    "DEFAULT_MAX_OFFSETS",
    "DEFAULT_MAX_STEPS",
    "unique_ref_exprs",
    "ref_distinct_offsets",
    "distinct_offsets",
    "distinct_lines",
    "max_set_occupancy",
]

#: Per-reference cap on distinct byte offsets before giving up.  64Ki
#: offsets cover every no-eviction-classifiable job against realistic
#: caches (a 512 KB L2 holds 8Ki lines) with room to spare.
DEFAULT_MAX_OFFSETS = 1 << 16

#: Cap on Python-level loop iterations spent descending triangular
#: prefixes before giving up.
DEFAULT_MAX_STEPS = 1 << 12

#: Materialization guard: a staged-unique step may expand to at most this
#: many intermediate entries (4x the offset cap tolerates moderate
#: overlap between shifted copies without unbounded memory).
_ENTRY_FACTOR = 4


def unique_ref_exprs(
    program: Program, layout: DataLayout, nest: LoopNest
) -> list[AffineExpr]:
    """Deduplicated absolute-address expressions of a nest's references.

    Two references with identical array, subscript, and base touch
    identical offsets; enumerating one of them is enough.  Expressions
    are absolute (layout base included) so arrays that share cache lines
    across a boundary are handled by construction.
    """
    bases = layout.bases()
    seen: set[AffineExpr] = set()
    out: list[AffineExpr] = []
    for ref in nest.refs:
        decl = program.decl(ref.array)
        expr = ref.offset_expr(decl) + bases[ref.array]
        if expr not in seen:
            seen.add(expr)
            out.append(expr)
    return out


def _rect_offsets(
    nest: LoopNest,
    level: int,
    env: dict[str, int],
    expr: AffineExpr,
    max_offsets: int,
) -> np.ndarray | None:
    """Distinct offsets of ``expr`` over the rectangular sub-nest at
    ``level`` (outer indices fixed by ``env``), or ``None`` on budget."""
    start_env: dict[str, int] = dict(env)
    progressions: list[tuple[int, int]] = []  # (signed byte stride, trip)
    for lp in nest.loops[level:]:
        first, count = lp.concrete_trip(env)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        start_env[lp.var] = first
        stride = expr.coeff(lp.var) * lp.step
        if stride != 0 and count > 1:
            progressions.append((stride, count))
    arr = np.array([int(expr.evaluate(start_env))], dtype=np.int64)
    progressions.sort(key=lambda p: abs(p[0]))
    entry_cap = _ENTRY_FACTOR * max_offsets
    for stride, count in progressions:
        if arr.size * count > entry_cap:
            return None
        steps = stride * np.arange(count, dtype=np.int64)
        arr = np.unique(arr[:, None] + steps[None, :])
        if arr.size > max_offsets:
            return None
    return arr


def ref_distinct_offsets(
    nest: LoopNest,
    expr: AffineExpr,
    max_offsets: int = DEFAULT_MAX_OFFSETS,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> np.ndarray | None:
    """All distinct byte offsets one absolute-address expression touches.

    Returns a sorted ``int64`` array, or ``None`` when the enumeration
    budget (``max_offsets`` distinct values, ``max_steps`` Python-level
    iterations over non-rectangular prefixes) is exceeded.
    """
    pieces: list[np.ndarray] = []
    steps = 0
    entries = 0
    entry_cap = _ENTRY_FACTOR * max_offsets

    def walk(level: int, env: dict[str, int]) -> bool:
        nonlocal steps, entries
        if nest.concrete_from(level):
            part = _rect_offsets(nest, level, env, expr, max_offsets)
            if part is None:
                return False
            entries += part.size
            if entries > entry_cap:
                return False
            if part.size:
                pieces.append(part)
            return True
        lp = nest.loops[level]
        first, count = lp.concrete_trip(env)
        for j in range(count):
            steps += 1
            if steps > max_steps:
                return False
            child = dict(env)
            child[lp.var] = first + lp.step * j
            if not walk(level + 1, child):
                return False
        return True

    if not walk(0, {}):
        return None
    if not pieces:
        return np.empty(0, dtype=np.int64)
    out = np.unique(np.concatenate(pieces))
    if out.size > max_offsets:
        return None
    return out


def distinct_offsets(
    program: Program,
    layout: DataLayout,
    nests: tuple[LoopNest, ...] | None = None,
    max_offsets: int = DEFAULT_MAX_OFFSETS,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> np.ndarray | None:
    """Distinct absolute byte offsets a whole program (or nest subset)
    touches, or ``None`` when any reference exceeds the budget.

    This is the program's exact byte footprint; per-level line sets
    follow by floor division (:func:`distinct_lines`), which commutes
    with the union taken here.
    """
    pieces: list[np.ndarray] = []
    for nest in nests if nests is not None else program.nests:
        for expr in unique_ref_exprs(program, layout, nest):
            offs = ref_distinct_offsets(nest, expr, max_offsets, max_steps)
            if offs is None:
                return None
            if offs.size:
                pieces.append(offs)
    if not pieces:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(pieces))


def distinct_lines(offsets: np.ndarray, line_size: int) -> np.ndarray:
    """The distinct cache lines a set of byte offsets occupies.

    Floor division maps each offset to its line index; ``np.unique``
    collapses shared lines.  Because ``floor_div`` commutes with set
    union, feeding the union of all references' offsets here yields
    exactly the lines the merged access stream touches.
    """
    if offsets.size == 0:
        return offsets
    return np.unique(offsets // line_size)


def max_set_occupancy(lines: np.ndarray, cache: CacheConfig) -> int:
    """The largest number of distinct lines mapping to any one set.

    The no-eviction test: when this is at most ``cache.associativity``,
    LRU never evicts and the level's misses equal ``lines.size``.
    """
    if lines.size == 0:
        return 0
    return int(np.bincount(lines % cache.num_sets).max())
