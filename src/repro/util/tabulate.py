"""Plain-text table formatting for experiment reports.

The experiment harness prints the paper's tables and figure series as text
tables; this module is the single formatting implementation so every
experiment renders consistently (and tests can assert on structure).
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _render_cell(value: Any, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    floatfmt: str = ".2f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``floatfmt``; every other value via ``str``.
    Raises ``ValueError`` when a row's width disagrees with the header.
    """
    ncols = len(headers)
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for i, row in enumerate(rows):
        if len(row) != ncols:
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {ncols} (headers={headers!r})"
            )
        rendered.append([_render_cell(v, floatfmt) for v in row])

    widths = [max(len(r[c]) for r in rendered) for c in range(ncols)]
    sep = "-+-".join("-" * w for w in widths)

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_row(rendered[0]))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in rendered[1:])
    return "\n".join(lines)
