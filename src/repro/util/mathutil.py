"""Small integer/modular-arithmetic helpers used across the library.

The paper's multi-level padding arguments (Section 3.1.2) and the tiling
lemma (Section 5) are statements about distances *modulo* cache sizes where
every cache size divides the next larger one.  The helpers here implement
those primitive notions once so transformations and analyses share them.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = [
    "ceil_div",
    "circular_distance",
    "gcd_list",
    "is_power_of_two",
    "next_multiple",
    "round_to_multiple",
]


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for integers with ``b > 0``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b}")
    return -(-a // b)


def is_power_of_two(n: int) -> bool:
    """Return True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_multiple(value: int, factor: int) -> int:
    """Smallest multiple of ``factor`` that is >= ``value``."""
    if factor <= 0:
        raise ValueError(f"next_multiple requires factor > 0, got {factor}")
    return ceil_div(value, factor) * factor


def round_to_multiple(value: int, factor: int) -> int:
    """Multiple of ``factor`` nearest to ``value`` (ties round up)."""
    if factor <= 0:
        raise ValueError(f"round_to_multiple requires factor > 0, got {factor}")
    return ((value + factor // 2) // factor) * factor


def circular_distance(a: int, b: int, modulus: int) -> int:
    """Shortest distance between ``a`` and ``b`` on a ring of size ``modulus``.

    This is the distance between two cache locations on a cache of
    ``modulus`` bytes: two references conflict severely when their circular
    distance is below the line size.
    """
    if modulus <= 0:
        raise ValueError(f"circular_distance requires modulus > 0, got {modulus}")
    d = (a - b) % modulus
    return min(d, modulus - d)


def gcd_list(values: Iterable[int]) -> int:
    """Greatest common divisor of an iterable of integers (gcd() of none is 0)."""
    out = 0
    for v in values:
        out = math.gcd(out, v)
    return out
