"""Shared utilities: modular arithmetic, validation, text tables."""

from repro.util.mathutil import (
    ceil_div,
    circular_distance,
    gcd_list,
    is_power_of_two,
    next_multiple,
    round_to_multiple,
)
from repro.util.tabulate import format_table

__all__ = [
    "ceil_div",
    "circular_distance",
    "gcd_list",
    "is_power_of_two",
    "next_multiple",
    "round_to_multiple",
    "format_table",
]
