"""The HTTP front end, end to end over real sockets.

Each test boots a real :class:`TuningService` on an ephemeral port
inside ``asyncio.run`` and talks to it with the blocking
:class:`TuningClient` from executor threads -- exactly the production
topology, scaled down.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

import repro.service.server as server_mod
from repro.service.client import TuningClient
from repro.service.protocol import hierarchy_to_json
from repro.service.server import ServiceConfig, TuningService


def run_service(test_body, tmp_path, **config_over):
    """Boot a service on a free port, run ``test_body(client, service)``."""
    kwargs = dict(store_dir=str(tmp_path), port=0, concurrency=2,
                  queue_limit=4, drain_timeout=10.0)
    kwargs.update(config_over)
    config = ServiceConfig(**kwargs)

    async def main():
        service = TuningService(config)
        await service.start()
        client = TuningClient(port=service.port, timeout=60.0)
        loop = asyncio.get_event_loop()
        try:
            return await loop.run_in_executor(
                None, test_body, client, service
            )
        finally:
            await service.shutdown()

    return asyncio.run(main())


def jacobi_request(n: int = 32, **over):
    payload = {"kernel": "jacobi", "n": n, "budget": 4, "max_lines": 2}
    payload.update(over)
    return payload


class TestTuneEndpoint:
    def test_cold_then_warm_same_answer_no_recompute(self, tmp_path):
        def body(client, service):
            status, cold = client.tune(jacobi_request())
            assert status == 200 and cold["served"] == "computed"
            assert cold["recommendation"]["pads"]
            status, warm = client.tune(jacobi_request())
            assert status == 200 and warm["served"] == "store"
            # Identical answer, no second pipeline run.
            for field in ("recommendation", "evaluation", "key"):
                assert warm[field] == cold[field]
            m = client.metrics()
            assert m["counters"]["service.requests.computed"] == 1
            assert m["counters"]["service.requests.store"] == 1
            return cold["key"]

        run_service(body, tmp_path)

    def test_semantically_identical_spellings_one_computation(self, tmp_path):
        """The canonicalization property, observed through the server."""
        def body(client, service):
            from repro import ultrasparc_i

            spelling_a = jacobi_request()  # defaults implied
            spelling_b = {
                # shuffled key order, defaults explicit, hierarchy verbose
                "seed": 0,
                "hierarchy": hierarchy_to_json(ultrasparc_i()),
                "n": 32,
                "search": "coordinate",
                "budget": 4,
                "kernel": "jacobi",
                "max_lines": 2,
                "strategy": "L1&L2",
            }
            s1, r1 = client.tune(spelling_a)
            s2, r2 = client.tune(spelling_b)
            assert (s1, s2) == (200, 200)
            assert r1["key"] == r2["key"]
            assert r2["served"] == "store"  # one computation served both
            assert client.metrics()["counters"]["service.requests.computed"] == 1

        run_service(body, tmp_path)

    def test_single_flight_concurrent_identical_requests(
        self, tmp_path, monkeypatch
    ):
        """N racing identical requests -> exactly one pipeline run."""
        calls = []
        real = server_mod.run_tuning

        def slow_tuning(req, executor):
            calls.append(threading.get_ident())
            time.sleep(0.3)  # wide window for the racers to pile in
            return real(req, executor)

        monkeypatch.setattr(server_mod, "run_tuning", slow_tuning)

        def body(client, service):
            results = [None] * 5

            def one(i):
                results[i] = client.tune(jacobi_request())

            threads = [threading.Thread(target=one, args=(i,))
                       for i in range(5)]
            for t in threads:
                t.start()
                time.sleep(0.02)  # let the first request get admitted
            for t in threads:
                t.join()
            assert len(calls) == 1, "identical in-flight requests re-computed"
            served = sorted(payload["served"] for status, payload in results)
            assert all(status == 200 for status, _ in results)
            assert served.count("computed") == 1
            assert set(served) <= {"computed", "inflight", "store"}
            keys = {payload["key"] for _, payload in results}
            assert len(keys) == 1

        run_service(body, tmp_path)

    def test_no_wait_returns_job_id_to_poll(self, tmp_path):
        def body(client, service):
            status, accepted = client.tune(jacobi_request(), wait=False)
            assert status == 202
            key = accepted["job"]
            assert accepted["status"] in ("queued", "running")
            deadline = time.time() + 30
            while time.time() < deadline:
                status, job = client.job(key)
                assert status == 200
                if job["status"] == "done":
                    break
                time.sleep(0.05)
            assert job["status"] == "done"
            assert job["result"]["recommendation"]["pads"]
            # And the key is now warm for everyone.
            status, warm = client.tune(jacobi_request())
            assert status == 200 and warm["served"] == "store"

        run_service(body, tmp_path)

    def test_malformed_requests_get_400_with_reason(self, tmp_path):
        def body(client, service):
            status, err = client.tune({"kernel": "nope"})
            assert status == 400 and "unknown kernel" in err["error"]
            status, err = client.tune({})
            assert status == 400 and "exactly one of" in err["error"]
            status, err = client._request("POST", "/v1/tune", body=None)
            assert status == 400
            status, err = client._request("GET", "/v1/tune")
            assert status == 405
            status, err = client._request("GET", "/nothing/here")
            assert status == 404

        run_service(body, tmp_path)


class TestBackpressure:
    def test_queue_full_answers_429(self, tmp_path, monkeypatch):
        release = threading.Event()
        real = server_mod.run_tuning

        def blocked_tuning(req, executor):
            release.wait(timeout=30)
            return real(req, executor)

        monkeypatch.setattr(server_mod, "run_tuning", blocked_tuning)

        def body(client, service):
            try:
                # Fill the queue (limit 1) with a blocked computation...
                status, accepted = client.tune(jacobi_request(16), wait=False)
                assert status == 202
                # ...then a *different* cold request must bounce.
                status, err = client.tune(jacobi_request(48), wait=False)
                assert status == 429
                assert "retry" in err["error"]
                assert err["queue_depth"] == 1
                # The identical request still joins in-flight (no 429).
                status, joined = client.tune(jacobi_request(16), wait=False)
                assert status == 202
                m = client.metrics()
                assert m["counters"]["service.requests.rejected_429"] == 1
            finally:
                release.set()
            # After release the queue drains and capacity returns.
            deadline = time.time() + 30
            while time.time() < deadline:
                status, job = client.job(accepted["job"])
                if job.get("status") == "done":
                    break
                time.sleep(0.05)
            status, _ = client.tune(jacobi_request(48))
            assert status == 200

        run_service(body, tmp_path, concurrency=1, queue_limit=1)

    def test_draining_answers_503_and_healthz_reports_it(self, tmp_path):
        def body(client, service):
            status, health = client.healthz()
            assert status == 200 and health["status"] == "ok"
            service._draining = True
            service.queue.draining = True
            status, err = client.tune(jacobi_request())
            assert status == 503
            status, health = client.healthz()
            assert health["status"] == "draining"
            m = client.metrics()
            assert m["counters"]["service.requests.rejected_503"] == 1

        run_service(body, tmp_path)


class TestIntrospection:
    def test_metrics_exposes_service_section(self, tmp_path):
        def body(client, service):
            client.tune(jacobi_request())
            m = client.metrics()
            svc = m["service"]
            assert svc["queue_limit"] == 4
            assert svc["queue_depth"] == 0
            assert svc["jobs"] == {"done": 1}
            assert svc["tuning_store"]["entries"] == 1
            assert svc["tuning_store"]["puts"] == 1
            assert "counters" in m and "gauges" in m

        run_service(body, tmp_path)

    def test_job_endpoint_404_for_unknown_key(self, tmp_path):
        def body(client, service):
            status, err = client.job("f" * 64)
            assert status == 404

        run_service(body, tmp_path)

    def test_job_endpoint_serves_store_only_keys(self, tmp_path):
        """A restarted server still answers for previously tuned keys."""
        def first(client, service):
            status, out = client.tune(jacobi_request())
            return out["key"]

        key = run_service(first, tmp_path)

        def second(client, service):
            status, job = client.job(key)
            assert status == 200 and job["status"] == "done"
            assert job["result"]["recommendation"]["pads"]
            # The tune endpoint is warm across restarts too.
            status, warm = client.tune(jacobi_request())
            assert status == 200 and warm["served"] == "store"

        run_service(second, tmp_path)

    def test_pipeline_error_maps_to_500_and_error_state(
        self, tmp_path, monkeypatch
    ):
        def broken_tuning(req, executor):
            raise RuntimeError("synthetic pipeline failure")

        monkeypatch.setattr(server_mod, "run_tuning", broken_tuning)

        def body(client, service):
            status, err = client.tune(jacobi_request())
            assert status == 500
            assert "synthetic pipeline failure" in err["error"]
            status, job = client.job(err["job"])
            assert job["status"] == "error"
            m = client.metrics()
            assert m["counters"]["service.errors"] == 1

        run_service(body, tmp_path)


class TestGracefulShutdown:
    def test_shutdown_completes_admitted_work(self, tmp_path):
        async def main():
            config = ServiceConfig(store_dir=str(tmp_path), port=0,
                                   concurrency=1, queue_limit=4,
                                   drain_timeout=30.0)
            service = TuningService(config)
            await service.start()
            client = TuningClient(port=service.port, timeout=60.0)
            loop = asyncio.get_event_loop()
            status, accepted = await loop.run_in_executor(
                None, lambda: client.tune(jacobi_request(), wait=False)
            )
            assert status == 202
            await service.shutdown()
            # The admitted job finished and was persisted before exit.
            state = service.jobs[accepted["job"]]
            assert state.status == "done"
            assert accepted["job"] in service.planner.store
            # Workers and executors are gone.
            assert all(t.done() for t in service._workers)

        asyncio.run(main())

    def test_shutdown_idempotent_on_idle_service(self, tmp_path):
        async def main():
            config = ServiceConfig(store_dir=str(tmp_path), port=0)
            service = TuningService(config)
            await service.start()
            await service.shutdown()

        asyncio.run(main())
