"""The service wire format: codecs, parsing, defaults, and tuning keys."""

from __future__ import annotations

import pytest

from repro import ProgramBuilder, ultrasparc_i
from repro.exec.hashing import program_fingerprint
from repro.service.protocol import (
    ProtocolError,
    hierarchy_from_json,
    hierarchy_to_json,
    parse_request,
    program_from_json,
    program_to_json,
    request_key,
)


def tiny_program(n: int = 24):
    b = ProgramBuilder(f"svc{n}")
    A = b.array("A", (n, n))
    B = b.array("B", (n, n))
    i, j = b.vars("i", "j")
    b.nest(
        [b.loop(j, 1, n - 1), b.loop(i, 1, n - 1)],
        [b.assign(B[i, j], reads=[A[i, j], A[i, j + 1]], flops=1)],
    )
    return b.build()


class TestProgramCodec:
    def test_round_trip_preserves_fingerprint(self):
        p = tiny_program()
        again = program_from_json(program_to_json(p))
        assert program_fingerprint(again) == program_fingerprint(p)
        assert again.name == p.name

    def test_kernel_programs_round_trip(self):
        from repro.kernels.registry import get_kernel

        for name in ("jacobi", "adi32", "matmul"):
            p = get_kernel(name).program(16)
            again = program_from_json(program_to_json(p))
            assert program_fingerprint(again) == program_fingerprint(p)

    def test_affine_wire_forms_are_equivalent(self):
        base = program_to_json(tiny_program())
        # Rewrite "i" as {"terms": {"i": 1}} and ints as {"const": n}.
        verbose = program_to_json(tiny_program())
        for nest in verbose["nests"]:
            for lp in nest["loops"]:
                lp["lower"] = {"const": lp["lower"]}
            for stmt in nest["body"]:
                for ref in stmt["refs"]:
                    ref["subscripts"] = [
                        {"terms": {s: 1}} if isinstance(s, str) else s
                        for s in ref["subscripts"]
                    ]
        a = program_from_json(base)
        b = program_from_json(verbose)
        assert program_fingerprint(a) == program_fingerprint(b)

    @pytest.mark.parametrize("mutate,fragment", [
        (lambda d: d.pop("arrays"), "missing required field"),
        (lambda d: d.update(arrays=7), "must be lists"),
        (lambda d: d.update(extra=1), "unknown fields"),
        (lambda d: d["nests"][0]["loops"][0].pop("var"), "missing required"),
        (lambda d: d["nests"][0]["body"][0]["refs"][0].update(
            subscripts=[True]), "affine"),
    ])
    def test_malformed_programs_are_rejected_with_context(self, mutate, fragment):
        doc = program_to_json(tiny_program())
        mutate(doc)
        with pytest.raises(ProtocolError, match=fragment):
            program_from_json(doc)


class TestHierarchyCodec:
    def test_preset_equals_explicit(self):
        assert hierarchy_from_json("ultrasparc_i") == ultrasparc_i()
        explicit = hierarchy_from_json(hierarchy_to_json(ultrasparc_i()))
        assert explicit == ultrasparc_i()

    def test_unknown_preset(self):
        with pytest.raises(ProtocolError, match="unknown hierarchy preset"):
            hierarchy_from_json("cray")

    def test_invalid_geometry_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="levels\\[0\\]"):
            hierarchy_from_json({"levels": [{"size": 100, "line_size": 32}]})


class TestParseRequest:
    def test_defaults(self):
        req = parse_request({"kernel": "jacobi", "n": 32})
        assert req.strategy == "L1&L2"  # two-level default hierarchy
        assert req.search == "coordinate"
        assert req.budget == 16
        assert req.max_lines == 4
        assert req.seed == 0
        assert req.kernel is None  # jacobi has no custom trace hook

    def test_single_level_hierarchy_defaults_to_l1(self):
        req = parse_request({
            "kernel": "jacobi", "n": 32,
            "hierarchy": {"levels": [{"size": 16384, "line_size": 32}]},
        })
        assert req.strategy == "L1"

    def test_custom_trace_kernel_is_recorded(self):
        req = parse_request({"kernel": "irr500k", "n": 64, "search": "none"})
        assert req.kernel == "irr500k"

    @pytest.mark.parametrize("payload,fragment", [
        ({}, "exactly one of"),
        ({"kernel": "jacobi", "program": {}}, "exactly one of"),
        ({"kernel": "nope"}, "unknown kernel"),
        ({"kernel": "jacobi", "n": 32, "strategy": "L3"}, "unknown strategy"),
        ({"kernel": "jacobi", "n": 32, "search": "genetic"}, "unknown search"),
        ({"kernel": "jacobi", "n": 32, "budget": 0}, "budget must be"),
        ({"kernel": "jacobi", "n": 32, "max_lines": 0}, "max_lines must be"),
        ({"kernel": "jacobi", "n": 32, "frobnicate": 1}, "unknown fields"),
        ({"program": {"arrays": [], "nests": []}, "n": 3}, "only applies"),
        ({"kernel": "jacobi", "n": 32,
          "hierarchy": {"levels": [{"size": 16384, "line_size": 32}]},
          "strategy": "L1&L2"}, "needs a hierarchy with an L2"),
    ])
    def test_rejections(self, payload, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            parse_request(payload)


class TestRequestKey:
    def test_kernel_and_inline_ir_share_a_key(self):
        """'kernel jacobi at n' and its own IR are the same question."""
        from repro.kernels.registry import get_kernel

        by_name = parse_request({"kernel": "jacobi", "n": 32})
        inline = parse_request({
            "program": program_to_json(get_kernel("jacobi").program(32)),
        })
        assert request_key(by_name) == request_key(inline)

    def test_custom_trace_kernel_does_not_alias_inline_ir(self):
        """IRR's gathers produce a different trace than its IR suggests."""
        from repro.kernels.registry import get_kernel

        by_name = parse_request({"kernel": "irr500k", "n": 64, "search": "none"})
        inline = parse_request({
            "program": program_to_json(get_kernel("irr500k").program(64)),
            "search": "none",
        })
        assert request_key(by_name) != request_key(inline)

    def test_search_none_ignores_search_knobs(self):
        a = parse_request({"kernel": "jacobi", "n": 32, "search": "none"})
        b = parse_request({"kernel": "jacobi", "n": 32, "search": "none",
                           "budget": 99, "seed": 5, "max_lines": 7})
        assert request_key(a) == request_key(b)

    def test_search_knobs_split_keys_when_searching(self):
        a = parse_request({"kernel": "jacobi", "n": 32, "budget": 8})
        b = parse_request({"kernel": "jacobi", "n": 32, "budget": 9})
        assert request_key(a) != request_key(b)

    def test_different_questions_get_different_keys(self):
        a = parse_request({"kernel": "jacobi", "n": 32})
        b = parse_request({"kernel": "jacobi", "n": 48})
        c = parse_request({"kernel": "adi32", "n": 32})
        assert len({request_key(a), request_key(b), request_key(c)}) == 3
