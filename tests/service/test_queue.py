"""Admission control: depth bounds, draining, and cheapest-first order."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.protocol import parse_request
from repro.service.queue import (
    ServiceDraining,
    ServiceSaturated,
    TuningQueue,
    estimate_cost,
)


def req(n: int, search: str = "none"):
    return parse_request({"kernel": "jacobi", "n": n, "search": search})


class TestAdmission:
    def test_depth_bound_maps_to_429(self):
        q = TuningQueue(limit=2)
        q.admit("a", req(16), None)
        q.admit("b", req(24), None)
        with pytest.raises(ServiceSaturated, match="2/2"):
            q.admit("c", req(32), None)
        assert ServiceSaturated.status == 429

    def test_draining_maps_to_503(self):
        q = TuningQueue(limit=2)
        q.stop(workers=1)
        with pytest.raises(ServiceDraining):
            q.admit("a", req(16), None)
        assert ServiceDraining.status == 503

    def test_done_frees_capacity(self):
        q = TuningQueue(limit=1)
        q.admit("a", req(16), None)
        with pytest.raises(ServiceSaturated):
            q.admit("b", req(16), None)
        q.done()
        q.admit("b", req(24), None)  # no raise

    def test_limit_must_be_positive(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            TuningQueue(limit=0)


class TestCostOrdering:
    def test_cost_scales_with_size_and_budget(self):
        assert estimate_cost(req(64)) > estimate_cost(req(16))
        assert (estimate_cost(req(32, search="coordinate"))
                > estimate_cost(req(32, search="none")))

    def test_cheapest_first_drain(self):
        async def drain():
            q = TuningQueue(limit=8)
            q.admit("huge", req(96), None)
            q.admit("small", req(16), None)
            q.admit("medium", req(48), None)
            order = [(await q.get()).key for _ in range(3)]
            return order

        assert asyncio.run(drain()) == ["small", "medium", "huge"]

    def test_arrival_breaks_cost_ties(self):
        async def drain():
            q = TuningQueue(limit=8)
            q.admit("first", req(32), None)
            q.admit("second", req(32), None)
            return [(await q.get()).key for _ in range(2)]

        assert asyncio.run(drain()) == ["first", "second"]

    def test_stop_wakes_every_worker(self):
        async def drain():
            q = TuningQueue(limit=8)
            q.admit("work", req(16), None)
            q.stop(workers=2)
            got = [await q.get() for _ in range(3)]
            return [g.key if g is not None else None for g in got]

        drained = asyncio.run(drain())
        assert drained.count(None) == 2
        assert "work" in drained  # real work still drains before stop
