"""Service-test fixtures: isolated metrics per test.

The server reports through the process-global metrics registry; these
tests assert absolute counter values, so each one starts from a fresh
registry (services constructed inside the test pick it up via
``get_metrics()``).
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import reset_metrics


@pytest.fixture(autouse=True)
def fresh_metrics():
    reset_metrics()
    yield
    reset_metrics()
