"""Cross-process request tracing and the Prometheus scrape endpoint.

The acceptance property of the tracing tentpole: one ``/v1/tune`` request
yields ONE connected trace tree -- front end, queue wait, worker pipeline,
and executor spans all stitched together by the trace id the server
minted, even though they run on different threads.
"""

from __future__ import annotations

import pytest

from repro.obs.tracer import Tracer, set_tracer, stop_tracing

from .test_server import jacobi_request, run_service


@pytest.fixture()
def live_tracer():
    """A real tracer installed for the duration of one test."""
    tracer = Tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        stop_tracing()


def spans_for(tracer, trace_id):
    return [s for s in tracer.spans()
            if s.args.get("trace_id") == trace_id and s.dur_ns is not None]


class TestRequestTracing:
    def test_one_request_builds_one_connected_tree(
        self, tmp_path, live_tracer
    ):
        def body(client, service):
            status, out = client.tune(jacobi_request())
            assert status == 200
            return out

        out = run_service(body, tmp_path)
        trace_id = out["trace_id"]
        assert len(trace_id) == 16

        spans = spans_for(live_tracer, trace_id)
        names = {s.name for s in spans}
        assert {"http.request", "service.queue_wait", "service.tune"} <= names
        assert any(n.startswith("exec.") for n in names)

        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.parent_id not in by_id]
        assert [r.name for r in roots] == ["http.request"]
        # Every span reaches the root: connected, acyclic, one tree.
        for s in spans:
            hops, cur = 0, s
            while cur.parent_id in by_id:
                cur = by_id[cur.parent_id]
                hops += 1
                assert hops < len(spans)
            assert cur.name == "http.request"

        root = roots[0]
        assert root.args["status"] == 200
        assert root.args["served"] == "computed"
        # The queue-wait span sits between admission and the pipeline.
        wait = next(s for s in spans if s.name == "service.queue_wait")
        assert wait.parent_id == root.span_id

    def test_distinct_requests_get_distinct_disjoint_traces(
        self, tmp_path, live_tracer
    ):
        def body(client, service):
            _, first = client.tune(jacobi_request(16))
            _, second = client.tune(jacobi_request(24))
            return first, second

        first, second = run_service(body, tmp_path)
        assert first["trace_id"] != second["trace_id"]
        ids_a = {s.span_id for s in spans_for(live_tracer, first["trace_id"])}
        ids_b = {s.span_id for s in spans_for(live_tracer, second["trace_id"])}
        assert ids_a and ids_b and not (ids_a & ids_b)

    def test_store_hit_still_gets_a_traced_root(self, tmp_path, live_tracer):
        def body(client, service):
            client.tune(jacobi_request())
            status, warm = client.tune(jacobi_request())
            assert status == 200 and warm["served"] == "store"
            return warm

        warm = run_service(body, tmp_path)
        (root,) = [s for s in spans_for(live_tracer, warm["trace_id"])
                   if s.name == "http.request"]
        assert root.args["served"] == "store"

    def test_tracing_off_means_no_trace_id_in_responses(self, tmp_path):
        def body(client, service):
            status, out = client.tune(jacobi_request())
            assert status == 200
            assert "trace_id" not in out

        run_service(body, tmp_path)


class TestPrometheusEndpoint:
    def test_scrape_returns_text_exposition(self, tmp_path):
        def body(client, service):
            client.tune(jacobi_request())
            text = client.metrics(fmt="prometheus")
            assert isinstance(text, str)
            lines = text.splitlines()
            assert "service_requests_computed_total 1" in lines
            assert "service_queue_limit 4" in lines
            assert "# TYPE service_requests_computed_total counter" in lines
            assert any(l.startswith("service_uptime_seconds ")
                       for l in lines)

        run_service(body, tmp_path)

    def test_json_format_is_still_the_default(self, tmp_path):
        def body(client, service):
            m = client.metrics()
            assert isinstance(m, dict)
            assert "service" in m

        run_service(body, tmp_path)

    def test_unknown_format_is_a_400(self, tmp_path):
        def body(client, service):
            status, err = client._request("GET", "/metrics?format=xml")
            assert status == 400
            assert "unknown metrics format" in err["error"]

        run_service(body, tmp_path)
