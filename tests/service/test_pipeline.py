"""The tuning pipeline: optimize + search + evaluate, with provenance."""

from __future__ import annotations

from repro.exec.executor import SweepExecutor
from repro.exec.store import ResultStore
from repro.service.pipeline import run_tuning
from repro.service.protocol import parse_request


def request(n: int = 32, **over):
    payload = {"kernel": "jacobi", "n": n, "budget": 4, "max_lines": 2}
    payload.update(over)
    return parse_request(payload)


class TestRunTuning:
    def test_payload_shape_and_recommendation(self, tmp_path):
        with SweepExecutor(workers=1, store=ResultStore(tmp_path)) as ex:
            out = run_tuning(request(), ex)
        rec = out["recommendation"]
        assert list(rec["pads"]) == rec["order"]
        assert set(rec["shapes"]) == set(rec["order"])
        levels = out["evaluation"]["levels"]
        assert [lv["name"] for lv in levels] == ["L1", "L2"]
        for lv in levels:
            assert 0.0 <= lv["miss_rate"] <= 1.0
            assert lv["misses"] <= lv["accesses"]
        assert out["evaluation"]["total_refs"] > 0
        assert out["evaluation"]["cycles"] > 0
        assert out["decisions"], "driver decisions must be reported"
        assert out["search"]["evaluations"] >= 1
        # The search is seeded with the heuristic: never worse.
        assert (out["search"]["best_objective"]
                <= out["search"]["baseline_objective"])
        assert out["provenance"]["jobs"] >= out["search"]["evaluations"]
        assert out["seconds"] >= 0

    def test_search_none_skips_searching(self, tmp_path):
        with SweepExecutor(workers=1, store=ResultStore(tmp_path)) as ex:
            out = run_tuning(request(search="none"), ex)
        assert out["search"] is None
        assert out["provenance"]["jobs"] == 1

    def test_repeat_request_replays_from_store(self, tmp_path):
        store = ResultStore(tmp_path)
        with SweepExecutor(workers=1, store=store) as ex:
            first = run_tuning(request(), ex)
            second = run_tuning(request(), ex)
        assert second["recommendation"] == first["recommendation"]
        # Everything the second run needed was already stored.
        assert second["provenance"]["store_hits"] == second["provenance"]["jobs"]
        assert second["provenance"]["simulated"] == 0

    def test_provenance_isolated_per_request(self, tmp_path):
        """cumulative_stats(mark) scopes provenance to one request."""
        with SweepExecutor(workers=1, store=ResultStore(tmp_path)) as ex:
            a = run_tuning(request(search="none"), ex)
            b = run_tuning(request(n=40, search="none"), ex)
        assert a["provenance"]["jobs"] == 1
        assert b["provenance"]["jobs"] == 1

    def test_single_array_program_skips_search_gracefully(self, tmp_path):
        from repro import ProgramBuilder
        from repro.service.protocol import program_to_json

        b = ProgramBuilder("one")
        A = b.array("A", (64,))
        (i,) = b.vars("i")
        b.nest([b.loop(i, 1, 63)], [b.use(reads=[A[i]], flops=1)])
        req = parse_request({"program": program_to_json(b.build())})
        with SweepExecutor(workers=1, store=ResultStore(tmp_path)) as ex:
            out = run_tuning(req, ex)
        assert out["search"] is None
        assert any("no pad space" in d for d in out["decisions"])
