"""Property: semantically identical requests collapse to one tuning key.

The satellite guarantee of the service: two *textually different* JSON
requests that ask the same question -- shuffled key order, explicitly
spelled defaults, a preset hierarchy vs its explicit level list,
equivalent affine wire spellings -- must map to the same tuning key
(and are therefore served by one computation; the server-level half of
that claim is pinned in ``test_server.py``).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.protocol import (
    hierarchy_to_json,
    parse_request,
    program_to_json,
    request_key,
)
from tests.service.test_protocol import tiny_program

BASE = {
    "kernel": "jacobi",
    "n": 32,
    "hierarchy": "ultrasparc_i",
    "strategy": "L1&L2",
    "search": "coordinate",
    "budget": 16,
    "max_lines": 4,
    "seed": 0,
}

# Fields whose BASE value is exactly the parse-time default, so omitting
# them must not move the key.
DEFAULTED = ("hierarchy", "strategy", "search", "budget", "max_lines", "seed")


def shuffled(payload: dict, order: list) -> dict:
    """The same payload with a different (textual) key order."""
    keys = sorted(payload, key=lambda k: order[sorted(payload).index(k)])
    return {k: payload[k] for k in keys}


@st.composite
def equivalent_spellings(draw):
    """One textually varied spelling of the BASE request."""
    payload = dict(BASE)
    # Drop a random subset of explicitly-defaulted fields.
    for field in DEFAULTED:
        if draw(st.booleans()):
            del payload[field]
    # Preset name vs the equivalent explicit hierarchy object.
    if "hierarchy" in payload and draw(st.booleans()):
        from repro import ultrasparc_i

        payload["hierarchy"] = hierarchy_to_json(ultrasparc_i())
    # Shuffle the JSON key order (textual, not semantic).
    order = draw(st.permutations(range(len(BASE))))
    return shuffled(payload, list(order))


class TestKeyCanonicalization:
    @given(a=equivalent_spellings(), b=equivalent_spellings())
    @settings(max_examples=60, deadline=None)
    def test_equivalent_requests_share_one_key(self, a, b):
        # The spellings really are textually different most of the time...
        texts = {json.dumps(a), json.dumps(b)}
        # ...but always parse to the same key.
        ka = request_key(parse_request(a))
        kb = request_key(parse_request(b))
        assert ka == kb, f"split key for spellings {texts}"

    @given(order=st.permutations(range(len(BASE))))
    @settings(max_examples=30, deadline=None)
    def test_key_order_never_matters(self, order):
        base_key = request_key(parse_request(BASE))
        assert request_key(parse_request(shuffled(BASE, list(order)))) == base_key

    @given(verbose_affine=st.booleans(), drop_defaults=st.booleans(),
           rename=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_inline_program_spellings_share_one_key(
        self, verbose_affine, drop_defaults, rename
    ):
        doc = program_to_json(tiny_program())
        if rename:
            doc["name"] = "совершенно другое имя"  # cosmetic, excluded
        if drop_defaults:
            for arr in doc["arrays"]:
                arr.pop("element_size", None)  # default is 8 either way
        if verbose_affine:
            for nest in doc["nests"]:
                for lp in nest["loops"]:
                    if isinstance(lp["lower"], int):
                        lp["lower"] = {"const": lp["lower"]}
                    lp["step"] = 1
        varied = request_key(parse_request({"program": doc, "search": "none"}))
        plain = request_key(parse_request({
            "program": program_to_json(tiny_program()), "search": "none",
        }))
        assert varied == plain

    @given(n=st.sampled_from([16, 24, 32]), budget=st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_distinct_questions_never_collide(self, n, budget):
        a = parse_request({"kernel": "jacobi", "n": n, "budget": budget})
        b = parse_request({"kernel": "jacobi", "n": n + 8, "budget": budget})
        c = parse_request({"kernel": "jacobi", "n": n, "budget": budget + 1})
        assert len({request_key(a), request_key(b), request_key(c)}) == 3
