"""Strategy policy properties, independent of any simulation.

Strategies only see the space and an ``evaluate`` callback, so these
tests drive them with a pure synthetic objective and check the contract
every strategy must honor: proposals stay inside the space, a fixed seed
reproduces the exact proposal sequence, and search never "finds" a value
the objective didn't produce.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.search.space import Dimension, SearchSpace
from repro.search.strategies import (
    STRATEGIES,
    CoordinateDescent,
    ExhaustiveSearch,
    PredictThenVerifyStrategy,
    RandomSearch,
    get_strategy,
)

# "predict" scores configs through space.job() by design (its tier one
# is an analytic objective over jobs), so it is exempt from the
# no-materialization contract and tested separately below.
ALL_STRATEGIES = sorted(set(STRATEGIES) - {"predict"})


def _nojob(config):
    raise AssertionError("strategies must not materialize jobs")


def synth_objective(config):
    """A bumpy but pure deterministic objective."""
    return sum((i + 3) * v * v - 7 * v for i, v in enumerate(config)) % 101


spaces = st.lists(
    st.lists(st.integers(0, 20), min_size=1, max_size=4, unique=True),
    min_size=1,
    max_size=3,
).map(
    lambda dims: SearchSpace(
        name="synthetic",
        dimensions=tuple(
            Dimension(name=f"d{i}", choices=tuple(sorted(cs)))
            for i, cs in enumerate(dims)
        ),
        job_builder=_nojob,
    )
)


def drive(strategy, space, seed=0, start=None):
    """Run a strategy, recording every proposed config in order."""
    proposed = []

    def evaluate(configs):
        proposed.extend(configs)
        for c in configs:
            assert space.contains(c), f"proposal {c} outside space"
        return [synth_objective(c) for c in configs]

    strategy.run(space, evaluate, random.Random(seed), start=start)
    return proposed


class TestContractAcrossStrategies:
    @settings(max_examples=40, deadline=None)
    @given(space=spaces, name=st.sampled_from(ALL_STRATEGIES), seed=st.integers(0, 99))
    def test_proposals_in_space_and_deterministic(self, space, name, seed):
        first = drive(get_strategy(name), space, seed=seed)
        second = drive(get_strategy(name), space, seed=seed)
        assert first == second
        assert first, "every strategy must propose at least one config"

    @settings(max_examples=25, deadline=None)
    @given(space=spaces, name=st.sampled_from(ALL_STRATEGIES), seed=st.integers(0, 99))
    def test_start_config_not_required(self, space, name, seed):
        start = space.default_config()
        proposed = drive(get_strategy(name), space, seed=seed, start=start)
        assert all(space.contains(c) for c in proposed)


class TestExhaustive:
    @settings(max_examples=25, deadline=None)
    @given(space=spaces)
    def test_visits_every_point_exactly_once(self, space):
        proposed = drive(ExhaustiveSearch(batch_size=7), space)
        assert sorted(proposed) == sorted(space.configs())
        assert len(set(proposed)) == len(proposed)

    def test_batch_size_validated(self):
        with pytest.raises(ReproError):
            ExhaustiveSearch(batch_size=0)


class TestRandom:
    @settings(max_examples=25, deadline=None)
    @given(space=spaces, seed=st.integers(0, 99))
    def test_no_replacement(self, space, seed):
        proposed = drive(RandomSearch(batch_size=3), space, seed=seed)
        assert len(set(proposed)) == len(proposed)

    @settings(max_examples=25, deadline=None)
    @given(space=spaces, seed=st.integers(0, 99), k=st.integers(1, 6))
    def test_sample_cap_respected(self, space, seed, k):
        proposed = drive(RandomSearch(samples=k), space, seed=seed)
        assert len(proposed) <= k

    def test_start_is_excluded_from_draws(self):
        space = SearchSpace(
            name="two",
            dimensions=(Dimension("d0", (0, 1)),),
            job_builder=_nojob,
        )
        proposed = drive(RandomSearch(), space, seed=5, start=(0,))
        assert (0,) not in proposed and (1,) in proposed

    def test_params_validated(self):
        with pytest.raises(ReproError):
            RandomSearch(samples=0)
        with pytest.raises(ReproError):
            RandomSearch(batch_size=0)


class TestCoordinateDescent:
    @settings(max_examples=25, deadline=None)
    @given(space=spaces, seed=st.integers(0, 99))
    def test_never_ends_worse_than_start(self, space, seed):
        start = space.default_config()
        proposed = drive(CoordinateDescent(), space, seed=seed, start=start)
        assert proposed[0] == start
        assert min(map(synth_objective, proposed)) <= synth_objective(start)

    @settings(max_examples=25, deadline=None)
    @given(space=spaces)
    def test_finds_axis_optimum_on_single_dimension(self, space):
        """With one dimension, a coordinate sweep IS exhaustive search."""
        if len(space.dimensions) != 1:
            return
        proposed = drive(CoordinateDescent(), space)
        best = min(map(synth_objective, proposed))
        true_best = min(synth_objective(c) for c in space.configs())
        assert best == true_best

    def test_params_validated(self):
        with pytest.raises(ReproError):
            CoordinateDescent(max_passes=0)


def _config_job_space(dims):
    """A space whose ``job`` is the config itself, so a plain callable
    can stand in for the analytic model objective."""
    return SearchSpace(
        name="synthetic",
        dimensions=dims,
        job_builder=lambda config: config,
    )


def drive_predict(space, seed=0, start=None, **kwargs):
    kwargs.setdefault("objective", synth_objective)
    strategy = PredictThenVerifyStrategy(**kwargs)
    return strategy, drive(strategy, space, seed=seed, start=start)


class TestPredictThenVerify:
    def space(self, *choice_lists):
        return _config_job_space(
            tuple(
                Dimension(name=f"d{i}", choices=cs)
                for i, cs in enumerate(choice_lists)
            )
        )

    def test_simulates_only_top_k(self):
        space = self.space((0, 1, 2, 3), (0, 1, 2, 3))
        strategy, proposed = drive_predict(space, top_k=3)
        assert strategy.last_scored == space.size
        assert len(proposed) == 3
        # the verified set is exactly the analytically best-ranked configs
        ranked = sorted(space.configs(), key=lambda c: (synth_objective(c), c))
        assert proposed == ranked[:3]

    def test_start_appended_when_not_in_top(self):
        space = self.space((0, 1, 2, 3), (0, 1, 2, 3))
        ranked = sorted(space.configs(), key=lambda c: (synth_objective(c), c))
        start = ranked[-1]
        _, proposed = drive_predict(space, top_k=2, start=start)
        assert proposed[:2] == ranked[:2]
        assert proposed[-1] == start and len(proposed) == 3

    def test_sampling_above_max_scored_is_deterministic(self):
        space = self.space(tuple(range(12)), tuple(range(12)), tuple(range(12)))
        s1, first = drive_predict(space, seed=7, max_scored=100)
        s2, second = drive_predict(space, seed=7, max_scored=100)
        assert first == second
        assert s1.last_scored == s2.last_scored == 100
        assert all(space.contains(c) for c in first)

    def test_registered_and_validated(self):
        assert get_strategy("predict").name == "predict"
        with pytest.raises(ReproError):
            PredictThenVerifyStrategy(top_k=0)
        with pytest.raises(ReproError):
            PredictThenVerifyStrategy(max_scored=0)


class TestGetStrategy:
    def test_by_name_and_passthrough(self):
        assert get_strategy("random").name == "random"
        inst = ExhaustiveSearch()
        assert get_strategy(inst) is inst

    def test_unknown_rejected(self):
        with pytest.raises(ReproError):
            get_strategy("simulated-annealing")
        with pytest.raises(ReproError):
            get_strategy(42)
