"""SearchSpace structure and the three concrete space builders."""

import pytest

from repro import DataLayout, ultrasparc_i
from repro.errors import ReproError
from repro.exec.jobs import SimJob
from repro.search.space import (
    Dimension,
    SearchSpace,
    assoc_pad_space,
    fusion_space,
    pad_space,
    tile_space,
)
from tests.conftest import build_fig2


def _nojob(config):  # structure-only spaces never materialize jobs
    raise AssertionError("job_builder should not be called")


def make_space(*choice_lists):
    return SearchSpace(
        name="synthetic",
        dimensions=tuple(
            Dimension(name=f"d{i}", choices=tuple(cs))
            for i, cs in enumerate(choice_lists)
        ),
        job_builder=_nojob,
    )


class TestSearchSpaceStructure:
    def test_size_is_product(self):
        assert make_space([0, 1, 2], [5, 7]).size == 6

    def test_contains_and_validate(self):
        s = make_space([0, 32], [0, 64])
        assert s.contains((32, 0))
        assert not s.contains((1, 0))
        assert not s.contains((32,))
        assert s.validate((32, 64)) == (32, 64)
        with pytest.raises(ReproError):
            s.validate((33, 64))

    def test_configs_enumerates_all_deterministically(self):
        s = make_space([0, 1], [0, 1])
        assert list(s.configs()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_default_config_is_first_choices(self):
        assert make_space([3, 9], [7, 1]).default_config() == (3, 7)

    def test_axis_configs_vary_one_dimension(self):
        s = make_space([0, 1, 2], [5, 7])
        assert s.axis_configs((1, 7), 0) == [(0, 7), (1, 7), (2, 7)]
        assert s.axis_configs((1, 7), 1) == [(1, 5), (1, 7)]

    def test_nearest_config_snaps_to_grid(self):
        s = make_space([0, 32, 64], [0, 128])
        assert s.nearest_config((30, 1000)) == (32, 128)
        with pytest.raises(ReproError):
            s.nearest_config((30,))

    def test_duplicate_dimension_names_rejected(self):
        with pytest.raises(ReproError):
            SearchSpace(
                name="bad",
                dimensions=(
                    Dimension("x", (0, 1)),
                    Dimension("x", (0, 1)),
                ),
                job_builder=_nojob,
            )

    def test_empty_choices_rejected(self):
        with pytest.raises(ReproError):
            Dimension("x", ())
        with pytest.raises(ReproError):
            Dimension("x", (1, 1))


class TestPadSpace:
    def test_skips_first_array(self, hier):
        prog = build_fig2(64)
        lay = DataLayout.sequential(prog)
        space = pad_space(prog, lay, hier)
        names = [d.name for d in space.dimensions]
        assert names == ["pad:B", "pad:C"]  # A (first in layout) fixed

    def test_choices_step_by_lmax(self, hier):
        prog = build_fig2(64)
        space = pad_space(prog, DataLayout.sequential(prog), hier, max_lines=4)
        lmax = hier.max_line_size
        for d in space.dimensions:
            assert d.choices == (0, lmax, 2 * lmax, 3 * lmax)

    def test_l2_multiples_add_s1_offsets(self, hier):
        prog = build_fig2(64)
        space = pad_space(
            prog, DataLayout.sequential(prog), hier, max_lines=2, l2_multiples=2
        )
        s1, lmax = hier.l1.size, hier.max_line_size
        assert space.dimensions[0].choices == (0, lmax, s1, s1 + lmax)

    def test_include_merges_heuristic_pads(self, hier):
        prog = build_fig2(64)
        space = pad_space(
            prog, DataLayout.sequential(prog), hier, max_lines=2,
            include={"C": 12345},
        )
        assert 12345 in space.dimensions[1].choices
        assert space.contains((0, 12345))

    def test_include_unknown_array_rejected(self, hier):
        prog = build_fig2(64)
        with pytest.raises(ReproError):
            pad_space(
                prog, DataLayout.sequential(prog), hier, include={"nope": 0}
            )

    def test_job_applies_config_pads(self, hier):
        prog = build_fig2(64)
        lay = DataLayout.sequential(prog)
        space = pad_space(prog, lay, hier, max_lines=4)
        lmax = hier.max_line_size
        job = space.job((lmax, 2 * lmax))
        assert isinstance(job, SimJob)
        assert job.layout.pads[job.layout.index_of("B")] == lmax
        assert job.layout.pads[job.layout.index_of("C")] == 2 * lmax
        assert job.hierarchy == hier

    def test_uniform_shift_irrelevance_justifies_fixed_first_pad(self, hier):
        """Shifting every array by the same multiple of the largest line
        size leaves miss counts unchanged -- the reason pad_space has no
        dimension for the first array and steps its choices by Lmax."""
        prog = build_fig2(64)
        lay = DataLayout.sequential(prog)
        shifted = lay.with_pad("A", hier.max_line_size * 3)
        r1 = SimJob(program=prog, layout=lay, hierarchy=hier).run()
        r2 = SimJob(program=prog, layout=shifted, hierarchy=hier).run()
        assert r1 == r2


class TestAssocPadSpace:
    def _kway(self, hier, k):
        from repro.cache.config import CacheConfig, HierarchyConfig

        return HierarchyConfig(
            levels=tuple(
                CacheConfig(
                    size=c.size, line_size=c.line_size, associativity=k,
                    name=c.name, hit_cycles=c.hit_cycles,
                )
                for c in hier
            ),
            memory_cycles=hier.memory_cycles,
        )

    def test_coarse_stride_is_set_mapping_period(self, hier):
        """Under a 2-way L1 the second-level stride is S1/2, not S1."""
        kway = self._kway(hier, 2)
        prog = build_fig2(64)
        space = assoc_pad_space(
            prog, DataLayout.sequential(prog), kway,
            max_lines=2, span_multiples=2,
        )
        span, lmax = kway.l1.size // 2, kway.max_line_size
        assert space.dimensions[0].choices == (0, lmax, span, span + lmax)

    def test_degenerates_to_pad_space_grid_when_direct_mapped(self, hier):
        """k=1: the span equals S1, so the grid matches pad_space with
        l2_multiples -- associativity-aware search strictly generalizes."""
        prog = build_fig2(64)
        lay = DataLayout.sequential(prog)
        a = assoc_pad_space(prog, lay, hier, max_lines=3, span_multiples=2)
        p = pad_space(prog, lay, hier, max_lines=3, l2_multiples=2)
        assert [d.choices for d in a.dimensions] == [
            d.choices for d in p.dimensions
        ]

    def test_include_merges_heuristic_pads(self, hier):
        kway = self._kway(hier, 4)
        prog = build_fig2(64)
        space = assoc_pad_space(
            prog, DataLayout.sequential(prog), kway, max_lines=2,
            include={"C": 54321},
        )
        assert 54321 in space.dimensions[1].choices

    def test_job_applies_config_pads(self, hier):
        kway = self._kway(hier, 2)
        prog = build_fig2(64)
        lay = DataLayout.sequential(prog)
        space = assoc_pad_space(prog, lay, kway, max_lines=2)
        span = kway.l1.size // 2
        job = space.job((span, 0))
        assert isinstance(job, SimJob)
        assert job.layout.pads[job.layout.index_of("B")] == span
        assert job.hierarchy == kway

    def test_invalid_parameters_rejected(self, hier):
        prog = build_fig2(64)
        lay = DataLayout.sequential(prog)
        with pytest.raises(ReproError):
            assoc_pad_space(prog, lay, hier, max_lines=0)
        with pytest.raises(ReproError):
            assoc_pad_space(prog, lay, hier, span_multiples=0)
        with pytest.raises(ReproError):
            assoc_pad_space(prog, lay, hier, include={"nope": 0})


class TestTileSpace:
    def test_dimensions_and_bounds(self):
        hier = ultrasparc_i()
        space = tile_space(100, hier)
        assert [d.name for d in space.dimensions] == ["tile:w", "tile:h"]
        for d in space.dimensions:
            assert all(1 <= c <= 100 for c in d.choices)

    def test_explicit_edges(self):
        hier = ultrasparc_i()
        space = tile_space(200, hier, widths=[8, 16], heights=[4, 32])
        assert space.size == 4
        job = space.job((16, 4))
        assert "matmul" in job.program.name
        # The tiled program gained the two tile-controlling loops.
        assert len(job.program.nests[0].loops) == 5

    def test_ladder_is_sorted_unique(self):
        hier = ultrasparc_i()
        space = tile_space(400, hier)
        for d in space.dimensions:
            assert list(d.choices) == sorted(set(d.choices))


class TestFusionSpace:
    def test_one_dimension_per_fusable_pair(self, hier):
        prog = build_fig2(64)
        space = fusion_space(prog, hier, check="none")
        assert len(space.dimensions) == 1
        assert space.dimensions[0].choices == (0, 1)

    def test_decisions_change_nest_count(self, hier):
        prog = build_fig2(64)
        space = fusion_space(prog, hier, check="none")
        assert len(space.job((0,)).program.nests) == 2
        assert len(space.job((1,)).program.nests) == 1

    def test_no_fusable_pairs_raises(self, hier, pingpong):
        with pytest.raises(ReproError):
            fusion_space(pingpong, hier)
