"""Shared fixtures for the search subsystem tests.

Everything here is sized for speed: a two-array ping-pong kernel on a
1 KB L1 thrashes maximally under the sequential layout (both arrays map
to identical cache positions) yet simulates in well under a millisecond,
so even hypothesis-driven tuner runs stay fast.
"""

from __future__ import annotations

import pytest

from repro import DataLayout, ProgramBuilder
from repro.cache.config import CacheConfig, HierarchyConfig

PING_N = 256  # elements per array; 2 KB arrays on a 1 KB L1 -> resonance


def build_pingpong(n: int = PING_N):
    """``B[i] = A[i]`` with both arrays cache-size-resonant."""
    b = ProgramBuilder("pingpong")
    A = b.array("A", (n,))
    B = b.array("B", (n,))
    (i,) = b.vars("i")
    b.nest([b.loop(i, 1, n)], [b.assign(B[i], reads=[A[i]], flops=1)])
    return b.build()


def build_tiny_hier():
    """A miniature two-level hierarchy (1 KB/32 B L1, 8 KB/64 B L2)."""
    return HierarchyConfig(
        levels=(
            CacheConfig(size=1024, line_size=32, name="L1", hit_cycles=1.0),
            CacheConfig(size=8192, line_size=64, name="L2", hit_cycles=6.0),
        ),
        memory_cycles=50.0,
    )


@pytest.fixture
def tiny_hier():
    return build_tiny_hier()


@pytest.fixture
def pingpong():
    return build_pingpong()


@pytest.fixture
def pingpong_layout(pingpong):
    return DataLayout.sequential(pingpong)
