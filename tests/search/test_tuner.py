"""Autotuner behaviour: budgets, baselines, memoization, reports.

These run real (tiny) simulations through the ping-pong kernel, so they
also exercise the space -> SimJob -> SweepExecutor -> objective path end
to end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataLayout
from repro.errors import ReproError
from repro.exec.executor import SweepExecutor
from repro.exec.store import ResultStore
from repro.search import (
    Autotuner,
    miss_rate_objective,
    pad_space,
)
from repro.search.strategies import STRATEGIES
from repro.transforms.pad import multilvl_pad
from tests.search.conftest import build_pingpong, build_tiny_hier

ALL_STRATEGIES = sorted(STRATEGIES)


def make_ping_space():
    """Pad space for the ping-pong kernel, seeded with MULTILVLPAD's pick."""
    prog = build_pingpong()
    hier = build_tiny_hier()
    layout = DataLayout.sequential(prog)
    heuristic = multilvl_pad(prog, layout, hier)
    space = pad_space(
        prog, layout, hier, max_lines=8, include={"B": heuristic.pads[1]}
    )
    return space, (heuristic.pads[1],)


@pytest.fixture
def ping_space():
    return make_ping_space()


class TestBudgetAndReport:
    def test_budget_caps_evaluations(self, ping_space):
        space, baseline = ping_space
        report = Autotuner().search(
            space, strategy="random", budget=3, seed=7, baseline=baseline
        )
        assert report.evaluations <= 3
        assert report.stopped == "budget"

    def test_exhaustive_completes_within_generous_budget(self, ping_space):
        space, baseline = ping_space
        report = Autotuner().search(
            space, strategy="exhaustive", budget=100, baseline=baseline
        )
        assert report.evaluations == space.size
        assert report.stopped == "completed"

    def test_invalid_budget_rejected(self, ping_space):
        space, _ = ping_space
        with pytest.raises(ReproError):
            Autotuner().search(space, budget=0)

    def test_trajectory_is_decreasing_and_anchored(self, ping_space):
        space, baseline = ping_space
        report = Autotuner().search(
            space, strategy="exhaustive", baseline=baseline
        )
        values = [v for _, v in report.trajectory]
        assert values == sorted(values, reverse=True)
        assert report.trajectory[-1][1] == report.best_objective
        xs = [x for x, _ in report.trajectory]
        assert xs == sorted(xs)
        assert 1 <= xs[0]

    def test_report_formats(self, ping_space):
        space, baseline = ping_space
        report = Autotuner().search(space, strategy="exhaustive", baseline=baseline)
        text = report.format()
        assert "baseline" in text and "evaluations" in text
        assert report.gap_pct is not None and report.gap_pct >= 0.0

    def test_objective_override(self, ping_space, tiny_hier):
        space, baseline = ping_space
        report = Autotuner().search(
            space,
            strategy="exhaustive",
            objective=miss_rate_objective("L1"),
            baseline=baseline,
        )
        assert report.objective == "L1-miss-rate"
        assert 0.0 <= report.best_objective <= 1.0

    def test_baseline_outside_space_rejected(self, ping_space):
        space, _ = ping_space
        with pytest.raises(ReproError):
            Autotuner().search(space, baseline=(33,))


class TestSearchProperties:
    @settings(max_examples=12, deadline=None)
    @given(name=st.sampled_from(ALL_STRATEGIES), seed=st.integers(0, 50))
    def test_deterministic_and_config_in_space(self, name, seed):
        """Fixed seed -> identical report; best config is a space point."""
        space, baseline = make_ping_space()

        def once():
            return Autotuner().search(
                space, strategy=name, budget=10, seed=seed, baseline=baseline
            )

        a, b = once(), once()
        assert a.best_config == b.best_config
        assert a.best_objective == b.best_objective
        assert a.evaluations == b.evaluations
        assert a.trajectory == b.trajectory
        assert space.contains(a.best_config)

    @settings(max_examples=12, deadline=None)
    @given(name=st.sampled_from(ALL_STRATEGIES), seed=st.integers(0, 50))
    def test_never_worse_than_seeded_baseline(self, name, seed):
        space, baseline = make_ping_space()
        report = Autotuner().search(
            space, strategy=name, budget=10, seed=seed, baseline=baseline
        )
        assert report.baseline_config == baseline
        assert report.best_objective <= report.baseline_objective


class TestMemoization:
    def test_in_run_memo_avoids_resimulation(self, ping_space):
        space, baseline = ping_space
        tuner = Autotuner()
        report = tuner.search(
            space, strategy="coordinate", budget=20, baseline=baseline
        )
        # Coordinate descent re-proposes the current point on every axis
        # sweep; those replays must come from the in-run memo, and the
        # executor must never have simulated one config twice.
        assert report.memo_hits > 0
        keys = [
            r.key
            for stats in tuner.executor.history
            for r in stats.records
            if r.source != "cache"
        ]
        assert len(keys) == len(set(keys))

    def test_result_store_serves_repeat_searches(self, ping_space, tmp_path):
        space, baseline = ping_space
        store = ResultStore(tmp_path / "store")
        cold = Autotuner(store=store).search(
            space, strategy="exhaustive", baseline=baseline
        )
        assert cold.store_hits == 0
        warm = Autotuner(store=store).search(
            space, strategy="exhaustive", baseline=baseline
        )
        assert warm.store_hits == warm.evaluations
        assert warm.best_config == cold.best_config
        assert warm.best_objective == cold.best_objective

    def test_shared_executor_is_used(self, ping_space):
        space, baseline = ping_space
        ex = SweepExecutor(workers=1)
        Autotuner(executor=ex).search(space, strategy="exhaustive")
        assert ex.history, "search must run through the shared executor"
