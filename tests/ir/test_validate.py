"""Static validation: bounds, dead arrays, empty loops."""

import pytest

from repro import ProgramBuilder
from repro.errors import IRError
from repro.ir.validate import check_program, validate_program
from repro.kernels import KERNELS, get_kernel


class TestBounds:
    def test_out_of_bounds_detected_statically(self):
        b = ProgramBuilder("oob")
        A = b.array("A", (8, 8))
        i, j = b.vars("i", "j")
        b.nest(
            [b.loop(j, 1, 8), b.loop(i, 1, 8)],
            [b.use(reads=[A[i, j + 1]])],  # j+1 reaches 9
        )
        prog = b.build()
        errors = [f for f in validate_program(prog) if f.severity == "error"]
        assert errors and "spans" in errors[0].message
        with pytest.raises(IRError):
            check_program(prog)

    def test_below_lower_bound_detected(self):
        b = ProgramBuilder("lb")
        A = b.array("A", (8,))
        (i,) = b.vars("i")
        b.nest([b.loop(i, 1, 8)], [b.use(reads=[A[i - 1]])])  # reaches 0
        assert any(
            f.severity == "error" for f in validate_program(b.build())
        )

    def test_clean_program_passes(self):
        b = ProgramBuilder("ok")
        A = b.array("A", (8,))
        Bm = b.array("B", (8,))
        (i,) = b.vars("i")
        b.nest([b.loop(i, 2, 7)], [b.assign(Bm[i], reads=[A[i - 1], A[i + 1]])])
        prog = b.build()
        check_program(prog)  # no raise
        assert all(f.severity != "error" for f in validate_program(prog))

    def test_triangular_bounds_validated(self):
        from repro.kernels import linpackd

        check_program(linpackd.build(16))

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_all_kernels_statically_clean(self, name):
        sizes = {
            "adi32": 8, "dot": 64, "erle64": 8, "expl": 12, "irr500k": 64,
            "jacobi": 12, "linpackd": 10, "shal": 12, "appbt": 12,
            "applu": 12, "appsp": 12, "buk": 64, "cgm": 64, "embar": 64,
            "fftpde": 8, "mgrid": 8, "apsi": 12, "fpppp": 6, "hydro2d": 12,
            "su2cor": 12, "swim": 12, "tomcatv": 12, "turb3d": 8,
            "wave5": 64, "matmul": 6, "timestep": 12,
        }
        prog = get_kernel(name).program(sizes[name])
        check_program(prog)  # every kernel passes static bounds checking


class TestWarnings:
    def test_dead_array_warned(self):
        b = ProgramBuilder("dead")
        A = b.array("A", (8,))
        b.array("ZOMBIE", (8,))
        (i,) = b.vars("i")
        b.nest([b.loop(i, 1, 8)], [b.use(reads=[A[i]])])
        warnings = [f.message for f in validate_program(b.build())]
        assert any("ZOMBIE" in w and "never referenced" in w for w in warnings)

    def test_write_only_array_warned(self):
        b = ProgramBuilder("wo")
        A = b.array("A", (8,))
        Bm = b.array("B", (8,))
        (i,) = b.vars("i")
        b.nest([b.loop(i, 1, 8)], [b.assign(A[i], reads=[Bm[i]])])
        warnings = [f.message for f in validate_program(b.build())]
        assert any("written but never read" in w for w in warnings)

    def test_empty_nest_warned(self):
        b = ProgramBuilder("empty")
        A = b.array("A", (8,))
        (i,) = b.vars("i")
        b.nest([b.loop(i, 5, 4)], [b.use(reads=[A[i]])])
        findings = validate_program(b.build())
        assert any("never executes" in f.message for f in findings)

    def test_findings_sorted_errors_first(self):
        b = ProgramBuilder("mix")
        A = b.array("A", (4,))
        b.array("DEAD", (4,))
        (i,) = b.vars("i")
        b.nest([b.loop(i, 1, 5)], [b.use(reads=[A[i]])])  # error: i reaches 5
        findings = validate_program(b.build())
        assert findings[0].severity == "error"
        assert str(findings[0]).startswith("[error]")
