"""Array references and their offset expressions."""

import pytest

from repro.errors import IRError
from repro.ir.affine import var
from repro.ir.arrays import ArrayDecl
from repro.ir.refs import ArrayRef


@pytest.fixture
def decl():
    return ArrayDecl("A", (100, 100))


class TestOffsetExpr:
    def test_simple_ref(self, decl):
        r = ArrayRef("A", (var("i"), var("j")))
        off = r.offset_expr(decl)
        # (i-1)*8 + (j-1)*800
        assert off.coeff("i") == 8
        assert off.coeff("j") == 800
        assert off.constant == -808

    def test_column_offset_is_constant_delta(self, decl):
        a = ArrayRef("A", (var("i"), var("j")))
        b = ArrayRef("A", (var("i"), var("j") + 1))
        delta = b.offset_expr(decl) - a.offset_expr(decl)
        assert delta.is_constant
        assert delta.constant == 800  # one column

    def test_wrong_declaration_rejected(self, decl):
        r = ArrayRef("B", (var("i"), var("j")))
        with pytest.raises(IRError):
            r.offset_expr(decl)

    def test_rank_mismatch_rejected(self, decl):
        r = ArrayRef("A", (var("i"),))
        with pytest.raises(IRError):
            r.offset_expr(decl)


class TestUniformlyGenerated:
    def test_constant_shift_is_uniform(self):
        a = ArrayRef("A", (var("i"), var("j")))
        b = ArrayRef("A", (var("i") + 1, var("j") - 2))
        assert a.is_uniformly_generated_with(b)

    def test_different_arrays_not_uniform(self):
        a = ArrayRef("A", (var("i"),))
        b = ArrayRef("B", (var("i"),))
        assert not a.is_uniformly_generated_with(b)

    def test_transposed_subscripts_not_uniform(self):
        a = ArrayRef("A", (var("i"), var("j")))
        b = ArrayRef("A", (var("j"), var("i")))
        assert not a.is_uniformly_generated_with(b)

    def test_scaled_subscript_not_uniform(self):
        a = ArrayRef("A", (var("i"),))
        b = ArrayRef("A", (2 * var("i"),))
        assert not a.is_uniformly_generated_with(b)


class TestRewriting:
    def test_substitute(self):
        r = ArrayRef("A", (var("i"), var("j")))
        got = r.substitute("i", var("ii") + 1)
        assert got.subscripts[0] == var("ii") + 1
        assert got.subscripts[1] == var("j")

    def test_rename_preserves_write_flag(self):
        r = ArrayRef("A", (var("i"),), is_write=True)
        assert r.rename({"i": "k"}).is_write

    def test_variables_sorted_unique(self):
        r = ArrayRef("A", (var("j") + var("i"), var("i")))
        assert r.variables == ("i", "j")


class TestValidation:
    def test_needs_subscripts(self):
        with pytest.raises(IRError):
            ArrayRef("A", ())

    def test_needs_name(self):
        with pytest.raises(IRError):
            ArrayRef("", (var("i"),))

    def test_int_subscripts_coerced(self):
        r = ArrayRef("A", (5,))
        assert r.subscripts[0].is_constant
