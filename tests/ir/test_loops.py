"""Loops, statements, nests."""

import pytest

from repro.errors import IRError
from repro.ir.affine import const, var
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.refs import ArrayRef


def ref(name="A", *subs, write=False):
    return ArrayRef(name, subs or (var("i"),), is_write=write)


class TestLoop:
    def test_trip_count(self):
        assert Loop("i", const(1), const(10)).trip_count() == 10
        assert Loop("i", const(1), const(10), step=3).trip_count() == 4
        assert Loop("i", const(10), const(1)).trip_count() == 0
        assert Loop("i", const(10), const(1), step=-1).trip_count() == 10

    def test_min_style_upper_bounds(self):
        lp = Loop("i", const(5), const(100), extra_uppers=(const(8),))
        assert lp.trip_count() == 4  # 5..min(100, 8)
        assert lp.effective_upper({}) == 8

    def test_extra_uppers_require_positive_step(self):
        with pytest.raises(IRError):
            Loop("i", const(10), const(1), step=-1, extra_uppers=(const(5),))

    def test_reversed_roundtrip(self):
        lp = Loop("i", const(2), const(11), step=3)  # 2, 5, 8, 11
        rev = lp.reversed()
        assert (rev.lower.constant, rev.upper.constant, rev.step) == (11, 2, -3)
        assert rev.trip_count() == lp.trip_count()

    def test_bounds_cannot_self_reference(self):
        with pytest.raises(IRError):
            Loop("i", var("i"), const(10))

    def test_zero_step_rejected(self):
        with pytest.raises(IRError):
            Loop("i", const(1), const(10), step=0)

    def test_symbolic_bounds_not_rectangular(self):
        lp = Loop("j", var("k") + 1, const(10))
        assert not lp.is_rectangular
        with pytest.raises(IRError):
            lp.trip_count()


class TestStatement:
    def test_reads_and_write_partition(self):
        st = Statement((ref("A"), ref("B"), ref("C", write=True)), flops=2)
        assert len(st.reads) == 2
        assert st.write.array == "C"

    def test_at_most_one_store(self):
        with pytest.raises(IRError):
            Statement((ref("A", write=True), ref("B", write=True)))

    def test_no_refs_rejected(self):
        with pytest.raises(IRError):
            Statement(())

    def test_substitute_applies_to_all_refs(self):
        st = Statement((ref("A"), ref("B", write=True)))
        got = st.substitute("i", var("x") + 1)
        for r in got.refs:
            assert r.subscripts[0] == var("x") + 1


class TestLoopNest:
    def make(self):
        return LoopNest(
            loops=(Loop("j", const(1), const(4)), Loop("i", const(1), const(3))),
            body=(Statement((ArrayRef("A", (var("i"), var("j"))),)),),
        )

    def test_iterations_rectangular(self):
        assert self.make().iterations() == 12

    def test_iterations_triangular(self):
        nest = LoopNest(
            loops=(
                Loop("k", const(1), const(4)),
                Loop("i", var("k"), const(4)),
            ),
            body=(Statement((ArrayRef("A", (var("i"), var("k"))),)),),
        )
        assert nest.iterations() == 4 + 3 + 2 + 1

    def test_iterations_with_min_bounds(self):
        nest = LoopNest(
            loops=(
                Loop("ii", const(1), const(10), step=4),
                Loop(
                    "i", var("ii"), var("ii") + 3, extra_uppers=(const(10),)
                ),
            ),
            body=(Statement((ArrayRef("A", (var("i"),)),)),),
        )
        assert nest.iterations() == 10  # 4 + 4 + 2

    def test_refs_in_statement_order(self):
        nest = self.make()
        assert [r.array for r in nest.refs] == ["A"]

    def test_duplicate_loop_vars_rejected(self):
        with pytest.raises(IRError):
            LoopNest(
                loops=(Loop("i", const(1), const(2)), Loop("i", const(1), const(2))),
                body=(Statement((ref(),)),),
            )

    def test_bound_must_use_outer_vars_only(self):
        with pytest.raises(IRError):
            LoopNest(
                loops=(
                    Loop("j", var("i"), const(4)),  # i is *inner*, not outer
                    Loop("i", const(1), const(3)),
                ),
                body=(Statement((ArrayRef("A", (var("i"), var("j"))),)),),
            )

    def test_body_vars_must_be_declared(self):
        with pytest.raises(IRError):
            LoopNest(
                loops=(Loop("i", const(1), const(2)),),
                body=(Statement((ArrayRef("A", (var("q"),)),)),),
            )

    def test_counters(self):
        nest = LoopNest(
            loops=(Loop("i", const(1), const(2)),),
            body=(
                Statement((ref("A"), ref("B", write=True)), flops=3),
                Statement((ref("C"),), flops=1),
            ),
        )
        assert nest.refs_per_iteration == 3
        assert nest.flops_per_iteration == 4
        assert nest.arrays_used() == ("A", "B", "C")
