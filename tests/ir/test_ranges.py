"""Interval evaluation over loop ranges."""

import pytest

from repro.errors import IRError
from repro.ir.affine import const, var
from repro.ir.loops import Loop, LoopNest, Statement
from repro.ir.refs import ArrayRef
from repro.ir.ranges import affine_interval, canonical_env, loop_var_ranges


class TestAffineInterval:
    def test_positive_coefficient(self):
        lo, hi = affine_interval(2 * var("i") + 1, {"i": (0, 10)})
        assert (lo, hi) == (1, 21)

    def test_negative_coefficient_flips(self):
        lo, hi = affine_interval(-3 * var("i"), {"i": (1, 4)})
        assert (lo, hi) == (-12, -3)

    def test_mixed_terms(self):
        lo, hi = affine_interval(var("i") - var("j"), {"i": (0, 5), "j": (2, 3)})
        assert (lo, hi) == (-3, 3)

    def test_constant(self):
        assert affine_interval(const(7), {}) == (7, 7)

    def test_missing_range_raises(self):
        with pytest.raises(IRError):
            affine_interval(var("i"), {})

    def test_empty_range_raises(self):
        with pytest.raises(IRError):
            affine_interval(var("i"), {"i": (5, 4)})


def make_nest(loops):
    body = (Statement((ArrayRef("A", (var(loops[-1].var),)),)),)
    return LoopNest(tuple(loops), body)


class TestLoopVarRanges:
    def test_rectangular(self):
        nest = make_nest([Loop("j", const(2), const(9)), Loop("i", const(1), const(5))])
        r = loop_var_ranges(nest)
        assert r["j"] == (2, 9)
        assert r["i"] == (1, 5)

    def test_triangular(self):
        nest = make_nest(
            [Loop("k", const(1), const(10)), Loop("i", var("k") + 1, const(10))]
        )
        r = loop_var_ranges(nest)
        assert r["k"] == (1, 10)
        assert r["i"] == (2, 10)

    def test_min_upper_bounds(self):
        nest = make_nest(
            [
                Loop("ii", const(1), const(100), step=10),
                Loop("i", var("ii"), var("ii") + 9, extra_uppers=(const(25),)),
            ]
        )
        r = loop_var_ranges(nest)
        assert r["i"] == (1, 25)

    def test_negative_step(self):
        nest = make_nest([Loop("i", const(10), const(1), step=-1)])
        assert loop_var_ranges(nest)["i"] == (1, 10)


class TestCanonicalEnv:
    def test_lower_bounds_chain(self):
        nest = make_nest(
            [Loop("k", const(3), const(10)), Loop("i", var("k") + 2, const(10))]
        )
        env = canonical_env(nest)
        assert env == {"k": 3, "i": 5}
