"""Affine expression algebra."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir.affine import AffineExpr, const, var


class TestConstruction:
    def test_var_and_const(self):
        i = var("i")
        assert i.coeff("i") == 1
        assert i.constant == 0
        assert const(5).is_constant
        assert const(5).constant == 5

    def test_zero_coefficients_dropped(self):
        e = var("i") - var("i")
        assert e.is_constant
        assert e.variables == ()

    def test_wrap(self):
        assert AffineExpr.wrap(3) == const(3)
        e = var("i")
        assert AffineExpr.wrap(e) is e
        with pytest.raises(IRError):
            AffineExpr.wrap("i")  # strings are not expressions

    def test_empty_name_rejected(self):
        with pytest.raises(IRError):
            AffineExpr({"": 1})


class TestAlgebra:
    def test_addition_merges_terms(self):
        e = var("i") + 2 * var("j") + var("i") + 3
        assert e.coeff("i") == 2
        assert e.coeff("j") == 2
        assert e.constant == 3

    def test_subtraction_and_negation(self):
        e = 3 * var("i") - var("j") - 1
        assert (-e).coeff("i") == -3
        assert (-e).constant == 1
        assert (e - e).is_constant

    def test_rsub(self):
        e = 10 - var("i")
        assert e.constant == 10
        assert e.coeff("i") == -1

    def test_scalar_multiplication(self):
        e = (var("i") + 2) * 4
        assert e.coeff("i") == 4
        assert e.constant == 8
        assert (2 * var("j")).coeff("j") == 2

    def test_product_of_variables_rejected(self):
        with pytest.raises(IRError):
            var("i") * var("j")

    def test_multiply_by_constant_expr(self):
        assert (var("i") * const(3)).coeff("i") == 3


class TestEvaluation:
    def test_scalar_evaluation(self):
        e = 2 * var("i") + var("j") - 1
        assert e.evaluate({"i": 10, "j": 5}) == 24

    def test_vector_evaluation_broadcasts(self):
        e = 8 * var("i") + var("j")
        got = e.evaluate({"i": np.arange(3).reshape(3, 1), "j": np.arange(2)})
        np.testing.assert_array_equal(got, [[0, 1], [8, 9], [16, 17]])

    def test_missing_variable_raises(self):
        with pytest.raises(IRError):
            var("i").evaluate({"j": 0})


class TestSubstitution:
    def test_substitute_with_expression(self):
        e = 2 * var("i") + 1
        got = e.substitute("i", var("ii") + 3)
        assert got.coeff("ii") == 2
        assert got.constant == 7

    def test_substitute_absent_var_is_noop(self):
        e = var("i") + 1
        assert e.substitute("j", 99) is e

    def test_rename(self):
        e = var("i") + 2 * var("j")
        r = e.rename({"i": "a"})
        assert r.coeff("a") == 1 and r.coeff("j") == 2

    def test_rename_collision_rejected(self):
        with pytest.raises(IRError):
            (var("i") + var("j")).rename({"i": "j"})


class TestEqualityHashRepr:
    def test_equality_with_ints(self):
        assert const(4) == 4
        assert const(4) != 5

    def test_hashable_and_stable(self):
        assert hash(var("i") + 1) == hash(1 + var("i"))
        assert len({var("i"), var("i"), const(0)}) == 2

    def test_repr_round_readability(self):
        assert repr(var("i") + 1) == "i + 1"
        assert repr(var("i") - var("j")) == "i - j"
        assert repr(const(0)) == "0"
