"""Whole-program container."""

import pytest

from repro.errors import IRError
from repro.ir import ProgramBuilder
from repro.ir.arrays import ArrayDecl
from repro.ir.program import Program


def small_program():
    b = ProgramBuilder("p")
    A = b.array("A", (8, 8))
    B = b.array("B", (8,))
    i, j = b.vars("i", "j")
    b.nest(
        [b.loop(j, 1, 8), b.loop(i, 1, 8)],
        [b.assign(B[i], reads=[A[i, j]], flops=1)],
    )
    return b.build()


class TestProgram:
    def test_counts(self):
        p = small_program()
        assert p.total_refs() == 128  # 64 iterations x 2 refs
        assert p.total_flops() == 64
        assert p.total_data_bytes() == 8 * 8 * 8 + 8 * 8

    def test_decl_lookup(self):
        p = small_program()
        assert p.decl("A").shape == (8, 8)
        with pytest.raises(KeyError):
            p.decl("Z")

    def test_undeclared_ref_rejected(self):
        p = small_program()
        with pytest.raises(IRError):
            Program("bad", (p.decl("A"),), p.nests)  # B now undeclared

    def test_rank_mismatch_rejected(self):
        p = small_program()
        bad_arrays = (ArrayDecl("A", (8, 8, 8)), p.decl("B"))
        with pytest.raises(IRError):
            Program("bad", bad_arrays, p.nests)

    def test_duplicate_arrays_rejected(self):
        p = small_program()
        with pytest.raises(IRError):
            Program("bad", (p.decl("A"), p.decl("A"), p.decl("B")), p.nests)

    def test_replace_nest(self):
        p = small_program()
        q = p.replace_nest(0, p.nests[0])
        assert q.nests == p.nests

    def test_renamed(self):
        assert small_program().renamed("other").name == "other"


class TestBuilder:
    def test_duplicate_array_rejected(self):
        b = ProgramBuilder("p")
        b.array("A", (4,))
        with pytest.raises(IRError):
            b.array("A", (4,))

    def test_handle_indexing_rank_checked(self):
        b = ProgramBuilder("p")
        A = b.array("A", (4, 4))
        with pytest.raises(IRError):
            _ = A[b.vars("i")[0]]  # needs two subscripts

    def test_assign_orders_reads_then_write(self):
        b = ProgramBuilder("p")
        A = b.array("A", (4,))
        B = b.array("B", (4,))
        (i,) = b.vars("i")
        st = b.assign(A[i], reads=[B[i]])
        assert [r.is_write for r in st.refs] == [False, True]
        assert st.write.array == "A"

    def test_loop_index_must_be_bare_variable(self):
        b = ProgramBuilder("p")
        (i,) = b.vars("i")
        with pytest.raises(IRError):
            b.loop(i + 1, 1, 4)

    def test_loop_accepts_string_name(self):
        b = ProgramBuilder("p")
        lp = b.loop("i", 1, 4)
        assert lp.var == "i"
