"""Fortran-style pretty printer."""

from repro.ir.pprint import format_nest, format_program
from repro.kernels import jacobi, linpackd, matmul
from repro.transforms.tiling import tile_nest


class TestFormatProgram:
    def test_declarations_and_loops(self):
        text = format_program(jacobi.build(16))
        assert "real A(16,16)" in text
        assert "do j = 2, 15" in text
        assert "do i = 2, 15" in text
        assert "A(i,j) = f(" in text
        assert "! 4 flops" in text

    def test_triangular_bounds_printed(self):
        text = format_program(linpackd.build(8))
        assert "do i = k + 1, 8" in text

    def test_integer_arrays(self):
        from repro.kernels import irr

        text = format_program(irr.build(100))
        assert "integer*4 EL(400)" in text

    def test_read_only_statement(self):
        from repro.kernels import dot

        text = format_program(dot.build(32))
        assert "... = f(Z(k), X(k))" in text


class TestFormatNest:
    def test_tiled_min_bounds(self):
        prog = matmul.build(16)
        tiled = tile_nest(prog.nests[0], [("k", 5), ("i", 4)])
        text = format_nest(tiled)
        assert "do kk = 1, 16, 5" in text
        assert "min(" in text
        assert text.count("do ") == 5

    def test_max_bounds_from_timetile(self):
        from repro.kernels import timestep
        from repro.transforms.timetile import time_tile

        prog = timestep.build(12, 2)
        tiled = time_tile(prog.nests[0], "t", "j", block=4)
        text = format_nest(tiled)
        assert "max(" in text and "min(" in text

    def test_indentation_nesting(self):
        text = format_nest(jacobi.build(8).nests[0])
        lines = text.splitlines()
        assert lines[0].startswith("do ")
        assert lines[1].startswith("  do ")
        assert lines[2].startswith("    ")
