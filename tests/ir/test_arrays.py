"""Column-major array declarations."""

import pytest

from repro.errors import IRError
from repro.ir.arrays import ArrayDecl


class TestGeometry:
    def test_column_major_strides(self):
        a = ArrayDecl("A", (10, 20, 30))
        assert a.strides_bytes == (8, 80, 1600)
        assert a.size_bytes == 10 * 20 * 30 * 8

    def test_column_size_is_first_dim(self):
        assert ArrayDecl("A", (512, 512)).column_size_bytes == 4096
        assert ArrayDecl("V", (100,)).column_size_bytes == 800

    def test_element_size_respected(self):
        a = ArrayDecl("K", (8, 4), element_size=4)
        assert a.strides_bytes == (4, 32)
        assert a.size_bytes == 128

    def test_rank_and_elements(self):
        a = ArrayDecl("A", (3, 4))
        assert a.rank == 2
        assert a.num_elements == 12


class TestOffsets:
    def test_fortran_one_based(self):
        a = ArrayDecl("A", (10, 10))
        assert a.element_offset((1, 1)) == 0
        assert a.element_offset((2, 1)) == 8
        assert a.element_offset((1, 2)) == 80  # next column

    def test_bounds_checked(self):
        a = ArrayDecl("A", (10, 10))
        with pytest.raises(IRError):
            a.element_offset((0, 1))
        with pytest.raises(IRError):
            a.element_offset((11, 1))
        with pytest.raises(IRError):
            a.element_offset((1,))  # rank mismatch


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", shape=(4,)),
            dict(name="A", shape=()),
            dict(name="A", shape=(0,)),
            dict(name="A", shape=(4, -1)),
            dict(name="A", shape=(4,), element_size=0),
        ],
    )
    def test_invalid_declarations(self, kwargs):
        with pytest.raises(IRError):
            ArrayDecl(**kwargs)
