"""Property tests of the padding transformations (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataLayout, ProgramBuilder, ultrasparc_i
from repro.layout.conflicts import program_severe_conflicts
from repro.transforms.grouppad import grouppad
from repro.transforms.maxpad import l2maxpad
from repro.transforms.pad import multilvl_pad, pad

HIER = ultrasparc_i()
L1, LINE = HIER.l1.size, HIER.l1.line_size


@st.composite
def vector_program(draw):
    """2-4 vectors of sizes biased toward cache-resonant values."""
    narrays = draw(st.integers(min_value=2, max_value=4))
    b = ProgramBuilder("vecs")
    handles = []
    for k in range(narrays):
        resonant = draw(st.booleans())
        if resonant:
            n = draw(st.sampled_from([2048, 4096, 6144]))  # multiples of 16K bytes
        else:
            n = draw(st.integers(min_value=100, max_value=5000))
        handles.append(b.array(f"V{k}", (n,)))
    (i,) = b.vars("i")
    shortest = min(h.decl.shape[0] for h in handles)
    b.nest(
        [b.loop(i, 1, shortest)],
        [b.use(reads=[h[i] for h in handles], flops=1)],
    )
    return b.build()


@st.composite
def stencil_program(draw):
    narrays = draw(st.integers(min_value=2, max_value=4))
    n = draw(st.sampled_from([256, 512, 896, 1024, 2048]))
    b = ProgramBuilder("st")
    handles = [b.array(f"A{k}", (n, 8)) for k in range(narrays)]
    i, j = b.vars("i", "j")
    stmts = [
        b.use(reads=[h[i, j], h[i, j + 1]], flops=1) for h in handles
    ]
    b.nest([b.loop(j, 1, 7), b.loop(i, 1, n)], stmts)
    return b.build()


class TestPadPostconditions:
    @given(prog=vector_program())
    @settings(max_examples=25, deadline=None)
    def test_pad_clears_l1_conflicts(self, prog):
        out = pad(prog, DataLayout.sequential(prog), L1, LINE)
        assert program_severe_conflicts(prog, out, L1, LINE).is_clean

    @given(prog=vector_program())
    @settings(max_examples=20, deadline=None)
    def test_multilvlpad_clears_all_levels(self, prog):
        out = multilvl_pad(prog, DataLayout.sequential(prog), HIER)
        for cfg in HIER:
            assert program_severe_conflicts(
                prog, out, cfg.size, cfg.line_size
            ).is_clean

    @given(prog=vector_program())
    @settings(max_examples=20, deadline=None)
    def test_pad_never_shrinks_layout(self, prog):
        seq = DataLayout.sequential(prog)
        out = pad(prog, seq, L1, LINE)
        assert out.total_bytes >= seq.total_bytes
        assert out.order == seq.order
        assert out.sizes == seq.sizes


class TestGroupPadPostconditions:
    @given(prog=stencil_program())
    @settings(max_examples=10, deadline=None)
    def test_grouppad_avoids_conflicts(self, prog):
        out = grouppad(prog, DataLayout.sequential(prog), L1, LINE)
        assert program_severe_conflicts(prog, out, L1, LINE).is_clean

    @given(prog=stencil_program())
    @settings(max_examples=8, deadline=None)
    def test_l2maxpad_preserves_l1_residues(self, prog):
        gp = grouppad(prog, DataLayout.sequential(prog), L1, LINE)
        out = l2maxpad(prog, gp, HIER)
        for name in prog.array_names:
            assert (out.base(name) - gp.base(name)) % L1 == 0
