"""Property tests: trace generator vs interpreter on random programs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataLayout, ProgramBuilder
from repro.trace.generator import generate_trace
from repro.trace.interpreter import interpret_program


@st.composite
def random_program(draw):
    """A random 2-deep rectangular nest over 1-2 arrays with small offsets."""
    n = draw(st.integers(min_value=4, max_value=12))
    m = draw(st.integers(min_value=4, max_value=12))
    narrays = draw(st.integers(min_value=1, max_value=3))
    b = ProgramBuilder("rand")
    handles = [b.array(f"A{k}", (n + 2, m + 2)) for k in range(narrays)]
    i, j = b.vars("i", "j")
    stmts = []
    nstmts = draw(st.integers(min_value=1, max_value=3))
    for _ in range(nstmts):
        reads = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            h = handles[draw(st.integers(0, narrays - 1))]
            di = draw(st.integers(-1, 1))
            dj = draw(st.integers(-1, 1))
            reads.append(h[i + 1 + di, j + 1 + dj])
        stmts.append(b.use(reads=reads, flops=1))
    step_j = draw(st.sampled_from([1, 2]))
    b.nest([b.loop(j, 1, m, step=step_j), b.loop(i, 1, n)], stmts)
    return b.build()


class TestGeneratorEquivalence:
    @given(prog=random_program(), pad=st.integers(0, 256))
    @settings(max_examples=50, deadline=None)
    def test_generator_equals_interpreter(self, prog, pad):
        layout = DataLayout.sequential(prog)
        if pad and len(layout.order) > 1:
            layout = layout.add_pad(layout.order[-1], pad)
        np.testing.assert_array_equal(
            generate_trace(prog, layout),
            interpret_program(prog, layout, check_bounds=False),
        )

    @given(prog=random_program(), chunk=st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_chunking_invariance(self, prog, chunk):
        layout = DataLayout.sequential(prog)
        full = generate_trace(prog, layout)
        chunked = generate_trace(prog, layout, max_chunk_refs=chunk)
        np.testing.assert_array_equal(full, chunked)

    @given(prog=random_program())
    @settings(max_examples=30, deadline=None)
    def test_ref_count_matches_static_count(self, prog):
        layout = DataLayout.sequential(prog)
        assert generate_trace(prog, layout).size == prog.total_refs()
