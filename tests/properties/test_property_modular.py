"""Property tests of the paper's modular-arithmetic lemmas (hypothesis).

Section 3.1.2 (MULTILVLPAD's validity): "If two references maintain a
distance of at least Lmax on a cache of size S1, then the distance must be
equal or greater on a cache of size k*S1."

Section 5 (tiling): "tiles with no L1 self-interference conflict misses
will also have no L2 conflicts."
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms.tilesize import max_conflict_free_height
from repro.util.mathutil import circular_distance

S1 = 16 * 1024


class TestPaddingLemma:
    @given(
        delta=st.integers(min_value=-(1 << 24), max_value=1 << 24),
        k=st.integers(min_value=1, max_value=64),
        lmax=st.sampled_from([32, 64, 128]),
    )
    @settings(max_examples=300, deadline=None)
    def test_separation_survives_larger_caches(self, delta, k, lmax):
        """distance(delta mod S1) >= Lmax  =>  distance(delta mod k*S1) >= Lmax."""
        d_small = circular_distance(delta % S1, 0, S1)
        d_large = circular_distance(delta % (k * S1), 0, k * S1)
        if d_small >= lmax:
            assert d_large >= lmax

    @given(
        delta=st.integers(min_value=-(1 << 24), max_value=1 << 24),
        k=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=300, deadline=None)
    def test_distance_monotone_in_cache_size(self, delta, k):
        """The distance can only grow (or stay) on the larger cache."""
        assert circular_distance(delta % (k * S1), 0, k * S1) >= circular_distance(
            delta % S1, 0, S1
        ) or k == 1

    @given(delta=st.integers(min_value=0, max_value=1 << 20))
    @settings(max_examples=200, deadline=None)
    def test_circular_distance_symmetry(self, delta):
        assert circular_distance(delta % S1, 0, S1) == circular_distance(
            (-delta) % S1, 0, S1
        )


class TestTilingLemma:
    @given(
        col=st.integers(min_value=64, max_value=1 << 16),
        width=st.integers(min_value=1, max_value=32),
        factor=st.sampled_from([2, 4, 8, 32]),
    )
    @settings(max_examples=200, deadline=None)
    def test_l1_height_valid_on_l2(self, col, width, factor):
        """Any height conflict-free on S1 is conflict-free on k*S1."""
        h1 = max_conflict_free_height(col, S1, width, 8)
        h2 = max_conflict_free_height(col, factor * S1, width, 8)
        assert h2 >= h1
