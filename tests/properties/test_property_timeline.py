"""Property tests: windowed telemetry sums bit-exactly to untimed totals.

The timeline partitions the reference stream into windows.  No matter how
the trace is chunked, what window size is chosen, or how often a tiny ring
capacity forces coalescing, the per-level sums over all windows must equal
the plain (timeline-free) simulation exactly -- same integers, not
approximately.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfig, HierarchyConfig
from repro.cache.streaming import StreamingHierarchy
from repro.obs.timeline import Timeline


def small_hierarchy() -> HierarchyConfig:
    return HierarchyConfig(
        (
            CacheConfig(size=64, line_size=8, name="L1"),
            CacheConfig(size=256, line_size=16, associativity=2, name="L2"),
        )
    )


@st.composite
def chunked_stream(draw):
    """A random address stream split into random-sized chunks."""
    n = draw(st.integers(min_value=0, max_value=300))
    addresses = draw(
        st.lists(st.integers(min_value=0, max_value=1024),
                 min_size=n, max_size=n)
    )
    chunks = []
    pos = 0
    while pos < n:
        take = draw(st.integers(min_value=1, max_value=n - pos))
        chunks.append(np.array(addresses[pos:pos + take], dtype=np.int64))
        pos += take
    return chunks


class TestWindowSums:
    @given(chunks=chunked_stream(), window=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_totals_match_untimed_run(self, chunks, window):
        config = small_hierarchy()
        timeline = Timeline(
            levels=[c.name for c in config], window_refs=window
        )
        timed = StreamingHierarchy(config, timeline=timeline).feed_all(chunks)
        plain = StreamingHierarchy(config).feed_all(chunks)
        assert timed.result() == plain.result()
        assert timeline.totals() == [
            (lv.accesses, lv.misses) for lv in plain.result().levels
        ]

    @given(chunks=chunked_stream(), window=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_coalescing_keeps_sums_exact(self, chunks, window):
        """A tiny ring forces repeated coalescing; sums must not drift."""
        config = small_hierarchy()
        timeline = Timeline(
            levels=[c.name for c in config], window_refs=window, capacity=4
        )
        timed = StreamingHierarchy(config, timeline=timeline).feed_all(chunks)
        assert timeline.totals() == [
            (lv.accesses, lv.misses) for lv in timed.result().levels
        ]
        assert len(timeline.rows()) <= 4

    @given(chunks=chunked_stream(), window=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_rows_partition_the_reference_stream(self, chunks, window):
        config = small_hierarchy()
        timeline = Timeline(
            levels=[c.name for c in config], window_refs=window
        )
        timed = StreamingHierarchy(config, timeline=timeline).feed_all(chunks)
        rows = timeline.rows()
        total = timed.result().total_refs
        if total == 0:
            assert rows == []
            return
        assert rows[0][0] == 0
        assert rows[-1][1] == total
        for a, b in zip(rows, rows[1:]):
            assert a[1] == b[0]

    @given(chunks=chunked_stream(), window=st.integers(1, 64),
           regroup=st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_chunking_does_not_move_window_boundaries(
        self, chunks, window, regroup
    ):
        """Two different chunkings of one stream: identical rows."""
        config = small_hierarchy()
        flat = (np.concatenate(chunks) if chunks
                else np.zeros(0, dtype=np.int64))
        rechunked = []
        pos = 0
        while pos < flat.size:
            take = regroup.randint(1, flat.size - pos)
            rechunked.append(flat[pos:pos + take])
            pos += take

        def run(split):
            t = Timeline(levels=[c.name for c in config], window_refs=window)
            StreamingHierarchy(config, timeline=t).feed_all(split)
            return [(row[0], row[1], row[3]) for row in t.rows()]

        assert run(chunks) == run(rechunked)
