"""Property tests of the symbolic tier (hypothesis + the fuzz corpus).

The tier's one load-bearing promise: **an exact claim is never wrong**.
Whenever the classifier marks a level exact, the closed-form count must
equal the vectorized LRU simulator bit-for-bit -- over random fuzzed
programs, over the committed regression corpus (cases distilled
precisely because *some* backend disagreed there), and against the
sequential oracle.  Downgrades are the safety valve: they may be
conservative, but they must carry a documented reason.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataLayout, simulate_program
from repro.cache.config import CacheConfig, HierarchyConfig
from repro.fuzz import (
    FUZZ_HIERARCHIES,
    default_corpus_dir,
    fuzzed_workloads,
    load_corpus,
    oracle_simulate,
)
from repro.symbolic import analyze_program, classify_program
from repro.trace import generate_trace

#: Every downgrade reason the engine documents; "" means exact.
KNOWN_REASONS = {
    "", "custom-trace", "capacity", "budget", "line-split",
    "interference", "inherited",
}

ROOMY = HierarchyConfig(
    levels=(
        CacheConfig(size=16 * 1024, line_size=32, name="L1"),
        CacheConfig(size=64 * 1024, line_size=64, name="L2"),
    )
)

CORPUS = load_corpus(default_corpus_dir())


def check_exact_levels(program, layout, hierarchy) -> int:
    """Analyze, and bit-compare every exact level against the simulator.

    Returns the number of exact levels checked (0 is legal -- a fully
    downgraded program makes no claims to verify).
    """
    stats = analyze_program(program, layout, hierarchy)
    if not any(lv.exact for lv in stats.levels):
        return 0
    sim = simulate_program(program, layout, hierarchy)
    checked = 0
    for sym_lv, sim_lv in zip(stats.result.levels, sim.levels):
        sym = stats.level(sym_lv.name)
        if not sym.exact:
            break  # exactness is a prefix; nothing below is claimed
        assert sym_lv.misses == sim_lv.misses, (
            f"{sym_lv.name}: symbolic {sym_lv.misses} != "
            f"simulator {sim_lv.misses}"
        )
        assert sym_lv.accesses == sim_lv.accesses
        checked += 1
    return checked


class TestFuzzedExactness:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_exact_claims_match_simulator(self, seed):
        for _, program, layout in fuzzed_workloads(seed, count=3):
            for hier in (ROOMY, FUZZ_HIERARCHIES["dm"], FUZZ_HIERARCHIES["2way"]):
                check_exact_levels(program, layout, hier)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_classification_is_deterministic(self, seed):
        [(_, program, layout)] = fuzzed_workloads(seed, count=1)
        hier = FUZZ_HIERARCHIES["2way"]
        assert classify_program(program, layout, hier) == classify_program(
            program, layout, hier
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_downgrade_reasons_are_documented(self, seed):
        [(_, program, layout)] = fuzzed_workloads(seed, count=1)
        for hier in FUZZ_HIERARCHIES.values():
            for c in classify_program(program, layout, hier):
                assert c.reason in KNOWN_REASONS
                assert c.exact == (c.reason == "")
                assert (c.distinct_lines is not None) == c.exact


class TestCorpus:
    """The distilled regression corpus: programs where *some* backend
    pair historically disagreed.  Exactly where a wrong exact claim
    would be most likely -- and most damaging."""

    @pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.name)
    def test_never_a_wrong_exact_claim(self, case):
        layout = DataLayout.sequential(case.program)
        check_exact_levels(case.program, layout, case.hierarchy)

    @pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.name)
    def test_exact_claims_match_sequential_oracle(self, case):
        layout = DataLayout.sequential(case.program)
        stats = analyze_program(case.program, layout, case.hierarchy)
        if not any(lv.exact for lv in stats.levels):
            return
        oracle = oracle_simulate(
            generate_trace(case.program, layout), case.hierarchy
        )
        for sym_lv, orc_lv in zip(stats.result.levels, oracle.levels):
            if not stats.level(sym_lv.name).exact:
                break
            assert sym_lv.misses == orc_lv.misses

    @pytest.mark.parametrize("case", CORPUS, ids=lambda c: c.name)
    def test_downgrades_carry_documented_reasons(self, case):
        layout = DataLayout.sequential(case.program)
        for c in classify_program(case.program, layout, case.hierarchy):
            assert c.reason in KNOWN_REASONS

    def test_conflict_cases_downgrade_gracefully(self):
        """The corpus's interference-heavy pair must not claim exactness
        -- graceful downgrade, with the honest reason."""
        conflicted = [c for c in CORPUS if c.name.startswith("model-95-")]
        assert conflicted, "expected the model-95 conflict pair in the corpus"
        for case in conflicted:
            layout = DataLayout.sequential(case.program)
            cls = classify_program(case.program, layout, case.hierarchy)
            assert not any(c.exact for c in cls)
            assert cls[0].reason == "interference"
