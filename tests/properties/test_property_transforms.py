"""Property tests: reordering transforms preserve the access multiset.

Every pure reordering transform (tiling, unrolling, fusion+distribution
roundtrips, time tiling) must leave the multiset of touched addresses
unchanged -- only the order may differ.  Hypothesis drives the shapes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataLayout, ProgramBuilder
from repro.trace.generator import generate_trace
from repro.transforms.distribution import distribute_nest
from repro.transforms.fusion import fuse_nests
from repro.transforms.tiling import tile_nest
from repro.transforms.timetile import time_tile
from repro.transforms.unroll import unroll


def matmul_like(n):
    b = ProgramBuilder("mm")
    A = b.array("A", (n, n))
    Bm = b.array("B", (n, n))
    C = b.array("C", (n, n))
    i, j, k = b.vars("i", "j", "k")
    b.nest(
        [b.loop(j, 1, n), b.loop(k, 1, n), b.loop(i, 1, n)],
        [b.assign(C[i, j], reads=[C[i, j], A[i, k], Bm[k, j]], flops=2)],
    )
    return b.build()


def multi_statement(n, nstmts):
    b = ProgramBuilder("ms")
    handles = [b.array(f"A{s}", (n,)) for s in range(nstmts + 1)]
    (i,) = b.vars("i")
    b.nest(
        [b.loop(i, 1, n)],
        [
            b.assign(handles[s][i], reads=[handles[s + 1][i]], flops=1)
            for s in range(nstmts)
        ],
    )
    return b.build()


def sorted_trace(prog):
    return np.sort(generate_trace(prog, DataLayout.sequential(prog)))


class TestMultisetPreservation:
    @given(
        n=st.integers(4, 10),
        tw=st.integers(1, 12),
        th=st.integers(1, 12),
    )
    @settings(max_examples=30, deadline=None)
    def test_tiling(self, n, tw, th):
        prog = matmul_like(n)
        tiled = prog.with_nests(
            [tile_nest(prog.nests[0], [("k", tw), ("i", th)])]
        )
        np.testing.assert_array_equal(sorted_trace(prog), sorted_trace(tiled))

    @given(n=st.sampled_from([6, 8, 12]), factor=st.sampled_from([1, 2, 3]))
    @settings(max_examples=20, deadline=None)
    def test_unroll(self, n, factor):
        if n % factor:
            return
        prog = matmul_like(n)
        unrolled = prog.with_nests([unroll(prog.nests[0], "k", factor)])
        np.testing.assert_array_equal(
            sorted_trace(prog), sorted_trace(unrolled)
        )

    @given(n=st.integers(3, 10), nstmts=st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_distribute_then_fuse_roundtrip(self, n, nstmts):
        prog = multi_statement(n, nstmts)
        split = distribute_nest(prog, 0)
        assert len(split.nests) == nstmts
        refused = split
        while len(refused.nests) > 1:
            refused = fuse_nests(refused, 0, 1, check="none")
        np.testing.assert_array_equal(sorted_trace(prog), sorted_trace(refused))
        assert refused.nests[0].body == prog.nests[0].body

    @given(
        n=st.integers(6, 14),
        t=st.integers(2, 4),
        block=st.integers(1, 8),
        skew=st.integers(0, 2),
    )
    @settings(max_examples=25, deadline=None)
    def test_time_tile(self, n, t, block, skew):
        b = ProgramBuilder("ts")
        A = b.array("A", (n, n))
        i, j, tt = b.vars("i", "j", "t")
        b.nest(
            [b.loop(tt, 1, t), b.loop(j, 2, n - 1), b.loop(i, 1, n)],
            [b.assign(A[i, j], reads=[A[i, j - 1]], flops=1)],
        )
        prog = b.build()
        tiled = prog.with_nests(
            [time_tile(prog.nests[0], "t", "j", block=block, skew=skew)]
        )
        np.testing.assert_array_equal(sorted_trace(prog), sorted_trace(tiled))
