"""Property tests of the closed-form miss predictor (hypothesis).

Four invariants the predictor must honor to be safe inside
predict-then-verify search:

* **determinism** -- identical inputs give identical predictions (the
  tier-one ranking must be a pure function of the layout);
* **monotonicity in cache size** on conflict-free layouts over doubling
  size ladders (``C | 2C``): a bigger cache of the same line size can
  only help -- capacity, residency, and arc exploitation are all
  provably monotone when the smaller size divides the larger;
* **exactness on resonance** -- the paper's severe-conflict closed form
  (ping-pong layouts miss every iteration) is a case the predictor must
  get *exactly* right, per level, against the simulator;
* **rank agreement** -- over small pad spaces where simulation is cheap,
  the predicted objective must order layouts like the simulated one
  (Spearman >= 0.8), which is the actual contract the search strategy
  relies on.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import DataLayout, ProgramBuilder, simulate_program
from repro.cache.config import CacheConfig, HierarchyConfig
from repro.model import predict_program, spearman
from repro.search.objective import miss_cost_objective

from tests.search.conftest import build_pingpong, build_tiny_hier

OBJECTIVE = miss_cost_objective()


def vector_program(n: int, narrays: int):
    b = ProgramBuilder("vecs")
    handles = [b.array(f"V{k}", (n,)) for k in range(narrays)]
    (i,) = b.vars("i")
    b.nest([b.loop(i, 1, n)], [b.use(reads=[h[i] for h in handles], flops=1)])
    return b.build()


def single_level(size: int, line: int) -> HierarchyConfig:
    return HierarchyConfig(
        levels=(CacheConfig(size=size, line_size=line, name="L1"),),
        memory_cycles=50.0,
    )


class TestDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(64, 1024),
        narrays=st.integers(2, 4),
        pads=st.lists(st.integers(0, 16), min_size=3, max_size=3),
    )
    def test_same_inputs_same_prediction(self, n, narrays, pads):
        p = vector_program(n, narrays)
        hier = build_tiny_hier()
        layout = DataLayout.sequential(p)
        for name, k in zip(layout.order[1:], pads):
            layout = layout.add_pad(name, 32 * k)
        assert predict_program(p, layout, hier) == predict_program(p, layout, hier)


class TestMonotoneInCacheSize:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(64, 2048),
        narrays=st.integers(2, 3),
        pads=st.lists(st.integers(0, 8), min_size=2, max_size=2),
        size=st.sampled_from([512, 1024, 2048]),
        doublings=st.integers(1, 3),
    )
    def test_doubling_the_cache_never_adds_misses(
        self, n, narrays, pads, size, doublings
    ):
        p = vector_program(n, narrays)
        layout = DataLayout.sequential(p)
        for name, k in zip(layout.order[1:], pads):
            layout = layout.add_pad(name, 32 * k)
        small = predict_program(p, layout, single_level(size, 32))
        big = predict_program(
            p, layout, single_level(size << doublings, 32)
        )
        # conflict structure can legitimately differ between the two
        # mapping periods; monotonicity is claimed for conflict-free
        # layouts (where only capacity/spatial terms remain).
        assume(small.is_conflict_free and big.is_conflict_free)
        assert big.predictions[0].misses <= small.predictions[0].misses


class TestResonantExactness:
    @settings(max_examples=25, deadline=None)
    @given(
        blocks=st.integers(1, 4),
        extra_periods=st.integers(0, 2),
    )
    def test_pingpong_matches_simulator_exactly(self, blocks, extra_periods):
        """A and B separated by a multiple of the cache size thrash
        identically however many cache-sized blocks apart they sit."""
        hier = build_tiny_hier()
        n = (hier.l1.size // 8) * blocks  # arrays span whole cache multiples
        p = build_pingpong(n)
        layout = DataLayout.sequential(p).add_pad(
            "B", hier.l1.size * extra_periods
        )
        pred = predict_program(p, layout, hier)
        sim = simulate_program(p, layout, hier)
        assert not pred.is_conflict_free
        for pl, sl in zip(pred.levels, sim.levels):
            assert (pl.accesses, pl.misses) == (sl.accesses, sl.misses)


class TestRankAgreement:
    @settings(max_examples=10, deadline=None)
    @given(n=st.sampled_from([128, 256, 384]))
    def test_spearman_on_small_pad_space(self, n):
        """Over one array's whole line-granular pad axis, predicted and
        simulated objectives must agree in rank (Spearman >= 0.8)."""
        hier = build_tiny_hier()
        p = build_pingpong(n)
        base = DataLayout.sequential(p)
        predicted, simulated = [], []
        for k in range(8):
            layout = base.add_pad("B", k * hier.l2.line_size)
            predicted.append(
                OBJECTIVE(predict_program(p, layout, hier).result, hier)
            )
            simulated.append(
                OBJECTIVE(simulate_program(p, layout, hier), hier)
            )
        assert spearman(predicted, simulated) >= 0.8
