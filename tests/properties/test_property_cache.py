"""Property-based tests of the cache simulators (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.assoc import miss_mask_assoc
from repro.cache.direct import miss_mask_direct
from repro.cache.streaming import StreamingDirectCache

geometries = st.sampled_from(
    [(256, 16), (512, 32), (1024, 32), (2048, 64), (4096, 32)]
)
traces = st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=300)


def naive_direct(addresses, size, line_size):
    num_sets = size // line_size
    tags = {}
    out = []
    for a in addresses:
        line = a // line_size
        s, t = line % num_sets, line // num_sets
        out.append(tags.get(s) != t)
        tags[s] = t
    return np.array(out, dtype=bool)


class TestDirectMapped:
    @given(trace=traces, geom=geometries)
    @settings(max_examples=60, deadline=None)
    def test_vectorized_equals_naive(self, trace, geom):
        size, line = geom
        addrs = np.array(trace, dtype=np.int64)
        np.testing.assert_array_equal(
            miss_mask_direct(addrs, size, line), naive_direct(addrs, size, line)
        )

    @given(trace=traces, geom=geometries)
    @settings(max_examples=60, deadline=None)
    def test_assoc1_equals_direct(self, trace, geom):
        size, line = geom
        addrs = np.array(trace, dtype=np.int64)
        np.testing.assert_array_equal(
            miss_mask_assoc(addrs, size, line, 1),
            miss_mask_direct(addrs, size, line),
        )

    @given(trace=traces, geom=geometries, assoc=st.sampled_from([2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_higher_associativity_never_more_misses_fullyassoc(
        self, trace, geom, assoc
    ):
        """LRU inclusion: on a *fully-associative* cache, growing the way
        count (capacity) never adds misses.  (Same-set-count comparisons
        can legitimately invert -- Belady anomalies need FIFO -- but LRU
        stack inclusion guarantees monotonicity at a fixed set count of 1.)"""
        size, line = geom
        addrs = np.array(trace, dtype=np.int64)
        ways_small = size // line
        small = miss_mask_assoc(addrs, size, line, ways_small).sum()
        big = miss_mask_assoc(addrs, assoc * size, line, assoc * ways_small).sum()
        assert big <= small

    @given(
        trace=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200),
        cut=st.integers(0, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_streaming_split_invariance(self, trace, cut):
        addrs = np.array(trace, dtype=np.int64)
        cut = min(cut, addrs.size)
        mono = miss_mask_direct(addrs, 512, 32)
        cache = StreamingDirectCache(512, 32)
        part = np.concatenate([cache.feed(addrs[:cut]), cache.feed(addrs[cut:])])
        np.testing.assert_array_equal(part, mono)

    @given(trace=traces)
    @settings(max_examples=40, deadline=None)
    def test_cold_misses_lower_bound(self, trace):
        addrs = np.array(trace, dtype=np.int64)
        misses = int(miss_mask_direct(addrs, 1024, 32).sum())
        unique_lines = len({a // 32 for a in trace})
        assert misses >= unique_lines  # every distinct line faults at least once
        assert misses <= len(trace)
