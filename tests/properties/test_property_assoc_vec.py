"""Property-based tests: vectorized k-way LRU vs. the sequential oracle.

The contract is *exact* agreement -- per-reference miss masks, not just
counts -- on arbitrary traces, geometries, and chunkings.  The oracle is
:func:`repro.cache.assoc.miss_mask_assoc` (one access at a time,
obviously correct); :mod:`repro.cache.assoc_vec` must be bitwise
indistinguishable from it in every mode it can be driven.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cache.assoc import miss_mask_assoc
from repro.cache.assoc_vec import AssocLRUState, miss_mask_assoc_vec
from repro.cache.direct import miss_mask_direct
from repro.cache.streaming import SequentialAssocCache, StreamingAssocCache

# (size, line_size) pairs, including a non-power-of-two size (768) so
# odd set counts are represented; combos where k does not divide the
# line count are filtered out per-test with assume().
geometries = st.sampled_from(
    [(256, 16), (512, 32), (768, 32), (1024, 32), (2048, 64), (4096, 32)]
)
assocs = st.sampled_from([1, 2, 3, 4, 8])
traces = st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=300)
big_traces = st.lists(
    st.integers(min_value=0, max_value=(1 << 40)), min_size=1, max_size=120
)


class TestVectorizedEqualsOracle:
    @given(trace=traces, geom=geometries, k=assocs)
    @settings(max_examples=120, deadline=None)
    def test_miss_mask_exact(self, trace, geom, k):
        size, line = geom
        assume(size % (line * k) == 0)
        addrs = np.array(trace, dtype=np.int64)
        np.testing.assert_array_equal(
            miss_mask_assoc_vec(addrs, size, line, k),
            miss_mask_assoc(addrs, size, line, k),
        )

    @given(trace=big_traces, geom=geometries, k=assocs)
    @settings(max_examples=40, deadline=None)
    def test_miss_mask_exact_wide_addresses(self, trace, geom, k):
        """Addresses beyond int32 lines exercise the int64 pipeline."""
        size, line = geom
        assume(size % (line * k) == 0)
        addrs = np.array(trace, dtype=np.int64)
        np.testing.assert_array_equal(
            miss_mask_assoc_vec(addrs, size, line, k),
            miss_mask_assoc(addrs, size, line, k),
        )

    @given(trace=traces, geom=geometries)
    @settings(max_examples=60, deadline=None)
    def test_k1_equals_direct_mapped(self, trace, geom):
        size, line = geom
        addrs = np.array(trace, dtype=np.int64)
        np.testing.assert_array_equal(
            miss_mask_assoc_vec(addrs, size, line, 1),
            miss_mask_direct(addrs, size, line),
        )


class TestChunkBoundaryCarry:
    @given(
        trace=traces,
        geom=geometries,
        k=assocs,
        cuts=st.lists(st.integers(min_value=0, max_value=300), max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_splits_equal_one_shot(self, trace, geom, k, cuts):
        """Feeding any chunking through StreamingAssocCache reproduces the
        one-shot oracle mask exactly (empty chunks included)."""
        size, line = geom
        assume(size % (line * k) == 0)
        addrs = np.array(trace, dtype=np.int64)
        ref = miss_mask_assoc(addrs, size, line, k)
        cache = StreamingAssocCache(size, line, k)
        pieces = np.split(addrs, sorted(min(c, addrs.size) for c in cuts))
        got = [cache.feed(p) for p in pieces]
        np.testing.assert_array_equal(
            np.concatenate(got) if got else np.zeros(0, dtype=bool), ref
        )
        assert cache.accesses == addrs.size
        assert cache.misses == int(ref.sum())

    @given(
        trace=traces,
        geom=geometries,
        k=assocs,
        cut=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_streaming_matches_sequential_streaming(self, trace, geom, k, cut):
        """The vectorized and sequential streaming caches agree chunk by
        chunk, including their running counters."""
        size, line = geom
        assume(size % (line * k) == 0)
        addrs = np.array(trace, dtype=np.int64)
        cut = min(cut, addrs.size)
        vec = StreamingAssocCache(size, line, k)
        seq = SequentialAssocCache(size, line, k)
        for piece in (addrs[:cut], addrs[cut:]):
            np.testing.assert_array_equal(vec.feed(piece), seq.feed(piece))
        assert (vec.accesses, vec.misses) == (seq.accesses, seq.misses)

    @given(trace=traces, geom=geometries, k=assocs)
    @settings(max_examples=40, deadline=None)
    def test_state_reuse_across_feeds(self, trace, geom, k):
        """Driving AssocLRUState directly: a second feed of the same trace
        sees the carried LRU stacks, and still matches the oracle on the
        doubled trace."""
        size, line = geom
        assume(size % (line * k) == 0)
        addrs = np.array(trace, dtype=np.int64)
        state = AssocLRUState(size, line, k)
        got = np.concatenate([state.feed(addrs), state.feed(addrs)])
        ref = miss_mask_assoc(
            np.concatenate([addrs, addrs]), size, line, k
        )
        np.testing.assert_array_equal(got, ref)


class TestLRUStructure:
    @given(trace=traces, geom=geometries, k=st.sampled_from([2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_more_ways_never_increase_fully_assoc_misses(self, trace, geom, k):
        """At one set (fully associative), LRU stack inclusion: more ways
        can only remove misses -- checked on the vectorized path."""
        size, line = geom
        addrs = np.array(trace, dtype=np.int64)
        small = miss_mask_assoc_vec(addrs, k * line, line, k)
        large = miss_mask_assoc_vec(addrs, 2 * k * line, line, 2 * k)
        assert not (large & ~small).any()
