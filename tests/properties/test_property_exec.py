"""Determinism properties of the work-stealing executor.

Whatever the worker count, submission order, pool reuse pattern, or
shard partition, the executor must hand back results byte-identical to
the plain serial path -- the scheduler is allowed to change *when* work
happens, never *what* comes back.

Pools are expensive to spin up, so each worker count keeps one
persistent executor across all hypothesis examples -- which is itself
the feature under test.
"""

from __future__ import annotations

import pickle
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.executor import SweepExecutor
from repro.exec.shard import ShardSpec, merge_stores
from repro.exec.store import ResultStore
from tests.exec.test_executor import job_for

_SIZES = (64, 72, 80, 88, 96, 104)
_JOBS = None
_SERIAL = None
_EXECUTORS: dict[int, SweepExecutor] = {}


def _fixture():
    """Jobs + serial reference, built once (module import stays cheap)."""
    global _JOBS, _SERIAL
    if _JOBS is None:
        _JOBS = [job_for(n) for n in _SIZES]
        _SERIAL = [
            pickle.dumps(r) for r in SweepExecutor(workers=1).run(_JOBS)
        ]
    return _JOBS, _SERIAL


def _executor(workers: int) -> SweepExecutor:
    ex = _EXECUTORS.get(workers)
    if ex is None:
        ex = _EXECUTORS[workers] = SweepExecutor(workers=workers)
    return ex


@pytest.fixture(scope="module", autouse=True)
def _close_pools():
    yield
    for ex in _EXECUTORS.values():
        ex.close()
    _EXECUTORS.clear()


class TestDispatchDeterminism:
    @given(
        perm=st.permutations(range(len(_SIZES))),
        workers=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_order_any_workers_matches_serial(self, perm, workers):
        """Results follow their jobs through any permutation and any
        pool size, byte for byte."""
        jobs, serial = _fixture()
        shuffled = [jobs[i] for i in perm]
        results = _executor(workers).run(shuffled)
        for original_index, result in zip(perm, results):
            assert pickle.dumps(result) == serial[original_index]

    @given(
        rounds=st.lists(
            st.lists(st.integers(0, len(_SIZES) - 1), min_size=1, max_size=4),
            min_size=2,
            max_size=3,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_pool_reuse_across_runs_matches_fresh_pools(self, rounds):
        """A persistent pool serving several run() calls returns exactly
        what per-run fresh pools would."""
        jobs, serial = _fixture()
        persistent = _executor(2)
        for round_indices in rounds:
            round_jobs = [jobs[i] for i in round_indices]
            results = persistent.run(round_jobs)
            for i, result in zip(round_indices, results):
                assert pickle.dumps(result) == serial[i]


class TestShardDeterminism:
    @given(count=st.integers(min_value=1, max_value=4))
    @settings(max_examples=8, deadline=None)
    def test_any_partition_merges_to_serial(self, count):
        """For any N: shards tile the sweep, and the merged shard stores
        replay the whole sweep byte-identically, fully cached."""
        jobs, serial = _fixture()
        for job in jobs:
            owners = sum(
                ShardSpec(i, count).owns(job) for i in range(1, count + 1)
            )
            assert owners == 1
        with tempfile.TemporaryDirectory() as td:
            stores = []
            for i in range(1, count + 1):
                store = ResultStore(f"{td}/shard{i}")
                SweepExecutor(workers=1, store=store,
                              shard=ShardSpec(i, count)).run(jobs)
                stores.append(store)
            merged = ResultStore(f"{td}/merged")
            merge_stores(merged, stores)
            replay_ex = SweepExecutor(workers=1, store=merged)
            replay = replay_ex.run(jobs)
            assert replay_ex.stats.hit_rate == 1.0
            assert [pickle.dumps(r) for r in replay] == serial
