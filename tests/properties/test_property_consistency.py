"""Consistency properties between parallel implementations.

Two pairs of independent implementations encode the same rule; these
hypothesis tests keep them from drifting apart:

* the dots-and-arcs exploitation test lives in
  :class:`repro.layout.diagram.CacheDiagram` (evaluation) *and* in
  GROUPPAD's layout-search scorer (optimization);
* the write-back cache's miss stream must equal the plain direct-mapped
  simulator's (write-backs are bookkeeping on top, never a behaviour
  change).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CacheDiagram, DataLayout, ProgramBuilder
from repro.cache.direct import miss_mask_direct
from repro.cache.writeback import WritebackDirectCache
from repro.transforms.grouppad import _exploited_count, _nest_infos

L1, LINE = 16 * 1024, 32


@st.composite
def stencil_layouts(draw):
    """A multi-array column-stencil program plus random pads."""
    narrays = draw(st.integers(2, 4))
    n = draw(st.sampled_from([256, 512, 896, 1024]))
    b = ProgramBuilder("p")
    handles = [b.array(f"A{k}", (n, 8)) for k in range(narrays)]
    i, j = b.vars("i", "j")
    stmts = [b.use(reads=[h[i, j], h[i, j + 1]], flops=1) for h in handles]
    b.nest([b.loop(j, 1, 7), b.loop(i, 1, n)], stmts)
    prog = b.build()
    layout = DataLayout.sequential(prog)
    for h in handles[1:]:
        layout = layout.add_pad(h.name, draw(st.integers(0, 511)) * 32)
    return prog, layout


class TestDiagramScorerAgreement:
    @given(data=stencil_layouts())
    @settings(max_examples=40, deadline=None)
    def test_grouppad_scorer_matches_diagram(self, data):
        """For any layout, GROUPPAD's fast scorer must count exactly the
        group-temporal arcs the CacheDiagram marks exploited."""
        prog, layout = data
        diagram_count = 0
        for nest in prog.nests:
            d = CacheDiagram(prog, layout, nest, L1, LINE)
            diagram_count += sum(
                1
                for a in d.arcs
                if a.exploited and a.reuse.distance_bytes >= LINE
            )
        scorer_count = _exploited_count(
            _nest_infos(prog),
            layout.bases(),
            set(prog.array_names),
            L1,
            LINE,
        )
        assert scorer_count == diagram_count


class TestWritebackMissAgreement:
    @given(
        seed=st.integers(0, 100),
        writes_p=st.floats(0.0, 1.0),
        chunks=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_writeback_miss_stream_equals_plain_direct(
        self, seed, writes_p, chunks
    ):
        rng = np.random.default_rng(seed)
        trace = rng.integers(0, 8192, size=400)
        writes = rng.random(400) < writes_p
        cache = WritebackDirectCache(1024, 32)
        masks = []
        for part_a, part_w in zip(
            np.array_split(trace, chunks), np.array_split(writes, chunks)
        ):
            masks.append(cache.feed(part_a, part_w))
        got = np.concatenate(masks)
        np.testing.assert_array_equal(got, miss_mask_direct(trace, 1024, 32))
        # And write-backs can never exceed misses of dirty-capable lines.
        assert cache.writebacks <= cache.misses
