"""Exception hierarchy: one base class catches everything the library raises."""

import pytest

from repro.errors import (
    AnalysisError,
    ConfigError,
    IRError,
    LayoutError,
    ReproError,
    SimulationError,
    TransformError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ConfigError, IRError, LayoutError, TransformError, AnalysisError,
         SimulationError],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_base_not_a_builtin_catchall(self):
        # Genuine bugs (TypeError etc.) must NOT be swallowed by except
        # ReproError blocks.
        assert not issubclass(TypeError, ReproError)

    def test_library_raises_its_own_types(self):
        """Spot-check that representative entry points raise the advertised
        subclass, so `except ReproError` is a usable API boundary."""
        import numpy as np

        from repro import DataLayout, ProgramBuilder
        from repro.cache.direct import miss_mask_direct
        from repro.transforms.tiling import strip_mine

        with pytest.raises(SimulationError):
            miss_mask_direct(np.array([0]), 1000, 32)

        b = ProgramBuilder("p")
        A = b.array("A", (4,))
        (i,) = b.vars("i")
        b.nest([b.loop(i, 1, 4)], [b.use(reads=[A[i]])])
        prog = b.build()
        with pytest.raises(LayoutError):
            DataLayout.sequential(prog).base("nope")
        with pytest.raises(TransformError):
            strip_mine(prog.nests[0], "zz", 4)
        with pytest.raises(IRError):
            b.loop(i + 1, 1, 4)
