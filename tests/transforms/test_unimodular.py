"""Reversal, interchange, skewing."""

import numpy as np
import pytest

from repro import DataLayout, ProgramBuilder
from repro.errors import TransformError
from repro.trace.generator import generate_trace
from repro.transforms.unimodular import interchange, reverse_loop, skew


def stencil_program(n=12):
    b = ProgramBuilder("st")
    A = b.array("A", (n, n))
    i, j = b.vars("i", "j")
    b.nest(
        [b.loop(j, 2, n - 1), b.loop(i, 2, n - 1)],
        [b.use(reads=[A[i, j - 1], A[i - 1, j], A[i, j]])],
    )
    return b.build()


def trace_multiset(prog):
    return np.sort(generate_trace(prog, DataLayout.sequential(prog)))


class TestReversal:
    def test_preserves_multiset_reverses_order(self):
        prog = stencil_program()
        rev = prog.with_nests([reverse_loop(prog.nests[0], "i")])
        np.testing.assert_array_equal(trace_multiset(prog), trace_multiset(rev))
        lay = DataLayout.sequential(prog)
        t0, t1 = generate_trace(prog, lay), generate_trace(rev, lay)
        assert not np.array_equal(t0, t1)

    def test_double_reversal_identity(self):
        prog = stencil_program()
        nest = prog.nests[0]
        twice = reverse_loop(reverse_loop(nest, "j"), "j")
        assert twice == nest

    def test_unknown_loop(self):
        prog = stencil_program()
        with pytest.raises(TransformError):
            reverse_loop(prog.nests[0], "zz")


class TestInterchange:
    def test_swaps(self):
        prog = stencil_program()
        got = interchange(prog.nests[0], "i", "j")
        assert got.loop_vars == ("i", "j")

    def test_same_var_noop(self):
        prog = stencil_program()
        assert interchange(prog.nests[0], "i", "i") == prog.nests[0]

    def test_preserves_multiset(self):
        prog = stencil_program()
        sw = prog.with_nests([interchange(prog.nests[0], "i", "j")])
        np.testing.assert_array_equal(trace_multiset(prog), trace_multiset(sw))


class TestSkew:
    def test_preserves_multiset(self):
        prog = stencil_program()
        sk = prog.with_nests([skew(prog.nests[0], "j", "i", 1)])
        np.testing.assert_array_equal(trace_multiset(prog), trace_multiset(sk))

    def test_skewed_bounds_depend_on_outer(self):
        prog = stencil_program()
        got = skew(prog.nests[0], "j", "i", 2)
        inner = got.loops[-1]
        assert inner.lower.depends_on("j")
        assert inner.upper.depends_on("j")

    def test_zero_factor_noop(self):
        prog = stencil_program()
        assert skew(prog.nests[0], "j", "i", 0) == prog.nests[0]

    def test_wrong_nesting_rejected(self):
        prog = stencil_program()
        with pytest.raises(TransformError):
            skew(prog.nests[0], "i", "j", 1)  # i does not enclose j

    def test_interchange_after_skew_requires_bound_rewrite(self):
        """After skewing, the inner loop's bounds depend on the outer
        variable, so a naive interchange is structurally illegal -- the
        transform refuses rather than emitting wrong bounds (full wavefront
        interchange would need min/max bound rewriting)."""
        prog = stencil_program()
        sk = skew(prog.nests[0], "j", "i", 1)
        with pytest.raises(TransformError):
            interchange(sk, "j", "i")
