"""Loop permutation and the memory-order heuristic."""

import numpy as np
import pytest

from repro import DataLayout, ProgramBuilder, simulate_program, ultrasparc_i
from repro.errors import TransformError
from repro.trace.generator import generate_trace
from repro.transforms.permute import best_permutation, permute_nest


def fig1_program(n=256, m=64):
    b = ProgramBuilder("fig1")
    A = b.array("A", (n, m))
    B = b.array("B", (n,))
    i, j = b.vars("i", "j")
    b.nest(
        [b.loop(j, 1, n), b.loop(i, 1, m)],
        [b.assign(B[j], reads=[A[j, i]], flops=1)],
    )
    return b.build()


class TestPermuteNest:
    def test_reorders_loops(self):
        prog = fig1_program()
        got = permute_nest(prog.nests[0], ["i", "j"])
        assert got.loop_vars == ("i", "j")

    def test_preserves_access_multiset(self):
        prog = fig1_program(32, 16)
        lay = DataLayout.sequential(prog)
        before = generate_trace(prog, lay)
        permuted = prog.with_nests([permute_nest(prog.nests[0], ["i", "j"])])
        after = generate_trace(permuted, lay)
        np.testing.assert_array_equal(np.sort(before), np.sort(after))
        assert not np.array_equal(before, after)  # order actually changed

    def test_not_a_permutation_rejected(self):
        prog = fig1_program()
        with pytest.raises(TransformError):
            permute_nest(prog.nests[0], ["i", "i"])

    def test_bound_dependence_blocks_permutation(self):
        b = ProgramBuilder("tri")
        A = b.array("A", (16, 16))
        i, k = b.vars("i", "k")
        b.nest(
            [b.loop(k, 1, 15), b.loop(i, k + 1, 16)],
            [b.use(reads=[A[i, k]])],
        )
        prog = b.build()
        with pytest.raises(TransformError):
            permute_nest(prog.nests[0], ["i", "k"])


class TestBestPermutation:
    def test_fig1_moves_j_innermost(self):
        """The paper's Figure 1 permutation example."""
        prog = fig1_program()
        got = best_permutation(prog, prog.nests[0], line_size=32)
        assert got.loop_vars == ("i", "j")

    def test_already_optimal_unchanged(self):
        prog = fig1_program()
        permuted = permute_nest(prog.nests[0], ["i", "j"])
        again = best_permutation(prog, permuted, line_size=32)
        assert again.loop_vars == ("i", "j")

    def test_improves_simulated_misses(self):
        """'For large enough values of N, M, all levels of cache will
        benefit' (Section 2.1) -- with M spanning more lines than the L2
        holds, permutation must drop both miss rates.  (A scaled-down
        hierarchy keeps the trace small.)"""
        from repro.cache.config import CacheConfig, HierarchyConfig

        hier = HierarchyConfig(
            levels=(
                CacheConfig(size=1024, line_size=32, name="L1"),
                CacheConfig(size=8192, line_size=64, name="L2"),
            )
        )
        prog = fig1_program(100, 512)
        lay = DataLayout.sequential(prog)
        before = simulate_program(prog, lay, hier)
        best = prog.with_nests([best_permutation(prog, prog.nests[0], 32)])
        after = simulate_program(best, lay, hier)
        assert after.miss_rate("L1") < before.miss_rate("L1")
        assert after.miss_rate("L2") < before.miss_rate("L2")

    def test_triangular_nest_keeps_legal_order(self):
        b = ProgramBuilder("tri")
        A = b.array("A", (16, 16))
        i, k = b.vars("i", "k")
        b.nest([b.loop(k, 1, 15), b.loop(i, k + 1, 16)], [b.use(reads=[A[k, i]])])
        prog = b.build()
        got = best_permutation(prog, prog.nests[0], 32)
        assert got.loop_vars[0] == "k"  # k cannot move inside i


class TestDependenceCheckedPermutation:
    def test_legal_permutation_accepted(self):
        from repro import ProgramBuilder

        b = ProgramBuilder("ok")
        A = b.array("A", (18, 18))
        i, j = b.vars("i", "j")
        b.nest(
            [b.loop(j, 2, 17), b.loop(i, 2, 17)],
            [b.assign(A[i, j], reads=[A[i - 1, j - 1]], flops=1)],
        )
        prog = b.build()
        got = permute_nest(prog.nests[0], ["i", "j"], check_dependences=True)
        assert got.loop_vars == ("i", "j")

    def test_illegal_permutation_rejected(self):
        from repro import ProgramBuilder
        from repro.errors import TransformError
        import pytest as _pytest

        b = ProgramBuilder("bad")
        A = b.array("A", (18, 18))
        i, j = b.vars("i", "j")
        # distance (1, -1): interchange flips it negative.
        b.nest(
            [b.loop(j, 2, 17), b.loop(i, 2, 17)],
            [b.assign(A[i, j], reads=[A[i + 1, j - 1]], flops=1)],
        )
        prog = b.build()
        with _pytest.raises(TransformError):
            permute_nest(prog.nests[0], ["i", "j"], check_dependences=True)

    def test_unchecked_permutes_anyway(self):
        from repro import ProgramBuilder

        b = ProgramBuilder("bad")
        A = b.array("A", (18, 18))
        i, j = b.vars("i", "j")
        b.nest(
            [b.loop(j, 2, 17), b.loop(i, 2, 17)],
            [b.assign(A[i, j], reads=[A[i + 1, j - 1]], flops=1)],
        )
        prog = b.build()
        got = permute_nest(prog.nests[0], ["i", "j"])  # default: structural only
        assert got.loop_vars == ("i", "j")
